// Management object: the introspection plane as an ohpx service.
//
// The same payload the HTTP exporter serves is reachable over ohpx RMI —
// export an IntrospectServant from any context and a remote peer can pull
// the process's metrics, flight-recorder dump, or a health probe through
// whatever protocol (relay, glue, in-process) its global pointer resolves
// to.  That keeps the observability story inside the paper's capability
// model: handing out the Introspect GP *is* granting scrape access.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"

namespace ohpx::introspect {

class IntrospectServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "Introspect";

  /// Exporting the servant arms deep timing (metrics.hpp), so the
  /// per-context dispatch series carry samples by the time a peer
  /// scrapes them.
  IntrospectServant();

  enum Method : std::uint32_t {
    kMetricsText = 1,     // () -> string (Prometheus text exposition)
    kFlightRecorder = 2,  // () -> string (flight-recorder dump)
    kHealth = 3,          // () -> string ("ok")
  };

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;
};

class IntrospectStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = IntrospectServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::string metrics_text() {
    return call<std::string>(IntrospectServant::kMetricsText);
  }

  std::string flight_recorder() {
    return call<std::string>(IntrospectServant::kFlightRecorder);
  }

  std::string health() { return call<std::string>(IntrospectServant::kHealth); }
};

using IntrospectPointer = orb::GlobalPointer<IntrospectStub>;

}  // namespace ohpx::introspect
