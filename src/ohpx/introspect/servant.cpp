#include "ohpx/introspect/servant.hpp"

#include "ohpx/introspect/exposition.hpp"
#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/metrics/metrics.hpp"

namespace ohpx::introspect {

IntrospectServant::IntrospectServant() { metrics::enable_deep_timing(); }

void IntrospectServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                                 wire::Encoder& out) {
  (void)in;  // every method is nullary
  switch (method_id) {
    case kMetricsText:
      orb::marshal_result(out, render_exposition());
      return;
    case kFlightRecorder:
      orb::marshal_result(out, FlightRecorder::global().dump());
      return;
    case kHealth:
      orb::marshal_result(out, std::string("ok"));
      return;
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

}  // namespace ohpx::introspect
