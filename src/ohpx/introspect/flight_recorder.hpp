// Always-on flight recorder: a bounded ring of the most recent notable
// events (errors, retries, breaker trips, deadline cancellations, reactor
// stalls) with the trace context that was ambient when each was recorded.
//
// The recorder answers the first question of every incident — "what was
// the ORB doing right before it went wrong?" — without requiring tracing
// or verbose logging to have been enabled in advance.  Producers sit only
// on cold paths (an error was already being thrown, a breaker already
// tripped), so a short critical section per record is acceptable; the hot
// call path never touches the recorder.
//
// The ring is dumped three ways:
//   - on demand: dump() / the IntrospectServant's flightrecorder method /
//     the HTTP exporter's /flightrecorder endpoint;
//   - when the reactor's stall watchdog fires (transport/reactor.cpp logs
//     the dump on the first stall);
//   - on fatal signal, best-effort, when install_fatal_signal_dump() was
//     called: the handler renders the ring to stderr without locking
//     (async-signal-unsafe by the letter of the law, but the process is
//     dying anyway — the alternative is losing the evidence).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::introspect {

enum class EventKind : std::uint8_t {
  error = 0,         // an attempt failed (transport fault, error reply)
  retry = 1,         // the invocation layer is re-attempting a call
  breaker_open = 2,  // a circuit breaker tripped open
  breaker_close = 3, // a half-open breaker closed after a probe success
  deadline = 4,      // a call was cancelled by its deadline budget
  backpressure = 5,  // an inflight-window refusal
  stall = 6,         // the reactor's event loop exceeded its lag threshold
};

const char* to_string(EventKind kind) noexcept;

class FlightRecorder {
 public:
  /// Ring depth: the last kCapacity events are retained, oldest evicted.
  static constexpr std::size_t kCapacity = 256;

  /// Longest detail string retained per record (fixed storage so the
  /// fatal-signal renderer never allocates).
  static constexpr std::size_t kDetailCapacity = 96;

  struct Record {
    std::int64_t wall_ns = 0;  // system clock at record time
    std::uint64_t seq = 0;     // monotonically increasing, never reused
    std::uint64_t trace_hi = 0, trace_lo = 0;  // ambient trace (0 = none)
    std::uint16_t code = 0;    // raw ErrorCode (0 = not error-coded)
    EventKind kind = EventKind::error;
    char detail[kDetailCapacity] = {0};  // NUL-terminated, truncated
  };

  /// Process-wide recorder every producer feeds.
  static FlightRecorder& global();

  /// Appends one event; captures the calling thread's ambient trace
  /// context.  `detail` is truncated to kDetailCapacity - 1 bytes.
  void record(EventKind kind, ErrorCode code, std::string_view detail);

  /// The retained records, oldest first.
  std::vector<Record> snapshot() const;

  /// Human-readable dump of snapshot(), one line per record.
  std::string dump() const;

  /// Events recorded since process start (monotonic; exceeds size() once
  /// the ring has wrapped).
  std::uint64_t total_recorded() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }

  std::size_t size() const;
  std::size_t capacity() const noexcept { return kCapacity; }

  /// Drops all retained records (sequence numbers keep counting).
  void clear();

  /// Installs SIGSEGV/SIGABRT/SIGBUS handlers that render the ring to
  /// stderr before re-raising with the default disposition.  Idempotent.
  /// Opt-in: long-lived daemons and tools call it, libraries never do.
  static void install_fatal_signal_dump();

 private:
  friend void fatal_signal_render();  // lock-free stderr render (signal path)

  mutable sync::Mutex mutex_{"introspect.flight"};
  std::array<Record, kCapacity> ring_ OHPX_GUARDED_BY(mutex_){};
  std::size_t size_ OHPX_GUARDED_BY(mutex_) = 0;
  std::uint64_t seq_ OHPX_GUARDED_BY(mutex_) = 0;
  std::atomic<std::uint64_t> total_{0};
};

/// Renders one record as a single text line (shared by dump() and the
/// exporter; exposed for tests).
std::string format_record(const FlightRecorder::Record& record);

}  // namespace ohpx::introspect
