// HTTP bearer of the introspection plane.
//
// Binds a loopback HTTP listener and serves:
//   GET /metrics         Prometheus text exposition (render_exposition())
//   GET /flightrecorder  flight-recorder dump (most recent last)
//   GET /healthz         "ok" liveness probe
//
// One instance per process is typical; port 0 picks an ephemeral port
// (read it back with port()).  The listener stops in the destructor, so
// scoping an IntrospectHttpServer to a benchmark run is enough.
#pragma once

#include <cstdint>

#include "ohpx/transport/http.hpp"

namespace ohpx::introspect {

class IntrospectHttpServer {
 public:
  explicit IntrospectHttpServer(std::uint16_t port);
  ~IntrospectHttpServer();

  IntrospectHttpServer(const IntrospectHttpServer&) = delete;
  IntrospectHttpServer& operator=(const IntrospectHttpServer&) = delete;

  std::uint16_t port() const noexcept { return listener_.port(); }
  void stop() { listener_.stop(); }

 private:
  transport::HttpListener listener_;
};

}  // namespace ohpx::introspect
