#include "ohpx/introspect/flight_recorder.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "ohpx/trace/trace.hpp"

namespace ohpx::introspect {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::error:
      return "error";
    case EventKind::retry:
      return "retry";
    case EventKind::breaker_open:
      return "breaker_open";
    case EventKind::breaker_close:
      return "breaker_close";
    case EventKind::deadline:
      return "deadline";
    case EventKind::backpressure:
      return "backpressure";
    case EventKind::stall:
      return "stall";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::record(EventKind kind, ErrorCode code,
                            std::string_view detail) {
  // Capture the ambient trace before the lock: current_context() is a
  // thread-local read and may be invalid (all-zero) outside any trace.
  const trace::TraceContext tctx = trace::current_context();
  const std::int64_t wall_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  sync::LockGuard lock(mutex_);
  Record& slot = ring_[seq_ % kCapacity];
  slot.wall_ns = wall_ns;
  slot.seq = seq_;
  slot.trace_hi = tctx.valid() ? tctx.trace_hi : 0;
  slot.trace_lo = tctx.valid() ? tctx.trace_lo : 0;
  slot.code = static_cast<std::uint16_t>(code);
  slot.kind = kind;
  const std::size_t n = std::min(detail.size(), kDetailCapacity - 1);
  std::memcpy(slot.detail, detail.data(), n);
  slot.detail[n] = '\0';
  ++seq_;
  size_ = std::min(size_ + 1, kCapacity);
  total_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<FlightRecorder::Record> FlightRecorder::snapshot() const {
  sync::LockGuard lock(mutex_);
  std::vector<Record> out;
  out.reserve(size_);
  // Oldest retained record first: when the ring has wrapped, that is the
  // slot seq_ points at (about to be overwritten next).
  const std::uint64_t first = seq_ - size_;
  for (std::uint64_t i = first; i != seq_; ++i) {
    out.push_back(ring_[i % kCapacity]);
  }
  return out;
}

std::size_t FlightRecorder::size() const {
  sync::LockGuard lock(mutex_);
  return size_;
}

void FlightRecorder::clear() {
  sync::LockGuard lock(mutex_);
  size_ = 0;
}

std::string format_record(const FlightRecorder::Record& record) {
  char line[256];
  const double wall_s = static_cast<double>(record.wall_ns) / 1e9;
  std::snprintf(line, sizeof(line),
                "#%llu t=%.6f %-13s code=%u trace=%016llx%016llx ",
                static_cast<unsigned long long>(record.seq), wall_s,
                to_string(record.kind), record.code,
                static_cast<unsigned long long>(record.trace_hi),
                static_cast<unsigned long long>(record.trace_lo));
  std::string out(line);
  out += record.detail;
  return out;
}

std::string FlightRecorder::dump() const {
  const std::vector<Record> records = snapshot();
  std::ostringstream out;
  out << "flight recorder: " << records.size() << " retained of "
      << total_recorded() << " recorded (capacity " << kCapacity << ")\n";
  for (const Record& record : records) {
    out << format_record(record) << '\n';
  }
  return out.str();
}

// ---- fatal-signal path -----------------------------------------------------

// Reads the ring WITHOUT the mutex: this runs inside a fatal signal
// handler where taking a lock (possibly held by the faulting thread) would
// deadlock the dying process.  A torn record costs one garbled line; the
// NUL terminator written before the seq bump keeps %s bounded either way.
void fatal_signal_render() OHPX_NO_THREAD_SAFETY_ANALYSIS {
  FlightRecorder& recorder = FlightRecorder::global();
  char line[384];
  int n = std::snprintf(line, sizeof(line),
                        "\n==== ohpx flight recorder (fatal signal) ====\n");
  std::fwrite(line, 1, static_cast<std::size_t>(n), stderr);
  const std::uint64_t seq = recorder.seq_;
  const std::uint64_t size = std::min<std::uint64_t>(
      recorder.size_, FlightRecorder::kCapacity);
  for (std::uint64_t i = seq - size; i != seq; ++i) {
    const FlightRecorder::Record& r =
        recorder.ring_[i % FlightRecorder::kCapacity];
    n = std::snprintf(line, sizeof(line),
                      "#%llu t=%lld.%09lld %s code=%u "
                      "trace=%016llx%016llx %s\n",
                      static_cast<unsigned long long>(r.seq),
                      static_cast<long long>(r.wall_ns / 1000000000),
                      static_cast<long long>(r.wall_ns % 1000000000),
                      to_string(r.kind), r.code,
                      static_cast<unsigned long long>(r.trace_hi),
                      static_cast<unsigned long long>(r.trace_lo), r.detail);
    if (n > 0) std::fwrite(line, 1, static_cast<std::size_t>(n), stderr);
  }
  std::fflush(stderr);
}

namespace {

void on_fatal_signal(int sig) {
  fatal_signal_render();
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

std::atomic<bool> g_handlers_installed{false};

}  // namespace

void FlightRecorder::install_fatal_signal_dump() {
  bool expected = false;
  if (!g_handlers_installed.compare_exchange_strong(expected, true)) return;
  (void)global();  // construct the ring before any signal can arrive
  std::signal(SIGSEGV, on_fatal_signal);
  std::signal(SIGABRT, on_fatal_signal);
  std::signal(SIGBUS, on_fatal_signal);
}

}  // namespace ohpx::introspect
