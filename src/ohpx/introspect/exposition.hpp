// Prometheus text exposition of the ORB's live state.
//
// render_exposition() folds every introspection source into one scrape
// payload:
//   - the global MetricsRegistry snapshot (counters + latency histograms,
//     dynamic families like "rmi.calls.<protocol>" rendered as labels),
//   - reactor health (inflight window + per-connection inflight/queue
//     gauges from Reactor::global().connection_stats()),
//   - every live circuit breaker's state (resilience::BreakerRegistry),
//   - the protocol-selection cache hit ratio and the retry policy
//     revision,
//   - buffer-pool occupancy and flight-recorder depth.
//
// The payload is served identically over HTTP (http_exporter.hpp) and over
// ohpx RMI (servant.hpp) — one renderer, two bearers.
#pragma once

#include <string>

#include "ohpx/metrics/metrics.hpp"

namespace ohpx::introspect {

/// The full process-wide exposition (constructs the global reactor if it
/// does not exist yet, so reactor families are always present).
std::string render_exposition();

/// Renders only the registry-derived families from `snapshot` — the
/// testable core of render_exposition(), with no global state touched.
std::string render_registry_families(const metrics::MetricsSnapshot& snapshot);

}  // namespace ohpx::introspect
