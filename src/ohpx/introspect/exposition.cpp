#include "ohpx/introspect/exposition.hpp"

#include <cstdint>
#include <map>
#include <sstream>
#include <string_view>
#include <vector>

#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/resilience/breaker.hpp"
#include "ohpx/resilience/retry.hpp"
#include "ohpx/transport/reactor.hpp"
#include "ohpx/wire/buffer_pool.hpp"

namespace ohpx::introspect {
namespace {

// Prometheus metric names allow [a-zA-Z0-9_:]; ohpx metric names are
// lowercase dotted, so dots (and anything else) become underscores.
std::string sanitize(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\' || c == '"') {
      out.push_back('\\');
      out.push_back(c);
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string one_label(std::string_view key, std::string_view value) {
  return "{" + std::string(key) + "=\"" + escape_label(value) + "\"}";
}

bool starts_with(std::string_view name, std::string_view prefix) {
  return name.size() > prefix.size() &&
         name.substr(0, prefix.size()) == prefix;
}

// One exposition family: TYPE/HELP metadata plus its sample lines.  Kept
// in a map so a dynamic family ("rmi.calls.<protocol>") declares its
// metadata exactly once however many members the snapshot holds.
struct Family {
  std::string type;  // "counter" | "gauge" | "summary"
  std::string help;
  std::vector<std::string> lines;
};

class Builder {
 public:
  Family& family(const std::string& name, const std::string& type,
                 const std::string& help) {
    Family& fam = families_[name];
    if (fam.type.empty()) {
      fam.type = type;
      fam.help = help;
    }
    return fam;
  }

  void sample(const std::string& family_name, const std::string& type,
              const std::string& help, const std::string& labels,
              std::uint64_t value) {
    family(family_name, type, help)
        .lines.push_back(family_name + labels + " " + std::to_string(value));
  }

  void sample_f(const std::string& family_name, const std::string& type,
                const std::string& help, const std::string& labels,
                double value) {
    std::ostringstream formatted;
    formatted << family_name << labels << " " << value;
    family(family_name, type, help).lines.push_back(formatted.str());
  }

  std::string render() const {
    std::ostringstream out;
    for (const auto& [name, fam] : families_) {
      out << "# HELP " << name << " " << fam.help << "\n";
      out << "# TYPE " << name << " " << fam.type << "\n";
      for (const std::string& line : fam.lines) out << line << "\n";
    }
    return out.str();
  }

 private:
  std::map<std::string, Family> families_;
};

// Dynamic counter families: a registry name carrying one of these
// prefixes renders as family + label instead of a sanitized flat name.
struct PrefixRoute {
  const char* prefix;
  const char* family;
  const char* label;
  const char* help;
};

constexpr PrefixRoute kCounterPrefixes[] = {
    {"rmi.calls.", "ohpx_rmi_protocol_calls_total", "protocol",
     "RMI calls served, by selected protocol entry."},
    {"rmi.errors.", "ohpx_rmi_errors_total", "code",
     "Error replies decoded on the client, by error code."},
    {"server.errors.", "ohpx_server_errors_total", "code",
     "Error replies produced by the server pipeline, by error code."},
    {"server.ctx.requests.", "ohpx_server_context_requests_total", "context",
     "Requests dispatched, by server context id."},
};

constexpr PrefixRoute kHistogramPrefixes[] = {
    {"server.ctx.latency.", "ohpx_server_context_latency_us", "context",
     "Server dispatch latency by context id (microseconds, "
     "log2-bucket approximation)."},
};

// Registry counters that are stored, not accumulated.
bool is_gauge_name(std::string_view name) {
  return name == metrics::names::kReactorInflight ||
         name == metrics::names::kReactorConnections ||
         name == metrics::names::kNamingReplicasLive;
}

const char* fixed_counter_help(std::string_view name) {
  if (name == metrics::names::kRmiCalls) {
    return "Total RMI calls entering the invocation layer.";
  }
  if (name == metrics::names::kRmiReactorStall) {
    return "Event-loop ticks whose lag exceeded the stall threshold.";
  }
  if (name == metrics::names::kReactorBackpressure) {
    return "Submissions refused because an inflight window was full.";
  }
  if (name == metrics::names::kReactorReconnects) {
    return "Connection re-establishments after an earlier successful "
           "connect.";
  }
  if (name == metrics::names::kRmiAsyncDeadlineCancelled) {
    return "Async futures settled by deadline cancellation.";
  }
  return "ohpx counter (see src/ohpx/metrics/metric_names.hpp).";
}

const char* fixed_histogram_help(std::string_view name) {
  if (name == metrics::names::kReactorLoopLag) {
    return "Reactor event-loop processing time per tick (microseconds).";
  }
  if (name == metrics::names::kReactorBatchFrames) {
    return "Frames per sendmsg gather batch (unit = one frame, "
           "log2 buckets).";
  }
  if (name == metrics::names::kRmiAsyncLatency) {
    return "Async call completion latency, submit to settlement "
           "(microseconds).";
  }
  return "ohpx latency summary (microseconds, log2-bucket approximation).";
}

void add_registry_families(Builder& builder,
                           const metrics::MetricsSnapshot& snapshot) {
  for (const auto& [name, value] : snapshot.counters) {
    bool routed = false;
    for (const PrefixRoute& route : kCounterPrefixes) {
      if (starts_with(name, route.prefix)) {
        const std::string suffix = name.substr(std::string(route.prefix).size());
        builder.sample(route.family, "counter", route.help,
                       one_label(route.label, suffix), value);
        routed = true;
        break;
      }
    }
    if (routed) continue;
    if (is_gauge_name(name)) {
      builder.sample("ohpx_" + sanitize(name), "gauge",
                     "ohpx gauge (refreshed every reactor tick).", "", value);
      continue;
    }
    builder.sample("ohpx_" + sanitize(name) + "_total", "counter",
                   fixed_counter_help(name), "", value);
  }

  for (const auto& [name, count] : snapshot.latency_counts) {
    std::string family = "ohpx_" + sanitize(name) + "_us";
    std::string labels;
    const char* help = fixed_histogram_help(name);
    for (const PrefixRoute& route : kHistogramPrefixes) {
      if (starts_with(name, route.prefix)) {
        family = route.family;
        labels = one_label(route.label,
                           name.substr(std::string(route.prefix).size()));
        help = route.help;
        break;
      }
    }
    const auto quantiles_it = snapshot.latency_quantiles.find(name);
    const auto mean_it = snapshot.latency_mean_us.find(name);
    const metrics::LatencyQuantiles quantiles =
        quantiles_it != snapshot.latency_quantiles.end()
            ? quantiles_it->second
            : metrics::LatencyQuantiles{};
    const double mean_us =
        mean_it != snapshot.latency_mean_us.end() ? mean_it->second : 0.0;
    // Quantile labels merge with any routing label: {context="1",
    // quantile="0.5"}.
    const std::string base =
        labels.empty() ? "" : labels.substr(0, labels.size() - 1) + ", ";
    auto quantile_labels = [&](const char* q) {
      if (labels.empty()) return one_label("quantile", q);
      return base + "quantile=\"" + std::string(q) + "\"}";
    };
    Family& fam = builder.family(family, "summary", help);
    fam.lines.push_back(family + quantile_labels("0.5") + " " +
                        std::to_string(quantiles.p50_us));
    fam.lines.push_back(family + quantile_labels("0.95") + " " +
                        std::to_string(quantiles.p95_us));
    fam.lines.push_back(family + quantile_labels("0.99") + " " +
                        std::to_string(quantiles.p99_us));
    std::ostringstream sum_line;
    sum_line << family << "_sum" << labels << " "
             << mean_us * static_cast<double>(count);
    fam.lines.push_back(sum_line.str());
    fam.lines.push_back(family + "_count" + labels + " " +
                        std::to_string(count));
  }
}

}  // namespace

std::string render_registry_families(
    const metrics::MetricsSnapshot& snapshot) {
  Builder builder;
  add_registry_families(builder, snapshot);
  return builder.render();
}

std::string render_exposition() {
  // Anyone rendering the exposition wants the deep series — arm the
  // gated dispatch timers so subsequent scrapes see samples (the arming
  // is sticky; see the cost contract in metrics.hpp).
  metrics::enable_deep_timing();

  // Construct the global reactor up front: its constructor interns every
  // reactor.* handle, so loop-lag / inflight / backpressure families are
  // declared (at zero) even before the first async call.
  transport::Reactor& reactor = transport::Reactor::global();

  const metrics::MetricsSnapshot snapshot =
      metrics::MetricsRegistry::global().snapshot();
  Builder builder;
  add_registry_families(builder, snapshot);

  // Selection-cache effectiveness: hit ratio plus the raw hit/miss
  // counters already rendered above.  0 when no cached call has run.
  {
    auto counter_or_zero = [&](const std::string& name) -> std::uint64_t {
      const auto it = snapshot.counters.find(name);
      return it == snapshot.counters.end() ? 0 : it->second;
    };
    const std::uint64_t hits =
        counter_or_zero(std::string(metrics::names::kRmiSelectCacheHit));
    const std::uint64_t misses =
        counter_or_zero(std::string(metrics::names::kRmiSelectCacheMiss));
    const double ratio =
        hits + misses == 0
            ? 0.0
            : static_cast<double>(hits) / static_cast<double>(hits + misses);
    builder.sample_f("ohpx_rmi_select_cache_hit_ratio", "gauge",
                     "Protocol-selection cache hit ratio since start "
                     "(hits / (hits + misses)).",
                     "", ratio);
  }

  // Reactor window + per-connection health.
  builder.sample("ohpx_reactor_inflight_window", "gauge",
                 "Configured per-connection inflight window.", "",
                 reactor.inflight_window());
  builder.sample("ohpx_reactor_stall_threshold_us", "gauge",
                 "Stall-watchdog threshold (microseconds; 0 = disabled).", "",
                 static_cast<std::uint64_t>(
                     reactor.stall_threshold().count() > 0
                         ? reactor.stall_threshold().count() / 1000
                         : 0));
  {
    Family& inflight = builder.family(
        "ohpx_reactor_connection_inflight", "gauge",
        "Calls queued or awaiting reply, per reactor connection.");
    Family& queued = builder.family(
        "ohpx_reactor_connection_queued", "gauge",
        "Frames staged but not yet fully on the wire, per connection.");
    Family& reconnects = builder.family(
        "ohpx_reactor_connection_reconnects_total", "counter",
        "Re-establishments of this connection after a drop.");
    for (const auto& conn : reactor.connection_stats()) {
      const std::string peer =
          one_label("peer", conn.host + ":" + std::to_string(conn.port));
      inflight.lines.push_back("ohpx_reactor_connection_inflight" + peer +
                               " " + std::to_string(conn.inflight));
      queued.lines.push_back("ohpx_reactor_connection_queued" + peer + " " +
                             std::to_string(conn.queued));
      reconnects.lines.push_back("ohpx_reactor_connection_reconnects_total" +
                                 peer + " " +
                                 std::to_string(conn.reconnects));
    }
  }

  // Breaker states: 0 = closed, 1 = open, 2 = half_open.  The family is
  // declared even with no breakers registered, so dashboards (and the CI
  // --require gate) can rely on its presence.
  {
    Family& fam = builder.family(
        "ohpx_breaker_state", "gauge",
        "Circuit-breaker state per protocol entry "
        "(0 closed, 1 open, 2 half_open).");
    for (const auto& info : resilience::BreakerRegistry::global().snapshot()) {
      for (std::size_t i = 0; i < info.set->size(); ++i) {
        const std::string entry_name =
            i < info.entries.size() ? info.entries[i] : std::to_string(i);
        fam.lines.push_back(
            "ohpx_breaker_state{set=\"" + escape_label(info.label) +
            "\", entry=\"" + std::to_string(i) + "\", protocol=\"" +
            escape_label(entry_name) + "\"} " +
            std::to_string(static_cast<unsigned>(info.set->at(i).state())));
      }
    }
  }

  // Retry budgets: the revision bumps on every global/contextual policy
  // edit, so a scraper can tell "the retry policy changed" apart from
  // "retries spiked".
  builder.sample("ohpx_retry_policy_revision", "gauge",
                 "Revision counter of the resolved retry policy "
                 "(bumps on every policy edit).",
                 "", resilience::retry_policy_revision());

  // Buffer-pool occupancy (process-wide, all threads).
  {
    const wire::BufferPool::GlobalStats pool = wire::BufferPool::global_stats();
    builder.sample("ohpx_wire_pool_pooled", "gauge",
                   "Wire buffers currently parked in thread-local pools.", "",
                   pool.pooled);
    builder.sample("ohpx_wire_pool_reused_total", "counter",
                   "Buffer acquisitions served from a pool.", "", pool.reused);
    builder.sample("ohpx_wire_pool_allocated_total", "counter",
                   "Buffer acquisitions that had to allocate.", "",
                   pool.allocated);
  }

  // Flight-recorder depth.
  {
    FlightRecorder& recorder = FlightRecorder::global();
    builder.sample("ohpx_flight_recorder_retained", "gauge",
                   "Flight-recorder records currently retained.", "",
                   recorder.size());
    builder.sample("ohpx_flight_recorder_events_total", "counter",
                   "Flight-recorder events recorded since start.", "",
                   recorder.total_recorded());
  }

  return builder.render();
}

}  // namespace ohpx::introspect
