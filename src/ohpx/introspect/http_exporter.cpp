#include "ohpx/introspect/http_exporter.hpp"

#include <string>

#include "ohpx/introspect/exposition.hpp"
#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/metrics/metrics.hpp"

namespace ohpx::introspect {
namespace {

transport::HttpResponse route(const std::string& path) {
  if (path == "/metrics") {
    return {200, "text/plain; version=0.0.4; charset=utf-8",
            render_exposition()};
  }
  if (path == "/flightrecorder") {
    return {200, "text/plain; charset=utf-8",
            FlightRecorder::global().dump()};
  }
  if (path == "/healthz") {
    return {200, "text/plain; charset=utf-8", "ok\n"};
  }
  return {404, "text/plain; charset=utf-8",
          "unknown path; try /metrics, /flightrecorder or /healthz\n"};
}

}  // namespace

IntrospectHttpServer::IntrospectHttpServer(std::uint16_t port)
    : listener_(port, route) {
  // Serving the exposition arms deep timing (metrics.hpp) so the
  // per-context dispatch series carry samples from the first scrape on.
  metrics::enable_deep_timing();
}

IntrospectHttpServer::~IntrospectHttpServer() = default;

}  // namespace ohpx::introspect
