// Lightweight metrics: named counters and fixed-bucket latency histograms,
// plus a per-registry snapshot for reporting.  The invocation layer and
// server pipeline can be pointed at a MetricsRegistry to account calls per
// protocol, error categories and capability denials — the operational
// visibility a production ORB needs and the paper's open-implementation
// philosophy invites (the ORB's decisions are observable, not hidden).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/clock.hpp"

namespace ohpx::metrics {

/// Log-scale latency histogram: bucket i holds durations in
/// [2^i, 2^(i+1)) microseconds; bucket 0 is < 2 us, the last bucket is
/// open-ended.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 20;

  void record(Nanoseconds duration) noexcept;

  std::uint64_t count() const noexcept;
  Nanoseconds total() const noexcept;
  Nanoseconds mean() const noexcept;

  /// Smallest bucket upper bound (in us) covering at least `quantile` of
  /// the samples; 0 when empty.
  std::uint64_t approximate_quantile_us(double quantile) const noexcept;

  std::array<std::uint64_t, kBuckets> buckets() const noexcept;

 private:
  mutable std::mutex mutex_;
  std::array<std::uint64_t, kBuckets> buckets_ OHPX_GUARDED_BY(mutex_){};
  std::uint64_t count_ OHPX_GUARDED_BY(mutex_) = 0;
  Nanoseconds total_ OHPX_GUARDED_BY(mutex_){0};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> latency_counts;
  std::map<std::string, double> latency_mean_us;
};

class MetricsRegistry {
 public:
  /// Process-wide default registry (callers may also own private ones).
  static MetricsRegistry& global();

  void increment(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& name) const;

  void record_latency(const std::string& name, Nanoseconds duration);
  const LatencyHistogram* histogram(const std::string& name) const;

  MetricsSnapshot snapshot() const;
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::uint64_t> counters_ OHPX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      OHPX_GUARDED_BY(mutex_);
};

/// Renders a snapshot as an aligned text table (one counter or histogram
/// per line) — the "show me what the ORB did" report for examples/tools.
std::string format_snapshot(const MetricsSnapshot& snapshot);

/// RAII latency sample into a registry.
class ScopedLatency {
 public:
  ScopedLatency(MetricsRegistry& registry, std::string name)
      : registry_(registry), name_(std::move(name)) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() { registry_.record_latency(name_, watch_.elapsed()); }

 private:
  MetricsRegistry& registry_;
  std::string name_;
  Stopwatch watch_;
};

}  // namespace ohpx::metrics
