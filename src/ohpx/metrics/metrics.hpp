// Lightweight metrics: named counters and fixed-bucket latency histograms,
// plus a per-registry snapshot for reporting.  The invocation layer and
// server pipeline can be pointed at a MetricsRegistry to account calls per
// protocol, error categories and capability denials — the operational
// visibility a production ORB needs and the paper's open-implementation
// philosophy invites (the ORB's decisions are observable, not hidden).
//
// Hot paths use *handles*: counter_handle()/latency_handle() resolve a name
// once and return a stable pointer the caller bumps directly — no string
// concatenation and no map lookup per event.  Handles stay valid for the
// registry's lifetime; reset() zeroes values in place so outstanding
// handles keep working.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/clock.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::metrics {

/// Log-scale latency histogram: bucket i holds durations in
/// [2^i, 2^(i+1)) microseconds; bucket 0 is < 2 us, the last bucket is
/// open-ended.  Lock-free: record() is three relaxed atomic adds, so the
/// invocation hot path never serializes on a histogram mutex; readers see
/// each cell atomically (cross-cell totals may lag by in-flight records,
/// which is fine for reporting).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 20;

  void record(Nanoseconds duration) noexcept;

  std::uint64_t count() const noexcept;
  Nanoseconds total() const noexcept;
  Nanoseconds mean() const noexcept;

  /// Smallest bucket upper bound (in us) covering at least `quantile` of
  /// the samples; 0 when empty.
  std::uint64_t approximate_quantile_us(double quantile) const noexcept;

  std::array<std::uint64_t, kBuckets> buckets() const noexcept;

  /// Zeroes all samples in place (pointers to this histogram stay valid).
  void reset() noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::int64_t> total_ns_{0};
};

/// Tail latencies for one histogram, from approximate_quantile_us (bucket
/// upper bounds, so values are conservative log-scale approximations).
struct LatencyQuantiles {
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> latency_counts;
  std::map<std::string, double> latency_mean_us;
  std::map<std::string, LatencyQuantiles> latency_quantiles;
};

/// Deep-timing arming for instrumentation the hot path cannot absorb by
/// default (the server dispatch timers behind the per-context latency
/// series the exporter and ohpx-top render: two clock reads per
/// dispatch).  Mirrors the tracing cost contract in
/// docs/observability.md — disarmed, each gated site is one relaxed
/// load and a branch.  Arming is sticky and process-wide; the
/// introspection plane arms it when an exporter is constructed or an
/// exposition is rendered.
bool deep_timing_enabled() noexcept;
void enable_deep_timing() noexcept;

class MetricsRegistry {
 public:
  /// Stable counter cell: bump with fetch_add, read with load.
  using Counter = std::atomic<std::uint64_t>;

  /// Process-wide default registry (callers may also own private ones).
  static MetricsRegistry& global();

  /// Resolves (creating on first use) a counter and returns a pointer that
  /// stays valid for the registry's lifetime — resolve once, bump forever.
  Counter* counter_handle(const std::string& name);

  /// Same contract for latency histograms.
  LatencyHistogram* latency_handle(const std::string& name);

  void increment(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& name) const;

  void record_latency(const std::string& name, Nanoseconds duration);
  const LatencyHistogram* histogram(const std::string& name) const;

  MetricsSnapshot snapshot() const;

  /// Zeroes every counter and histogram *in place*: names and outstanding
  /// handles survive, values restart from zero.
  void reset();

 private:
  mutable sync::Mutex mutex_{"metrics.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      OHPX_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      OHPX_GUARDED_BY(mutex_);
};

/// Renders a snapshot as an aligned text table (one counter or histogram
/// per line) — the "show me what the ORB did" report for examples/tools.
std::string format_snapshot(const MetricsSnapshot& snapshot);

/// RAII latency sample.  The histogram handle is resolved at construction
/// (one map lookup before the timed region), so the destructor is a pure
/// record() — no per-call string lookup while the clock is running, and
/// callers holding an interned handle skip the lookup entirely.
class ScopedLatency {
 public:
  ScopedLatency(MetricsRegistry& registry, const std::string& name)
      : histogram_(registry.latency_handle(name)) {}
  explicit ScopedLatency(LatencyHistogram* histogram)
      : histogram_(histogram) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (histogram_ != nullptr) histogram_->record(watch_.elapsed());
  }

 private:
  LatencyHistogram* histogram_;
  Stopwatch watch_;
};

}  // namespace ohpx::metrics
