#include "ohpx/metrics/metrics.hpp"

#include <memory>
#include <sstream>
#include <iomanip>

namespace ohpx::metrics {
namespace {

std::size_t bucket_for(Nanoseconds duration) noexcept {
  const std::uint64_t us = static_cast<std::uint64_t>(duration.count()) / 1000;
  std::size_t bucket = 0;
  std::uint64_t bound = 2;
  while (bucket + 1 < LatencyHistogram::kBuckets && us >= bound) {
    bound <<= 1;
    ++bucket;
  }
  return bucket;
}

}  // namespace

void LatencyHistogram::record(Nanoseconds duration) noexcept {
  std::lock_guard lock(mutex_);
  ++buckets_[bucket_for(duration)];
  ++count_;
  total_ += duration;
}

std::uint64_t LatencyHistogram::count() const noexcept {
  std::lock_guard lock(mutex_);
  return count_;
}

Nanoseconds LatencyHistogram::total() const noexcept {
  std::lock_guard lock(mutex_);
  return total_;
}

Nanoseconds LatencyHistogram::mean() const noexcept {
  std::lock_guard lock(mutex_);
  if (count_ == 0) return Nanoseconds(0);
  return Nanoseconds(total_.count() / static_cast<std::int64_t>(count_));
}

std::uint64_t LatencyHistogram::approximate_quantile_us(
    double quantile) const noexcept {
  std::lock_guard lock(mutex_);
  if (count_ == 0) return 0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(quantile * static_cast<double>(count_));
  std::uint64_t seen = 0;
  std::uint64_t bound = 2;
  for (std::size_t i = 0; i < kBuckets; ++i, bound <<= 1) {
    seen += buckets_[i];
    if (seen > target) return bound;
  }
  return bound;
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::buckets() const noexcept {
  std::lock_guard lock(mutex_);
  return buckets_;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsRegistry::increment(const std::string& name, std::uint64_t delta) {
  std::lock_guard lock(mutex_);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::record_latency(const std::string& name,
                                     Nanoseconds duration) {
  LatencyHistogram* histogram = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) slot = std::make_unique<LatencyHistogram>();
    histogram = slot.get();
  }
  histogram->record(duration);
}

const LatencyHistogram* MetricsRegistry::histogram(
    const std::string& name) const {
  std::lock_guard lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  snap.counters = counters_;
  for (const auto& [name, histogram] : histograms_) {
    snap.latency_counts[name] = histogram->count();
    snap.latency_mean_us[name] =
        std::chrono::duration<double, std::micro>(histogram->mean()).count();
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  counters_.clear();
  histograms_.clear();
}

std::string format_snapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "counters:\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "  " << std::left << std::setw(44) << name << std::right
        << std::setw(12) << value << "\n";
  }
  if (!snapshot.latency_counts.empty()) {
    out << "latencies:\n";
    for (const auto& [name, count] : snapshot.latency_counts) {
      out << "  " << std::left << std::setw(44) << name << std::right
          << std::setw(12) << count << " samples, mean " << std::fixed
          << std::setprecision(1) << snapshot.latency_mean_us.at(name)
          << " us\n";
    }
  }
  return out.str();
}

}  // namespace ohpx::metrics
