#include "ohpx/metrics/metrics.hpp"

#include <iomanip>
#include <memory>
#include <sstream>

#include "ohpx/sync/mutex.hpp"

namespace ohpx::metrics {
namespace {

std::size_t bucket_for(Nanoseconds duration) noexcept {
  const std::uint64_t us = static_cast<std::uint64_t>(duration.count()) / 1000;
  std::size_t bucket = 0;
  std::uint64_t bound = 2;
  while (bucket + 1 < LatencyHistogram::kBuckets && us >= bound) {
    bound <<= 1;
    ++bucket;
  }
  return bucket;
}

std::atomic<bool> g_deep_timing{false};

}  // namespace

bool deep_timing_enabled() noexcept {
  return g_deep_timing.load(std::memory_order_relaxed);
}

void enable_deep_timing() noexcept {
  g_deep_timing.store(true, std::memory_order_relaxed);
}

void LatencyHistogram::record(Nanoseconds duration) noexcept {
  buckets_[bucket_for(duration)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  total_ns_.fetch_add(duration.count(), std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

Nanoseconds LatencyHistogram::total() const noexcept {
  return Nanoseconds(total_ns_.load(std::memory_order_relaxed));
}

Nanoseconds LatencyHistogram::mean() const noexcept {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return Nanoseconds(0);
  return Nanoseconds(total_ns_.load(std::memory_order_relaxed) /
                     static_cast<std::int64_t>(n));
}

std::uint64_t LatencyHistogram::approximate_quantile_us(
    double quantile) const noexcept {
  const std::uint64_t n = count_.load(std::memory_order_relaxed);
  if (n == 0) return 0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(quantile * static_cast<double>(n));
  std::uint64_t seen = 0;
  std::uint64_t bound = 2;
  for (std::size_t i = 0; i < kBuckets; ++i, bound <<= 1) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) return bound;
  }
  return bound;
}

std::array<std::uint64_t, LatencyHistogram::kBuckets>
LatencyHistogram::buckets() const noexcept {
  std::array<std::uint64_t, kBuckets> out{};
  for (std::size_t i = 0; i < kBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void LatencyHistogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  total_ns_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Counter* MetricsRegistry::counter_handle(
    const std::string& name) {
  sync::LockGuard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>(0);
  return slot.get();
}

LatencyHistogram* MetricsRegistry::latency_handle(const std::string& name) {
  sync::LockGuard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

void MetricsRegistry::increment(const std::string& name, std::uint64_t delta) {
  counter_handle(name)->fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  sync::LockGuard lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0
                               : it->second->load(std::memory_order_relaxed);
}

void MetricsRegistry::record_latency(const std::string& name,
                                     Nanoseconds duration) {
  latency_handle(name)->record(duration);
}

const LatencyHistogram* MetricsRegistry::histogram(
    const std::string& name) const {
  sync::LockGuard lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  sync::LockGuard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, cell] : counters_) {
    snap.counters[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.latency_counts[name] = histogram->count();
    snap.latency_mean_us[name] =
        std::chrono::duration<double, std::micro>(histogram->mean()).count();
    snap.latency_quantiles[name] = {histogram->approximate_quantile_us(0.50),
                                    histogram->approximate_quantile_us(0.95),
                                    histogram->approximate_quantile_us(0.99)};
  }
  return snap;
}

void MetricsRegistry::reset() {
  sync::LockGuard lock(mutex_);
  // Zero in place: handles returned by counter_handle/latency_handle must
  // survive a reset (hot paths resolve them once and never again).
  for (auto& [name, cell] : counters_) {
    cell->store(0, std::memory_order_relaxed);
  }
  for (auto& [name, histogram] : histograms_) {
    histogram->reset();
  }
}

std::string format_snapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  out << "counters:\n";
  for (const auto& [name, value] : snapshot.counters) {
    out << "  " << std::left << std::setw(44) << name << std::right
        << std::setw(12) << value << "\n";
  }
  if (!snapshot.latency_counts.empty()) {
    out << "latencies:\n";
    for (const auto& [name, count] : snapshot.latency_counts) {
      out << "  " << std::left << std::setw(44) << name << std::right
          << std::setw(12) << count << " samples, mean " << std::fixed
          << std::setprecision(1) << snapshot.latency_mean_us.at(name)
          << " us";
      const auto it = snapshot.latency_quantiles.find(name);
      if (it != snapshot.latency_quantiles.end()) {
        out << ", p50 " << it->second.p50_us << " us, p95 "
            << it->second.p95_us << " us, p99 " << it->second.p99_us
            << " us";
      }
      out << "\n";
    }
  }
  return out.str();
}

}  // namespace ohpx::metrics
