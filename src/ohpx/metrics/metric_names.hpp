// Canonical registry of every metric name in src/.
//
// Metric names are a cross-file contract, exactly like span names
// (trace/span_names.hpp): the exporter maps them to Prometheus families,
// ohpx-top keys its table on them, tests assert on them, and dashboards
// break silently when one drifts.  ohpx-lint's AST tier
// (tools/ohpx_lint_ast.py, rule metric-names) bans raw metric-name string
// literals at registry call sites anywhere in src/ outside this header —
// every counter_handle()/latency_handle()/increment()/record_latency()/
// ScopedLatency site must reach its name through these constants or the
// derived-name helpers below.
//
// Two kinds of names live here:
//   - fixed names (`k...` constants): one series each;
//   - dynamic families (`...Prefix` constants + builder functions): a
//     bounded set of series keyed by protocol name, error code or context
//     id.  The exporter recognizes the prefixes and renders the suffix as
//     a Prometheus label, so new members of a family need no exporter
//     change.
//
// Adding a metric?  Add its name here in the same change that introduces
// the call site.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ohpx::metrics::names {

// ---- client invocation layer (orb/invocation.cpp) --------------------------

inline constexpr const char* kRmiCalls = "rmi.calls";
inline constexpr const char* kRmiSelectCacheHit = "rmi.select.cache_hit";
inline constexpr const char* kRmiSelectCacheMiss = "rmi.select.cache_miss";
/// Cached selections dropped because the object's location epoch moved —
/// the churn half of the cache's hit/miss/invalidate triple.
inline constexpr const char* kRmiSelectCacheInvalidate =
    "rmi.select.cache_invalidate";
inline constexpr const char* kRmiRetries = "rmi.retries";
inline constexpr const char* kRmiBackpressure = "rmi.backpressure";
inline constexpr const char* kRmiDeadlineExceeded = "rmi.deadline_exceeded";
inline constexpr const char* kRmiBreakerOpened = "rmi.breaker.opened";
inline constexpr const char* kRmiBreakerClosed = "rmi.breaker.closed";
inline constexpr const char* kRmiLatency = "rmi.latency";

// ---- async continuation path (call_async settlement) -----------------------

/// Completion latency of async calls, submit to settlement (the async
/// sibling of kRmiLatency, recorded in finish_async_reply).
inline constexpr const char* kRmiAsyncLatency = "rmi.async.latency";
/// Async futures settled by deadline cancellation instead of a reply.
inline constexpr const char* kRmiAsyncDeadlineCancelled =
    "rmi.async.deadline_cancelled";

// ---- reactor / transport (transport/reactor.cpp) ---------------------------

inline constexpr const char* kReactorBatches = "reactor.batches";
inline constexpr const char* kReactorFrames = "reactor.frames";
inline constexpr const char* kReactorBackpressure = "reactor.backpressure";
inline constexpr const char* kReactorDeadlineCancelled =
    "reactor.deadline_cancelled";
/// Successful re-establishments of a connection that had been up before.
inline constexpr const char* kReactorReconnects = "reactor.reconnects";
/// Histogram: per-tick event-loop processing time (everything between an
/// epoll_wait return and the next sleep decision).
inline constexpr const char* kReactorLoopLag = "reactor.loop_lag";
/// Histogram: frames per sendmsg gather batch, encoded as 1 "us" per
/// frame so the log2 buckets read as frame-count bands (see reactor.cpp).
inline constexpr const char* kReactorBatchFrames = "reactor.batch_frames";
/// Gauges (stored, not accumulated): current inflight calls and open
/// connections across all shards, refreshed at the end of every tick.
inline constexpr const char* kReactorInflight = "reactor.inflight";
inline constexpr const char* kReactorConnections = "reactor.connections";
/// Stall watchdog: ticks whose loop lag exceeded the configured
/// threshold (each one also drops a flight-recorder entry).
inline constexpr const char* kRmiReactorStall = "rmi.reactor.stall";

// ---- naming / replica failover (naming/*.cpp) ------------------------------

/// Bind operations accepted by a directory (bind + bind_replica).
inline constexpr const char* kNamingBinds = "naming.binds";
/// Resolve operations served (resolve, resolve_versioned, resolve_all).
inline constexpr const char* kNamingResolves = "naming.resolves";
/// Lease renewals accepted from registered replicas.
inline constexpr const char* kNamingHeartbeats = "naming.heartbeats";
/// Replica registrations dropped because their lease ran out.
inline constexpr const char* kNamingExpired = "naming.expired";
/// Replica registrations dropped by a client's dead-replica report.
inline constexpr const char* kNamingDeadReports = "naming.dead_reports";
/// Client-side rebinds to another replica after a transport loss or a
/// breaker trip (naming/failover.hpp).
inline constexpr const char* kNamingFailovers = "naming.failovers";
/// NameClient resolve cache hit/miss split (naming/name_client.cpp).
inline constexpr const char* kNamingResolveCacheHit =
    "naming.resolve.cache_hit";
inline constexpr const char* kNamingResolveCacheMiss =
    "naming.resolve.cache_miss";
/// Gauge (stored): live replica registrations across all names.
inline constexpr const char* kNamingReplicasLive = "naming.replicas_live";

// ---- server dispatch (orb/context.cpp) -------------------------------------

inline constexpr const char* kServerRequests = "server.requests";
/// Histogram: server-side dispatch latency (decode + route + servant).
inline constexpr const char* kServerDispatchLatency = "server.dispatch";

// ---- dynamic families ------------------------------------------------------

inline constexpr const char* kRmiCallsPrefix = "rmi.calls.";
inline constexpr const char* kRmiErrorsPrefix = "rmi.errors.";
inline constexpr const char* kServerErrorsPrefix = "server.errors.";
inline constexpr const char* kServerCtxRequestsPrefix = "server.ctx.requests.";
inline constexpr const char* kServerCtxLatencyPrefix = "server.ctx.latency.";

/// "rmi.calls.<protocol>": calls served by one protocol-table entry.
inline std::string protocol_calls(std::string_view protocol) {
  return kRmiCallsPrefix + std::string(protocol);
}

/// "rmi.errors.<code>": error replies decoded on the client, by code name.
inline std::string rmi_error(std::string_view code_name) {
  return kRmiErrorsPrefix + std::string(code_name);
}

/// "server.errors.<code>": error replies produced by the server, by code.
inline std::string server_error(std::string_view code_name) {
  return kServerErrorsPrefix + std::string(code_name);
}

/// "server.ctx.requests.<id>": requests dispatched by one context.
inline std::string context_requests(std::uint64_t context_id) {
  return kServerCtxRequestsPrefix + std::to_string(context_id);
}

/// "server.ctx.latency.<id>": dispatch latency histogram of one context.
inline std::string context_latency(std::uint64_t context_id) {
  return kServerCtxLatencyPrefix + std::to_string(context_id);
}

}  // namespace ohpx::metrics::names
