// Umbrella header for the Open HPC++ reproduction library.
//
// Layering (bottom → top):
//   common    — errors, logging, clocks, RNG, bytes
//   wire      — XDR-like encoding, frames
//   netsim    — machine/LAN topology, link models, load
//   crypto    — stream cipher, SipHash MAC, keys
//   compress  — RLE / LZ77 codecs
//   transport — in-process, TCP, simulated-network channels
//   cap       — capabilities, chains, registry (paper §4)
//   proto     — proto-objects, proto-pools, glue protocol, selection (§3)
//   orb       — object references, contexts, servants, global pointers (§2)
//   runtime   — World, migration, load balancing (§4.3)
#pragma once

#include "ohpx/common/bytes.hpp"
#include "ohpx/common/clock.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/common/thread_pool.hpp"

#include "ohpx/trace/export.hpp"
#include "ohpx/trace/trace.hpp"

#include "ohpx/wire/buffer.hpp"
#include "ohpx/wire/crc.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"
#include "ohpx/wire/message.hpp"
#include "ohpx/wire/serialize.hpp"

#include "ohpx/netsim/topology.hpp"

#include "ohpx/crypto/key.hpp"
#include "ohpx/crypto/mac.hpp"
#include "ohpx/crypto/stream_cipher.hpp"

#include "ohpx/compress/codec.hpp"

#include "ohpx/transport/channel.hpp"
#include "ohpx/transport/inproc.hpp"
#include "ohpx/transport/sim.hpp"
#include "ohpx/transport/tcp.hpp"

#include "ohpx/capability/builtin/audit.hpp"
#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/delegation.hpp"
#include "ohpx/capability/builtin/compression.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/fault.hpp"
#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/capability/builtin/padding.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/capability/builtin/ratelimit.hpp"
#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/chain.hpp"
#include "ohpx/capability/registry.hpp"
#include "ohpx/capability/scope.hpp"

#include "ohpx/protocol/entry.hpp"
#include "ohpx/protocol/glue.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/nexus_sim.hpp"
#include "ohpx/protocol/pool.hpp"
#include "ohpx/protocol/protocol.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/protocol/relay.hpp"
#include "ohpx/protocol/select.hpp"
#include "ohpx/protocol/shm.hpp"
#include "ohpx/protocol/target.hpp"
#include "ohpx/protocol/tcp_proto.hpp"

#include "ohpx/hpcxx/group_pointer.hpp"

#include "ohpx/metrics/metrics.hpp"

#include "ohpx/naming/name_service.hpp"

#include "ohpx/orb/context.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/invocation.hpp"
#include "ohpx/orb/location.hpp"
#include "ohpx/orb/object_ref.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"

#include "ohpx/runtime/balancer.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
