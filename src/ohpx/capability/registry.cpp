#include "ohpx/capability/registry.hpp"

#include "ohpx/capability/builtin/audit.hpp"
#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/delegation.hpp"
#include "ohpx/capability/builtin/compression.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/fault.hpp"
#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/capability/builtin/padding.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/capability/builtin/ratelimit.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::cap {

CapabilityRegistry& CapabilityRegistry::instance() {
  static CapabilityRegistry registry;
  return registry;
}

CapabilityRegistry::CapabilityRegistry() {
  factories_["encryption"] = EncryptionCapability::from_descriptor;
  factories_["authentication"] = AuthenticationCapability::from_descriptor;
  factories_["compression"] = CompressionCapability::from_descriptor;
  factories_["checksum"] = ChecksumCapability::from_descriptor;
  factories_["delegation"] = DelegationCapability::from_descriptor;
  factories_["fault"] = FaultCapability::from_descriptor;
  factories_["lease"] = LeaseCapability::from_descriptor;
  factories_["padding"] = PaddingCapability::from_descriptor;
  factories_["quota"] = QuotaCapability::from_descriptor;
  factories_["ratelimit"] = RateLimitCapability::from_descriptor;
  factories_["audit"] = AuditCapability::from_descriptor;
}

void CapabilityRegistry::register_factory(const std::string& kind,
                                          CapabilityFactory factory) {
  sync::LockGuard lock(mutex_);
  factories_[kind] = std::move(factory);
}

bool CapabilityRegistry::contains(const std::string& kind) const {
  sync::LockGuard lock(mutex_);
  return factories_.contains(kind);
}

std::vector<std::string> CapabilityRegistry::kinds() const {
  sync::LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [kind, factory] : factories_) out.push_back(kind);
  return out;
}

CapabilityPtr CapabilityRegistry::instantiate(
    const CapabilityDescriptor& descriptor) const {
  CapabilityFactory factory;
  {
    sync::LockGuard lock(mutex_);
    const auto it = factories_.find(descriptor.kind);
    if (it == factories_.end()) {
      throw CapabilityDenied(ErrorCode::capability_unknown,
                             "no factory for capability kind '" +
                                 descriptor.kind + "'");
    }
    factory = it->second;
  }
  return factory(descriptor);
}

CapabilityChain CapabilityRegistry::instantiate_chain(
    const std::vector<CapabilityDescriptor>& descriptors) const {
  CapabilityChain chain;
  for (const auto& descriptor : descriptors) {
    chain.add(instantiate(descriptor));
  }
  return chain;
}

}  // namespace ohpx::cap
