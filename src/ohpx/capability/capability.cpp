#include "ohpx/capability/capability.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::cap {

void CapabilityDescriptor::wire_serialize(wire::Encoder& enc) const {
  wire::serialize(enc, kind);
  wire::serialize(enc, params);
}

CapabilityDescriptor CapabilityDescriptor::wire_deserialize(wire::Decoder& dec) {
  CapabilityDescriptor d;
  d.kind = wire::deserialize<std::string>(dec);
  d.params = wire::deserialize<std::map<std::string, std::string>>(dec);
  return d;
}

const std::string& CapabilityDescriptor::require(const std::string& name) const {
  const auto it = params.find(name);
  if (it == params.end()) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "capability '" + kind + "' missing param '" + name + "'");
  }
  return it->second;
}

std::string CapabilityDescriptor::get_or(const std::string& name,
                                         std::string fallback) const {
  const auto it = params.find(name);
  return it == params.end() ? std::move(fallback) : it->second;
}

}  // namespace ohpx::cap
