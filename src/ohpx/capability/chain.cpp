#include "ohpx/capability/chain.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/trace/trace.hpp"

namespace ohpx::cap {
namespace {

// Capability transforms (ciphers, compression) are the most expensive
// client-side pipeline stage, so a spent budget stops here before burning
// CPU on bytes that can no longer arrive in time.
void check_deadline(const CallContext& call, const char* where) {
  if (resilience::deadline_expired(call.deadline_ns)) {
    throw DeadlineExceeded(std::string("deadline exceeded before ") + where);
  }
}

}  // namespace

bool CapabilityChain::applicable(const netsim::Placement& placement) const {
  for (const auto& capability : capabilities_) {
    if (!capability->applicable(placement)) return false;
  }
  return true;
}

void CapabilityChain::process_outbound(wire::Buffer& payload,
                                       const CallContext& call) {
  check_deadline(call, "capability processing");
  for (const auto& capability : capabilities_) {
    capability->admit(call);
  }
  for (const auto& capability : capabilities_) {
    trace::Span span(trace::SpanKind::capability, "cap.process");
    span.annotate(capability->kind());
    capability->process(payload, call);
  }
}

void CapabilityChain::process_inbound(wire::Buffer& payload,
                                      const CallContext& call) {
  check_deadline(call, "capability unprocessing");
  for (auto it = capabilities_.rbegin(); it != capabilities_.rend(); ++it) {
    trace::Span span(trace::SpanKind::capability, "cap.unprocess");
    span.annotate((*it)->kind());
    (*it)->unprocess(payload, call);
  }
  for (const auto& capability : capabilities_) {
    capability->admit(call);
  }
}

std::vector<CapabilityDescriptor> CapabilityChain::descriptors() const {
  std::vector<CapabilityDescriptor> out;
  out.reserve(capabilities_.size());
  for (const auto& capability : capabilities_) {
    out.push_back(capability->descriptor());
  }
  return out;
}

std::vector<CapabilityDescriptor> CapabilityChain::server_descriptors() const {
  std::vector<CapabilityDescriptor> out;
  out.reserve(capabilities_.size());
  for (const auto& capability : capabilities_) {
    out.push_back(capability->server_descriptor());
  }
  return out;
}

std::string CapabilityChain::describe() const {
  std::string out;
  for (const auto& capability : capabilities_) {
    if (!out.empty()) out += ",";
    out += capability->kind();
  }
  return out;
}

}  // namespace ohpx::cap
