#include "ohpx/capability/chain.hpp"

#include "ohpx/trace/trace.hpp"

namespace ohpx::cap {

bool CapabilityChain::applicable(const netsim::Placement& placement) const {
  for (const auto& capability : capabilities_) {
    if (!capability->applicable(placement)) return false;
  }
  return true;
}

void CapabilityChain::process_outbound(wire::Buffer& payload,
                                       const CallContext& call) {
  for (const auto& capability : capabilities_) {
    capability->admit(call);
  }
  for (const auto& capability : capabilities_) {
    trace::Span span(trace::SpanKind::capability, "cap.process");
    span.annotate(capability->kind());
    capability->process(payload, call);
  }
}

void CapabilityChain::process_inbound(wire::Buffer& payload,
                                      const CallContext& call) {
  for (auto it = capabilities_.rbegin(); it != capabilities_.rend(); ++it) {
    trace::Span span(trace::SpanKind::capability, "cap.unprocess");
    span.annotate((*it)->kind());
    (*it)->unprocess(payload, call);
  }
  for (const auto& capability : capabilities_) {
    capability->admit(call);
  }
}

std::vector<CapabilityDescriptor> CapabilityChain::descriptors() const {
  std::vector<CapabilityDescriptor> out;
  out.reserve(capabilities_.size());
  for (const auto& capability : capabilities_) {
    out.push_back(capability->descriptor());
  }
  return out;
}

std::vector<CapabilityDescriptor> CapabilityChain::server_descriptors() const {
  std::vector<CapabilityDescriptor> out;
  out.reserve(capabilities_.size());
  for (const auto& capability : capabilities_) {
    out.push_back(capability->server_descriptor());
  }
  return out;
}

std::string CapabilityChain::describe() const {
  std::string out;
  for (const auto& capability : capabilities_) {
    if (!out.empty()) out += ",";
    out += capability->kind();
  }
  return out;
}

}  // namespace ohpx::cap
