#include "ohpx/capability/builtin/checksum.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/wire/crc.hpp"

namespace ohpx::cap {

ChecksumCapability::ChecksumCapability(Scope scope) : scope_(scope) {}

bool ChecksumCapability::applicable(const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

void ChecksumCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)call;
  const std::uint32_t crc = wire::crc32(payload.view());
  payload.append(static_cast<std::uint8_t>(crc >> 24));
  payload.append(static_cast<std::uint8_t>(crc >> 16));
  payload.append(static_cast<std::uint8_t>(crc >> 8));
  payload.append(static_cast<std::uint8_t>(crc));
}

void ChecksumCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  (void)call;
  if (payload.size() < 4) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "payload too short for checksum");
  }
  const std::size_t body_size = payload.size() - 4;
  const BytesView tail = payload.view(body_size, 4);
  const std::uint32_t stored = (static_cast<std::uint32_t>(tail[0]) << 24) |
                               (static_cast<std::uint32_t>(tail[1]) << 16) |
                               (static_cast<std::uint32_t>(tail[2]) << 8) |
                               static_cast<std::uint32_t>(tail[3]);
  const std::uint32_t computed = wire::crc32(payload.view(0, body_size));
  if (stored != computed) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "payload checksum mismatch");
  }
  payload.resize(body_size);
}

CapabilityDescriptor ChecksumCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "checksum";
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr ChecksumCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const Scope scope = scope_from_string(descriptor.get_or("scope", "always"));
  return std::make_shared<ChecksumCapability>(scope);
}

}  // namespace ohpx::cap
