#include "ohpx/capability/builtin/padding.hpp"

#include "ohpx/common/error.hpp"

namespace ohpx::cap {

PaddingCapability::PaddingCapability(std::size_t block_size, Scope scope)
    : block_size_(block_size), scope_(scope) {
  if (block_size_ == 0) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "padding block size must be positive");
  }
}

bool PaddingCapability::applicable(const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

void PaddingCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)call;
  const std::size_t original = payload.size();
  // Total = payload + padding + 4-byte trailer, rounded to a block.
  const std::size_t with_trailer = original + 4;
  const std::size_t padded =
      (with_trailer + block_size_ - 1) / block_size_ * block_size_;
  payload.resize(padded - 4);  // zero padding
  payload.append(static_cast<std::uint8_t>(original >> 24));
  payload.append(static_cast<std::uint8_t>(original >> 16));
  payload.append(static_cast<std::uint8_t>(original >> 8));
  payload.append(static_cast<std::uint8_t>(original));
}

void PaddingCapability::unprocess(wire::Buffer& payload,
                                  const CallContext& call) {
  (void)call;
  if (payload.size() < 4 || payload.size() % block_size_ != 0) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "padded payload has invalid length");
  }
  const BytesView tail = payload.view(payload.size() - 4, 4);
  const std::size_t original = (static_cast<std::size_t>(tail[0]) << 24) |
                               (static_cast<std::size_t>(tail[1]) << 16) |
                               (static_cast<std::size_t>(tail[2]) << 8) |
                               static_cast<std::size_t>(tail[3]);
  if (original > payload.size() - 4) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "padded payload declares impossible length");
  }
  payload.resize(original);
}

CapabilityDescriptor PaddingCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "padding";
  d.params["block_size"] = std::to_string(block_size_);
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr PaddingCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const unsigned long long block =
      std::stoull(descriptor.get_or("block_size", "256"));
  const Scope scope = scope_from_string(descriptor.get_or("scope", "always"));
  return std::make_shared<PaddingCapability>(static_cast<std::size_t>(block),
                                             scope);
}

}  // namespace ohpx::cap
