#include "ohpx/capability/builtin/ratelimit.hpp"

#include <algorithm>

#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::cap {

RateLimitCapability::RateLimitCapability(double rate_per_sec, double burst)
    : rate_per_sec_(rate_per_sec),
      burst_(burst),
      tokens_(burst),
      last_refill_(std::chrono::steady_clock::now()) {}

void RateLimitCapability::refill_locked() {
  const auto now = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(now - last_refill_).count();
  last_refill_ = now;
  tokens_ = std::min(burst_, tokens_ + elapsed * rate_per_sec_);
}

void RateLimitCapability::admit(const CallContext& call) {
  if (call.direction != Direction::request) return;
  sync::LockGuard lock(mutex_);
  refill_locked();
  if (tokens_ < 1.0) {
    throw CapabilityDenied(ErrorCode::capability_denied,
                           "rate limit exceeded");
  }
  tokens_ -= 1.0;
}

void RateLimitCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

void RateLimitCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

double RateLimitCapability::tokens() const {
  sync::LockGuard lock(mutex_);
  const_cast<RateLimitCapability*>(this)->refill_locked();
  return tokens_;
}

CapabilityDescriptor RateLimitCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "ratelimit";
  d.params["rate_per_sec"] = std::to_string(rate_per_sec_);
  d.params["burst"] = std::to_string(burst_);
  return d;
}

CapabilityPtr RateLimitCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const double rate = std::stod(descriptor.require("rate_per_sec"));
  const double burst = std::stod(descriptor.require("burst"));
  return std::make_shared<RateLimitCapability>(rate, burst);
}

}  // namespace ohpx::cap
