// Delegation capability: macaroon-style attenuated bearer tokens.
//
// The paper emphasizes that capabilities — unlike OIP "illities" bound to
// a thread — travel with references between processes (§4, §6).  This
// capability pushes that to its natural conclusion: the *holder* of a
// reference can mint a further-restricted reference for a third party
// without contacting the server.
//
// Construction (the classic macaroon fold):
//   token_0 = MAC(root_key, "ohpx-delegation")
//   token_i = MAC(key(token_{i-1}), caveat_i)
// A bearer holds (caveats..., token_n) but never the root key; adding a
// caveat requires only the current token, so attenuation is offline.  The
// server (the only root-key holder) re-folds from the root and compares in
// constant time, then enforces every caveat — unknown caveats fail closed.
//
// Supported caveats:
//   method<=N       method id at most N
//   method in a,b   method id in the list
//   size<=N         request payload at most N bytes
//
// Roles: the server-side copy is the *verifier* (holds the root key); the
// client-side copies are *bearers*.  A bearer's descriptor carries only
// caveats + token; the verifier's public descriptor() does the same (so
// ORs never leak the root), while server_descriptor() — used when glue
// bindings migrate between contexts — carries the root key.
#pragma once

#include <string>
#include <vector>

#include "ohpx/capability/capability.hpp"
#include "ohpx/crypto/key.hpp"

namespace ohpx::cap {

class DelegationCapability final : public Capability {
 public:
  /// Verifier: mints the root of a delegation chain.
  static std::shared_ptr<DelegationCapability> make_root(crypto::Key128 root_key);

  /// Bearer: holds an attenuated token.
  static std::shared_ptr<DelegationCapability> make_bearer(
      std::vector<std::string> caveats, Bytes token);

  std::string_view kind() const noexcept override { return "delegation"; }
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;
  CapabilityDescriptor server_descriptor() const override;

  /// Offline attenuation: narrows this capability with one more caveat.
  /// Works for bearers (macaroon fold) and for the root holder.
  std::shared_ptr<DelegationCapability> attenuate(const std::string& caveat) const;

  bool is_verifier() const noexcept { return is_verifier_; }
  const std::vector<std::string>& caveats() const noexcept { return caveats_; }
  const Bytes& token() const noexcept { return token_; }

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

  /// Passkey: makes the constructor unreachable outside make_root /
  /// make_bearer while keeping it public for std::make_shared.
  struct Private {
    explicit Private() = default;
  };
  explicit DelegationCapability(Private) {}

 private:

  /// Fold the MAC chain from the root key over `caveats`.
  static Bytes fold(const crypto::Key128& root_key,
                    const std::vector<std::string>& caveats);

  /// One attenuation step: token' = MAC(key(token), caveat).
  static Bytes fold_step(const Bytes& token, const std::string& caveat);

  void enforce_caveat(const std::string& caveat, const wire::Buffer& payload,
                      const CallContext& call) const;

  bool is_verifier_ = false;
  crypto::Key128 root_key_{};          // verifier only
  std::vector<std::string> caveats_;   // bearer: accumulated restrictions
  Bytes token_;                        // bearer: current fold value
};

}  // namespace ohpx::cap
