#include "ohpx/capability/builtin/quota.hpp"

#include "ohpx/common/error.hpp"

namespace ohpx::cap {

QuotaCapability::QuotaCapability(std::uint64_t max_calls, Scope scope)
    : max_calls_(max_calls), scope_(scope) {}

bool QuotaCapability::applicable(const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

void QuotaCapability::admit(const CallContext& call) {
  if (call.direction != Direction::request) return;
  // Optimistically claim a slot; roll back and refuse if over budget.
  const std::uint64_t claimed = used_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (claimed > max_calls_) {
    used_.fetch_sub(1, std::memory_order_relaxed);
    throw CapabilityDenied(ErrorCode::capability_exhausted,
                           "quota of " + std::to_string(max_calls_) +
                               " calls exhausted");
  }
}

void QuotaCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

void QuotaCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

std::uint64_t QuotaCapability::remaining() const noexcept {
  const std::uint64_t used = used_.load(std::memory_order_relaxed);
  return used >= max_calls_ ? 0 : max_calls_ - used;
}

std::uint64_t QuotaCapability::used() const noexcept {
  return used_.load(std::memory_order_relaxed);
}

CapabilityDescriptor QuotaCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "quota";
  d.params["max_calls"] = std::to_string(remaining());
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr QuotaCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const unsigned long long max_calls =
      std::stoull(descriptor.require("max_calls"));
  const Scope scope = scope_from_string(descriptor.get_or("scope", "always"));
  return std::make_shared<QuotaCapability>(max_calls, scope);
}

}  // namespace ohpx::cap
