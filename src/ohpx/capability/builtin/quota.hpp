// Quota capability: caps the total number of requests a reference may
// issue.  This is the paper's "timeout capability that lets the client make
// only a certain maximum number of requests" (Figure 2's C2) — the paper
// calls it *timeout*, but its semantics are a call quota, so this repo
// names it quota and the benchmark labels keep the paper's word.
//
// Each side holds its own copy of the capability (paper §4.2: "GC has its
// own copies of the capabilities") and counts its own view of the traffic:
// the client's copy counts requests it sends, the server's copy counts
// requests it admits.  The counts agree because every admitted request
// passes both copies exactly once.
#pragma once

#include <atomic>
#include <cstdint>

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"

namespace ohpx::cap {

class QuotaCapability final : public Capability {
 public:
  explicit QuotaCapability(std::uint64_t max_calls, Scope scope = Scope::always);

  std::string_view kind() const noexcept override { return "quota"; }
  bool applicable(const netsim::Placement& placement) const override;
  void admit(const CallContext& call) override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  std::uint64_t remaining() const noexcept;
  std::uint64_t used() const noexcept;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  std::uint64_t max_calls_;
  Scope scope_;
  std::atomic<std::uint64_t> used_{0};
};

}  // namespace ohpx::cap
