// Audit capability: records every call that passes through it (request id,
// object, method, direction, payload size) in a bounded in-memory ring.
// Payload passes through untouched.  The server-side copy gives operators a
// per-reference access log — an "access restriction" attribute in the
// paper's §1 taxonomy.
#pragma once

#include <deque>
#include <vector>

#include "ohpx/capability/capability.hpp"
#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::cap {

struct AuditRecord {
  std::uint64_t request_id = 0;
  std::uint64_t object_id = 0;
  std::uint32_t method_id = 0;
  Direction direction = Direction::request;
  std::uint64_t payload_size = 0;
};

class AuditCapability final : public Capability {
 public:
  explicit AuditCapability(std::size_t max_records = 1024);

  std::string_view kind() const noexcept override { return "audit"; }
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  std::vector<AuditRecord> records() const;
  std::uint64_t total_calls() const;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  void record(const wire::Buffer& payload, const CallContext& call);

  std::size_t max_records_;
  mutable sync::Mutex mutex_{"cap.audit"};
  std::deque<AuditRecord> records_ OHPX_GUARDED_BY(mutex_);
  std::uint64_t total_ OHPX_GUARDED_BY(mutex_) = 0;
};

}  // namespace ohpx::cap
