// Integrity capability: appends a CRC-32 of the payload on the way out,
// verifies and strips it on the way in.  Cheaper than authentication when
// only accidental corruption matters.
#pragma once

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"

namespace ohpx::cap {

class ChecksumCapability final : public Capability {
 public:
  explicit ChecksumCapability(Scope scope = Scope::always);

  std::string_view kind() const noexcept override { return "checksum"; }
  bool applicable(const netsim::Placement& placement) const override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  Scope scope_;
};

}  // namespace ohpx::cap
