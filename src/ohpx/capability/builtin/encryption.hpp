// Encryption capability (paper Figure 2's "C1, a capability that encrypts
// the data transferred between the client and the server").
//
// process() XORs a keystream derived from (key, per-call nonce) over the
// payload in place; unprocess() applies the same stream, restoring the
// plaintext.  Both sides derive the nonce from the call context so no
// extra bytes travel on the wire.
#pragma once

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"
#include "ohpx/crypto/key.hpp"

namespace ohpx::cap {

class EncryptionCapability final : public Capability {
 public:
  explicit EncryptionCapability(crypto::Key128 key, Scope scope = Scope::always);

  std::string_view kind() const noexcept override { return "encryption"; }
  bool applicable(const netsim::Placement& placement) const override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  crypto::Key128 key_;
  Scope scope_;
};

}  // namespace ohpx::cap
