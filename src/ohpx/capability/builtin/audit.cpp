#include "ohpx/capability/builtin/audit.hpp"

#include "ohpx/sync/mutex.hpp"

namespace ohpx::cap {

AuditCapability::AuditCapability(std::size_t max_records)
    : max_records_(max_records) {}

void AuditCapability::record(const wire::Buffer& payload,
                             const CallContext& call) {
  sync::LockGuard lock(mutex_);
  ++total_;
  records_.push_back(AuditRecord{call.request_id, call.object_id,
                                 call.method_id, call.direction,
                                 payload.size()});
  while (records_.size() > max_records_) records_.pop_front();
}

void AuditCapability::process(wire::Buffer& payload, const CallContext& call) {
  record(payload, call);
}

void AuditCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  record(payload, call);
}

std::vector<AuditRecord> AuditCapability::records() const {
  sync::LockGuard lock(mutex_);
  return std::vector<AuditRecord>(records_.begin(), records_.end());
}

std::uint64_t AuditCapability::total_calls() const {
  sync::LockGuard lock(mutex_);
  return total_;
}

CapabilityDescriptor AuditCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "audit";
  d.params["max_records"] = std::to_string(max_records_);
  return d;
}

CapabilityPtr AuditCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const unsigned long long max_records =
      std::stoull(descriptor.get_or("max_records", "1024"));
  return std::make_shared<AuditCapability>(max_records);
}

}  // namespace ohpx::cap
