// Padding capability: rounds every payload up to a multiple of a fixed
// block size, hiding exact message lengths from an on-path observer
// (traffic-analysis resistance — one more QoS/security attribute in the
// paper's §1 taxonomy).  Typically chained *after* encryption so the
// ciphertext, not the plaintext, is padded.
//
// Wire form: payload ‖ zero padding ‖ u32 original length (big-endian).
#pragma once

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"

namespace ohpx::cap {

class PaddingCapability final : public Capability {
 public:
  explicit PaddingCapability(std::size_t block_size = 256,
                             Scope scope = Scope::always);

  std::string_view kind() const noexcept override { return "padding"; }
  bool applicable(const netsim::Placement& placement) const override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  std::size_t block_size() const noexcept { return block_size_; }

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  std::size_t block_size_;
  Scope scope_;
};

}  // namespace ohpx::cap
