// Lease capability: time-limited access.  The paper's §1 motivates it with
// clients "given access to the weather data only for the time they have
// paid for".  Admission fails with capability_expired once the lease runs
// out; the payload passes through untouched.
//
// When a lease is serialized into a descriptor the *remaining* time is
// recorded, so a lease handed to another process keeps ticking from the
// moment of transfer.
#pragma once

#include <chrono>

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"

namespace ohpx::cap {

class LeaseCapability final : public Capability {
 public:
  explicit LeaseCapability(std::chrono::milliseconds ttl, Scope scope = Scope::always);

  std::string_view kind() const noexcept override { return "lease"; }
  bool applicable(const netsim::Placement& placement) const override;
  void admit(const CallContext& call) override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  bool expired() const noexcept;
  std::chrono::milliseconds remaining() const noexcept;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  std::chrono::steady_clock::time_point expiry_;
  Scope scope_;
};

}  // namespace ohpx::cap
