#include "ohpx/capability/builtin/fault.hpp"

#include <algorithm>
#include <sstream>

#include "ohpx/common/error.hpp"
#include "ohpx/common/rng.hpp"

namespace ohpx::cap {
namespace {

bool spec_engaged(const FaultSpec& spec) noexcept {
  return spec.fail_every > 0 || spec.refuse_ratio > 0.0 ||
         !spec.refuse_at.empty();
}

std::string join_ordinals(const std::vector<std::uint64_t>& ordinals) {
  std::string out;
  for (const std::uint64_t ordinal : ordinals) {
    if (!out.empty()) out += ",";
    out += std::to_string(ordinal);
  }
  return out;
}

std::vector<std::uint64_t> split_ordinals(const std::string& text) {
  std::vector<std::uint64_t> out;
  std::istringstream stream(text);
  std::string token;
  while (std::getline(stream, token, ',')) {
    if (!token.empty()) out.push_back(std::stoull(token));
  }
  return out;
}

}  // namespace

FaultCapability::FaultCapability(std::uint32_t fail_every)
    : FaultCapability(FaultSpec{.fail_every = fail_every}) {}

FaultCapability::FaultCapability(FaultSpec spec) : spec_(std::move(spec)) {
  if (!spec_engaged(spec_)) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "fault capability needs a refusal schedule");
  }
  if (spec_.refuse_ratio < 0.0 || spec_.refuse_ratio > 1.0) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "fault capability ratio must be in [0, 1]");
  }
}

bool FaultCapability::should_refuse(std::uint64_t ordinal) const noexcept {
  if (spec_.fail_every > 0 && ordinal % spec_.fail_every == 0) return true;
  if (spec_.refuse_ratio > 0.0) {
    // Stateless per-ordinal draw: mixing the ordinal into the seed gives a
    // reproducible decision no matter how concurrent admits interleave.
    SplitMix64 mixer(spec_.seed ^ (ordinal * 0x9e3779b97f4a7c15ULL));
    const double u = static_cast<double>(mixer.next() >> 11) * 0x1.0p-53;
    if (u < spec_.refuse_ratio) return true;
  }
  return std::find(spec_.refuse_at.begin(), spec_.refuse_at.end(), ordinal) !=
         spec_.refuse_at.end();
}

void FaultCapability::admit(const CallContext& call) {
  if (call.direction != Direction::request) return;
  const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (should_refuse(n)) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    throw CapabilityDenied(ErrorCode::capability_denied,
                           "injected fault (request " + std::to_string(n) +
                               ")");
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
}

void FaultCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

void FaultCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

std::uint64_t FaultCapability::admitted() const noexcept {
  return admitted_.load(std::memory_order_relaxed);
}

std::uint64_t FaultCapability::refused() const noexcept {
  return refused_.load(std::memory_order_relaxed);
}

CapabilityDescriptor FaultCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "fault";
  d.params["fail_every"] = std::to_string(spec_.fail_every);
  if (spec_.refuse_ratio > 0.0) {
    d.params["ratio"] = std::to_string(spec_.refuse_ratio);
    d.params["seed"] = std::to_string(spec_.seed);
  }
  if (!spec_.refuse_at.empty()) {
    d.params["refuse_at"] = join_ordinals(spec_.refuse_at);
  }
  return d;
}

CapabilityPtr FaultCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  FaultSpec spec;
  spec.fail_every = static_cast<std::uint32_t>(
      std::stoull(descriptor.get_or("fail_every", "0")));
  spec.refuse_ratio = std::stod(descriptor.get_or("ratio", "0"));
  spec.seed = std::stoull(descriptor.get_or("seed", "1"));
  spec.refuse_at = split_ordinals(descriptor.get_or("refuse_at", ""));
  return std::make_shared<FaultCapability>(std::move(spec));
}

}  // namespace ohpx::cap
