#include "ohpx/capability/builtin/fault.hpp"

#include "ohpx/common/error.hpp"

namespace ohpx::cap {

FaultCapability::FaultCapability(std::uint32_t fail_every)
    : fail_every_(fail_every) {
  if (fail_every_ == 0) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "fault capability needs fail_every >= 1");
  }
}

void FaultCapability::admit(const CallContext& call) {
  if (call.direction != Direction::request) return;
  const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % fail_every_ == 0) {
    refused_.fetch_add(1, std::memory_order_relaxed);
    throw CapabilityDenied(ErrorCode::capability_denied,
                           "injected fault (request " + std::to_string(n) +
                               ")");
  }
}

void FaultCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

void FaultCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

std::uint64_t FaultCapability::admitted() const noexcept {
  return seen_.load(std::memory_order_relaxed) -
         refused_.load(std::memory_order_relaxed);
}

std::uint64_t FaultCapability::refused() const noexcept {
  return refused_.load(std::memory_order_relaxed);
}

CapabilityDescriptor FaultCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "fault";
  d.params["fail_every"] = std::to_string(fail_every_);
  return d;
}

CapabilityPtr FaultCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const unsigned long long fail_every =
      std::stoull(descriptor.require("fail_every"));
  return std::make_shared<FaultCapability>(
      static_cast<std::uint32_t>(fail_every));
}

}  // namespace ohpx::cap
