#include "ohpx/capability/builtin/compression.hpp"

#include "ohpx/common/error.hpp"

namespace ohpx::cap {
namespace {

compress::CodecId codec_from_name(const std::string& name) {
  if (name == "identity") return compress::CodecId::identity;
  if (name == "rle") return compress::CodecId::rle;
  if (name == "lz77" || name == "lz") return compress::CodecId::lz;
  throw CapabilityDenied(ErrorCode::capability_bad_payload,
                         "unknown compression codec: " + name);
}

}  // namespace

CompressionCapability::CompressionCapability(compress::CodecId codec, Scope scope)
    : codec_(compress::make_codec(codec)), scope_(scope) {}

bool CompressionCapability::applicable(const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

void CompressionCapability::process(wire::Buffer& payload,
                                    const CallContext& call) {
  (void)call;
  payload.assign(codec_->compress(payload.view()));
}

void CompressionCapability::unprocess(wire::Buffer& payload,
                                      const CallContext& call) {
  (void)call;
  try {
    payload.assign(codec_->decompress(payload.view()));
  } catch (const WireError& e) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           std::string("compressed payload malformed: ") +
                               e.what());
  }
}

CapabilityDescriptor CompressionCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "compression";
  d.params["codec"] = std::string(codec_->name());
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr CompressionCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const compress::CodecId codec =
      codec_from_name(descriptor.get_or("codec", "lz77"));
  const Scope scope = scope_from_string(descriptor.get_or("scope", "always"));
  return std::make_shared<CompressionCapability>(codec, scope);
}

}  // namespace ohpx::cap
