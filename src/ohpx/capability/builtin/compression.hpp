// Compression capability: replaces the payload with its compressed form on
// the way out and restores it on the way in.  Useful on slow links; an
// example of a QoS attribute the paper folds into capabilities (§1).
#pragma once

#include <memory>

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"
#include "ohpx/compress/codec.hpp"

namespace ohpx::cap {

class CompressionCapability final : public Capability {
 public:
  explicit CompressionCapability(compress::CodecId codec = compress::CodecId::lz,
                                 Scope scope = Scope::always);

  std::string_view kind() const noexcept override { return "compression"; }
  bool applicable(const netsim::Placement& placement) const override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  std::unique_ptr<compress::Codec> codec_;
  Scope scope_;
};

}  // namespace ohpx::cap
