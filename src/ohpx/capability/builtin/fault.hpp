// Fault-injection capability: a chaos-testing aid that refuses every Nth
// request (or a deterministic pseudo-random fraction).  Attach it to a
// reference to exercise failover paths — group pointers, retry logic,
// dead-subscriber pruning — without touching the transport.
//
// Not a paper capability; it exists because an open ORB should make its
// failure paths as testable as its happy paths.
#pragma once

#include <atomic>

#include "ohpx/capability/capability.hpp"

namespace ohpx::cap {

class FaultCapability final : public Capability {
 public:
  /// Refuses every `fail_every`-th request (1 = refuse everything).
  explicit FaultCapability(std::uint32_t fail_every);

  std::string_view kind() const noexcept override { return "fault"; }
  void admit(const CallContext& call) override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  std::uint64_t admitted() const noexcept;
  std::uint64_t refused() const noexcept;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  std::uint32_t fail_every_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> refused_{0};
};

}  // namespace ohpx::cap
