// Fault-injection capability: a chaos-testing aid that refuses requests on
// a deterministic schedule — every Nth request, a seeded pseudo-random
// fraction, scripted request ordinals, or any combination.  Attach it to a
// reference to exercise failover paths — group pointers, retry logic,
// dead-subscriber pruning — without touching the transport.
//
// Not a paper capability; it exists because an open ORB should make its
// failure paths as testable as its happy paths.
#pragma once

#include <atomic>
#include <vector>

#include "ohpx/capability/capability.hpp"

namespace ohpx::cap {

/// Refusal schedule: a request is refused when ANY configured mode says
/// so.  All modes are pure functions of (spec, request ordinal), so the
/// refusal pattern is reproducible run to run.
struct FaultSpec {
  /// Refuse every `fail_every`-th request (0 = mode off, 1 = refuse all).
  std::uint32_t fail_every = 0;

  /// Refuse a seeded pseudo-random fraction of requests in [0, 1].  The
  /// per-request decision is derived statelessly from (seed, ordinal), so
  /// it is thread-safe and independent of interleaving.
  double refuse_ratio = 0.0;

  std::uint64_t seed = 1;

  /// Refuse these exact request ordinals (1-based, i.e. the first request
  /// a capability sees is ordinal 1).
  std::vector<std::uint64_t> refuse_at;
};

class FaultCapability final : public Capability {
 public:
  /// Refuses every `fail_every`-th request (1 = refuse everything).
  explicit FaultCapability(std::uint32_t fail_every);

  /// Full schedule form.  At least one mode must be engaged.
  explicit FaultCapability(FaultSpec spec);

  std::string_view kind() const noexcept override { return "fault"; }
  void admit(const CallContext& call) override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  /// Counter invariant (pinned by tests): admitted() + refused() == the
  /// number of requests this capability has seen, at every serial
  /// observation point.  Both counters are bumped directly by the branch
  /// that decided, never derived from each other.
  std::uint64_t admitted() const noexcept;
  std::uint64_t refused() const noexcept;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  bool should_refuse(std::uint64_t ordinal) const noexcept;

  FaultSpec spec_;
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> refused_{0};
};

}  // namespace ohpx::cap
