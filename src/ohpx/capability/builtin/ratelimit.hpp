// Rate-limit capability: token-bucket admission, another QoS attribute of
// the kind the paper's §1 enumerates.  Refuses requests (capability_denied)
// when the bucket is empty; tokens refill continuously at `rate_per_sec`.
#pragma once

#include <chrono>

#include "ohpx/capability/capability.hpp"
#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::cap {

class RateLimitCapability final : public Capability {
 public:
  RateLimitCapability(double rate_per_sec, double burst);

  std::string_view kind() const noexcept override { return "ratelimit"; }
  void admit(const CallContext& call) override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  double tokens() const;

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  void refill_locked() OHPX_REQUIRES(mutex_);

  double rate_per_sec_;
  double burst_;
  mutable sync::Mutex mutex_{"cap.ratelimit"};
  double tokens_ OHPX_GUARDED_BY(mutex_);
  std::chrono::steady_clock::time_point last_refill_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::cap
