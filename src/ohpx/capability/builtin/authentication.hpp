// Authentication capability (paper §4.3's example: a server that requires
// all clients outside its LAN to authenticate every remote request).
//
// process() appends an 8-byte SipHash-2-4 tag over (payload ‖ call
// binding); unprocess() verifies and strips it, throwing
// CapabilityDenied(capability_auth_failed) on mismatch.  The call binding
// (request id, object id, direction) is mixed into the MAC so a tag cannot
// be replayed on a different call.
//
// Default scope is cross_lan — exactly the paper's adaptive behaviour:
// after the server migrates onto the client's LAN the capability stops
// applying and the glue protocol carrying it is skipped.
#pragma once

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/scope.hpp"
#include "ohpx/crypto/key.hpp"

namespace ohpx::cap {

class AuthenticationCapability final : public Capability {
 public:
  explicit AuthenticationCapability(crypto::Key128 key,
                                    std::string principal = "anonymous",
                                    Scope scope = Scope::cross_lan);

  std::string_view kind() const noexcept override { return "authentication"; }
  bool applicable(const netsim::Placement& placement) const override;
  void process(wire::Buffer& payload, const CallContext& call) override;
  void unprocess(wire::Buffer& payload, const CallContext& call) override;
  CapabilityDescriptor descriptor() const override;

  const std::string& principal() const noexcept { return principal_; }

  static CapabilityPtr from_descriptor(const CapabilityDescriptor& descriptor);

 private:
  Bytes call_binding(const CallContext& call) const;

  crypto::Key128 key_;
  std::string principal_;
  Scope scope_;
};

}  // namespace ohpx::cap
