#include "ohpx/capability/builtin/encryption.hpp"

#include "ohpx/crypto/stream_cipher.hpp"

namespace ohpx::cap {

EncryptionCapability::EncryptionCapability(crypto::Key128 key, Scope scope)
    : key_(key), scope_(scope) {}

bool EncryptionCapability::applicable(const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

void EncryptionCapability::process(wire::Buffer& payload,
                                   const CallContext& call) {
  crypto::stream_crypt(key_, call.nonce(), payload.mutable_view());
}

void EncryptionCapability::unprocess(wire::Buffer& payload,
                                     const CallContext& call) {
  crypto::stream_crypt(key_, call.nonce(), payload.mutable_view());
}

CapabilityDescriptor EncryptionCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "encryption";
  d.params["key"] = key_.to_hex();
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr EncryptionCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const crypto::Key128 key = crypto::Key128::from_hex(descriptor.require("key"));
  const Scope scope = scope_from_string(descriptor.get_or("scope", "always"));
  return std::make_shared<EncryptionCapability>(key, scope);
}

}  // namespace ohpx::cap
