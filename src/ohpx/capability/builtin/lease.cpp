#include "ohpx/capability/builtin/lease.hpp"

#include <algorithm>

#include "ohpx/common/error.hpp"

namespace ohpx::cap {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

LeaseCapability::LeaseCapability(milliseconds ttl, Scope scope)
    : expiry_(steady_clock::now() + ttl), scope_(scope) {}

bool LeaseCapability::applicable(const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

bool LeaseCapability::expired() const noexcept {
  return steady_clock::now() >= expiry_;
}

milliseconds LeaseCapability::remaining() const noexcept {
  const auto now = steady_clock::now();
  if (now >= expiry_) return milliseconds(0);
  return std::chrono::duration_cast<milliseconds>(expiry_ - now);
}

void LeaseCapability::admit(const CallContext& call) {
  // Replies ride on the admission already granted to their request.
  if (call.direction != Direction::request) return;
  if (expired()) {
    throw CapabilityDenied(ErrorCode::capability_expired, "lease expired");
  }
}

void LeaseCapability::process(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

void LeaseCapability::unprocess(wire::Buffer& payload, const CallContext& call) {
  (void)payload;
  (void)call;
}

CapabilityDescriptor LeaseCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "lease";
  d.params["ttl_ms"] = std::to_string(remaining().count());
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr LeaseCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const long long ttl = std::stoll(descriptor.require("ttl_ms"));
  const Scope scope = scope_from_string(descriptor.get_or("scope", "always"));
  return std::make_shared<LeaseCapability>(milliseconds(std::max(0LL, ttl)),
                                           scope);
}

}  // namespace ohpx::cap
