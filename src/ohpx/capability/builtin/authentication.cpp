#include "ohpx/capability/builtin/authentication.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/crypto/mac.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::cap {

AuthenticationCapability::AuthenticationCapability(crypto::Key128 key,
                                                   std::string principal,
                                                   Scope scope)
    : key_(key), principal_(std::move(principal)), scope_(scope) {}

bool AuthenticationCapability::applicable(
    const netsim::Placement& placement) const {
  return scope_applies(scope_, placement);
}

Bytes AuthenticationCapability::call_binding(const CallContext& call) const {
  wire::Buffer binding;
  wire::Encoder enc(binding);
  enc.put_u64(call.request_id);
  enc.put_u64(call.object_id);
  enc.put_u8(static_cast<std::uint8_t>(call.direction));
  enc.put_string(principal_);
  return binding.release();
}

void AuthenticationCapability::process(wire::Buffer& payload,
                                       const CallContext& call) {
  // MAC over payload ‖ binding; only the tag travels.
  wire::Buffer material(payload.bytes());
  material.append(BytesView(call_binding(call)));
  const Bytes tag = crypto::mac_tag(key_, material.view());
  payload.append(BytesView(tag));
}

void AuthenticationCapability::unprocess(wire::Buffer& payload,
                                         const CallContext& call) {
  if (payload.size() < crypto::kMacTagSize) {
    throw CapabilityDenied(ErrorCode::capability_auth_failed,
                           "payload too short for auth tag");
  }
  const std::size_t body_size = payload.size() - crypto::kMacTagSize;
  const BytesView tag = payload.view(body_size, crypto::kMacTagSize);

  wire::Buffer material;
  material.append(payload.view(0, body_size));
  material.append(BytesView(call_binding(call)));
  if (!crypto::mac_verify(key_, material.view(), tag)) {
    throw CapabilityDenied(ErrorCode::capability_auth_failed,
                           "authentication tag mismatch for principal '" +
                               principal_ + "'");
  }
  payload.resize(body_size);
}

CapabilityDescriptor AuthenticationCapability::descriptor() const {
  CapabilityDescriptor d;
  d.kind = "authentication";
  d.params["key"] = key_.to_hex();
  d.params["principal"] = principal_;
  d.params["scope"] = std::string(to_string(scope_));
  return d;
}

CapabilityPtr AuthenticationCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const crypto::Key128 key = crypto::Key128::from_hex(descriptor.require("key"));
  std::string principal = descriptor.get_or("principal", "anonymous");
  const Scope scope = scope_from_string(descriptor.get_or("scope", "cross_lan"));
  return std::make_shared<AuthenticationCapability>(key, std::move(principal),
                                                    scope);
}

}  // namespace ohpx::cap
