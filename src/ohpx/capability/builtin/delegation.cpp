#include "ohpx/capability/builtin/delegation.hpp"

#include <charconv>

#include "ohpx/common/error.hpp"
#include "ohpx/crypto/mac.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::cap {
namespace {

constexpr std::string_view kRootLabel = "ohpx-delegation";

crypto::Key128 key_of_token(const Bytes& token) {
  std::uint64_t seed = 0;
  for (std::size_t i = 0; i < token.size() && i < 8; ++i) {
    seed |= static_cast<std::uint64_t>(token[i]) << (8 * i);
  }
  return crypto::Key128::from_seed(seed);
}

std::uint64_t parse_number(std::string_view text) {
  std::uint64_t value = 0;
  const auto result =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (result.ec != std::errc() || result.ptr != text.data() + text.size()) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "delegation caveat has a bad number");
  }
  return value;
}

std::vector<std::string> split(std::string_view text, char separator) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(separator, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

std::shared_ptr<DelegationCapability> DelegationCapability::make_root(
    crypto::Key128 root_key) {
  auto capability = std::make_shared<DelegationCapability>(Private{});
  capability->is_verifier_ = true;
  capability->root_key_ = root_key;
  capability->token_ = fold(root_key, {});
  return capability;
}

std::shared_ptr<DelegationCapability> DelegationCapability::make_bearer(
    std::vector<std::string> caveats, Bytes token) {
  auto capability = std::make_shared<DelegationCapability>(Private{});
  capability->is_verifier_ = false;
  capability->caveats_ = std::move(caveats);
  capability->token_ = std::move(token);
  return capability;
}

Bytes DelegationCapability::fold_step(const Bytes& token,
                                      const std::string& caveat) {
  return crypto::mac_tag(key_of_token(token), bytes_of(caveat));
}

Bytes DelegationCapability::fold(const crypto::Key128& root_key,
                                 const std::vector<std::string>& caveats) {
  Bytes token = crypto::mac_tag(root_key, bytes_of(kRootLabel));
  for (const auto& caveat : caveats) {
    token = fold_step(token, caveat);
  }
  return token;
}

std::shared_ptr<DelegationCapability> DelegationCapability::attenuate(
    const std::string& caveat) const {
  if (caveat.empty() || caveat.find('\n') != std::string::npos) {
    throw CapabilityDenied(ErrorCode::capability_bad_payload,
                           "delegation caveat malformed");
  }
  std::vector<std::string> caveats = caveats_;
  caveats.push_back(caveat);
  return make_bearer(std::move(caveats), fold_step(token_, caveat));
}

void DelegationCapability::process(wire::Buffer& payload,
                                   const CallContext& call) {
  // Only bearers stamp outgoing *requests*; verifiers never process, and
  // replies carry no token.
  if (is_verifier_ || call.direction != Direction::request) return;

  wire::Buffer trailer;
  wire::Encoder enc(trailer);
  wire::serialize(enc, caveats_);
  enc.put_bytes(token_);
  const std::uint32_t trailer_size = static_cast<std::uint32_t>(trailer.size());
  payload.append(trailer.view());
  payload.append(static_cast<std::uint8_t>(trailer_size >> 24));
  payload.append(static_cast<std::uint8_t>(trailer_size >> 16));
  payload.append(static_cast<std::uint8_t>(trailer_size >> 8));
  payload.append(static_cast<std::uint8_t>(trailer_size));
}

void DelegationCapability::unprocess(wire::Buffer& payload,
                                     const CallContext& call) {
  if (!is_verifier_ || call.direction != Direction::request) return;

  if (payload.size() < 4) {
    throw CapabilityDenied(ErrorCode::capability_auth_failed,
                           "delegation trailer missing");
  }
  const BytesView size_bytes = payload.view(payload.size() - 4, 4);
  const std::uint32_t trailer_size =
      (static_cast<std::uint32_t>(size_bytes[0]) << 24) |
      (static_cast<std::uint32_t>(size_bytes[1]) << 16) |
      (static_cast<std::uint32_t>(size_bytes[2]) << 8) |
      static_cast<std::uint32_t>(size_bytes[3]);
  if (trailer_size + 4 > payload.size()) {
    throw CapabilityDenied(ErrorCode::capability_auth_failed,
                           "delegation trailer truncated");
  }

  const std::size_t body_size = payload.size() - 4 - trailer_size;
  wire::Decoder dec(payload.view(body_size, trailer_size));
  std::vector<std::string> caveats;
  Bytes token;
  try {
    caveats = wire::deserialize<std::vector<std::string>>(dec);
    token = dec.get_bytes();
    dec.expect_end();
  } catch (const WireError&) {
    throw CapabilityDenied(ErrorCode::capability_auth_failed,
                           "delegation trailer malformed");
  }

  const Bytes expected = fold(root_key_, caveats);
  if (!constant_time_equal(expected, token)) {
    throw CapabilityDenied(ErrorCode::capability_auth_failed,
                           "delegation token rejected");
  }

  payload.resize(body_size);
  for (const auto& caveat : caveats) {
    enforce_caveat(caveat, payload, call);
  }
}

void DelegationCapability::enforce_caveat(const std::string& caveat,
                                          const wire::Buffer& payload,
                                          const CallContext& call) const {
  if (caveat.rfind("method<=", 0) == 0) {
    if (call.method_id > parse_number(std::string_view(caveat).substr(8))) {
      throw CapabilityDenied(ErrorCode::capability_denied,
                             "delegation caveat violated: " + caveat);
    }
    return;
  }
  if (caveat.rfind("method in ", 0) == 0) {
    for (const auto& item : split(std::string_view(caveat).substr(10), ',')) {
      if (call.method_id == parse_number(item)) return;
    }
    throw CapabilityDenied(ErrorCode::capability_denied,
                           "delegation caveat violated: " + caveat);
  }
  if (caveat.rfind("size<=", 0) == 0) {
    if (payload.size() > parse_number(std::string_view(caveat).substr(6))) {
      throw CapabilityDenied(ErrorCode::capability_denied,
                             "delegation caveat violated: " + caveat);
    }
    return;
  }
  // Macaroon rule: an unknown caveat cannot be proven satisfied, so it
  // fails closed.
  throw CapabilityDenied(ErrorCode::capability_denied,
                         "delegation caveat not understood: " + caveat);
}

CapabilityDescriptor DelegationCapability::descriptor() const {
  // The public (OR-travelling) form is always a bearer: caveats + token,
  // never the root key.
  CapabilityDescriptor d;
  d.kind = "delegation";
  d.params["role"] = "bearer";
  std::string joined;
  for (const auto& caveat : caveats_) {
    if (!joined.empty()) joined += '\n';
    joined += caveat;
  }
  d.params["caveats"] = joined;
  d.params["token"] = to_hex(token_);
  return d;
}

CapabilityDescriptor DelegationCapability::server_descriptor() const {
  if (!is_verifier_) return descriptor();
  CapabilityDescriptor d;
  d.kind = "delegation";
  d.params["role"] = "verifier";
  d.params["root_key"] = root_key_.to_hex();
  return d;
}

CapabilityPtr DelegationCapability::from_descriptor(
    const CapabilityDescriptor& descriptor) {
  const std::string role = descriptor.get_or("role", "bearer");
  if (role == "verifier") {
    return make_root(crypto::Key128::from_hex(descriptor.require("root_key")));
  }
  std::vector<std::string> caveats;
  const std::string joined = descriptor.get_or("caveats", "");
  if (!joined.empty()) {
    for (auto& caveat : split(joined, '\n')) caveats.push_back(std::move(caveat));
  }
  return make_bearer(std::move(caveats), from_hex(descriptor.require("token")));
}

}  // namespace ohpx::cap
