// Remote access capabilities (paper §4).
//
// A capability encapsulates one attribute of remote access — encryption,
// authentication, compression, a lease, a call quota, auditing — as an
// opaque byte-processor plus an admission check.  Capabilities are held in
// order by a *glue protocol* (src/ohpx/protocol/glue.*): the sender runs
// process() front-to-back over the outgoing payload, the receiver runs
// unprocess() back-to-front, so the chain composes like function
// application.
//
// Capabilities are exchangeable between processes: descriptor() lowers a
// capability to a serializable CapabilityDescriptor (kind + string params)
// that travels inside object references, and the CapabilityRegistry
// re-instantiates it on the other side.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "ohpx/netsim/topology.hpp"
#include "ohpx/wire/buffer.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::cap {

enum class Direction : std::uint8_t { request = 0, reply = 1 };

/// Everything a capability may consult about the call in flight.
struct CallContext {
  std::uint64_t request_id = 0;
  std::uint64_t object_id = 0;
  std::uint32_t method_id = 0;
  Direction direction = Direction::request;
  netsim::Placement placement;

  /// Absolute deadline (ns on the resilience clock) of the enclosing call,
  /// 0 = unbounded.  Glue fills it from the ambient deadline so chain
  /// processing can stop early when the budget is already spent.
  std::int64_t deadline_ns = 0;

  /// Deterministic per-call nonce both sides can derive (cipher seeding).
  std::uint64_t nonce() const noexcept {
    return request_id * 2 + (direction == Direction::reply ? 1 : 0);
  }
};

/// Serializable form of a capability: registry kind + string parameters.
struct CapabilityDescriptor {
  std::string kind;
  std::map<std::string, std::string> params;

  void wire_serialize(wire::Encoder& enc) const;
  static CapabilityDescriptor wire_deserialize(wire::Decoder& dec);

  /// Fetches a parameter or throws CapabilityDenied(capability_bad_payload).
  const std::string& require(const std::string& name) const;

  /// Fetches a parameter with a fallback.
  std::string get_or(const std::string& name, std::string fallback) const;

  friend bool operator==(const CapabilityDescriptor&,
                         const CapabilityDescriptor&) = default;
};

class Capability {
 public:
  virtual ~Capability() = default;

  /// Registry kind, e.g. "encryption" — stable across processes.
  virtual std::string_view kind() const noexcept = 0;

  /// Whether this capability applies for the given client/server placement
  /// (paper §4.3: an authentication capability may apply only across LANs).
  /// Non-applicable capabilities make their whole glue protocol
  /// non-applicable (glue applicability = AND of its capabilities').
  virtual bool applicable(const netsim::Placement& placement) const {
    (void)placement;
    return true;
  }

  /// Admission check run before the payload transform — leases, quotas and
  /// rate limits live here.  Throws CapabilityDenied to refuse the call.
  virtual void admit(const CallContext& call) { (void)call; }

  /// Transforms an outgoing payload in place (sender side).
  virtual void process(wire::Buffer& payload, const CallContext& call) = 0;

  /// Inverse of process (receiver side).  Throws CapabilityDenied when
  /// verification fails (bad MAC, bad checksum, malformed payload).
  virtual void unprocess(wire::Buffer& payload, const CallContext& call) = 0;

  /// Lowers to the exchangeable descriptor form — what travels inside
  /// object references to build *client-side* copies.  Must never contain
  /// server-only secrets.
  virtual CapabilityDescriptor descriptor() const = 0;

  /// Descriptor used when the *server-side* copy itself moves (glue
  /// bindings following a migrating object).  Defaults to descriptor();
  /// capabilities with server-only state (e.g. delegation root keys)
  /// override it.
  virtual CapabilityDescriptor server_descriptor() const { return descriptor(); }
};

using CapabilityPtr = std::shared_ptr<Capability>;

}  // namespace ohpx::cap
