// Capability factory registry: maps a descriptor's `kind` string to a
// constructor.  This is what makes capabilities exchangeable between
// processes (paper §4): a serialized descriptor arriving inside an object
// reference is re-instantiated here.  All built-ins self-register; user
// capabilities register at startup with register_factory().
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ohpx/capability/capability.hpp"
#include "ohpx/capability/chain.hpp"
#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::cap {

using CapabilityFactory =
    std::function<CapabilityPtr(const CapabilityDescriptor&)>;

class CapabilityRegistry {
 public:
  /// Process-wide registry, pre-loaded with the built-in kinds.
  static CapabilityRegistry& instance();

  /// Registers (or replaces) a factory for `kind`.
  void register_factory(const std::string& kind, CapabilityFactory factory);

  bool contains(const std::string& kind) const;
  std::vector<std::string> kinds() const;

  /// Instantiates a capability from its descriptor; throws
  /// CapabilityDenied(capability_unknown) for unregistered kinds.
  CapabilityPtr instantiate(const CapabilityDescriptor& descriptor) const;

  /// Instantiates a whole chain from descriptors, preserving order.
  CapabilityChain instantiate_chain(
      const std::vector<CapabilityDescriptor>& descriptors) const;

 private:
  CapabilityRegistry();

  mutable sync::Mutex mutex_{"cap.registry"};
  std::map<std::string, CapabilityFactory> factories_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::cap
