// Placement scopes shared by built-in capabilities: where does this
// capability apply?  The paper's authentication capability is the model
// case — "applicable only when the client and the server are on different
// LANs" (§4.3).
#pragma once

#include <string>
#include <string_view>

#include "ohpx/netsim/topology.hpp"

namespace ohpx::cap {

enum class Scope {
  always,        // applies to every placement
  cross_campus,  // only when client and server are on different campuses/sites
  cross_lan,   // only when client and server are on different LANs
  remote,      // only when client and server are on different machines
  same_lan,    // only within one LAN
  same_machine,// only within one machine
  never,       // applies nowhere (testing / administrative kill switch)
};

/// Evaluates a scope against a placement.
bool scope_applies(Scope scope, const netsim::Placement& placement);

std::string_view to_string(Scope scope) noexcept;

/// Parses a scope name; throws CapabilityDenied(capability_bad_payload) on
/// unknown input.
Scope scope_from_string(std::string_view name);

}  // namespace ohpx::cap
