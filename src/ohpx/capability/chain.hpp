// Ordered capability chain — the processing core of a glue protocol.
//
// Sender: admit() every capability, then process() front-to-back.
// Receiver: unprocess() back-to-front (exactly the paper's "un-process the
// request in the reverse order of the processing done on the client side"),
// then admit checks that belong on the receiving side already ran inside
// unprocess-time admission (see process_inbound).
#pragma once

#include <vector>

#include "ohpx/capability/capability.hpp"

namespace ohpx::cap {

class CapabilityChain {
 public:
  CapabilityChain() = default;
  explicit CapabilityChain(std::vector<CapabilityPtr> capabilities)
      : capabilities_(std::move(capabilities)) {}

  void add(CapabilityPtr capability) {
    capabilities_.push_back(std::move(capability));
  }

  std::size_t size() const noexcept { return capabilities_.size(); }
  bool empty() const noexcept { return capabilities_.empty(); }
  const std::vector<CapabilityPtr>& capabilities() const noexcept {
    return capabilities_;
  }

  /// AND of all member applicabilities (paper §4.3).
  bool applicable(const netsim::Placement& placement) const;

  /// Sender side: admission checks then forward-order process().
  void process_outbound(wire::Buffer& payload, const CallContext& call);

  /// Receiver side: admission checks then reverse-order unprocess().
  void process_inbound(wire::Buffer& payload, const CallContext& call);

  /// Descriptors of all members, in chain order (for OR proto-data).
  std::vector<CapabilityDescriptor> descriptors() const;

  /// Server-side descriptors (migration transfer); may contain secrets.
  std::vector<CapabilityDescriptor> server_descriptors() const;

  /// Comma-separated kinds, for logs ("encryption,quota").
  std::string describe() const;

 private:
  std::vector<CapabilityPtr> capabilities_;
};

}  // namespace ohpx::cap
