#include "ohpx/capability/scope.hpp"

#include "ohpx/common/error.hpp"

namespace ohpx::cap {

bool scope_applies(Scope scope, const netsim::Placement& placement) {
  switch (scope) {
    case Scope::always: return true;
    case Scope::cross_campus: return !placement.same_campus();
    case Scope::cross_lan: return !placement.same_lan();
    case Scope::remote: return !placement.same_machine();
    case Scope::same_lan: return placement.same_lan();
    case Scope::same_machine: return placement.same_machine();
    case Scope::never: return false;
  }
  return false;
}

std::string_view to_string(Scope scope) noexcept {
  switch (scope) {
    case Scope::always: return "always";
    case Scope::cross_campus: return "cross_campus";
    case Scope::cross_lan: return "cross_lan";
    case Scope::remote: return "remote";
    case Scope::same_lan: return "same_lan";
    case Scope::same_machine: return "same_machine";
    case Scope::never: return "never";
  }
  return "?";
}

Scope scope_from_string(std::string_view name) {
  if (name == "always") return Scope::always;
  if (name == "cross_campus") return Scope::cross_campus;
  if (name == "cross_lan") return Scope::cross_lan;
  if (name == "remote") return Scope::remote;
  if (name == "same_lan") return Scope::same_lan;
  if (name == "same_machine") return Scope::same_machine;
  if (name == "never") return Scope::never;
  throw CapabilityDenied(ErrorCode::capability_bad_payload,
                         "unknown scope: " + std::string(name));
}

}  // namespace ohpx::cap
