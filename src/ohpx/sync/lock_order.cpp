#include "ohpx/sync/lock_order.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string_view>
#include <utility>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::sync::lock_order {

/// A lock class: one interned node per mutex name, never freed.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  const std::string& name() const noexcept { return name_; }

 private:
  std::string name_;
};

namespace {

/// First observation of a holder -> acquired ordering.
struct Edge {
  Site holder_site;   ///< where the held mutex was locked
  Site acquire_site;  ///< where the second mutex was locked under it
};

// The registry's own lock is the *unchecked* annotated flavor: it is a
// leaf (never held while acquiring a user mutex), so feeding it back into
// the validator would only recurse.
struct Registry {
  BasicMutex<false> mutex{"sync.lock_order.registry"};
  std::map<std::string, std::unique_ptr<Node>, std::less<>> nodes
      OHPX_GUARDED_BY(mutex);
  std::map<Node*, std::map<Node*, Edge>> edges OHPX_GUARDED_BY(mutex);
  std::vector<InversionReport> reports OHPX_GUARDED_BY(mutex);
  std::set<std::string> seen_cycles OHPX_GUARDED_BY(mutex);
};

Registry& registry() {
  static Registry instance;
  return instance;
}

struct Held {
  Node* node;
  Site site;
};

/// The calling thread's stack of currently held checked mutexes.
thread_local std::vector<Held> t_held;

std::string render_site(Site site) {
  std::string text = site.file != nullptr ? site.file : "";
  text += ':';
  text += std::to_string(site.line);
  return text;
}

/// DFS for a path `from` -> ... -> `target` over recorded edges, visiting
/// successors in name order so the reported path is deterministic.  On
/// success `path` is filled target-first (unwind order).
bool find_path_locked(Registry& reg, Node* from, Node* target,
                      std::set<Node*>& visited, std::vector<Node*>& path)
    OHPX_REQUIRES(reg.mutex) {
  if (from == target) {
    path.push_back(from);
    return true;
  }
  if (!visited.insert(from).second) return false;
  const auto adjacency = reg.edges.find(from);
  if (adjacency == reg.edges.end()) return false;
  std::vector<Node*> successors;
  successors.reserve(adjacency->second.size());
  for (const auto& entry : adjacency->second) {
    successors.push_back(entry.first);
  }
  std::sort(successors.begin(), successors.end(),
            [](const Node* a, const Node* b) { return a->name() < b->name(); });
  for (Node* next : successors) {
    if (find_path_locked(reg, next, target, visited, path)) {
      path.push_back(from);
      return true;
    }
  }
  return false;
}

/// Called right after inserting the edge `holder` -> `acquired`.  If the
/// graph now contains a path acquired -> ... -> holder, that edge closed a
/// cycle: build the deduplicated, deterministic report.
void check_cycle_locked(Registry& reg, Node* holder, Node* acquired,
                        Site holder_site, Site acquire_site)
    OHPX_REQUIRES(reg.mutex) {
  std::set<Node*> visited;
  std::vector<Node*> unwind;  // filled [holder, ..., acquired]
  if (!find_path_locked(reg, acquired, holder, visited, unwind)) {
    return;
  }
  // Acquisition-order participants, starting at the holder and following
  // the new edge: holder -> acquired -> ... -> (back to holder).
  std::vector<Node*> participants(unwind.rbegin(), unwind.rend());
  std::rotate(participants.begin(), participants.end() - 1,
              participants.end());

  // Canonical form for deduplication and the `cycle` field: rotate the
  // lexicographically smallest name to the front.
  std::vector<std::string> names;
  names.reserve(participants.size());
  for (const Node* node : participants) names.push_back(node->name());
  const auto smallest = std::min_element(names.begin(), names.end());
  std::rotate(names.begin(), names.begin() + (smallest - names.begin()),
              names.end());
  std::string key;
  for (const std::string& name : names) {
    key += name;
    key += "->";
  }
  if (!reg.seen_cycles.insert(key).second) return;  // already reported

  InversionReport report;
  report.cycle = names;
  std::string& text = report.description;
  text = "potential deadlock: lock-order cycle ";
  for (const std::string& name : names) {
    text += name;
    text += " -> ";
  }
  text += names.front();
  text += "\n  closing edge: \"";
  text += acquired->name();
  text += "\" acquired at ";
  text += render_site(acquire_site);
  text += " while \"";
  text += holder->name();
  text += "\" held (locked at ";
  text += render_site(holder_site);
  text += ")";
  // The rest of the cycle: every previously recorded edge on the path
  // acquired -> ... -> holder, each with the two sites that established
  // it — the "other stack" of the inversion.
  for (std::size_t i = 0; i + 1 < participants.size(); ++i) {
    Node* from = participants[i + 1];  // participants[1] == acquired
    Node* to = i + 2 < participants.size() ? participants[i + 2]
                                           : participants[0];
    const auto adjacency = reg.edges.find(from);
    if (adjacency == reg.edges.end()) continue;
    const auto edge = adjacency->second.find(to);
    if (edge == adjacency->second.end()) continue;
    text += "\n  established order: \"";
    text += to->name();
    text += "\" acquired at ";
    text += render_site(edge->second.acquire_site);
    text += " while \"";
    text += from->name();
    text += "\" held (locked at ";
    text += render_site(edge->second.holder_site);
    text += ")";
  }
  reg.reports.push_back(std::move(report));
}

void record_acquisition(Node* node, Site site) {
  if (!t_held.empty()) {
    const Held& top = t_held.back();
    if (top.node != node) {
      Registry& reg = registry();
      LockGuard lock(reg.mutex);
      auto& slot = reg.edges[top.node];
      if (slot.find(node) == slot.end()) {
        slot.emplace(node, Edge{top.site, site});
        check_cycle_locked(reg, top.node, node, top.site, site);
      }
    }
  }
  t_held.push_back(Held{node, site});
}

}  // namespace

Node* register_mutex(const char* name) noexcept {
  Registry& reg = registry();
  const std::string_view key = name != nullptr ? name : "unnamed";
  LockGuard lock(reg.mutex);
  auto it = reg.nodes.find(key);
  if (it == reg.nodes.end()) {
    it = reg.nodes
             .emplace(std::string(key),
                      std::make_unique<Node>(std::string(key)))
             .first;
  }
  return it->second.get();
}

void on_acquire(Node* node, Site site) noexcept {
  if (node == nullptr) return;
  record_acquisition(node, site);
}

void on_try_acquire(Node* node, Site site) noexcept {
  if (node == nullptr) return;
  record_acquisition(node, site);
}

void on_release(Node* node) noexcept {
  if (node == nullptr) return;
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->node == node) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
}

std::vector<InversionReport> take_reports() {
  Registry& reg = registry();
  std::vector<InversionReport> drained;
  {
    LockGuard lock(reg.mutex);
    drained.swap(reg.reports);
  }
  std::sort(drained.begin(), drained.end(),
            [](const InversionReport& a, const InversionReport& b) {
              if (a.cycle.size() != b.cycle.size()) {
                return a.cycle.size() < b.cycle.size();
              }
              return a.cycle < b.cycle;
            });
  return drained;
}

std::size_t report_count() noexcept {
  Registry& reg = registry();
  LockGuard lock(reg.mutex);
  return reg.reports.size();
}

void reset_for_testing() {
  Registry& reg = registry();
  LockGuard lock(reg.mutex);
  reg.edges.clear();
  reg.reports.clear();
  reg.seen_cycles.clear();
}

}  // namespace ohpx::sync::lock_order
