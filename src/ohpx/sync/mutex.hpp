// ohpx::sync — the repo's only sanctioned mutex vocabulary.
//
// Raw std::mutex / std::lock_guard are banned outside this directory
// (ohpx-lint's AST tier enforces it) for two reasons:
//
//   1. *Visibility to the analysis.*  libstdc++'s lock types carry no
//      thread-safety attributes, so Clang's -Wthread-safety cannot see a
//      std::lock_guard acquire anything — every OHPX_GUARDED_BY access
//      under one would be a false positive once the warning is an error.
//      The wrappers here are fully annotated capabilities.
//
//   2. *Lock-order validation.*  The checked flavor registers every
//      acquisition with the process-wide graph in lock_order.hpp and
//      reports potential deadlocks (cycles) deterministically at lock
//      time, citing both acquisition sites.
//
// Flavors:
//
//   sync::Mutex        what runtime code declares.  Checked in Debug
//                      builds (and when OHPX_LOCK_ORDER_CHECKS is forced
//                      on), a bare annotated std::mutex in Release — the
//                      validator contributes zero code to release lock().
//   sync::OrderedMutex the always-checked flavor, available in every
//                      build.  Tests and diagnostics use it so the
//                      validator is exercised under the tier-1 config.
//   sync::SharedMutex  reader/writer variant (same checked/unchecked
//                      selection); shared holds participate in the
//                      acquisition graph exactly like exclusive ones.
//
// Guards (all CTAD-friendly — `sync::LockGuard lock(mutex_);`):
//
//   sync::LockGuard    scoped exclusive hold (std::lock_guard shape)
//   sync::UniqueLock   exclusive hold exposing native() for
//                      std::condition_variable::wait
//   sync::SharedLock   scoped shared hold on a SharedMutex
//
// Name every mutex at construction (`sync::Mutex mutex_{"orb.context"};`).
// Names are lock *classes*: the validator orders by name, so instances of
// one class share a rank and ABBA inversions are caught across objects.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/lock_order.hpp"

namespace ohpx::sync {

/// Build-wide default: validate lock order in Debug builds; compile the
/// validator out (of sync::Mutex — OrderedMutex always validates) in
/// NDEBUG builds.  -DOHPX_LOCK_ORDER_CHECKS=1 forces validation on
/// everywhere (the CMake option of the same name sets this).
#if defined(OHPX_LOCK_ORDER_CHECKS)
inline constexpr bool kLockOrderChecked = OHPX_LOCK_ORDER_CHECKS != 0;
#elif defined(NDEBUG)
inline constexpr bool kLockOrderChecked = false;
#else
inline constexpr bool kLockOrderChecked = true;
#endif

namespace detail {

/// Storage for the validator's node pointer — empty in unchecked flavors
/// so a release sync::Mutex carries no validator state.
template <bool Checked>
struct OrderNode {
  lock_order::Node* node = nullptr;
};
template <>
struct OrderNode<false> {};

}  // namespace detail

/// Annotated mutex.  `Checked` selects whether acquisitions feed the
/// lock-order validator; both flavors are full Clang thread-safety
/// capabilities.
template <bool Checked>
class OHPX_CAPABILITY("mutex") BasicMutex : private detail::OrderNode<Checked> {
 public:
  static constexpr bool kChecked = Checked;

  explicit BasicMutex(const char* name = "unnamed") noexcept : name_(name) {
    if constexpr (Checked) {
      this->node = lock_order::register_mutex(name);
    }
  }

  BasicMutex(const BasicMutex&) = delete;
  BasicMutex& operator=(const BasicMutex&) = delete;

  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) OHPX_ACQUIRE() {
    if constexpr (Checked) {
      lock_order::on_acquire(this->node, {file, line});
    } else {
      (void)file;
      (void)line;
    }
    mutex_.lock();
  }

  void unlock() OHPX_RELEASE() {
    mutex_.unlock();
    if constexpr (Checked) {
      lock_order::on_release(this->node);
    }
  }

  bool try_lock(const char* file = __builtin_FILE(),
                int line = __builtin_LINE()) OHPX_TRY_ACQUIRE(true) {
    const bool acquired = mutex_.try_lock();
    if constexpr (Checked) {
      if (acquired) lock_order::on_try_acquire(this->node, {file, line});
    } else {
      (void)file;
      (void)line;
    }
    return acquired;
  }

  /// The wrapped mutex, for std::condition_variable via UniqueLock.
  std::mutex& native() noexcept { return mutex_; }

  const char* name() const noexcept { return name_; }

 private:
  std::mutex mutex_;
  const char* name_;
};

using Mutex = BasicMutex<kLockOrderChecked>;
using OrderedMutex = BasicMutex<true>;

/// Annotated reader/writer mutex.  The validator does not distinguish
/// shared from exclusive holds: a shared acquisition orders later locks
/// just the same, and a shared/exclusive inversion deadlocks just the
/// same.
template <bool Checked>
class OHPX_CAPABILITY("shared_mutex") BasicSharedMutex
    : private detail::OrderNode<Checked> {
 public:
  static constexpr bool kChecked = Checked;

  explicit BasicSharedMutex(const char* name = "unnamed") noexcept
      : name_(name) {
    if constexpr (Checked) {
      this->node = lock_order::register_mutex(name);
    }
  }

  BasicSharedMutex(const BasicSharedMutex&) = delete;
  BasicSharedMutex& operator=(const BasicSharedMutex&) = delete;

  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) OHPX_ACQUIRE() {
    if constexpr (Checked) {
      lock_order::on_acquire(this->node, {file, line});
    } else {
      (void)file;
      (void)line;
    }
    mutex_.lock();
  }

  void unlock() OHPX_RELEASE() {
    mutex_.unlock();
    if constexpr (Checked) {
      lock_order::on_release(this->node);
    }
  }

  void lock_shared(const char* file = __builtin_FILE(),
                   int line = __builtin_LINE()) OHPX_ACQUIRE_SHARED() {
    if constexpr (Checked) {
      lock_order::on_acquire(this->node, {file, line});
    } else {
      (void)file;
      (void)line;
    }
    mutex_.lock_shared();
  }

  void unlock_shared() OHPX_RELEASE_SHARED() {
    mutex_.unlock_shared();
    if constexpr (Checked) {
      lock_order::on_release(this->node);
    }
  }

  const char* name() const noexcept { return name_; }

 private:
  std::shared_mutex mutex_;
  const char* name_;
};

using SharedMutex = BasicSharedMutex<kLockOrderChecked>;
using OrderedSharedMutex = BasicSharedMutex<true>;

/// Scoped exclusive hold (the std::lock_guard of this vocabulary).
template <typename MutexT = Mutex>
class OHPX_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(MutexT& mutex, const char* file = __builtin_FILE(),
                     int line = __builtin_LINE()) OHPX_ACQUIRE(mutex)
      : mutex_(mutex) {
    mutex_.lock(file, line);
  }

  ~LockGuard() OHPX_RELEASE() { mutex_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  MutexT& mutex_;
};

template <typename MutexT>
LockGuard(MutexT&, const char*, int) -> LockGuard<MutexT>;

/// Scoped exclusive hold that can be released/reacquired and exposes the
/// native std::unique_lock for std::condition_variable::wait.  Waiting
/// keeps the mutex on the validator's held stack — conservative and
/// correct: edges recorded after the wait returns are real orderings.
template <typename MutexT = Mutex>
class OHPX_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(MutexT& mutex, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) OHPX_ACQUIRE(mutex)
      : mutex_(mutex), inner_(mutex.native(), std::defer_lock) {
    acquire(file, line);
  }

  ~UniqueLock() OHPX_RELEASE() {
    if (owned_) release();
  }

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  void lock(const char* file = __builtin_FILE(),
            int line = __builtin_LINE()) OHPX_ACQUIRE() {
    acquire(file, line);
  }

  void unlock() OHPX_RELEASE() { release(); }

  bool owns_lock() const noexcept { return owned_; }

  /// For std::condition_variable::wait only; the wait's internal
  /// unlock/relock stays inside this hold.
  std::unique_lock<std::mutex>& native() noexcept { return inner_; }

 private:
  void acquire(const char* file, int line) {
    if constexpr (MutexT::kChecked) {
      lock_order::on_acquire(order_node(), {file, line});
    } else {
      (void)file;
      (void)line;
    }
    inner_.lock();
    owned_ = true;
  }

  void release() {
    inner_.unlock();
    owned_ = false;
    if constexpr (MutexT::kChecked) {
      lock_order::on_release(order_node());
    }
  }

  lock_order::Node* order_node() noexcept {
    // Re-register by name: cheap (interned) and keeps MutexT's validator
    // state private.
    return lock_order::register_mutex(mutex_.name());
  }

  MutexT& mutex_;
  std::unique_lock<std::mutex> inner_;
  bool owned_ = false;
};

template <typename MutexT>
UniqueLock(MutexT&, const char*, int) -> UniqueLock<MutexT>;

/// Scoped shared (reader) hold on a BasicSharedMutex.
template <typename MutexT = SharedMutex>
class OHPX_SCOPED_CAPABILITY SharedLock {
 public:
  explicit SharedLock(MutexT& mutex, const char* file = __builtin_FILE(),
                      int line = __builtin_LINE()) OHPX_ACQUIRE_SHARED(mutex)
      : mutex_(mutex) {
    mutex_.lock_shared(file, line);
  }

  ~SharedLock() OHPX_RELEASE() { mutex_.unlock_shared(); }

  SharedLock(const SharedLock&) = delete;
  SharedLock& operator=(const SharedLock&) = delete;

 private:
  MutexT& mutex_;
};

template <typename MutexT>
SharedLock(MutexT&, const char*, int) -> SharedLock<MutexT>;

}  // namespace ohpx::sync
