// Process-wide lock-acquisition-order registry (the debug half of
// ohpx::sync — see mutex.hpp for the annotated wrapper types that feed it).
//
// Every checked mutex interns a *node* keyed by its name: two mutexes that
// share a name share a rank, so an A-then-B acquisition in one place and a
// B-then-A acquisition anywhere else is an inversion even across distinct
// instances — the classic ABBA deadlock is a property of lock *classes*,
// not of the two specific objects a test happened to allocate.
//
// At lock time the registry records a directed edge from the top of the
// calling thread's held stack to the mutex being acquired.  Inserting an
// edge that closes a cycle in the acquisition graph is a *potential
// deadlock*: the report is produced deterministically at that moment (no
// two-thread race needs to actually happen), names every participant in
// canonical order, and cites both acquisition sites of the closing edge —
// where the held lock was taken and where the inverted lock is being
// taken.  Reports are deduplicated per canonical cycle and kept until
// drained with take_reports().
//
// Cost: one short critical section on the registry's internal mutex per
// checked lock().  This is a debug facility — release builds alias
// ohpx::sync::Mutex to the unchecked flavor, whose lock() compiles to a
// bare std::mutex::lock() with no validator code at all.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ohpx::sync::lock_order {

/// Where a lock() call happened (captured via __builtin_FILE/LINE default
/// arguments on the wrapper, so user call sites need no macros).
struct Site {
  const char* file = "";
  int line = 0;
};

class Node;  // interned per mutex name; defined in lock_order.cpp

/// Interns (or reuses) the node for `name`.  Never fails; never freed —
/// names are lock classes and the set of classes is small and static.
Node* register_mutex(const char* name) noexcept;

/// Record an acquisition about to block on `node`.  Called *before* the
/// underlying lock so an inversion is reported even if the process then
/// actually deadlocks.  Pushes `node` onto the thread's held stack.
void on_acquire(Node* node, Site site) noexcept;

/// Record a successful try_lock (no deadlock risk, but the hold still
/// orders every later acquisition).  Pushes onto the held stack.
void on_try_acquire(Node* node, Site site) noexcept;

/// Record a release: removes the most recent hold of `node` from the
/// thread's held stack (out-of-order unlocks are legal).
void on_release(Node* node) noexcept;

/// One detected potential deadlock.
struct InversionReport {
  /// Mutex names around the cycle, rotated so the lexicographically
  /// smallest name comes first; size >= 2.
  std::vector<std::string> cycle;

  /// Deterministic human-readable report: the cycle, then the closing
  /// edge's two acquisition sites (held-at and acquiring-at).
  std::string description;
};

/// Drains all reports accumulated so far, ranked: shortest cycles (the
/// most actionable) first, ties broken by participant names.
std::vector<InversionReport> take_reports();

/// Number of undrained reports (cheap peek for asserts and soak loops).
std::size_t report_count() noexcept;

/// Test isolation: forgets all edges, held stacks are NOT touched (callers
/// must not hold checked locks across this), drops undrained reports.
/// Interned nodes survive — names stay stable for the process lifetime.
void reset_for_testing();

}  // namespace ohpx::sync::lock_order
