#include "ohpx/protocol/entry.hpp"

#include "ohpx/wire/serialize.hpp"

namespace ohpx::proto {

void ProtocolEntry::wire_serialize(wire::Encoder& enc) const {
  wire::serialize(enc, name);
  wire::serialize(enc, proto_data);
}

ProtocolEntry ProtocolEntry::wire_deserialize(wire::Decoder& dec) {
  ProtocolEntry entry;
  entry.name = wire::deserialize<std::string>(dec);
  entry.proto_data = wire::deserialize<Bytes>(dec);
  return entry;
}

void ProtoTable::wire_serialize(wire::Encoder& enc) const {
  wire::serialize(enc, entries_);
}

ProtoTable ProtoTable::wire_deserialize(wire::Decoder& dec) {
  return ProtoTable(wire::deserialize<std::vector<ProtocolEntry>>(dec));
}

}  // namespace ohpx::proto
