// Glue protocol object (paper §4.1): "a special kind of protocol object
// that can be used to hold capab-objects in a specific order...  A glue
// object does not contain any communication mechanism but depends on a real
// protocol object to do the actual communication."
//
// Client-side flow (paper Figure 2): admission + process() through the
// chain, prepend the clear-text glue id, mark the header, delegate to the
// real proto-object.  Reply flow: if the server marked the reply as
// glue-processed, unprocess it through the chain back-to-front.
#pragma once

#include <cstdint>

#include "ohpx/capability/chain.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/protocol.hpp"

namespace ohpx::proto {

class GlueProtocol final : public Protocol {
 public:
  GlueProtocol(std::uint32_t glue_id, cap::CapabilityChain chain,
               ProtocolPtr delegate);

  std::string_view name() const noexcept override { return "glue"; }

  /// AND of the chain's applicability and the delegate's (paper §4.3:
  /// "the applicability of a glue protocol is the logical AND of all its
  /// constituent capabilities").
  bool applicable(const CallTarget& target) const override;

  /// Stable iff the delegate's is: the chain's applicability is a pure
  /// function of placement (builtin capabilities are scope-based).
  bool applicability_is_stable() const noexcept override;

  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget& target, CostLedger& ledger) override;

  /// The chain rewrites the payload in place (checksum/encrypt/compress and
  /// the prepended glue id), so the caller's buffer does not survive.
  bool preserves_payload() const noexcept override { return false; }

  std::string describe() const override;

  const cap::CapabilityChain& chain() const noexcept { return chain_; }
  std::uint32_t glue_id() const noexcept { return glue_id_; }
  Protocol& delegate() noexcept { return *delegate_; }

 private:
  std::uint32_t glue_id_;
  cap::CapabilityChain chain_;
  ProtocolPtr delegate_;
};

}  // namespace ohpx::proto
