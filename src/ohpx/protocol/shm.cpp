#include "ohpx/protocol/shm.hpp"

#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/inproc.hpp"

namespace ohpx::proto {

bool ShmProtocol::applicable(const CallTarget& target) const {
  return target.placement.same_machine() && !target.address.endpoint.empty();
}

ReplyMessage ShmProtocol::invoke(const wire::MessageHeader& header,
                                 wire::Buffer& payload,
                                 const CallTarget& target, CostLedger& ledger) {
  trace::Span span(trace::SpanKind::transport, "proto.shm");
  transport::InProcChannel channel(target.address.endpoint);
  return frame_roundtrip(channel, header, payload, ledger);
}

}  // namespace ohpx::proto
