#include "ohpx/protocol/glue_wire.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::proto {

Bytes encode_glue_proto_data(const GlueProtoData& data) {
  wire::Buffer buf;
  wire::Encoder enc(buf);
  enc.put_u32(data.glue_id);
  wire::serialize(enc, data.delegate);
  wire::serialize(enc, data.capabilities);
  return buf.release();
}

GlueProtoData decode_glue_proto_data(BytesView raw) {
  wire::Decoder dec(raw);
  GlueProtoData data;
  data.glue_id = dec.get_u32();
  data.delegate = wire::deserialize<ProtocolEntry>(dec);
  data.capabilities =
      wire::deserialize<std::vector<cap::CapabilityDescriptor>>(dec);
  dec.expect_end();
  return data;
}

void prepend_glue_id(wire::Buffer& payload, std::uint32_t glue_id) {
  Bytes with_prefix;
  with_prefix.reserve(payload.size() + 4);
  with_prefix.push_back(static_cast<std::uint8_t>(glue_id >> 24));
  with_prefix.push_back(static_cast<std::uint8_t>(glue_id >> 16));
  with_prefix.push_back(static_cast<std::uint8_t>(glue_id >> 8));
  with_prefix.push_back(static_cast<std::uint8_t>(glue_id));
  const Bytes body = payload.release();
  with_prefix.insert(with_prefix.end(), body.begin(), body.end());
  payload.assign(std::move(with_prefix));
}

std::uint32_t strip_glue_id(wire::Buffer& payload) {
  if (payload.size() < 4) {
    throw WireError(ErrorCode::wire_truncated,
                    "glue payload too short for glue id");
  }
  const BytesView head = payload.view(0, 4);
  const std::uint32_t glue_id = (static_cast<std::uint32_t>(head[0]) << 24) |
                                (static_cast<std::uint32_t>(head[1]) << 16) |
                                (static_cast<std::uint32_t>(head[2]) << 8) |
                                static_cast<std::uint32_t>(head[3]);
  Bytes rest(payload.bytes().begin() + 4, payload.bytes().end());
  payload.assign(std::move(rest));
  return glue_id;
}

}  // namespace ohpx::proto
