// Real-socket TCP protocol: loopback TCP to the server context's listener.
// Used by integration tests and examples that want actual kernel sockets in
// the path; benchmarks prefer the deterministic nexus-sim protocol.
// Connections are cached per (host, port) and re-established on failure.
#pragma once

#include <map>
#include <memory>

#include "ohpx/common/annotations.hpp"
#include "ohpx/protocol/protocol.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/tcp.hpp"

namespace ohpx::proto {

class TcpProtocol final : public Protocol {
 public:
  std::string_view name() const noexcept override { return "tcp"; }

  /// Applicable whenever the server context advertises a TCP listener.
  bool applicable(const CallTarget& target) const override;

  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget& target, CostLedger& ledger) override;

 private:
  std::shared_ptr<transport::TcpChannel> channel_for(const std::string& host,
                                                     std::uint16_t port);

  sync::Mutex mutex_{"proto.tcp.channels"};
  std::map<std::pair<std::string, std::uint16_t>,
           std::shared_ptr<transport::TcpChannel>>
      channels_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::proto
