// Real-socket TCP protocol: loopback TCP to the server context's listener.
// Used by integration tests and examples that want actual kernel sockets in
// the path; benchmarks prefer the deterministic nexus-sim protocol.
//
// Two bearers, one wire format:
//
//   - reactor (default): calls go through the shared epoll event loop
//     (transport/reactor.hpp) — one multiplexed connection per
//     destination, correlation-id demux, sendmsg batching, a bounded
//     inflight window surfacing ErrorCode::backpressure, and a real
//     invoke_async() whose future settles off the event loop.  The
//     synchronous invoke() is a bridge: submit + wait on the future, so
//     every retry/breaker/deadline/trace behavior of the sync pipeline is
//     preserved bit-for-bit.
//
//   - blocking fallback (set_blocking_fallback(true)): the original
//     connection-per-peer TcpChannel with one in-flight call at a time —
//     kept as the degraded-mode bearer and as the benchmark baseline the
//     fan-in speedup is measured against.
#pragma once

#include <map>
#include <memory>

#include "ohpx/common/annotations.hpp"
#include "ohpx/protocol/protocol.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/tcp.hpp"

namespace ohpx::proto {

class TcpProtocol final : public Protocol {
 public:
  std::string_view name() const noexcept override { return "tcp"; }

  /// Applicable whenever the server context advertises a TCP listener.
  bool applicable(const CallTarget& target) const override;

  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget& target, CostLedger& ledger) override;

  bool supports_async() const noexcept override {
    return !blocking_fallback();
  }

  Future<ReplyMessage> invoke_async(const wire::MessageHeader& header,
                                    wire::Buffer& payload,
                                    const CallTarget& target) override;

  /// Process-wide bearer selection (default: reactor).  Flipping it only
  /// affects calls issued afterwards; benchmarks use it to measure the
  /// one-in-flight blocking baseline.
  static void set_blocking_fallback(bool on) noexcept;
  static bool blocking_fallback() noexcept;

 private:
  ReplyMessage invoke_blocking(const wire::MessageHeader& header,
                               wire::Buffer& payload, const CallTarget& target,
                               CostLedger& ledger);

  std::shared_ptr<transport::TcpChannel> channel_for(const std::string& host,
                                                     std::uint16_t port);

  sync::Mutex mutex_{"proto.tcp.channels"};
  std::map<std::pair<std::string, std::uint16_t>,
           std::shared_ptr<transport::TcpChannel>>
      channels_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::proto
