// Protocol factory registry: instantiates client-side proto-objects from
// the (name, proto-data) entries of an Object Reference's protocol table.
// Custom protocols (paper §3.2, second aspect of adaptivity) plug in by
// registering a factory under a new name; they then participate in
// selection like any built-in.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/protocol/entry.hpp"
#include "ohpx/protocol/protocol.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::proto {

using ProtocolFactory = std::function<ProtocolPtr(const ProtocolEntry&)>;

class ProtocolRegistry {
 public:
  /// Process-wide registry pre-loaded with shm / nexus-tcp / tcp / glue.
  static ProtocolRegistry& instance();

  void register_factory(const std::string& name, ProtocolFactory factory);
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Instantiates one proto-object; throws ProtocolError(protocol_unknown)
  /// for unregistered names, protocol_bad_proto_data for malformed blobs.
  ProtocolPtr instantiate(const ProtocolEntry& entry) const;

  /// Instantiates a whole table, preserving preference order.  Entries for
  /// unknown protocols are skipped (a reference minted by a newer peer may
  /// carry protocols this process lacks; the rest of the table still works).
  std::vector<ProtocolPtr> instantiate_table(const ProtoTable& table) const;

 private:
  ProtocolRegistry();

  mutable sync::Mutex mutex_{"proto.registry"};
  std::map<std::string, ProtocolFactory> factories_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::proto
