// Per-call target description handed to client-side proto-objects.
//
// The OR carries the *initial* address of a server object; the location
// service keeps it current across migrations.  At each remote request the
// ORB resolves the object's current address and placement and passes both
// here, so protocols and capabilities always judge applicability against
// the live topology (this is what makes the paper's Figure 3/4 adaptivity
// work without touching client code).
#pragma once

#include <cstdint>
#include <string>

#include "ohpx/netsim/topology.hpp"

namespace ohpx::proto {

struct ServerAddress {
  std::uint32_t context_id = 0;
  netsim::MachineId machine = netsim::kInvalidMachine;
  std::string endpoint;        // in-process endpoint name ("ctx/<id>")
  std::string tcp_host;        // empty when the context has no TCP listener
  std::uint16_t tcp_port = 0;
  std::uint64_t epoch = 0;     // location epoch (bumped by migration)

  friend bool operator==(const ServerAddress&, const ServerAddress&) = default;
};

struct CallTarget {
  netsim::Placement placement;
  ServerAddress address;
};

}  // namespace ohpx::proto
