// Wire helpers shared by the client-side glue proto-object and the
// server-side glue class (which lives in the ORB's server pipeline).
//
// Glue proto-data (stored in an OR protocol entry):
//   u32 glue id ‖ delegate ProtocolEntry ‖ vector<CapabilityDescriptor>
//
// Request payload prefix: after the client chain has processed the payload,
// a u32 glue id is prepended *in the clear* so the server can find its copy
// of the chain (paper Figure 2: protocol class C forwards the request to
// GC, the glue object's class).  Replies carry no prefix; the
// kFlagGlueProcessed header flag says whether the reply body was processed.
#pragma once

#include <cstdint>
#include <vector>

#include "ohpx/capability/capability.hpp"
#include "ohpx/protocol/entry.hpp"

namespace ohpx::proto {

struct GlueProtoData {
  std::uint32_t glue_id = 0;
  ProtocolEntry delegate;
  std::vector<cap::CapabilityDescriptor> capabilities;
};

Bytes encode_glue_proto_data(const GlueProtoData& data);
GlueProtoData decode_glue_proto_data(BytesView raw);

/// Prepends the clear-text glue id to a processed request payload.
void prepend_glue_id(wire::Buffer& payload, std::uint32_t glue_id);

/// Splits the glue id off a request payload; throws WireError if too short.
std::uint32_t strip_glue_id(wire::Buffer& payload);

}  // namespace ohpx::proto
