#include "ohpx/protocol/glue.hpp"

#include <utility>

#include "ohpx/common/error.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/trace/trace.hpp"

namespace ohpx::proto {

GlueProtocol::GlueProtocol(std::uint32_t glue_id, cap::CapabilityChain chain,
                           ProtocolPtr delegate)
    : glue_id_(glue_id), chain_(std::move(chain)), delegate_(std::move(delegate)) {
  if (!delegate_) {
    throw ProtocolError(ErrorCode::protocol_bad_proto_data,
                        "glue protocol requires a delegate");
  }
}

bool GlueProtocol::applicable(const CallTarget& target) const {
  return chain_.applicable(target.placement) && delegate_->applicable(target);
}

bool GlueProtocol::applicability_is_stable() const noexcept {
  return delegate_->applicability_is_stable();
}

ReplyMessage GlueProtocol::invoke(const wire::MessageHeader& header,
                                  wire::Buffer& payload,
                                  const CallTarget& target, CostLedger& ledger) {
  trace::Span span(trace::SpanKind::transport, "proto.glue");
  cap::CallContext call;
  call.request_id = header.request_id;
  call.object_id = header.object_id;
  call.method_id = header.method_or_code;
  call.direction = cap::Direction::request;
  call.placement = target.placement;
  call.deadline_ns = resilience::tighten_deadline(
      resilience::current_deadline_ns(), header.deadline_ns);

  {
    ScopedRealTime timer(ledger);
    chain_.process_outbound(payload, call);
    prepend_glue_id(payload, glue_id_);
  }

  wire::MessageHeader glue_header = header;
  glue_header.flags |= wire::kFlagGlueProcessed;

  ReplyMessage reply = delegate_->invoke(glue_header, payload, target, ledger);

  if (reply.header.flags & wire::kFlagGlueProcessed) {
    ScopedRealTime timer(ledger);
    call.direction = cap::Direction::reply;
    chain_.process_inbound(reply.payload, call);
  }
  return reply;
}

std::string GlueProtocol::describe() const {
  return "glue[" + chain_.describe() + "]->" + delegate_->describe();
}

}  // namespace ohpx::proto
