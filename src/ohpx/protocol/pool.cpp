#include "ohpx/protocol/pool.hpp"

#include <algorithm>

#include "ohpx/sync/mutex.hpp"

namespace ohpx::proto {

ProtoPool ProtoPool::standard() {
  return ProtoPool({"glue", "shm", "tcp", "nexus-tcp"});
}

bool ProtoPool::allows(const std::string& protocol_name) const {
  sync::LockGuard lock(mutex_);
  return std::find(allowed_.begin(), allowed_.end(), protocol_name) !=
         allowed_.end();
}

void ProtoPool::enable(const std::string& protocol_name) {
  sync::LockGuard lock(mutex_);
  if (std::find(allowed_.begin(), allowed_.end(), protocol_name) ==
      allowed_.end()) {
    allowed_.push_back(protocol_name);
    bump_generation();
  }
}

void ProtoPool::disable(const std::string& protocol_name) {
  sync::LockGuard lock(mutex_);
  if (std::erase(allowed_, protocol_name) != 0) bump_generation();
}

void ProtoPool::prefer(const std::string& protocol_name) {
  sync::LockGuard lock(mutex_);
  std::erase(allowed_, protocol_name);
  allowed_.insert(allowed_.begin(), protocol_name);
  bump_generation();
}

std::vector<std::string> ProtoPool::allowed() const {
  sync::LockGuard lock(mutex_);
  return allowed_;
}

std::size_t ProtoPool::size() const {
  sync::LockGuard lock(mutex_);
  return allowed_.size();
}

}  // namespace ohpx::proto
