// Automatic run-time protocol selection (paper §3.2, third aspect):
// "When a remote request is made, the protocols in the GP's OR are compared
// with those in the proto-pool and the first match is used to satisfy the
// request.  Thus, the most suitable protocol is always selected."
//
// The candidate list preserves the OR's preference order; a candidate wins
// iff the local pool allows its name AND it reports itself applicable for
// the current placement.
#pragma once

#include <vector>

#include "ohpx/protocol/pool.hpp"
#include "ohpx/protocol/protocol.hpp"

namespace ohpx::proto {

/// Returns the first pool-allowed, applicable protocol, or nullptr.
Protocol* select_protocol(const std::vector<ProtocolPtr>& candidates,
                          const ProtoPool& pool, const CallTarget& target);

/// Like select_protocol but throws ProtocolError(protocol_no_match) when
/// nothing fits.
Protocol& select_protocol_or_throw(const std::vector<ProtocolPtr>& candidates,
                                   const ProtoPool& pool,
                                   const CallTarget& target);

}  // namespace ohpx::proto
