// Automatic run-time protocol selection (paper §3.2, third aspect):
// "When a remote request is made, the protocols in the GP's OR are compared
// with those in the proto-pool and the first match is used to satisfy the
// request.  Thus, the most suitable protocol is always selected."
//
// The candidate list preserves the OR's preference order; a candidate wins
// iff the local pool allows its name AND it reports itself applicable for
// the current placement.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "ohpx/protocol/pool.hpp"
#include "ohpx/protocol/protocol.hpp"

namespace ohpx::proto {

/// Per-entry admission gate for selection: given a candidate's index,
/// answer whether it may serve the current call.  This is how circuit
/// breakers make a tripped entry temporarily inapplicable — selection
/// fails over to the next OR-table ∩ pool entry by the paper's own
/// first-match rule, no special-case path needed.
using EntryGate = std::function<bool(std::size_t)>;

/// Returns the first pool-allowed, applicable protocol, or nullptr.
Protocol* select_protocol(const std::vector<ProtocolPtr>& candidates,
                          const ProtoPool& pool, const CallTarget& target);

/// As above, also reporting the winning entry's index in `candidates`
/// through `index` and skipping entries the gate refuses (a null gate
/// admits everything).
Protocol* select_protocol(const std::vector<ProtocolPtr>& candidates,
                          const ProtoPool& pool, const CallTarget& target,
                          std::size_t& index, const EntryGate& gate);

/// Like select_protocol but throws ProtocolError(protocol_no_match) when
/// nothing fits.
Protocol& select_protocol_or_throw(const std::vector<ProtocolPtr>& candidates,
                                   const ProtoPool& pool,
                                   const CallTarget& target);

/// Indexed, gated variant of select_protocol_or_throw.
Protocol& select_protocol_or_throw(const std::vector<ProtocolPtr>& candidates,
                                   const ProtoPool& pool,
                                   const CallTarget& target, std::size_t& index,
                                   const EntryGate& gate);

}  // namespace ohpx::proto
