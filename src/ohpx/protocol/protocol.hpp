// Client-side protocol object (the paper's *proto-object*, §3.1).
//
// A proto-object encapsulates one way of carrying a remote request to a
// server object.  The ORB instantiates proto-objects from the OR's protocol
// table, asks each whether it is applicable for the current placement, and
// invokes the first applicable one the local proto-pool allows (§3.2).
//
// The server half (the paper's *proto-class*) is a frame handler the server
// context binds into the transport layer; see ohpx/orb/context.*.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "ohpx/common/clock.hpp"
#include "ohpx/common/future.hpp"
#include "ohpx/protocol/target.hpp"
#include "ohpx/wire/buffer.hpp"
#include "ohpx/wire/message.hpp"

namespace ohpx::transport {
class Channel;
}

namespace ohpx::proto {

/// The protocol layer's reply vocabulary — an alias, not a wrapper: the
/// reactor settles the same struct, so the tcp async path hands its
/// future through this layer without a conversion stage per call.
using ReplyMessage = wire::ReplyEnvelope;

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Registry name, e.g. "shm", "nexus-tcp", "tcp", "glue".
  virtual std::string_view name() const noexcept = 0;

  /// Whether this protocol can serve a call to `target` (paper §4.3: every
  /// protocol has an applicability attribute; shared memory applies only
  /// when client and server share a machine).
  virtual bool applicable(const CallTarget& target) const = 0;

  /// True when applicable() is a pure function of `target` — the common
  /// case, and what lets the ORB memoize protocol selection keyed on the
  /// location epoch and pool generation.  Protocols whose applicability
  /// also depends on external state (e.g. relay: "is the gateway bound
  /// right now?") must return false so every call re-evaluates, keeping
  /// the paper's per-request adaptivity contract exact.
  virtual bool applicability_is_stable() const noexcept { return true; }

  /// Carries one request to the server and returns its reply.  The caller
  /// keeps ownership of `payload`; the protocol may transform it in place
  /// (capability chains) without copying.  Costs are charged to `ledger`.
  virtual ReplyMessage invoke(const wire::MessageHeader& header,
                              wire::Buffer& payload, const CallTarget& target,
                              CostLedger& ledger) = 0;

  /// True when invoke() leaves `payload` byte-identical on return — the
  /// caller can then reuse the buffer for a stale-reference retry with no
  /// defensive copy.  Glue (whose chain rewrites the payload) returns
  /// false; plain transports only read it.
  virtual bool preserves_payload() const noexcept { return true; }

  /// True when invoke_async() below is genuinely non-blocking (the call is
  /// queued on an event loop and the future settles later).  Protocols
  /// that leave the default get their async calls run on a worker thread
  /// by the ORB instead.
  virtual bool supports_async() const noexcept { return false; }

  /// Asynchronous variant of invoke(): queues the call and returns a
  /// future that settles with the reply (or the transport/deadline error).
  /// Unlike invoke() there is no CostLedger — the exchange completes after
  /// this stack frame is gone, so there is nothing per-call to charge it
  /// to (aggregate reactor metrics cover the async path).  The default
  /// implementation performs the exchange inline and returns an
  /// already-settled future; callers wanting overlap must check
  /// supports_async() first.
  virtual Future<ReplyMessage> invoke_async(const wire::MessageHeader& header,
                                            wire::Buffer& payload,
                                            const CallTarget& target);

  /// Human-readable description for logs ("glue[encryption,quota]→nexus-tcp").
  virtual std::string describe() const { return std::string(name()); }
};

using ProtocolPtr = std::unique_ptr<Protocol>;

/// Shared helper for concrete protocols: frames the request, performs the
/// roundtrip on `channel`, parses and validates the reply frame.
ReplyMessage frame_roundtrip(transport::Channel& channel,
                             const wire::MessageHeader& header,
                             const wire::Buffer& payload, CostLedger& ledger);

/// Parses and validates a raw reply frame (as delivered by the reactor)
/// against the request it answers: rejects request-typed frames and
/// request-id mismatches, and copies the body into a pooled buffer.
ReplyMessage parse_reply_frame(const wire::Buffer& frame,
                               std::uint64_t expect_request_id);

}  // namespace ohpx::proto
