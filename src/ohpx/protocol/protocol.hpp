// Client-side protocol object (the paper's *proto-object*, §3.1).
//
// A proto-object encapsulates one way of carrying a remote request to a
// server object.  The ORB instantiates proto-objects from the OR's protocol
// table, asks each whether it is applicable for the current placement, and
// invokes the first applicable one the local proto-pool allows (§3.2).
//
// The server half (the paper's *proto-class*) is a frame handler the server
// context binds into the transport layer; see ohpx/orb/context.*.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "ohpx/common/clock.hpp"
#include "ohpx/protocol/target.hpp"
#include "ohpx/wire/buffer.hpp"
#include "ohpx/wire/message.hpp"

namespace ohpx::transport {
class Channel;
}

namespace ohpx::proto {

struct ReplyMessage {
  wire::MessageHeader header;
  wire::Buffer payload;
};

class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Registry name, e.g. "shm", "nexus-tcp", "tcp", "glue".
  virtual std::string_view name() const noexcept = 0;

  /// Whether this protocol can serve a call to `target` (paper §4.3: every
  /// protocol has an applicability attribute; shared memory applies only
  /// when client and server share a machine).
  virtual bool applicable(const CallTarget& target) const = 0;

  /// True when applicable() is a pure function of `target` — the common
  /// case, and what lets the ORB memoize protocol selection keyed on the
  /// location epoch and pool generation.  Protocols whose applicability
  /// also depends on external state (e.g. relay: "is the gateway bound
  /// right now?") must return false so every call re-evaluates, keeping
  /// the paper's per-request adaptivity contract exact.
  virtual bool applicability_is_stable() const noexcept { return true; }

  /// Carries one request to the server and returns its reply.  The caller
  /// keeps ownership of `payload`; the protocol may transform it in place
  /// (capability chains) without copying.  Costs are charged to `ledger`.
  virtual ReplyMessage invoke(const wire::MessageHeader& header,
                              wire::Buffer& payload, const CallTarget& target,
                              CostLedger& ledger) = 0;

  /// True when invoke() leaves `payload` byte-identical on return — the
  /// caller can then reuse the buffer for a stale-reference retry with no
  /// defensive copy.  Glue (whose chain rewrites the payload) returns
  /// false; plain transports only read it.
  virtual bool preserves_payload() const noexcept { return true; }

  /// Human-readable description for logs ("glue[encryption,quota]→nexus-tcp").
  virtual std::string describe() const { return std::string(name()); }
};

using ProtocolPtr = std::unique_ptr<Protocol>;

/// Shared helper for concrete protocols: frames the request, performs the
/// roundtrip on `channel`, parses and validates the reply frame.
ReplyMessage frame_roundtrip(transport::Channel& channel,
                             const wire::MessageHeader& header,
                             const wire::Buffer& payload, CostLedger& ledger);

}  // namespace ohpx::proto
