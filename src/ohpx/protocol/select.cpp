#include "ohpx/protocol/select.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"

namespace ohpx::proto {

Protocol* select_protocol(const std::vector<ProtocolPtr>& candidates,
                          const ProtoPool& pool, const CallTarget& target) {
  for (const auto& candidate : candidates) {
    if (!pool.allows(std::string(candidate->name()))) continue;
    if (!candidate->applicable(target)) continue;
    return candidate.get();
  }
  return nullptr;
}

Protocol& select_protocol_or_throw(const std::vector<ProtocolPtr>& candidates,
                                   const ProtoPool& pool,
                                   const CallTarget& target) {
  Protocol* selected = select_protocol(candidates, pool, target);
  if (selected == nullptr) {
    throw ProtocolError(ErrorCode::protocol_no_match,
                        "no applicable protocol for this placement "
                        "(candidates: " +
                            std::to_string(candidates.size()) + ")");
  }
  log_trace("protocol", "selected ", selected->describe());
  return *selected;
}

}  // namespace ohpx::proto
