#include "ohpx/protocol/select.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"

namespace ohpx::proto {

Protocol* select_protocol(const std::vector<ProtocolPtr>& candidates,
                          const ProtoPool& pool, const CallTarget& target) {
  std::size_t index = 0;
  return select_protocol(candidates, pool, target, index, EntryGate{});
}

Protocol* select_protocol(const std::vector<ProtocolPtr>& candidates,
                          const ProtoPool& pool, const CallTarget& target,
                          std::size_t& index, const EntryGate& gate) {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto& candidate = candidates[i];
    if (!pool.allows(std::string(candidate->name()))) continue;
    if (!candidate->applicable(target)) continue;
    if (gate && !gate(i)) continue;
    index = i;
    return candidate.get();
  }
  return nullptr;
}

Protocol& select_protocol_or_throw(const std::vector<ProtocolPtr>& candidates,
                                   const ProtoPool& pool,
                                   const CallTarget& target) {
  std::size_t index = 0;
  return select_protocol_or_throw(candidates, pool, target, index,
                                  EntryGate{});
}

Protocol& select_protocol_or_throw(const std::vector<ProtocolPtr>& candidates,
                                   const ProtoPool& pool,
                                   const CallTarget& target, std::size_t& index,
                                   const EntryGate& gate) {
  Protocol* selected = select_protocol(candidates, pool, target, index, gate);
  if (selected == nullptr) {
    throw ProtocolError(ErrorCode::protocol_no_match,
                        "no applicable protocol for this placement "
                        "(candidates: " +
                            std::to_string(candidates.size()) + ")");
  }
  log_trace("protocol", "selected ", selected->describe());
  return *selected;
}

}  // namespace ohpx::proto
