#include "ohpx/protocol/registry.hpp"

#include "ohpx/capability/registry.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/protocol/glue.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/nexus_sim.hpp"
#include "ohpx/protocol/relay.hpp"
#include "ohpx/protocol/shm.hpp"
#include "ohpx/protocol/tcp_proto.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::proto {

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry registry;
  return registry;
}

ProtocolRegistry::ProtocolRegistry() {
  factories_["shm"] = [](const ProtocolEntry&) -> ProtocolPtr {
    return std::make_unique<ShmProtocol>();
  };
  factories_["nexus-tcp"] = [](const ProtocolEntry&) -> ProtocolPtr {
    return std::make_unique<NexusSimProtocol>();
  };
  factories_["tcp"] = [](const ProtocolEntry&) -> ProtocolPtr {
    return std::make_unique<TcpProtocol>();
  };
  factories_["relay"] = [](const ProtocolEntry& entry) -> ProtocolPtr {
    return std::make_unique<RelayProtocol>(text_of(entry.proto_data));
  };
  factories_["glue"] = [](const ProtocolEntry& entry) -> ProtocolPtr {
    GlueProtoData data;
    try {
      data = decode_glue_proto_data(entry.proto_data);
    } catch (const WireError& e) {
      throw ProtocolError(ErrorCode::protocol_bad_proto_data,
                          std::string("glue proto-data malformed: ") + e.what());
    }
    if (data.delegate.name == "glue") {
      // The server pipeline unwraps exactly one glue layer per request;
      // nesting would silently corrupt payloads, so refuse it loudly.
      throw ProtocolError(ErrorCode::protocol_bad_proto_data,
                          "glue protocol cannot delegate to another glue");
    }
    cap::CapabilityChain chain =
        cap::CapabilityRegistry::instance().instantiate_chain(data.capabilities);
    ProtocolPtr delegate = ProtocolRegistry::instance().instantiate(data.delegate);
    return std::make_unique<GlueProtocol>(data.glue_id, std::move(chain),
                                          std::move(delegate));
  };
}

void ProtocolRegistry::register_factory(const std::string& name,
                                        ProtocolFactory factory) {
  sync::LockGuard lock(mutex_);
  factories_[name] = std::move(factory);
}

bool ProtocolRegistry::contains(const std::string& name) const {
  sync::LockGuard lock(mutex_);
  return factories_.contains(name);
}

std::vector<std::string> ProtocolRegistry::names() const {
  sync::LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  return out;
}

ProtocolPtr ProtocolRegistry::instantiate(const ProtocolEntry& entry) const {
  ProtocolFactory factory;
  {
    sync::LockGuard lock(mutex_);
    const auto it = factories_.find(entry.name);
    if (it == factories_.end()) {
      throw ProtocolError(ErrorCode::protocol_unknown,
                          "no factory for protocol '" + entry.name + "'");
    }
    factory = it->second;
  }
  return factory(entry);
}

std::vector<ProtocolPtr> ProtocolRegistry::instantiate_table(
    const ProtoTable& table) const {
  std::vector<ProtocolPtr> out;
  out.reserve(table.size());
  for (const auto& entry : table.entries()) {
    if (!contains(entry.name)) {
      log_debug("protocol", "skipping unknown protocol '", entry.name,
                "' in table");
      continue;
    }
    out.push_back(instantiate(entry));
  }
  return out;
}

}  // namespace ohpx::proto
