#include "ohpx/protocol/relay.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::proto {

RelayForwarder::RelayForwarder(std::string gateway_endpoint)
    : endpoint_(std::move(gateway_endpoint)) {
  transport::EndpointRegistry::instance().bind(
      endpoint_, [this](const wire::Buffer& envelope) { return handle(envelope); });
}

RelayForwarder::~RelayForwarder() {
  transport::EndpointRegistry::instance().unbind(endpoint_);
}

std::uint64_t RelayForwarder::forwarded() const noexcept {
  return forwarded_.load(std::memory_order_relaxed);
}

wire::Buffer RelayForwarder::wrap(const std::string& target_endpoint,
                                  const wire::Buffer& inner_frame) {
  wire::Buffer envelope;
  envelope.reserve(4 + target_endpoint.size() + inner_frame.size());
  wire::Encoder enc(envelope);
  enc.put_string(target_endpoint);
  enc.put_raw(inner_frame.view());
  return envelope;
}

wire::Buffer RelayForwarder::handle(const wire::Buffer& envelope) {
  wire::Decoder dec(envelope.view());
  const std::string target = dec.get_string();
  const BytesView inner = dec.get_raw(dec.remaining());

  forwarded_.fetch_add(1, std::memory_order_relaxed);
  transport::InProcChannel channel(target);
  CostLedger ledger;  // the gateway's own cost is not the caller's concern
  return channel.roundtrip(wire::Buffer(inner.data(), inner.size()), ledger);
}

RelayProtocol::RelayProtocol(std::string gateway_endpoint)
    : gateway_endpoint_(std::move(gateway_endpoint)) {
  if (gateway_endpoint_.empty()) {
    throw ProtocolError(ErrorCode::protocol_bad_proto_data,
                        "relay protocol needs a gateway endpoint");
  }
}

bool RelayProtocol::applicable(const CallTarget& target) const {
  return !target.address.endpoint.empty() &&
         transport::EndpointRegistry::instance().contains(gateway_endpoint_);
}

ReplyMessage RelayProtocol::invoke(const wire::MessageHeader& header,
                                   wire::Buffer& payload,
                                   const CallTarget& target,
                                   CostLedger& ledger) {
  trace::Span span(trace::SpanKind::transport, "proto.relay");
  wire::Buffer inner_frame;
  {
    ScopedRealTime timer(ledger);
    inner_frame = wire::encode_frame(header, payload.view());
  }
  const wire::Buffer envelope =
      RelayForwarder::wrap(target.address.endpoint, inner_frame);

  transport::InProcChannel channel(gateway_endpoint_);
  wire::Buffer reply_frame = channel.roundtrip(envelope, ledger);

  ScopedRealTime timer(ledger);
  BytesView body;
  ReplyMessage reply;
  reply.header = wire::decode_frame(reply_frame.view(), body);
  if (reply.header.request_id != header.request_id) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "relay returned a reply for a different request");
  }
  reply.payload = wire::Buffer(body.data(), body.size());
  return reply;
}

std::string RelayProtocol::describe() const {
  return "relay[" + gateway_endpoint_ + "]";
}

Bytes RelayProtocol::make_proto_data(const std::string& gateway_endpoint) {
  return bytes_of(gateway_endpoint);
}

}  // namespace ohpx::proto
