#include "ohpx/protocol/tcp_proto.hpp"

#include "ohpx/sync/mutex.hpp"
#include "ohpx/trace/trace.hpp"

namespace ohpx::proto {

bool TcpProtocol::applicable(const CallTarget& target) const {
  return target.address.tcp_port != 0 && !target.address.tcp_host.empty();
}

std::shared_ptr<transport::TcpChannel> TcpProtocol::channel_for(
    const std::string& host, std::uint16_t port) {
  sync::LockGuard lock(mutex_);
  auto& slot = channels_[{host, port}];
  if (!slot) {
    slot = std::make_shared<transport::TcpChannel>(host, port);
  }
  return slot;
}

ReplyMessage TcpProtocol::invoke(const wire::MessageHeader& header,
                                 wire::Buffer& payload,
                                 const CallTarget& target, CostLedger& ledger) {
  trace::Span span(trace::SpanKind::transport, "proto.tcp");
  auto channel = channel_for(target.address.tcp_host, target.address.tcp_port);
  try {
    return frame_roundtrip(*channel, header, payload, ledger);
  } catch (const TransportError&) {
    trace::event("retry.reconnect", "stale tcp channel dropped");
    // Connection may be stale (server restarted / migrated).  Drop the
    // cached channel and retry once on a fresh connection.
    {
      sync::LockGuard lock(mutex_);
      channels_.erase({target.address.tcp_host, target.address.tcp_port});
    }
    channel = channel_for(target.address.tcp_host, target.address.tcp_port);
    return frame_roundtrip(*channel, header, payload, ledger);
  }
}

}  // namespace ohpx::proto
