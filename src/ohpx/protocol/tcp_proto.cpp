#include "ohpx/protocol/tcp_proto.hpp"

#include <atomic>

#include "ohpx/sync/mutex.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/reactor.hpp"
#include "ohpx/wire/buffer_pool.hpp"

namespace ohpx::proto {
namespace {

std::atomic<bool> g_blocking_fallback{false};

// The reactor already decoded the frame (header, body, CRC) on its loop
// thread to demultiplex by correlation id — RawReply and ReplyMessage are
// the same struct, so all that's left is the sanity the blocking path
// gets from parse_reply_frame: right frame type, right request.
ReplyMessage validate_reply(ReplyMessage reply,
                            std::uint64_t expect_request_id) {
  if (reply.header.type == wire::MessageType::request) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "request frame received where reply expected");
  }
  if (reply.header.request_id != expect_request_id) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "reply for a different request id");
  }
  return reply;
}

}  // namespace

void TcpProtocol::set_blocking_fallback(bool on) noexcept {
  g_blocking_fallback.store(on, std::memory_order_relaxed);
}

bool TcpProtocol::blocking_fallback() noexcept {
  return g_blocking_fallback.load(std::memory_order_relaxed);
}

bool TcpProtocol::applicable(const CallTarget& target) const {
  return target.address.tcp_port != 0 && !target.address.tcp_host.empty();
}

std::shared_ptr<transport::TcpChannel> TcpProtocol::channel_for(
    const std::string& host, std::uint16_t port) {
  sync::LockGuard lock(mutex_);
  auto& slot = channels_[{host, port}];
  if (!slot) {
    slot = std::make_shared<transport::TcpChannel>(host, port);
  }
  return slot;
}

ReplyMessage TcpProtocol::invoke(const wire::MessageHeader& header,
                                 wire::Buffer& payload,
                                 const CallTarget& target, CostLedger& ledger) {
  if (blocking_fallback()) {
    return invoke_blocking(header, payload, target, ledger);
  }
  // Sync bridge over the reactor: submit, then park on the future.  The
  // reactor throws backpressure/deadline refusals synchronously (before
  // anything is queued) and surfaces wire-level failures through the
  // future — either way they leave this frame as ordinary exceptions, so
  // the retry/breaker machinery above sees exactly what it would from a
  // blocking channel.
  trace::Span span(trace::SpanKind::transport, "proto.tcp");
  Future<transport::RawReply> future = transport::Reactor::global().submit(
      target.address.tcp_host, target.address.tcp_port, header,
      payload.view());
  ledger.add_bytes_sent(wire::kHeaderSize + payload.size());
  transport::RawReply raw;
  {
    ScopedRealTime timer(ledger);
    try {
      raw = future.get();
    } catch (const TransportError& e) {
      // Same contract as the blocking path: a cached connection gone stale
      // (server restarted / migrated) fails the call once; retry once and
      // the reactor re-dials the reaped connection fresh.  Backpressure is
      // not staleness — it must surface unretried for the caller to pace.
      if (e.code() == ErrorCode::backpressure) throw;
      trace::event("retry.reconnect", "stale tcp connection dropped");
      raw = transport::Reactor::global()
                .submit(target.address.tcp_host, target.address.tcp_port,
                        header, payload.view())
                .get();
    }
  }
  ledger.add_bytes_received(raw.frame_size);
  return validate_reply(std::move(raw), header.request_id);
}

Future<ReplyMessage> TcpProtocol::invoke_async(
    const wire::MessageHeader& header, wire::Buffer& payload,
    const CallTarget& target) {
  if (blocking_fallback()) {
    return Protocol::invoke_async(header, payload, target);  // inline
  }
  // RawReply *is* ReplyMessage: the reactor's future passes through with
  // no map stage — no shared-state allocation, no extra settlement, no
  // type-erased continuation per call.  Request-id validation happens in
  // the invocation layer's settlement (CallCore::finish_async_reply).
  return transport::Reactor::global().submit(
      target.address.tcp_host, target.address.tcp_port, header,
      payload.view());
}

ReplyMessage TcpProtocol::invoke_blocking(const wire::MessageHeader& header,
                                          wire::Buffer& payload,
                                          const CallTarget& target,
                                          CostLedger& ledger) {
  trace::Span span(trace::SpanKind::transport, "proto.tcp");
  auto channel = channel_for(target.address.tcp_host, target.address.tcp_port);
  try {
    return frame_roundtrip(*channel, header, payload, ledger);
  } catch (const TransportError&) {
    trace::event("retry.reconnect", "stale tcp channel dropped");
    // Connection may be stale (server restarted / migrated).  Drop the
    // cached channel and retry once on a fresh connection.
    {
      sync::LockGuard lock(mutex_);
      channels_.erase({target.address.tcp_host, target.address.tcp_port});
    }
    channel = channel_for(target.address.tcp_host, target.address.tcp_port);
    return frame_roundtrip(*channel, header, payload, ledger);
  }
}

}  // namespace ohpx::proto
