#include "ohpx/protocol/protocol.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/channel.hpp"
#include "ohpx/wire/buffer_pool.hpp"

namespace ohpx::proto {

// Synchronous stand-in so every protocol has *an* async face: the
// exchange runs inline on the calling thread and the returned future is
// already settled.  The ORB consults supports_async() and routes calls
// through a worker thread instead when real overlap is wanted.
Future<ReplyMessage> Protocol::invoke_async(const wire::MessageHeader& header,
                                            wire::Buffer& payload,
                                            const CallTarget& target) {
  Promise<ReplyMessage> promise;
  try {
    CostLedger ledger;
    ledger.disable_real_timing();
    promise.set_value(invoke(header, payload, target, ledger));
  } catch (...) {
    promise.set_exception(std::current_exception());
  }
  return promise.future();
}

ReplyMessage parse_reply_frame(const wire::Buffer& frame,
                               std::uint64_t expect_request_id) {
  auto& pool = wire::BufferPool::local();
  BytesView body;
  ReplyMessage reply;
  reply.header = wire::decode_frame(frame.view(), body);
  if (reply.header.type == wire::MessageType::request) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "request frame received where reply expected");
  }
  if (reply.header.request_id != expect_request_id) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "reply for a different request id");
  }
  reply.payload = pool.acquire(body.size());
  reply.payload.append(body);
  return reply;
}

ReplyMessage frame_roundtrip(transport::Channel& channel,
                             const wire::MessageHeader& header,
                             const wire::Buffer& payload, CostLedger& ledger) {
  auto& pool = wire::BufferPool::local();
  wire::Buffer request_frame =
      pool.acquire(wire::kHeaderSize + payload.size());
  {
    ScopedRealTime timer(ledger);
    trace::Span encode_span(trace::SpanKind::encode, "wire.encode");
    encode_span.annotate_u64("bytes", payload.size());
    wire::encode_frame_into(request_frame, header, payload.view());
  }
  wire::Buffer reply_frame;
  {
    // The transport span covers send + server turnaround + receive; on the
    // in-process path the server's own spans nest inside it time-wise but
    // parent under the client call via the wire context, not this thread.
    trace::Span transport_span(trace::SpanKind::transport, "transport");
    reply_frame = channel.roundtrip(request_frame, ledger);
  }
  pool.release(std::move(request_frame));

  ScopedRealTime timer(ledger);
  trace::Span decode_span(trace::SpanKind::decode, "wire.decode");
  BytesView body;
  ReplyMessage reply;
  reply.header = wire::decode_frame(reply_frame.view(), body);
  if (reply.header.type == wire::MessageType::request) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "request frame received where reply expected");
  }
  if (reply.header.request_id != header.request_id) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "reply for a different request id");
  }
  // Pool the body copy too: the stub releases it after decoding, so the
  // in-process loop (request frame, reply frame, reply body) runs
  // allocation-free at steady state.
  reply.payload = pool.acquire(body.size());
  reply.payload.append(body);
  pool.release(std::move(reply_frame));
  return reply;
}

}  // namespace ohpx::proto
