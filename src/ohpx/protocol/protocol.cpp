#include "ohpx/protocol/protocol.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/transport/channel.hpp"

namespace ohpx::proto {

ReplyMessage frame_roundtrip(transport::Channel& channel,
                             const wire::MessageHeader& header,
                             const wire::Buffer& payload, CostLedger& ledger) {
  wire::Buffer request_frame;
  {
    ScopedRealTime timer(ledger);
    request_frame = wire::encode_frame(header, payload.view());
  }
  wire::Buffer reply_frame = channel.roundtrip(request_frame, ledger);

  ScopedRealTime timer(ledger);
  BytesView body;
  ReplyMessage reply;
  reply.header = wire::decode_frame(reply_frame.view(), body);
  if (reply.header.type == wire::MessageType::request) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "request frame received where reply expected");
  }
  if (reply.header.request_id != header.request_id) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "reply for a different request id");
  }
  reply.payload = wire::Buffer(body.data(), body.size());
  return reply;
}

}  // namespace ohpx::proto
