#include "ohpx/protocol/nexus_sim.hpp"

#include "ohpx/transport/sim.hpp"

namespace ohpx::proto {

bool NexusSimProtocol::applicable(const CallTarget& target) const {
  return !target.address.endpoint.empty();
}

ReplyMessage NexusSimProtocol::invoke(const wire::MessageHeader& header,
                                      wire::Buffer& payload,
                                      const CallTarget& target,
                                      CostLedger& ledger) {
  transport::SimChannel channel(target.address.endpoint,
                                target.placement.link());
  return frame_roundtrip(channel, header, payload, ledger);
}

}  // namespace ohpx::proto
