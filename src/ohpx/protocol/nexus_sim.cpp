#include "ohpx/protocol/nexus_sim.hpp"

#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/sim.hpp"

namespace ohpx::proto {

bool NexusSimProtocol::applicable(const CallTarget& target) const {
  return !target.address.endpoint.empty();
}

ReplyMessage NexusSimProtocol::invoke(const wire::MessageHeader& header,
                                      wire::Buffer& payload,
                                      const CallTarget& target,
                                      CostLedger& ledger) {
  trace::Span span(trace::SpanKind::transport, "proto.nexus");
  transport::SimChannel channel(target.address.endpoint,
                                target.placement.link());
  return frame_roundtrip(channel, header, payload, ledger);
}

}  // namespace ohpx::proto
