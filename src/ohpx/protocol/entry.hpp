// Protocol table entries — the serializable heart of an Object Reference.
//
// An OR "contains a table of protocols and protocol specific information
// (proto-data) that can be used to access the object.  The protocols in the
// OR are ordered by preference." (paper §3.1).  A ProtoTable is exactly
// that: an ordered vector of (protocol name, opaque proto-data) pairs.
#pragma once

#include <string>
#include <vector>

#include "ohpx/common/bytes.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::proto {

struct ProtocolEntry {
  std::string name;  // registry key, e.g. "shm", "nexus-tcp", "glue"
  Bytes proto_data;  // protocol-specific blob (glue: chain + delegate)

  void wire_serialize(wire::Encoder& enc) const;
  static ProtocolEntry wire_deserialize(wire::Decoder& dec);

  friend bool operator==(const ProtocolEntry&, const ProtocolEntry&) = default;
};

class ProtoTable {
 public:
  ProtoTable() = default;
  explicit ProtoTable(std::vector<ProtocolEntry> entries)
      : entries_(std::move(entries)) {}

  void add(ProtocolEntry entry) { entries_.push_back(std::move(entry)); }

  const std::vector<ProtocolEntry>& entries() const noexcept { return entries_; }
  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }
  const ProtocolEntry& at(std::size_t i) const { return entries_.at(i); }

  void wire_serialize(wire::Encoder& enc) const;
  static ProtoTable wire_deserialize(wire::Decoder& dec);

  friend bool operator==(const ProtoTable&, const ProtoTable&) = default;

 private:
  std::vector<ProtocolEntry> entries_;
};

}  // namespace ohpx::proto
