// Protocol object pool (paper §3.1): "a repository of proto-objects,
// ordered by preference.  An application component uses a proto-pool to
// determine the protocols available to it for communication."
//
// The pool is the *client-local* half of protocol selection: the OR says
// what the server supports, the pool says what this context allows.  User
// control over selection (§3.2, fourth aspect) is exercised by editing the
// pool: disabling a protocol or reordering preferences.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::proto {

class ProtoPool {
 public:
  /// Pool allowing the standard protocols in default preference order:
  /// glue, shm, tcp, nexus-tcp (glue first so capability-bearing entries
  /// win whenever applicable, matching the paper's experiments).
  static ProtoPool standard();

  /// Empty pool: nothing allowed until enable() is called.
  ProtoPool() = default;

  explicit ProtoPool(std::vector<std::string> allowed)
      : allowed_(std::move(allowed)) {}

  bool allows(const std::string& protocol_name) const;

  /// Appends `protocol_name` with lowest preference (idempotent).
  void enable(const std::string& protocol_name);

  void disable(const std::string& protocol_name);

  /// Moves `protocol_name` to the front (highest local preference).
  void prefer(const std::string& protocol_name);

  std::vector<std::string> allowed() const;
  std::size_t size() const;

  /// Monotonically increasing edit counter: bumped by every enable /
  /// disable / prefer that changes the pool.  Selection caches key on it
  /// so a pool edit invalidates memoized protocol choices on the very
  /// next call (the paper's user-control aspect of selection, §3.2).
  std::uint64_t generation() const noexcept {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  void bump_generation() noexcept {
    generation_.fetch_add(1, std::memory_order_release);
  }

  mutable sync::Mutex mutex_{"proto.pool"};
  std::vector<std::string> allowed_ OHPX_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> generation_{1};
};

}  // namespace ohpx::proto
