// Relay protocol: gateway traversal for clients that cannot (or may not)
// reach a server endpoint directly.
//
// A gateway context hosts a RelayForwarder — an endpoint whose frames are
// envelopes: `string target-endpoint ‖ raw inner frame`.  The forwarder
// unwraps the envelope, performs the inner round trip against the target,
// and returns the reply.  The client-side RelayProtocol wraps every
// request in such an envelope addressed to the gateway; its proto-data is
// simply the gateway endpoint name.
//
// This is a worked example of the paper's "custom protocols via a
// standard interface" (§3.2) that is useful in its own right: references
// can force traffic through an auditing/filtering chokepoint by listing
// only the relay protocol in their table.
#pragma once

#include <atomic>
#include <string>

#include "ohpx/protocol/protocol.hpp"
#include "ohpx/transport/inproc.hpp"

namespace ohpx::proto {

/// Gateway side: binds `gateway_endpoint` into the endpoint registry and
/// forwards enveloped frames.  Unbinds on destruction.
class RelayForwarder {
 public:
  explicit RelayForwarder(std::string gateway_endpoint);
  ~RelayForwarder();

  RelayForwarder(const RelayForwarder&) = delete;
  RelayForwarder& operator=(const RelayForwarder&) = delete;

  const std::string& endpoint() const noexcept { return endpoint_; }
  std::uint64_t forwarded() const noexcept;

  /// Builds an envelope frame (exposed for tests).
  static wire::Buffer wrap(const std::string& target_endpoint,
                           const wire::Buffer& inner_frame);

 private:
  wire::Buffer handle(const wire::Buffer& envelope);

  std::string endpoint_;
  std::atomic<std::uint64_t> forwarded_{0};
};

/// Client side: carries requests through the gateway named in proto-data.
class RelayProtocol final : public Protocol {
 public:
  explicit RelayProtocol(std::string gateway_endpoint);

  std::string_view name() const noexcept override { return "relay"; }

  /// Applicable when the gateway is reachable and the target has an
  /// endpoint for the gateway to forward to.
  bool applicable(const CallTarget& target) const override;

  /// Applicability depends on whether the gateway is bound *right now* —
  /// external state no location epoch or pool generation tracks — so the
  /// selection cache must not memoize references that carry a relay entry.
  bool applicability_is_stable() const noexcept override { return false; }

  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget& target, CostLedger& ledger) override;

  std::string describe() const override;

  /// Builds the proto-data blob for an OR entry.
  static Bytes make_proto_data(const std::string& gateway_endpoint);

 private:
  std::string gateway_endpoint_;
};

}  // namespace ohpx::proto
