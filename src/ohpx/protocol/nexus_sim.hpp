// "Nexus-based TCP" protocol over the simulated network: frames travel
// through the in-process endpoint registry while the call is charged
// modeled wire time for the link the topology reports between client and
// server machines (ATM, Ethernet, WAN...).  This is the deterministic
// stand-in for the paper's Nexus TCP protocol (DESIGN.md §2).
#pragma once

#include "ohpx/protocol/protocol.hpp"

namespace ohpx::proto {

class NexusSimProtocol final : public Protocol {
 public:
  std::string_view name() const noexcept override { return "nexus-tcp"; }

  /// Applicable for any placement with a reachable endpoint — like real
  /// TCP, it is the universal fallback (lowest preference in the paper's
  /// Figure 4 protocol table).
  bool applicable(const CallTarget& target) const override;

  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget& target, CostLedger& ledger) override;
};

}  // namespace ohpx::proto
