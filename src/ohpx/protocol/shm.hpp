// Shared-memory protocol: direct in-process hand-off to the server
// context's endpoint.  Applicable only when client and server share a
// machine (paper §4.3: "a shared memory based protocol is applicable only
// for clients and servers running on the same machine").  The only cost is
// the real CPU time of framing and dispatch — which is why, as in the
// paper's Figure 5, it beats every network protocol by over an order of
// magnitude.
#pragma once

#include "ohpx/protocol/protocol.hpp"

namespace ohpx::proto {

class ShmProtocol final : public Protocol {
 public:
  std::string_view name() const noexcept override { return "shm"; }
  bool applicable(const CallTarget& target) const override;
  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget& target, CostLedger& ledger) override;
};

}  // namespace ohpx::proto
