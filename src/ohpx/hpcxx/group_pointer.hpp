// HPC++-style group operations over sets of remote objects.
//
// The paper grounds Open HPC++ in HPC++ (§2), whose HPC++Lib toolkit
// provides collective operations across contexts.  This module gives the
// same flavour on top of global pointers: a GroupPointer<Stub> holds
// references to N replicas/peers of one interface and offers
//
//   * broadcast — invoke on every member (concurrently), gather results;
//   * any      — failover: try members in order until one succeeds;
//   * round_robin — spread successive calls across members;
//
// Each member is an independent OR, so different members may carry
// different protocol tables and capability sets — a replicated service can
// hand out authenticated references for remote replicas and raw ones for
// local replicas, and the group machinery adapts per member.
#pragma once

#include <atomic>
#include <functional>
#include <future>
#include <vector>

#include "ohpx/common/error.hpp"
#include "ohpx/common/thread_pool.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/orb/global_pointer.hpp"

namespace ohpx::hpcxx {

template <orb::TypedStub StubT>
class GroupPointer {
 public:
  GroupPointer() = default;

  /// Binds every reference in `context`.  Throws on type mismatch.
  GroupPointer(orb::Context& context, const std::vector<orb::ObjectRef>& refs) {
    members_.reserve(refs.size());
    for (const auto& ref : refs) {
      members_.emplace_back(context, ref);
    }
  }

  void add(orb::Context& context, const orb::ObjectRef& ref) {
    members_.emplace_back(context, ref);
  }

  std::size_t size() const noexcept { return members_.size(); }
  bool empty() const noexcept { return members_.empty(); }

  StubT& member(std::size_t index) { return members_.at(index).stub(); }

  /// Invokes `op` on every member concurrently and gathers the results in
  /// member order.  Exceptions from any member propagate (the first one,
  /// after all futures settle).
  template <typename Ret>
  std::vector<Ret> broadcast(const std::function<Ret(StubT&)>& op) {
    require_members();
    std::vector<std::future<Ret>> futures;
    futures.reserve(members_.size());
    for (auto& member : members_) {
      StubT& stub = member.stub();
      futures.push_back(
          ThreadPool::shared().async([&stub, &op] { return op(stub); }));
    }
    std::vector<Ret> results;
    results.reserve(futures.size());
    std::exception_ptr first_error;
    for (auto& future : futures) {
      try {
        results.push_back(future.get());
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return results;
  }

  /// Failover: applies `op` to members in order, returning the first
  /// success.  If every member fails, rethrows the last failure.
  template <typename Ret>
  Ret any(const std::function<Ret(StubT&)>& op) {
    require_members();
    std::exception_ptr last_error;
    for (auto& member : members_) {
      try {
        return op(member.stub());
      } catch (const Error& e) {
        log_debug("hpcxx", "group member failed (", e.what(),
                  "), trying next");
        last_error = std::current_exception();
      }
    }
    std::rethrow_exception(last_error);
  }

  /// Spreads successive calls across members (thread-safe counter).
  template <typename Ret>
  Ret round_robin(const std::function<Ret(StubT&)>& op) {
    require_members();
    const std::size_t index =
        next_.fetch_add(1, std::memory_order_relaxed) % members_.size();
    return op(members_[index].stub());
  }

  /// Index the next round_robin call will use (for tests/diagnostics).
  std::size_t next_index() const noexcept {
    return members_.empty() ? 0 : next_.load(std::memory_order_relaxed) % members_.size();
  }

 private:
  void require_members() const {
    if (members_.empty()) {
      throw ObjectError(ErrorCode::bad_object_ref, "group has no members");
    }
  }

  std::vector<orb::GlobalPointer<StubT>> members_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace ohpx::hpcxx
