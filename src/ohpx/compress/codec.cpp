#include "ohpx/compress/codec.hpp"

#include <algorithm>
#include <array>
#include <cstring>

#include "ohpx/common/error.hpp"

namespace ohpx::compress {
namespace {

constexpr std::size_t kHeaderSize = 5;  // u8 id + u32 original size

void write_header(Bytes& out, CodecId id, std::size_t original_size) {
  out.push_back(static_cast<std::uint8_t>(id));
  for (int shift = 24; shift >= 0; shift -= 8) {
    out.push_back(static_cast<std::uint8_t>(original_size >> shift));
  }
}

/// Validates the header, checks the id matches, returns the original size
/// and advances `input` past the header.
std::size_t read_header(BytesView& input, CodecId expected) {
  if (input.size() < kHeaderSize) {
    throw WireError(ErrorCode::wire_truncated, "compressed blob too short");
  }
  if (input[0] != static_cast<std::uint8_t>(expected)) {
    throw WireError(ErrorCode::wire_bad_value, "codec id mismatch");
  }
  std::size_t size = 0;
  for (int i = 1; i <= 4; ++i) size = (size << 8) | input[static_cast<std::size_t>(i)];
  input = input.subspan(kHeaderSize);
  return size;
}

// ---- identity ----------------------------------------------------------

class IdentityCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::identity; }
  std::string_view name() const noexcept override { return "identity"; }

  Bytes compress(BytesView input) const override {
    Bytes out;
    out.reserve(kHeaderSize + input.size());
    write_header(out, CodecId::identity, input.size());
    out.insert(out.end(), input.begin(), input.end());
    return out;
  }

  Bytes decompress(BytesView input) const override {
    const std::size_t original = read_header(input, CodecId::identity);
    if (input.size() != original) {
      throw WireError(ErrorCode::wire_bad_value, "identity size mismatch");
    }
    return Bytes(input.begin(), input.end());
  }
};

// ---- RLE ----------------------------------------------------------------
//
// Token stream:
//   0x00..0x7f : literal run — (token+1) raw bytes follow   (1..128)
//   0x80..0xff : repeat run  — value byte follows, length = (token&0x7f)+3
//                                                            (3..130)

class RleCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::rle; }
  std::string_view name() const noexcept override { return "rle"; }

  Bytes compress(BytesView input) const override {
    Bytes out;
    out.reserve(kHeaderSize + input.size() + input.size() / 128 + 1);
    write_header(out, CodecId::rle, input.size());

    std::size_t i = 0;
    std::size_t literal_start = 0;
    auto flush_literals = [&](std::size_t end) {
      std::size_t start = literal_start;
      while (start < end) {
        const std::size_t chunk = std::min<std::size_t>(128, end - start);
        out.push_back(static_cast<std::uint8_t>(chunk - 1));
        out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(start),
                   input.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        start += chunk;
      }
    };

    while (i < input.size()) {
      std::size_t run = 1;
      while (i + run < input.size() && input[i + run] == input[i] && run < 130) {
        ++run;
      }
      if (run >= 3) {
        flush_literals(i);
        out.push_back(static_cast<std::uint8_t>(0x80 | (run - 3)));
        out.push_back(input[i]);
        i += run;
        literal_start = i;
      } else {
        i += run;
      }
    }
    flush_literals(input.size());
    return out;
  }

  Bytes decompress(BytesView input) const override {
    const std::size_t original = read_header(input, CodecId::rle);
    Bytes out;
    out.reserve(original);
    std::size_t i = 0;
    while (i < input.size()) {
      const std::uint8_t token = input[i++];
      if (token < 0x80) {
        const std::size_t count = static_cast<std::size_t>(token) + 1;
        if (i + count > input.size()) {
          throw WireError(ErrorCode::wire_truncated, "rle literal overruns input");
        }
        if (out.size() + count > original) {
          throw WireError(ErrorCode::wire_overflow, "rle output exceeds declared size");
        }
        out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                   input.begin() + static_cast<std::ptrdiff_t>(i + count));
        i += count;
      } else {
        if (i >= input.size()) {
          throw WireError(ErrorCode::wire_truncated, "rle run missing value byte");
        }
        const std::size_t count = static_cast<std::size_t>(token & 0x7f) + 3;
        if (out.size() + count > original) {
          throw WireError(ErrorCode::wire_overflow, "rle output exceeds declared size");
        }
        out.insert(out.end(), count, input[i++]);
      }
    }
    if (out.size() != original) {
      throw WireError(ErrorCode::wire_truncated, "rle output shorter than declared");
    }
    return out;
  }
};

// ---- LZ77 ----------------------------------------------------------------
//
// Token stream:
//   0x00..0x7f : literal run — (token+1) raw bytes follow      (1..128)
//   0x80..0xff : match — length = (token&0x7f)+kMinMatch, then u16
//                big-endian back-offset (1..65535)

constexpr std::size_t kMinMatch = 4;
constexpr std::size_t kMaxMatch = kMinMatch + 0x7f;  // 131
constexpr std::size_t kWindow = 65535;
constexpr std::size_t kHashBits = 15;
constexpr std::size_t kHashSize = 1u << kHashBits;

std::uint32_t lz_hash(const std::uint8_t* p) noexcept {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return (v * 2654435761u) >> (32 - kHashBits);
}

class LzCodec final : public Codec {
 public:
  CodecId id() const noexcept override { return CodecId::lz; }
  std::string_view name() const noexcept override { return "lz77"; }

  Bytes compress(BytesView input) const override {
    Bytes out;
    out.reserve(kHeaderSize + input.size() + input.size() / 128 + 1);
    write_header(out, CodecId::lz, input.size());

    const std::size_t n = input.size();
    std::vector<std::int64_t> head(kHashSize, -1);
    std::vector<std::int64_t> prev(n, -1);

    std::size_t literal_start = 0;
    auto flush_literals = [&](std::size_t end) {
      std::size_t start = literal_start;
      while (start < end) {
        const std::size_t chunk = std::min<std::size_t>(128, end - start);
        out.push_back(static_cast<std::uint8_t>(chunk - 1));
        out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(start),
                   input.begin() + static_cast<std::ptrdiff_t>(start + chunk));
        start += chunk;
      }
    };

    std::size_t i = 0;
    while (i < n) {
      std::size_t best_len = 0;
      std::size_t best_off = 0;
      if (i + kMinMatch <= n) {
        const std::uint32_t h = lz_hash(input.data() + i);
        std::int64_t candidate = head[h];
        int chain = 32;  // bounded chain walk keeps compression O(n)
        while (candidate >= 0 && chain-- > 0 &&
               i - static_cast<std::size_t>(candidate) <= kWindow) {
          const std::size_t cand = static_cast<std::size_t>(candidate);
          std::size_t len = 0;
          const std::size_t limit = std::min(n - i, kMaxMatch);
          while (len < limit && input[cand + len] == input[i + len]) ++len;
          if (len > best_len) {
            best_len = len;
            best_off = i - cand;
            if (len == limit) break;
          }
          candidate = prev[cand];
        }
      }

      if (best_len >= kMinMatch) {
        flush_literals(i);
        out.push_back(static_cast<std::uint8_t>(0x80 | (best_len - kMinMatch)));
        out.push_back(static_cast<std::uint8_t>(best_off >> 8));
        out.push_back(static_cast<std::uint8_t>(best_off & 0xff));
        // Index every position inside the match so later matches can refer
        // into it.
        const std::size_t end = i + best_len;
        for (; i < end && i + kMinMatch <= n; ++i) {
          const std::uint32_t h = lz_hash(input.data() + i);
          prev[i] = head[h];
          head[h] = static_cast<std::int64_t>(i);
        }
        i = end;
        literal_start = i;
      } else {
        if (i + kMinMatch <= n) {
          const std::uint32_t h = lz_hash(input.data() + i);
          prev[i] = head[h];
          head[h] = static_cast<std::int64_t>(i);
        }
        ++i;
      }
    }
    flush_literals(n);
    return out;
  }

  Bytes decompress(BytesView input) const override {
    const std::size_t original = read_header(input, CodecId::lz);
    Bytes out;
    out.reserve(original);
    std::size_t i = 0;
    while (i < input.size()) {
      const std::uint8_t token = input[i++];
      if (token < 0x80) {
        const std::size_t count = static_cast<std::size_t>(token) + 1;
        if (i + count > input.size()) {
          throw WireError(ErrorCode::wire_truncated, "lz literal overruns input");
        }
        if (out.size() + count > original) {
          throw WireError(ErrorCode::wire_overflow, "lz output exceeds declared size");
        }
        out.insert(out.end(), input.begin() + static_cast<std::ptrdiff_t>(i),
                   input.begin() + static_cast<std::ptrdiff_t>(i + count));
        i += count;
      } else {
        if (i + 2 > input.size()) {
          throw WireError(ErrorCode::wire_truncated, "lz match missing offset");
        }
        const std::size_t len = static_cast<std::size_t>(token & 0x7f) + kMinMatch;
        const std::size_t off = (static_cast<std::size_t>(input[i]) << 8) |
                                static_cast<std::size_t>(input[i + 1]);
        i += 2;
        if (off == 0 || off > out.size()) {
          throw WireError(ErrorCode::wire_bad_value, "lz match offset out of range");
        }
        if (out.size() + len > original) {
          throw WireError(ErrorCode::wire_overflow, "lz output exceeds declared size");
        }
        // Byte-by-byte copy: source and destination may overlap (off < len
        // encodes a repeating pattern).
        std::size_t src = out.size() - off;
        for (std::size_t k = 0; k < len; ++k) out.push_back(out[src + k]);
      }
    }
    if (out.size() != original) {
      throw WireError(ErrorCode::wire_truncated, "lz output shorter than declared");
    }
    return out;
  }
};

}  // namespace

std::unique_ptr<Codec> make_identity_codec() { return std::make_unique<IdentityCodec>(); }
std::unique_ptr<Codec> make_rle_codec() { return std::make_unique<RleCodec>(); }
std::unique_ptr<Codec> make_lz_codec() { return std::make_unique<LzCodec>(); }

std::unique_ptr<Codec> make_codec(CodecId id) {
  switch (id) {
    case CodecId::identity: return make_identity_codec();
    case CodecId::rle: return make_rle_codec();
    case CodecId::lz: return make_lz_codec();
  }
  throw WireError(ErrorCode::wire_bad_value, "unknown codec id");
}

CodecId peek_codec(BytesView compressed) {
  if (compressed.empty()) {
    throw WireError(ErrorCode::wire_truncated, "empty compressed blob");
  }
  const std::uint8_t id = compressed[0];
  if (id > static_cast<std::uint8_t>(CodecId::lz)) {
    throw WireError(ErrorCode::wire_bad_value, "unknown codec id");
  }
  return static_cast<CodecId>(id);
}

}  // namespace ohpx::compress
