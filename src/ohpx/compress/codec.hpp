// Compression codecs used by the compression capability.
//
// Wire format of every codec's output:
//   u8  codec id
//   u32 original size (big-endian)
//   ... codec-specific token stream
// Decompression is fully bounds-checked and throws WireError on malformed
// input; it never writes more than the declared original size.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "ohpx/common/bytes.hpp"

namespace ohpx::compress {

enum class CodecId : std::uint8_t {
  identity = 0,
  rle = 1,
  lz = 2,
};

class Codec {
 public:
  virtual ~Codec() = default;

  virtual CodecId id() const noexcept = 0;
  virtual std::string_view name() const noexcept = 0;

  /// Compresses `input`; output always carries the codec header.
  virtual Bytes compress(BytesView input) const = 0;

  /// Inverse of compress; throws WireError on malformed input.
  virtual Bytes decompress(BytesView input) const = 0;
};

/// Codec that stores the input verbatim (baseline / fallback).
std::unique_ptr<Codec> make_identity_codec();

/// Byte-run-length codec: wins on highly repetitive payloads.
std::unique_ptr<Codec> make_rle_codec();

/// LZ77 codec with a 64 KiB window and hash-chain match finder.
std::unique_ptr<Codec> make_lz_codec();

/// Factory by id (used when decoding capability descriptors).
std::unique_ptr<Codec> make_codec(CodecId id);

/// Reads the codec id of a compressed blob without decompressing.
CodecId peek_codec(BytesView compressed);

}  // namespace ohpx::compress
