// NameClient: the caching client face of the directory (satellite of the
// multi-process deployment work, but useful in-process too).
//
// resolve() memoizes {reference, entry version} per name, so steady-state
// lookups cost a map probe instead of a remote call.  The version is the
// staleness token: the directory bumps it on *every* mutation of a name,
// and resolve replies carry it, so a cache refresh can tell whether the
// world moved underneath it.  invalidate(name) drops one cached entry —
// failover clients call it when a replica dies so the next resolve goes
// back to the directory.
//
// Thread-safe; one NameClient is typically shared by every stub a process
// binds through it.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/naming/name_service.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::naming {

class NameClient {
 public:
  /// Binds to the directory at `bootstrap` (typically from
  /// bootstrap_from_uri() or NameServiceHost::ref()).
  NameClient(orb::Context& context, orb::ObjectRef bootstrap);

  /// Convenience: parses a bootstrap URI (host:port or reference file).
  NameClient(orb::Context& context, const std::string& bootstrap_uri);

  /// The raw directory stub (uncached operations).
  NameServiceStub& directory() noexcept { return stub_; }

  /// Cached resolve.  A hit answers from memory; a miss asks the
  /// directory and remembers {ref, version}.  Throws
  /// ObjectError(object_not_found) for unbound names.
  orb::ObjectRef resolve(const std::string& name);

  /// Bypasses and refills the cache (always a remote call).
  orb::ObjectRef resolve_fresh(const std::string& name);

  /// Every live replica of `name` plus the entry version; never cached —
  /// failover wants the directory's current truth.
  std::pair<std::uint64_t, std::vector<orb::ObjectRef>> resolve_all(
      const std::string& name);

  /// Drops one cached entry; the next resolve() re-asks the directory.
  void invalidate(const std::string& name);
  void invalidate_all();

  /// Version the cache holds for `name` (nullopt = not cached).
  std::optional<std::uint64_t> cached_version(const std::string& name) const;

  // Write-through passthroughs (mutations invalidate the local cache so a
  // process never serves its own stale write).
  void bind(const std::string& name, const orb::ObjectRef& ref,
            bool rebind = false);
  bool unbind(const std::string& name);
  std::uint64_t bind_replica(const std::string& name,
                             const orb::ObjectRef& ref,
                             std::chrono::milliseconds ttl);
  bool heartbeat(const std::string& name, std::uint64_t replica_id,
                 std::chrono::milliseconds ttl);
  bool unbind_replica(const std::string& name, std::uint64_t replica_id);
  std::uint64_t report_dead(const std::string& name,
                            const orb::ObjectRef& dead);

 private:
  struct CacheEntry {
    Bytes ref;
    std::uint64_t version = 0;
  };

  NameServiceStub stub_;
  mutable sync::Mutex mutex_{"naming.client_cache"};
  std::map<std::string, CacheEntry> cache_ OHPX_GUARDED_BY(mutex_);
  metrics::MetricsRegistry::Counter* cache_hits_;
  metrics::MetricsRegistry::Counter* cache_misses_;
};

}  // namespace ohpx::naming
