// Replica failover: a stub wrapper that survives the death of the server
// it is bound to.
//
// A ReplicaPointer<Stub> binds `name` through the directory and forwards
// calls to whichever replica it is currently attached to.  Two signals
// trigger a rebind:
//   - a TransportError thrown by a call (connection refused, reset,
//     channel died mid-exchange) — except backpressure, which means the
//     channel is saturated, not broken;
//   - the stub's circuit breaker opening (BreakerSet trip hook), which
//     marks the *next* call for re-resolution without waiting for it to
//     fail too.
// On either, the pointer reports the dead replica to the directory
// (report_dead — failover must not wait out the lease), invalidates the
// NameClient cache, re-resolves, and retries the call against each
// remaining replica in directory order.  Directory order is insertion
// order, so every client fails over to the same survivor —
// deterministic, which the multi-process kill -9 test relies on.
//
// Calls routed through call() keep the acknowledged-call invariant from
// the resilience layer: attempts() == successful calls + failovers, so a
// test can prove no acknowledged call was lost across a kill.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "ohpx/common/error.hpp"
#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/naming/name_client.hpp"
#include "ohpx/resilience/breaker.hpp"
#include "ohpx/trace/trace.hpp"

namespace ohpx::naming {

template <typename Stub>
class ReplicaPointer {
 public:
  /// Binds lazily: the first call (or current_ref()) resolves `name`.
  /// `breakers` with a non-zero threshold arms per-entry circuit breakers
  /// on each bound stub and hooks their trips into re-resolution.
  ReplicaPointer(orb::Context& context, NameClient& names, std::string name,
                 resilience::BreakerConfig breakers = {})
      : context_(context),
        names_(names),
        name_(std::move(name)),
        breaker_config_(breakers),
        failovers_counter_(metrics::MetricsRegistry::global().counter_handle(
            metrics::names::kNamingFailovers)) {}

  ~ReplicaPointer() {
    // The breaker set (and its hook) can outlive us via async tickets;
    // the hook captures `this`, so sever it now.
    if (stub_.bound() && breaker_config_.enabled()) {
      stub_.set_breaker_trip_hook(nullptr);
    }
  }

  ReplicaPointer(const ReplicaPointer&) = delete;
  ReplicaPointer& operator=(const ReplicaPointer&) = delete;

  const std::string& name() const noexcept { return name_; }

  /// Rebinds performed since construction (kill -9 observability).
  std::uint64_t failovers() const noexcept {
    return failovers_.load(std::memory_order_relaxed);
  }

  /// Stub invocations attempted through call(), failover retries
  /// included — the client half of the attempts == calls + retries
  /// invariant.
  std::uint64_t attempts() const noexcept {
    return attempts_.load(std::memory_order_relaxed);
  }

  /// The reference currently bound (resolving on first use).
  const orb::ObjectRef& current_ref() {
    ensure_bound();
    return stub_.ref();
  }

  /// The bound stub, for calls that manage failover themselves.
  Stub& stub() {
    ensure_bound();
    return stub_;
  }

  /// Invokes `fn(stub)` with failover: a transport loss (or an earlier
  /// breaker trip) reports the replica dead, re-resolves the name and
  /// retries against each remaining replica.  Exhausting the replica set
  /// rethrows the last transport error; non-transport errors (remote
  /// application errors, deadline, backpressure) pass through untouched —
  /// they came from a live server.
  template <typename Fn>
  auto call(Fn&& fn) {
    ensure_bound();
    if (rebind_requested_.exchange(false, std::memory_order_acq_rel)) {
      failover_to_next(nullptr);
    }
    try {
      attempts_.fetch_add(1, std::memory_order_relaxed);
      return fn(stub_);
    } catch (const TransportError& e) {
      if (e.code() == ErrorCode::backpressure) throw;
      // Walk the remaining replicas; each candidate gets one attempt.
      while (true) {
        // Copy, not reference: failover rebinds stub_ underneath.
        const orb::ObjectRef dead = stub_.ref();
        if (!failover_to_next(&dead)) throw;
        try {
          attempts_.fetch_add(1, std::memory_order_relaxed);
          return fn(stub_);
        } catch (const TransportError& again) {
          if (again.code() == ErrorCode::backpressure) throw;
        }
      }
    }
  }

 private:
  void ensure_bound() {
    if (stub_.bound()) return;
    bind_to(names_.resolve(name_));
  }

  void bind_to(const orb::ObjectRef& ref) {
    if (stub_.bound() && breaker_config_.enabled()) {
      stub_.set_breaker_trip_hook(nullptr);
    }
    stub_ = Stub(context_, ref);
    if (breaker_config_.enabled()) {
      stub_.set_breaker_config(breaker_config_);
      stub_.set_breaker_trip_hook([this](std::size_t) {
        rebind_requested_.store(true, std::memory_order_release);
      });
    }
  }

  /// Reports `dead` (if any), re-resolves and binds the first replica
  /// that is not `dead` — matched with same_replica(), because object ids
  /// collide across processes.  False when no other replica is
  /// registered.
  bool failover_to_next(const orb::ObjectRef* dead) {
    if (dead != nullptr) {
      try {
        names_.report_dead(name_, *dead);
      } catch (const Error&) {
        // The directory itself may be unreachable; failover proceeds on
        // whatever resolve_all can still tell us below.
      }
    }
    names_.invalidate(name_);
    std::pair<std::uint64_t, std::vector<orb::ObjectRef>> live;
    try {
      live = names_.resolve_all(name_);
    } catch (const Error&) {
      return false;
    }
    for (const orb::ObjectRef& ref : live.second) {
      if (dead != nullptr && same_replica(ref, *dead)) continue;
      bind_to(ref);
      failovers_.fetch_add(1, std::memory_order_relaxed);
      failovers_counter_->fetch_add(1, std::memory_order_relaxed);
      trace::event("naming.failover", name_);
      return true;
    }
    return false;
  }

  orb::Context& context_;
  NameClient& names_;
  std::string name_;
  resilience::BreakerConfig breaker_config_;
  Stub stub_;
  std::atomic<bool> rebind_requested_{false};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> attempts_{0};
  metrics::MetricsRegistry::Counter* failovers_counter_;
};

}  // namespace ohpx::naming
