#include "ohpx/naming/bootstrap.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "ohpx/common/error.hpp"
#include "ohpx/naming/name_service.hpp"

namespace ohpx::naming {

orb::ObjectRef make_bootstrap_ref(const std::string& host,
                                  std::uint16_t port) {
  proto::ServerAddress address;
  address.context_id = 0;
  address.machine = netsim::kInvalidMachine;  // foreign: WAN-model placement
  address.tcp_host = host;
  address.tcp_port = port;
  proto::ProtoTable table;
  table.add(proto::ProtocolEntry{"tcp", {}});
  return orb::ObjectRef(kWellKnownNameServiceId,
                        std::string(NameServiceServant::kTypeName), address,
                        std::move(table));
}

orb::ObjectRef bootstrap_from_uri(const std::string& uri) {
  std::string spec = uri;
  if (spec.rfind("file:", 0) == 0) {
    return read_bootstrap_file(spec.substr(5));
  }
  if (spec.find('/') != std::string::npos ||
      (spec.size() > 4 && spec.compare(spec.size() - 4, 4, ".ref") == 0)) {
    return read_bootstrap_file(spec);
  }
  const auto colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "bootstrap URI '" + uri +
                          "' is neither host:port nor a reference file");
  }
  const std::string host = spec.substr(0, colon);
  int port = 0;
  try {
    port = std::stoi(spec.substr(colon + 1));
  } catch (const std::exception&) {
    port = -1;
  }
  if (port <= 0 || port > 65535) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "bootstrap URI '" + uri + "' has an invalid port");
  }
  return make_bootstrap_ref(host, static_cast<std::uint16_t>(port));
}

void write_bootstrap_file(const std::string& path,
                          const orb::ObjectRef& ref) {
  const Bytes raw = ref.to_bytes();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw ObjectError(ErrorCode::bad_object_ref,
                        "cannot write bootstrap file '" + tmp + "'");
    }
    out.write(reinterpret_cast<const char*>(raw.data()),
              static_cast<std::streamsize>(raw.size()));
    if (!out.good()) {
      throw ObjectError(ErrorCode::bad_object_ref,
                        "short write to bootstrap file '" + tmp + "'");
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot rename bootstrap file into '" + path + "'");
  }
}

orb::ObjectRef read_bootstrap_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot read bootstrap file '" + path + "'");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string raw = buffer.str();
  try {
    return orb::ObjectRef::from_bytes(BytesView(
        reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size()));
  } catch (const Error&) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "bootstrap file '" + path +
                          "' does not hold a serialized reference");
  }
}

}  // namespace ohpx::naming
