// Bootstrap references: how a process with *no* prior Open HPC++ state
// finds the name service.  Everything else is resolved through the
// directory, so this is the deployment's single well-known coordinate.
//
// Two interchangeable formats (docs/deployment.md):
//   "host:port"    — the daemon's TCP coordinate; the client synthesizes a
//                    reference to the well-known directory object id.
//   a file path    — the serialized reference `ohpx-named --ref-file`
//                    wrote (detected by a '/' in the URI, a "file:"
//                    prefix, or a ".ref" suffix).
#pragma once

#include <cstdint>
#include <string>

#include "ohpx/orb/object_ref.hpp"

namespace ohpx::naming {

/// The directory servant's well-known object id ("ohpx-nam" in ASCII).
/// Every ohpx-named instance activates under this id, which is what makes
/// a bare host:port a complete bootstrap coordinate.
inline constexpr orb::ObjectId kWellKnownNameServiceId = 0x6f68'7078'2d6e'616dULL;

/// Synthesizes a reference to the directory at `host`:`port` — TCP-only
/// protocol table, foreign machine id (placement falls back to the WAN
/// model), the well-known object id.
orb::ObjectRef make_bootstrap_ref(const std::string& host, std::uint16_t port);

/// Turns a bootstrap URI (either format above) into a reference.
/// Throws ObjectError(bad_object_ref) for unparseable URIs and
/// unreadable/garbled files.
orb::ObjectRef bootstrap_from_uri(const std::string& uri);

/// Writes `ref` serialized to `path` (temp file + rename, so a concurrent
/// reader never sees a half-written reference).
void write_bootstrap_file(const std::string& path, const orb::ObjectRef& ref);

/// Reads a serialized reference back.  Throws ObjectError(bad_object_ref)
/// when missing or garbled.
orb::ObjectRef read_bootstrap_file(const std::string& path);

}  // namespace ohpx::naming
