#include "ohpx/naming/name_client.hpp"

#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/naming/bootstrap.hpp"

namespace ohpx::naming {

NameClient::NameClient(orb::Context& context, orb::ObjectRef bootstrap)
    : stub_(context, std::move(bootstrap)) {
  auto& registry = metrics::MetricsRegistry::global();
  cache_hits_ =
      registry.counter_handle(metrics::names::kNamingResolveCacheHit);
  cache_misses_ =
      registry.counter_handle(metrics::names::kNamingResolveCacheMiss);
}

NameClient::NameClient(orb::Context& context, const std::string& bootstrap_uri)
    : NameClient(context, bootstrap_from_uri(bootstrap_uri)) {}

orb::ObjectRef NameClient::resolve(const std::string& name) {
  {
    sync::LockGuard lock(mutex_);
    const auto it = cache_.find(name);
    if (it != cache_.end()) {
      cache_hits_->fetch_add(1, std::memory_order_relaxed);
      return orb::ObjectRef::from_bytes(it->second.ref);
    }
  }
  cache_misses_->fetch_add(1, std::memory_order_relaxed);
  return resolve_fresh(name);
}

orb::ObjectRef NameClient::resolve_fresh(const std::string& name) {
  auto [version, ref] = stub_.resolve_versioned(name);
  sync::LockGuard lock(mutex_);
  // A concurrent refresh may already hold a newer version; never let an
  // older in-flight reply roll the cache backwards.
  CacheEntry& entry = cache_[name];
  if (entry.version <= version) {
    entry = CacheEntry{ref.to_bytes(), version};
    return ref;
  }
  return orb::ObjectRef::from_bytes(entry.ref);
}

std::pair<std::uint64_t, std::vector<orb::ObjectRef>> NameClient::resolve_all(
    const std::string& name) {
  return stub_.resolve_all(name);
}

void NameClient::invalidate(const std::string& name) {
  sync::LockGuard lock(mutex_);
  cache_.erase(name);
}

void NameClient::invalidate_all() {
  sync::LockGuard lock(mutex_);
  cache_.clear();
}

std::optional<std::uint64_t> NameClient::cached_version(
    const std::string& name) const {
  sync::LockGuard lock(mutex_);
  const auto it = cache_.find(name);
  if (it == cache_.end()) return std::nullopt;
  return it->second.version;
}

void NameClient::bind(const std::string& name, const orb::ObjectRef& ref,
                      bool rebind) {
  stub_.bind(name, ref, rebind);
  invalidate(name);
}

bool NameClient::unbind(const std::string& name) {
  const bool existed = stub_.unbind(name);
  invalidate(name);
  return existed;
}

std::uint64_t NameClient::bind_replica(const std::string& name,
                                       const orb::ObjectRef& ref,
                                       std::chrono::milliseconds ttl) {
  const std::uint64_t replica_id = stub_.bind_replica(name, ref, ttl);
  invalidate(name);
  return replica_id;
}

bool NameClient::heartbeat(const std::string& name, std::uint64_t replica_id,
                           std::chrono::milliseconds ttl) {
  return stub_.heartbeat(name, replica_id, ttl);
}

bool NameClient::unbind_replica(const std::string& name,
                                std::uint64_t replica_id) {
  const bool existed = stub_.unbind_replica(name, replica_id);
  invalidate(name);
  return existed;
}

std::uint64_t NameClient::report_dead(const std::string& name,
                                      const orb::ObjectRef& dead) {
  const std::uint64_t dropped = stub_.report_dead(name, dead);
  if (dropped > 0) invalidate(name);
  return dropped;
}

}  // namespace ohpx::naming
