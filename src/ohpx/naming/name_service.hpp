// Naming service: a CORBA-style name → object-reference directory,
// itself implemented as an ordinary Open HPC++ servant.  Clients bootstrap
// from a single well-known reference (the name service's own OR) and
// resolve everything else through remote calls — including references
// whose glue entries carry capabilities, so handing out a name is handing
// out an access policy.
//
//   server:  naming::NameServiceHost host(server_ctx);
//            host.service().bind("weather/public", kiosk_ref);
//   client:  naming::NameClient names(client_ctx, host.ref());
//            auto ref = names.resolve("weather/public");
//
// Names are flat strings; use '/' segments by convention.  bind() on an
// existing name throws unless rebind is requested.
//
// Replica sets (docs/deployment.md): several servers may register under
// one name with bind_replica(), each registration kept alive by a lease
// (capability/builtin/lease.hpp) that heartbeats renew.  resolve() hands
// out the first *live* replica; resolve_all() hands out every live one so
// failover clients can walk the set.  Every mutation of a name — bind,
// replica join/leave, lease expiry, dead report — bumps that name's
// version, which travels with resolve replies so client caches
// (NameClient) can detect staleness.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/common/annotations.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::naming {

/// Replica identity: object ids are per-context counters, so two
/// *processes* hosting replicas of one name routinely collide on
/// object_id alone.  What a client actually observed dead is the
/// (object id, home TCP endpoint) pair — the comparison every dead-report
/// and failover-skip decision uses.
inline bool same_replica(const orb::ObjectRef& a,
                         const orb::ObjectRef& b) noexcept {
  return a.object_id() == b.object_id() &&
         a.home().tcp_host == b.home().tcp_host &&
         a.home().tcp_port == b.home().tcp_port;
}

/// One registered replica of a name: the serialized OR plus the lease
/// keeping it alive (a null lease never expires — plain bind() records).
struct ReplicaRecord {
  std::uint64_t replica_id = 0;
  Bytes ref;
  std::shared_ptr<cap::LeaseCapability> lease;

  bool live() const noexcept { return !lease || !lease->expired(); }
};

/// The directory servant.  Thread-safe; stores serialized ORs so entries
/// survive independent of any context's lifetime.
class NameServiceServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "NameService";

  enum Method : std::uint32_t {
    kBind = 1,        // (name: string, ref: bytes, rebind: bool) -> ()
    kResolve = 2,     // (name: string) -> bytes
    kUnbind = 3,      // (name: string) -> bool (existed)
    kList = 4,        // (prefix: string) -> vector<string>
    kBindReplica = 5,      // (name, ref: bytes, ttl_ms: u64) -> u64 id
    kHeartbeat = 6,        // (name, replica_id: u64, ttl_ms: u64) -> bool
    kUnbindReplica = 7,    // (name, replica_id: u64) -> bool
    kResolveAll = 8,       // (name) -> pair<u64 version, vector<bytes>>
    kReportDead = 9,       // (name, dead ref: bytes) -> u64 (dropped)
    kResolveVersioned = 10,  // (name) -> pair<u64 version, bytes>
  };

  NameServiceServant();

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  // Local (in-process) API, used directly by the hosting server.
  void bind(const std::string& name, const orb::ObjectRef& ref,
            bool rebind = false);
  std::optional<orb::ObjectRef> resolve(const std::string& name) const;
  bool unbind(const std::string& name);
  std::vector<std::string> list(const std::string& prefix) const;
  std::size_t size() const;

  // -- replica sets + leases --

  /// Adds `ref` as a replica of `name` under a `ttl`-long lease (renewed
  /// by heartbeats; ttl zero = no lease, never expires).  Returns the
  /// replica id the registrant heartbeats with.
  std::uint64_t bind_replica(const std::string& name,
                             const orb::ObjectRef& ref,
                             std::chrono::milliseconds ttl);

  /// Renews one replica's lease.  False when the registration is gone
  /// (expired and swept, or the daemon restarted) — re-register then.
  bool heartbeat(const std::string& name, std::uint64_t replica_id,
                 std::chrono::milliseconds ttl);

  /// Withdraws one replica (clean shutdown).  False when unknown.
  bool unbind_replica(const std::string& name, std::uint64_t replica_id);

  /// Every live replica of `name`, with the entry version the set was
  /// read at.  Unbound names answer {version, empty}.
  std::pair<std::uint64_t, std::vector<orb::ObjectRef>> resolve_all(
      const std::string& name) const;

  /// resolve() plus the entry version (std::nullopt when unbound).
  std::optional<std::pair<std::uint64_t, orb::ObjectRef>> resolve_versioned(
      const std::string& name) const;

  /// A client observed the replica behind `dead` down (connection refused
  /// / reset mid-call).  Drops registrations matching it (same_replica) —
  /// failover must not wait out the lease.  Returns how many dropped.
  std::size_t report_dead(const std::string& name, const orb::ObjectRef& dead);

  /// Entry version of `name`: bumped by every mutation (bind, replica
  /// join/leave, expiry, dead report).  Survives unbind so a re-created
  /// name never reuses a version a cache may still hold.  0 = never bound.
  std::uint64_t version_of(const std::string& name) const;

  /// Purges expired replicas across all names (the daemon's periodic
  /// sweep; resolve paths also purge lazily).  Returns replicas dropped.
  std::size_t sweep_expired();

 private:
  struct Entry {
    std::vector<ReplicaRecord> replicas;
  };

  /// Drops expired replicas of one entry; bumps the version when anything
  /// went.  Returns the number dropped.  const because lease expiry makes
  /// every read path a potential pruner (entries_ et al. are mutable).
  std::size_t prune_locked(const std::string& name, Entry& entry) const
      OHPX_REQUIRES(mutex_);
  void bump_version_locked(const std::string& name) const
      OHPX_REQUIRES(mutex_);
  void refresh_live_gauge_locked() const OHPX_REQUIRES(mutex_);

  mutable sync::Mutex mutex_{"naming.directory"};
  mutable std::map<std::string, Entry> entries_ OHPX_GUARDED_BY(mutex_);
  /// Never-erased per-name version floor (see version_of()).
  mutable std::map<std::string, std::uint64_t> versions_
      OHPX_GUARDED_BY(mutex_);
  std::uint64_t next_replica_id_ OHPX_GUARDED_BY(mutex_) = 1;

  // Interned naming.* metrics (metric_names.hpp): the exporter and
  // ohpx-top render these without knowing about the naming layer.
  metrics::MetricsRegistry::Counter* binds_;
  metrics::MetricsRegistry::Counter* resolves_;
  metrics::MetricsRegistry::Counter* heartbeats_;
  metrics::MetricsRegistry::Counter* expired_;
  metrics::MetricsRegistry::Counter* dead_reports_;
  metrics::MetricsRegistry::Counter* replicas_live_;  // gauge (stored)
};

/// Typed client stub for the directory.
class NameServiceStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = NameServiceServant::kTypeName;
  using ObjectStub::ObjectStub;

  void bind(const std::string& name, const orb::ObjectRef& ref,
            bool rebind = false) {
    call<void>(NameServiceServant::kBind, name, ref.to_bytes(), rebind);
  }

  /// Throws ObjectError(object_not_found) for unbound names.
  orb::ObjectRef resolve(const std::string& name) {
    const Bytes raw = call<Bytes>(NameServiceServant::kResolve, name);
    return orb::ObjectRef::from_bytes(raw);
  }

  /// As resolve(), also returning the entry version the reply was read
  /// at (the staleness token NameClient caches against).
  std::pair<std::uint64_t, orb::ObjectRef> resolve_versioned(
      const std::string& name) {
    auto [version, raw] = call<std::pair<std::uint64_t, Bytes>>(
        NameServiceServant::kResolveVersioned, name);
    return {version, orb::ObjectRef::from_bytes(raw)};
  }

  bool unbind(const std::string& name) {
    return call<bool>(NameServiceServant::kUnbind, name);
  }

  std::vector<std::string> list(const std::string& prefix = "") {
    return call<std::vector<std::string>>(NameServiceServant::kList, prefix);
  }

  std::uint64_t bind_replica(const std::string& name,
                             const orb::ObjectRef& ref,
                             std::chrono::milliseconds ttl) {
    return call<std::uint64_t>(NameServiceServant::kBindReplica, name,
                               ref.to_bytes(),
                               static_cast<std::uint64_t>(ttl.count()));
  }

  bool heartbeat(const std::string& name, std::uint64_t replica_id,
                 std::chrono::milliseconds ttl) {
    return call<bool>(NameServiceServant::kHeartbeat, name, replica_id,
                      static_cast<std::uint64_t>(ttl.count()));
  }

  bool unbind_replica(const std::string& name, std::uint64_t replica_id) {
    return call<bool>(NameServiceServant::kUnbindReplica, name, replica_id);
  }

  std::pair<std::uint64_t, std::vector<orb::ObjectRef>> resolve_all(
      const std::string& name) {
    auto [version, raws] = call<std::pair<std::uint64_t, std::vector<Bytes>>>(
        NameServiceServant::kResolveAll, name);
    std::vector<orb::ObjectRef> refs;
    refs.reserve(raws.size());
    for (const Bytes& raw : raws) refs.push_back(orb::ObjectRef::from_bytes(raw));
    return {version, std::move(refs)};
  }

  std::uint64_t report_dead(const std::string& name,
                            const orb::ObjectRef& dead) {
    return call<std::uint64_t>(NameServiceServant::kReportDead, name,
                               dead.to_bytes());
  }
};

using NamePointer = orb::GlobalPointer<NameServiceStub>;

/// Convenience host: activates a directory in `context` and mints its
/// bootstrap reference (default table: shm + nexus, plus tcp if enabled).
class NameServiceHost {
 public:
  explicit NameServiceHost(orb::Context& context);

  NameServiceServant& service() noexcept { return *servant_; }
  const orb::ObjectRef& ref() const noexcept { return ref_; }

 private:
  std::shared_ptr<NameServiceServant> servant_;
  orb::ObjectRef ref_;
};

}  // namespace ohpx::naming
