// Naming service: a CORBA-style name → object-reference directory,
// itself implemented as an ordinary Open HPC++ servant.  Clients bootstrap
// from a single well-known reference (the name service's own OR) and
// resolve everything else through remote calls — including references
// whose glue entries carry capabilities, so handing out a name is handing
// out an access policy.
//
//   server:  naming::NameServiceHost host(server_ctx);
//            host.service().bind("weather/public", kiosk_ref);
//   client:  naming::NameClient names(client_ctx, host.ref());
//            auto ref = names.resolve("weather/public");
//
// Names are flat strings; use '/' segments by convention.  bind() on an
// existing name throws unless rebind is requested.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::naming {

/// The directory servant.  Thread-safe; stores serialized ORs so entries
/// survive independent of any context's lifetime.
class NameServiceServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "NameService";

  enum Method : std::uint32_t {
    kBind = 1,     // (name: string, ref: bytes, rebind: bool) -> ()
    kResolve = 2,  // (name: string) -> bytes
    kUnbind = 3,   // (name: string) -> bool (existed)
    kList = 4,     // (prefix: string) -> vector<string>
  };

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  // Local (in-process) API, used directly by the hosting server.
  void bind(const std::string& name, const orb::ObjectRef& ref,
            bool rebind = false);
  std::optional<orb::ObjectRef> resolve(const std::string& name) const;
  bool unbind(const std::string& name);
  std::vector<std::string> list(const std::string& prefix) const;
  std::size_t size() const;

 private:
  mutable sync::Mutex mutex_{"naming.directory"};
  std::map<std::string, Bytes> entries_ OHPX_GUARDED_BY(mutex_);
};

/// Typed client stub for the directory.
class NameServiceStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = NameServiceServant::kTypeName;
  using ObjectStub::ObjectStub;

  void bind(const std::string& name, const orb::ObjectRef& ref,
            bool rebind = false) {
    call<void>(NameServiceServant::kBind, name, ref.to_bytes(), rebind);
  }

  /// Throws ObjectError(object_not_found) for unbound names.
  orb::ObjectRef resolve(const std::string& name) {
    const Bytes raw = call<Bytes>(NameServiceServant::kResolve, name);
    return orb::ObjectRef::from_bytes(raw);
  }

  bool unbind(const std::string& name) {
    return call<bool>(NameServiceServant::kUnbind, name);
  }

  std::vector<std::string> list(const std::string& prefix = "") {
    return call<std::vector<std::string>>(NameServiceServant::kList, prefix);
  }
};

using NamePointer = orb::GlobalPointer<NameServiceStub>;

/// Convenience host: activates a directory in `context` and mints its
/// bootstrap reference (default table: shm + nexus, plus tcp if enabled).
class NameServiceHost {
 public:
  explicit NameServiceHost(orb::Context& context);

  NameServiceServant& service() noexcept { return *servant_; }
  const orb::ObjectRef& ref() const noexcept { return ref_; }

 private:
  std::shared_ptr<NameServiceServant> servant_;
  orb::ObjectRef ref_;
};

}  // namespace ohpx::naming
