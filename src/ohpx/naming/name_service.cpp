#include "ohpx/naming/name_service.hpp"

#include "ohpx/sync/mutex.hpp"

namespace ohpx::naming {

void NameServiceServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                                  wire::Encoder& out) {
  switch (method_id) {
    case kBind: {
      auto [name, raw, rebind] = orb::unmarshal<std::string, Bytes, bool>(in);
      bind(name, orb::ObjectRef::from_bytes(raw), rebind);
      return;
    }
    case kResolve: {
      auto [name] = orb::unmarshal<std::string>(in);
      const auto ref = resolve(name);
      if (!ref) {
        throw ObjectError(ErrorCode::object_not_found,
                          "no binding for name '" + name + "'");
      }
      orb::marshal_result(out, ref->to_bytes());
      return;
    }
    case kUnbind: {
      auto [name] = orb::unmarshal<std::string>(in);
      orb::marshal_result(out, unbind(name));
      return;
    }
    case kList: {
      auto [prefix] = orb::unmarshal<std::string>(in);
      orb::marshal_result(out, list(prefix));
      return;
    }
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

void NameServiceServant::bind(const std::string& name,
                              const orb::ObjectRef& ref, bool rebind) {
  if (!ref.valid()) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot bind an invalid reference");
  }
  sync::LockGuard lock(mutex_);
  if (!rebind && entries_.contains(name)) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "name '" + name + "' is already bound");
  }
  entries_[name] = ref.to_bytes();
}

std::optional<orb::ObjectRef> NameServiceServant::resolve(
    const std::string& name) const {
  sync::LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  return orb::ObjectRef::from_bytes(it->second);
}

bool NameServiceServant::unbind(const std::string& name) {
  sync::LockGuard lock(mutex_);
  return entries_.erase(name) != 0;
}

std::vector<std::string> NameServiceServant::list(
    const std::string& prefix) const {
  sync::LockGuard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, raw] : entries_) {
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

std::size_t NameServiceServant::size() const {
  sync::LockGuard lock(mutex_);
  return entries_.size();
}

NameServiceHost::NameServiceHost(orb::Context& context)
    : servant_(std::make_shared<NameServiceServant>()),
      ref_(orb::RefBuilder(context, servant_).build()) {}

}  // namespace ohpx::naming
