#include "ohpx/naming/name_service.hpp"

#include <algorithm>

#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::naming {
namespace {

std::shared_ptr<cap::LeaseCapability> make_lease(
    std::chrono::milliseconds ttl) {
  if (ttl.count() <= 0) return nullptr;  // permanent registration
  return std::make_shared<cap::LeaseCapability>(ttl);
}

}  // namespace

NameServiceServant::NameServiceServant() {
  auto& registry = metrics::MetricsRegistry::global();
  binds_ = registry.counter_handle(metrics::names::kNamingBinds);
  resolves_ = registry.counter_handle(metrics::names::kNamingResolves);
  heartbeats_ = registry.counter_handle(metrics::names::kNamingHeartbeats);
  expired_ = registry.counter_handle(metrics::names::kNamingExpired);
  dead_reports_ = registry.counter_handle(metrics::names::kNamingDeadReports);
  replicas_live_ = registry.counter_handle(metrics::names::kNamingReplicasLive);
}

void NameServiceServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                                  wire::Encoder& out) {
  switch (method_id) {
    case kBind: {
      auto [name, raw, rebind] = orb::unmarshal<std::string, Bytes, bool>(in);
      bind(name, orb::ObjectRef::from_bytes(raw), rebind);
      return;
    }
    case kResolve: {
      auto [name] = orb::unmarshal<std::string>(in);
      const auto ref = resolve(name);
      if (!ref) {
        throw ObjectError(ErrorCode::object_not_found,
                          "no binding for name '" + name + "'");
      }
      orb::marshal_result(out, ref->to_bytes());
      return;
    }
    case kUnbind: {
      auto [name] = orb::unmarshal<std::string>(in);
      orb::marshal_result(out, unbind(name));
      return;
    }
    case kList: {
      auto [prefix] = orb::unmarshal<std::string>(in);
      orb::marshal_result(out, list(prefix));
      return;
    }
    case kBindReplica: {
      auto [name, raw, ttl_ms] =
          orb::unmarshal<std::string, Bytes, std::uint64_t>(in);
      orb::marshal_result(
          out, bind_replica(name, orb::ObjectRef::from_bytes(raw),
                            std::chrono::milliseconds(ttl_ms)));
      return;
    }
    case kHeartbeat: {
      auto [name, replica_id, ttl_ms] =
          orb::unmarshal<std::string, std::uint64_t, std::uint64_t>(in);
      orb::marshal_result(
          out, heartbeat(name, replica_id, std::chrono::milliseconds(ttl_ms)));
      return;
    }
    case kUnbindReplica: {
      auto [name, replica_id] = orb::unmarshal<std::string, std::uint64_t>(in);
      orb::marshal_result(out, unbind_replica(name, replica_id));
      return;
    }
    case kResolveAll: {
      auto [name] = orb::unmarshal<std::string>(in);
      auto [version, refs] = resolve_all(name);
      std::vector<Bytes> raws;
      raws.reserve(refs.size());
      for (const auto& ref : refs) raws.push_back(ref.to_bytes());
      orb::marshal_result(out, std::make_pair(version, std::move(raws)));
      return;
    }
    case kReportDead: {
      auto [name, raw] = orb::unmarshal<std::string, Bytes>(in);
      orb::marshal_result(
          out, static_cast<std::uint64_t>(
                   report_dead(name, orb::ObjectRef::from_bytes(raw))));
      return;
    }
    case kResolveVersioned: {
      auto [name] = orb::unmarshal<std::string>(in);
      const auto hit = resolve_versioned(name);
      if (!hit) {
        throw ObjectError(ErrorCode::object_not_found,
                          "no binding for name '" + name + "'");
      }
      orb::marshal_result(out,
                          std::make_pair(hit->first, hit->second.to_bytes()));
      return;
    }
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

void NameServiceServant::bind(const std::string& name,
                              const orb::ObjectRef& ref, bool rebind) {
  if (!ref.valid()) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot bind an invalid reference");
  }
  binds_->fetch_add(1, std::memory_order_relaxed);
  sync::LockGuard lock(mutex_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    prune_locked(name, it->second);
    if (!it->second.replicas.empty() && !rebind) {
      throw ObjectError(ErrorCode::bad_object_ref,
                        "name '" + name + "' is already bound");
    }
  }
  // Plain bind replaces the whole replica set with one permanent record.
  Entry& entry = entries_[name];
  entry.replicas.clear();
  entry.replicas.push_back(
      ReplicaRecord{next_replica_id_++, ref.to_bytes(), nullptr});
  bump_version_locked(name);
  refresh_live_gauge_locked();
}

std::optional<orb::ObjectRef> NameServiceServant::resolve(
    const std::string& name) const {
  const auto hit = resolve_versioned(name);
  if (!hit) return std::nullopt;
  return hit->second;
}

std::optional<std::pair<std::uint64_t, orb::ObjectRef>>
NameServiceServant::resolve_versioned(const std::string& name) const {
  resolves_->fetch_add(1, std::memory_order_relaxed);
  sync::LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return std::nullopt;
  if (prune_locked(name, it->second) > 0 && it->second.replicas.empty()) {
    entries_.erase(it);
    refresh_live_gauge_locked();
    return std::nullopt;
  }
  const auto version_it = versions_.find(name);
  return std::make_pair(
      version_it == versions_.end() ? 0 : version_it->second,
      orb::ObjectRef::from_bytes(it->second.replicas.front().ref));
}

bool NameServiceServant::unbind(const std::string& name) {
  sync::LockGuard lock(mutex_);
  const bool existed = entries_.erase(name) != 0;
  if (existed) {
    bump_version_locked(name);
    refresh_live_gauge_locked();
  }
  return existed;
}

std::vector<std::string> NameServiceServant::list(
    const std::string& prefix) const {
  sync::LockGuard lock(mutex_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : entries_) {
    const bool any_live =
        std::any_of(entry.replicas.begin(), entry.replicas.end(),
                    [](const ReplicaRecord& r) { return r.live(); });
    if (!any_live) continue;
    if (name.compare(0, prefix.size(), prefix) == 0) out.push_back(name);
  }
  return out;
}

std::size_t NameServiceServant::size() const {
  sync::LockGuard lock(mutex_);
  std::size_t count = 0;
  for (const auto& [name, entry] : entries_) {
    count += std::any_of(entry.replicas.begin(), entry.replicas.end(),
                         [](const ReplicaRecord& r) { return r.live(); })
                 ? 1
                 : 0;
  }
  return count;
}

std::uint64_t NameServiceServant::bind_replica(const std::string& name,
                                               const orb::ObjectRef& ref,
                                               std::chrono::milliseconds ttl) {
  if (!ref.valid()) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot bind an invalid reference");
  }
  binds_->fetch_add(1, std::memory_order_relaxed);
  sync::LockGuard lock(mutex_);
  Entry& entry = entries_[name];
  prune_locked(name, entry);
  const std::uint64_t replica_id = next_replica_id_++;
  entry.replicas.push_back(ReplicaRecord{replica_id, ref.to_bytes(),
                                         make_lease(ttl)});
  bump_version_locked(name);
  refresh_live_gauge_locked();
  return replica_id;
}

bool NameServiceServant::heartbeat(const std::string& name,
                                   std::uint64_t replica_id,
                                   std::chrono::milliseconds ttl) {
  heartbeats_->fetch_add(1, std::memory_order_relaxed);
  sync::LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  for (ReplicaRecord& record : it->second.replicas) {
    if (record.replica_id != replica_id) continue;
    if (!record.live()) break;  // lease already ran out: re-register
    // Renewal = a fresh lease; heartbeats never resurrect expired records,
    // so a partitioned server cannot sneak back without re-registering.
    record.lease = make_lease(ttl);
    return true;
  }
  return false;
}

bool NameServiceServant::unbind_replica(const std::string& name,
                                        std::uint64_t replica_id) {
  sync::LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  auto& replicas = it->second.replicas;
  const auto match = std::find_if(
      replicas.begin(), replicas.end(),
      [&](const ReplicaRecord& r) { return r.replica_id == replica_id; });
  if (match == replicas.end()) return false;
  replicas.erase(match);
  if (replicas.empty()) entries_.erase(it);
  bump_version_locked(name);
  refresh_live_gauge_locked();
  return true;
}

std::pair<std::uint64_t, std::vector<orb::ObjectRef>>
NameServiceServant::resolve_all(const std::string& name) const {
  resolves_->fetch_add(1, std::memory_order_relaxed);
  sync::LockGuard lock(mutex_);
  std::vector<orb::ObjectRef> refs;
  const auto it = entries_.find(name);
  if (it != entries_.end()) {
    if (prune_locked(name, it->second) > 0 && it->second.replicas.empty()) {
      entries_.erase(it);
      refresh_live_gauge_locked();
    } else {
      refs.reserve(it->second.replicas.size());
      for (const ReplicaRecord& record : it->second.replicas) {
        refs.push_back(orb::ObjectRef::from_bytes(record.ref));
      }
    }
  }
  const auto version_it = versions_.find(name);
  const std::uint64_t version =
      version_it == versions_.end() ? 0 : version_it->second;
  return {version, std::move(refs)};
}

std::size_t NameServiceServant::report_dead(const std::string& name,
                                            const orb::ObjectRef& dead) {
  dead_reports_->fetch_add(1, std::memory_order_relaxed);
  sync::LockGuard lock(mutex_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return 0;
  auto& replicas = it->second.replicas;
  const std::size_t before = replicas.size();
  replicas.erase(
      std::remove_if(replicas.begin(), replicas.end(),
                     [&](const ReplicaRecord& record) {
                       return same_replica(
                           orb::ObjectRef::from_bytes(record.ref), dead);
                     }),
      replicas.end());
  const std::size_t dropped = before - replicas.size();
  if (dropped > 0) {
    if (replicas.empty()) entries_.erase(it);
    bump_version_locked(name);
    refresh_live_gauge_locked();
  }
  return dropped;
}

std::uint64_t NameServiceServant::version_of(const std::string& name) const {
  sync::LockGuard lock(mutex_);
  const auto it = versions_.find(name);
  return it == versions_.end() ? 0 : it->second;
}

std::size_t NameServiceServant::sweep_expired() {
  sync::LockGuard lock(mutex_);
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    dropped += prune_locked(it->first, it->second);
    it = it->second.replicas.empty() ? entries_.erase(it) : std::next(it);
  }
  if (dropped > 0) refresh_live_gauge_locked();
  return dropped;
}

std::size_t NameServiceServant::prune_locked(const std::string& name,
                                             Entry& entry) const {
  const std::size_t before = entry.replicas.size();
  entry.replicas.erase(
      std::remove_if(entry.replicas.begin(), entry.replicas.end(),
                     [](const ReplicaRecord& r) { return !r.live(); }),
      entry.replicas.end());
  const std::size_t dropped = before - entry.replicas.size();
  if (dropped > 0) {
    expired_->fetch_add(dropped, std::memory_order_relaxed);
    bump_version_locked(name);
  }
  return dropped;
}

void NameServiceServant::bump_version_locked(const std::string& name) const {
  ++versions_[name];
}

void NameServiceServant::refresh_live_gauge_locked() const {
  std::uint64_t live = 0;
  for (const auto& [name, entry] : entries_) {
    for (const ReplicaRecord& record : entry.replicas) {
      if (record.live()) ++live;
    }
  }
  replicas_live_->store(live, std::memory_order_relaxed);
}

NameServiceHost::NameServiceHost(orb::Context& context)
    : servant_(std::make_shared<NameServiceServant>()),
      ref_(orb::RefBuilder(context, servant_).build()) {}

}  // namespace ohpx::naming
