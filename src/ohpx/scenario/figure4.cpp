#include "ohpx/scenario/figure4.hpp"

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"

namespace ohpx::scenario {

Figure4Scenario::Figure4Scenario(netsim::LinkSpec lan_link,
                                 netsim::LinkSpec wan_link,
                                 std::uint64_t quota_limit) {
  const netsim::LanId lan_a = world_.add_lan("lan-a");
  const netsim::LanId lan_b = world_.add_lan("lan-b");
  const netsim::LanId lan_c = world_.add_lan("lan-c");
  world_.topology().set_campus(lan_a, 0);
  world_.topology().set_campus(lan_b, 0);
  world_.topology().set_campus(lan_c, 1);
  world_.topology().set_lan_link(lan_a, lan_link);
  world_.topology().set_lan_link(lan_b, lan_link);
  world_.topology().set_lan_link(lan_c, lan_link);
  // Inter-LAN traffic rides the same physical network in the paper's
  // testbed; campus hops share the LAN link, the remote campus is WAN.
  world_.topology().set_default_wan_link(wan_link);

  m0_ = world_.add_machine("M0", lan_a);
  m3_ = world_.add_machine("M3", lan_a);
  m2_ = world_.add_machine("M2", lan_b);
  m1_ = world_.add_machine("M1", lan_c);
  // Same-campus LAN pairs use the LAN link (the campus backbone).
  world_.topology().set_wan_link(lan_a, lan_b, lan_link);

  client_context_ = &world_.create_context(m0_);
  ctx_m0_ = &world_.create_context(m0_);
  ctx_m1_ = &world_.create_context(m1_);
  ctx_m2_ = &world_.create_context(m2_);
  ctx_m3_ = &world_.create_context(m3_);

  // Figure 4-B's protocol table.  The keys are demo material shared by
  // client and server copies of the capabilities.
  const crypto::Key128 auth_key = crypto::Key128::from_seed(0xf16472u);
  auto security = std::make_shared<cap::AuthenticationCapability>(
      auth_key, "figure4-client", cap::Scope::cross_campus);
  auto timeout_both = std::make_shared<cap::QuotaCapability>(
      quota_limit, cap::Scope::cross_lan);
  auto timeout_only = std::make_shared<cap::QuotaCapability>(
      quota_limit, cap::Scope::cross_lan);

  auto servant = std::make_shared<EchoServant>();
  ref_ = orb::RefBuilder(*ctx_m1_, servant)
             .glue({timeout_both, security}, "nexus-tcp")
             .glue({timeout_only}, "nexus-tcp")
             .shm()
             .nexus()
             .build();
  object_id_ = ref_.object_id();
}

EchoPointer Figure4Scenario::client_pointer() {
  return EchoPointer(*client_context_, ref_);
}

void Figure4Scenario::migrate_to(netsim::MachineId machine) {
  orb::Context* from = world_.find_context_of(object_id_);
  if (from == nullptr) {
    throw ObjectError(ErrorCode::object_not_found,
                      "figure4: server object lost");
  }
  orb::Context* to = nullptr;
  if (machine == m0_) to = ctx_m0_;
  else if (machine == m1_) to = ctx_m1_;
  else if (machine == m2_) to = ctx_m2_;
  else if (machine == m3_) to = ctx_m3_;
  if (to == nullptr) {
    throw Error(ErrorCode::internal, "figure4: unknown machine");
  }
  runtime::migrate_shared(object_id_, *from, *to);
}

netsim::MachineId Figure4Scenario::server_machine() {
  orb::Context* context = world_.find_context_of(object_id_);
  if (context == nullptr) {
    throw ObjectError(ErrorCode::object_not_found,
                      "figure4: server object lost");
  }
  return context->machine();
}

}  // namespace ohpx::scenario
