// The paper's Figure 5 experimental setup, shared by the benchmark suite
// and the shape-assertion tests: one LAN carrying the link under test
// (ATM or Ethernet), the client on M0, the server on M1, and the four
// protocol configurations of the figure — glue(timeout), glue(timeout +
// security), plain nexus, and shared memory (server co-located on M0).
#pragma once

#include <memory>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::scenario {

struct Figure5World {
  explicit Figure5World(netsim::LinkSpec link) {
    const netsim::LanId lan = world.add_lan("testbed");
    world.topology().set_lan_link(lan, std::move(link));
    m_client = world.add_machine("M0", lan);
    m_server = world.add_machine("M1", lan);
    client_ctx = &world.create_context(m_client);
    server_ctx = &world.create_context(m_server);
    local_server_ctx = &world.create_context(m_client);
  }

  /// Series 1: glue with timeout (quota) only.
  EchoPointer glue_timeout() {
    auto quota = std::make_shared<cap::QuotaCapability>(1ull << 40);
    auto ref = orb::RefBuilder(*server_ctx, std::make_shared<EchoServant>())
                   .glue({quota}, "nexus-tcp")
                   .build();
    return EchoPointer(*client_ctx, ref);
  }

  /// Series 2: glue with timeout + security (quota + authentication).
  EchoPointer glue_timeout_security() {
    auto quota = std::make_shared<cap::QuotaCapability>(1ull << 40);
    auto auth = std::make_shared<cap::AuthenticationCapability>(
        crypto::Key128::from_seed(0xbe9c5), "bench-client",
        cap::Scope::always);
    auto ref = orb::RefBuilder(*server_ctx, std::make_shared<EchoServant>())
                   .glue({quota, auth}, "nexus-tcp")
                   .build();
    return EchoPointer(*client_ctx, ref);
  }

  /// Series 3: plain Nexus TCP (simulated link, no capabilities).
  EchoPointer nexus() {
    auto ref = orb::RefBuilder(*server_ctx, std::make_shared<EchoServant>())
                   .nexus()
                   .build();
    return EchoPointer(*client_ctx, ref);
  }

  /// Series 4: shared memory (server co-located with the client).
  EchoPointer shm() {
    auto ref =
        orb::RefBuilder(*local_server_ctx, std::make_shared<EchoServant>())
            .shm()
            .build();
    return EchoPointer(*client_ctx, ref);
  }

  runtime::World world;
  netsim::MachineId m_client{}, m_server{};
  orb::Context* client_ctx = nullptr;
  orb::Context* server_ctx = nullptr;
  orb::Context* local_server_ctx = nullptr;
};

}  // namespace ohpx::scenario
