#include "ohpx/scenario/ticker.hpp"

#include "ohpx/common/log.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::scenario {

void TickListenerServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                                   wire::Encoder& out) {
  (void)out;
  if (method_id != kOnTick) orb::unknown_method(kTypeName, method_id);
  auto [value] = orb::unmarshal<std::int32_t>(in);
  sync::LockGuard lock(mutex_);
  received_.push_back(value);
}

std::vector<std::int32_t> TickListenerServant::received() const {
  sync::LockGuard lock(mutex_);
  return received_;
}

Bytes TickListenerServant::snapshot() const {
  sync::LockGuard lock(mutex_);
  return wire::encode_value(received_).release();
}

void TickListenerServant::restore(BytesView snapshot_bytes) {
  auto values = wire::decode_value<std::vector<std::int32_t>>(snapshot_bytes);
  sync::LockGuard lock(mutex_);
  received_ = std::move(values);
}

void TickerServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                             wire::Encoder& out) {
  switch (method_id) {
    case kSubscribe: {
      auto [raw] = orb::unmarshal<Bytes>(in);
      orb::marshal_result(out, subscribe(orb::ObjectRef::from_bytes(raw)));
      return;
    }
    case kUnsubscribe: {
      auto [token] = orb::unmarshal<std::uint32_t>(in);
      orb::marshal_result(out, unsubscribe(token));
      return;
    }
    case kPublish: {
      auto [value] = orb::unmarshal<std::int32_t>(in);
      orb::marshal_result(out, publish(value));
      return;
    }
    case kCount:
      orb::marshal_result(out, count());
      return;
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

std::uint32_t TickerServant::subscribe(const orb::ObjectRef& listener) {
  if (listener.type_name() != TickListenerServant::kTypeName) {
    throw ObjectError(ErrorCode::type_mismatch,
                      "ticker: subscriber must be a TickListener");
  }
  sync::LockGuard lock(mutex_);
  const std::uint32_t token = next_token_++;
  subscribers_.emplace(token, listener);
  return token;
}

bool TickerServant::unsubscribe(std::uint32_t token) {
  sync::LockGuard lock(mutex_);
  return subscribers_.erase(token) != 0;
}

std::uint32_t TickerServant::publish(std::int32_t value) {
  // Copy the subscriber list so callbacks run without holding the lock
  // (a subscriber may re-enter subscribe/unsubscribe).
  std::vector<std::pair<std::uint32_t, orb::ObjectRef>> snapshot;
  {
    sync::LockGuard lock(mutex_);
    snapshot.assign(subscribers_.begin(), subscribers_.end());
  }

  std::uint32_t notified = 0;
  std::vector<std::uint32_t> dead;
  for (const auto& [token, ref] : snapshot) {
    try {
      TickListenerStub listener(home_, ref);
      listener.on_tick_oneway(value);
      ++notified;
    } catch (const Error& e) {
      log_debug("ticker", "dropping dead subscriber ", token, ": ", e.what());
      dead.push_back(token);
    }
  }
  if (!dead.empty()) {
    sync::LockGuard lock(mutex_);
    for (const std::uint32_t token : dead) subscribers_.erase(token);
  }
  return notified;
}

std::uint32_t TickerServant::count() const {
  sync::LockGuard lock(mutex_);
  return static_cast<std::uint32_t>(subscribers_.size());
}

}  // namespace ohpx::scenario
