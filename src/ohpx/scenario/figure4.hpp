// The paper's Figure 4 experimental scenario, packaged as a reusable
// fixture for tests, benchmarks and the migration example.
//
// Topology (mapping the paper's assumptions onto placement scopes):
//   campus 0:  LAN "lan-a" {M0 (client), M3}
//              LAN "lan-b" {M2}
//   campus 1:  LAN "lan-c" {M1}
//
// Server object starts on M1 and pseudo-migrates M1 → M2 → M3 → M0.
//
// OR protocol table (Figure 4-B):
//   0: glue[timeout, security] — security = authentication(cross_campus),
//                                timeout  = quota(cross_lan)
//   1: glue[timeout]
//   2: shm
//   3: nexus-tcp
//
// Expected protocol per stage (paper §5):
//   on M1: glue[timeout+security]   (different campus)
//   on M2: glue[timeout]            (same campus, different LAN)
//   on M3: nexus-tcp                (same LAN, different machine)
//   on M0: shm                      (same machine)
#pragma once

#include <memory>
#include <string>

#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::scenario {

class Figure4Scenario {
 public:
  /// Builds the topology with `lan_link` on every LAN (the paper ran the
  /// experiment twice: Ethernet and 155 Mbps ATM) and `wan_link` between
  /// campuses.  A large `quota_limit` keeps the timeout capability from
  /// tripping during sweeps.
  Figure4Scenario(netsim::LinkSpec lan_link, netsim::LinkSpec wan_link,
                  std::uint64_t quota_limit = 1u << 30);

  runtime::World& world() noexcept { return world_; }
  orb::Context& client_context() noexcept { return *client_context_; }

  netsim::MachineId m0() const noexcept { return m0_; }
  netsim::MachineId m1() const noexcept { return m1_; }
  netsim::MachineId m2() const noexcept { return m2_; }
  netsim::MachineId m3() const noexcept { return m3_; }

  orb::ObjectId object_id() const noexcept { return object_id_; }
  const orb::ObjectRef& ref() const noexcept { return ref_; }

  /// A fresh client global pointer bound in the M0 client context.
  EchoPointer client_pointer();

  /// Pseudo-migrates the server object to `machine` (stages 2/4/6 of the
  /// experiment).
  void migrate_to(netsim::MachineId machine);

  /// The machine currently hosting the server object.
  netsim::MachineId server_machine();

 private:
  runtime::World world_;
  netsim::MachineId m0_ = 0, m1_ = 0, m2_ = 0, m3_ = 0;
  orb::Context* client_context_ = nullptr;
  orb::Context* ctx_m0_ = nullptr;
  orb::Context* ctx_m1_ = nullptr;
  orb::Context* ctx_m2_ = nullptr;
  orb::Context* ctx_m3_ = nullptr;
  orb::ObjectId object_id_ = orb::kInvalidObject;
  orb::ObjectRef ref_;
};

}  // namespace ohpx::scenario
