#include "ohpx/scenario/heatsim.hpp"

#include <algorithm>

#include "ohpx/sync/mutex.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::scenario {
namespace {

constexpr std::uint32_t kMaxDimension = 4096;
constexpr double kAlpha = 0.2;  // diffusion coefficient per sweep

}  // namespace

void HeatSimServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                              wire::Encoder& out) {
  switch (method_id) {
    case kInit: {
      auto [rows, cols, ambient] =
          orb::unmarshal<std::uint32_t, std::uint32_t, double>(in);
      init(rows, cols, ambient);
      return;
    }
    case kInject: {
      auto [row, col, temperature] =
          orb::unmarshal<std::uint32_t, std::uint32_t, double>(in);
      inject(row, col, temperature);
      return;
    }
    case kStep: {
      auto [iterations] = orb::unmarshal<std::uint32_t>(in);
      orb::marshal_result(out, step(iterations));
      return;
    }
    case kSample: {
      auto [row, col] = orb::unmarshal<std::uint32_t, std::uint32_t>(in);
      orb::marshal_result(out, sample(row, col));
      return;
    }
    case kFetchMap: {
      auto [stride] = orb::unmarshal<std::uint32_t>(in);
      orb::marshal_result(out, fetch_map(stride));
      return;
    }
    case kStats: {
      orb::marshal_result(out, stats());
      return;
    }
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

void HeatSimServant::init(std::uint32_t rows, std::uint32_t cols,
                          double ambient) {
  if (rows == 0 || cols == 0 || rows > kMaxDimension || cols > kMaxDimension) {
    throw Error(ErrorCode::remote_application_error,
                "heatsim: grid dimensions out of range");
  }
  sync::LockGuard lock(mutex_);
  rows_ = rows;
  cols_ = cols;
  grid_.assign(static_cast<std::size_t>(rows) * cols, ambient);
  scratch_ = grid_;
}

void HeatSimServant::check_initialized() const {
  if (grid_.empty()) {
    throw Error(ErrorCode::remote_application_error,
                "heatsim: not initialized");
  }
}

void HeatSimServant::check_cell(std::uint32_t row, std::uint32_t col) const {
  if (row >= rows_ || col >= cols_) {
    throw Error(ErrorCode::remote_application_error,
                "heatsim: cell out of range");
  }
}

void HeatSimServant::inject(std::uint32_t row, std::uint32_t col,
                            double temperature) {
  sync::LockGuard lock(mutex_);
  check_initialized();
  check_cell(row, col);
  grid_[index(row, col)] = temperature;
}

double HeatSimServant::step(std::uint32_t iterations) {
  sync::LockGuard lock(mutex_);
  check_initialized();
  double max_delta = 0.0;
  for (std::uint32_t it = 0; it < iterations; ++it) {
    max_delta = 0.0;
    for (std::uint32_t r = 0; r < rows_; ++r) {
      for (std::uint32_t c = 0; c < cols_; ++c) {
        const double center = grid_[index(r, c)];
        const double up = r > 0 ? grid_[index(r - 1, c)] : center;
        const double down = r + 1 < rows_ ? grid_[index(r + 1, c)] : center;
        const double left = c > 0 ? grid_[index(r, c - 1)] : center;
        const double right = c + 1 < cols_ ? grid_[index(r, c + 1)] : center;
        const double next =
            center + kAlpha * (up + down + left + right - 4.0 * center);
        scratch_[index(r, c)] = next;
        max_delta = std::max(max_delta, std::abs(next - center));
      }
    }
    grid_.swap(scratch_);
  }
  return max_delta;
}

double HeatSimServant::sample(std::uint32_t row, std::uint32_t col) const {
  sync::LockGuard lock(mutex_);
  check_initialized();
  check_cell(row, col);
  return grid_[index(row, col)];
}

std::vector<double> HeatSimServant::fetch_map(std::uint32_t stride) const {
  sync::LockGuard lock(mutex_);
  check_initialized();
  if (stride == 0) stride = 1;
  std::vector<double> map;
  map.reserve((rows_ / stride + 1) * (cols_ / stride + 1));
  for (std::uint32_t r = 0; r < rows_; r += stride) {
    for (std::uint32_t c = 0; c < cols_; c += stride) {
      map.push_back(grid_[index(r, c)]);
    }
  }
  return map;
}

std::pair<double, double> HeatSimServant::stats() const {
  sync::LockGuard lock(mutex_);
  check_initialized();
  const auto [lo, hi] = std::minmax_element(grid_.begin(), grid_.end());
  return {*lo, *hi};
}

std::uint64_t HeatSimServant::cells() const {
  sync::LockGuard lock(mutex_);
  return grid_.size();
}

Bytes HeatSimServant::snapshot() const {
  sync::LockGuard lock(mutex_);
  wire::Buffer buf;
  wire::Encoder enc(buf);
  enc.put_u32(rows_);
  enc.put_u32(cols_);
  wire::serialize(enc, grid_);
  return buf.release();
}

void HeatSimServant::restore(BytesView snapshot_bytes) {
  wire::Decoder dec(snapshot_bytes);
  const std::uint32_t rows = dec.get_u32();
  const std::uint32_t cols = dec.get_u32();
  auto grid = wire::deserialize<std::vector<double>>(dec);
  dec.expect_end();
  if (grid.size() != static_cast<std::size_t>(rows) * cols) {
    throw WireError(ErrorCode::wire_bad_value,
                    "heatsim snapshot grid size mismatch");
  }
  sync::LockGuard lock(mutex_);
  rows_ = rows;
  cols_ = cols;
  grid_ = std::move(grid);
  scratch_ = grid_;
}

}  // namespace ohpx::scenario
