// Echo service: the paper's experimental workload ("the requests exchange
// an array of integers between the client and the server", §5).  Also the
// standard guinea pig for tests and examples.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"

namespace ohpx::scenario {

class EchoServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "Echo";

  enum Method : std::uint32_t {
    kEcho = 1,     // vector<i32> -> vector<i32> (identity)
    kSum = 2,      // vector<i32> -> i64
    kPing = 3,     // () -> u64 (number of pings so far)
    kReverse = 4,  // string -> string
    kFail = 5,     // () -> throws a std::runtime_error("echo failed")
  };

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  bool migratable() const noexcept override { return true; }
  Bytes snapshot() const override;
  void restore(BytesView snapshot_bytes) override;

  std::uint64_t pings() const noexcept { return pings_.load(); }

 private:
  std::atomic<std::uint64_t> pings_{0};
};

class EchoStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = EchoServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::vector<std::int32_t> echo(const std::vector<std::int32_t>& values) {
    return call<std::vector<std::int32_t>>(EchoServant::kEcho, values);
  }

  /// Echo with cost accounting — the benchmark harness entry point.
  std::vector<std::int32_t> echo_with_cost(CostLedger& ledger,
                                           const std::vector<std::int32_t>& values) {
    return call_with_cost<std::vector<std::int32_t>>(&ledger,
                                                     EchoServant::kEcho, values);
  }

  std::int64_t sum(const std::vector<std::int32_t>& values) {
    return call<std::int64_t>(EchoServant::kSum, values);
  }

  std::uint64_t ping() { return call<std::uint64_t>(EchoServant::kPing); }

  std::string reverse(const std::string& text) {
    return call<std::string>(EchoServant::kReverse, text);
  }

  void fail() { call<void>(EchoServant::kFail); }
};

using EchoPointer = orb::GlobalPointer<EchoStub>;

}  // namespace ohpx::scenario
