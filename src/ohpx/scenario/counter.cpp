#include "ohpx/scenario/counter.hpp"

#include "ohpx/sync/mutex.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::scenario {

void CounterServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                              wire::Encoder& out) {
  switch (method_id) {
    case kAdd: {
      auto [delta] = orb::unmarshal<std::int64_t>(in);
      sync::LockGuard lock(mutex_);
      value_ += delta;
      orb::marshal_result(out, value_);
      return;
    }
    case kGet: {
      sync::LockGuard lock(mutex_);
      orb::marshal_result(out, value_);
      return;
    }
    case kSet: {
      auto [value] = orb::unmarshal<std::int64_t>(in);
      sync::LockGuard lock(mutex_);
      value_ = value;
      return;
    }
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

Bytes CounterServant::snapshot() const {
  sync::LockGuard lock(mutex_);
  return wire::encode_value(value_).release();
}

void CounterServant::restore(BytesView snapshot_bytes) {
  const std::int64_t value = wire::decode_value<std::int64_t>(snapshot_bytes);
  sync::LockGuard lock(mutex_);
  value_ = value;
}

std::int64_t CounterServant::value() const {
  sync::LockGuard lock(mutex_);
  return value_;
}

void CounterServant::set_value(std::int64_t value) {
  sync::LockGuard lock(mutex_);
  value_ = value;
}

}  // namespace ohpx::scenario
