// Migratable counter: the minimal stateful servant, used to verify that
// migration preserves application state (snapshot/restore) and that global
// pointers keep working across hops.
#pragma once

#include <cstdint>

#include "ohpx/common/annotations.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::scenario {

class CounterServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "Counter";

  enum Method : std::uint32_t {
    kAdd = 1,  // i64 -> i64 (new value)
    kGet = 2,  // () -> i64
    kSet = 3,  // i64 -> ()
  };

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  bool migratable() const noexcept override { return true; }
  Bytes snapshot() const override;
  void restore(BytesView snapshot_bytes) override;

  std::int64_t value() const;
  void set_value(std::int64_t value);

 private:
  mutable sync::Mutex mutex_{"scenario.counter"};
  std::int64_t value_ OHPX_GUARDED_BY(mutex_) = 0;
};

class CounterStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = CounterServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::int64_t add(std::int64_t delta) {
    return call<std::int64_t>(CounterServant::kAdd, delta);
  }
  std::int64_t get() { return call<std::int64_t>(CounterServant::kGet); }
  void set(std::int64_t value) { call<void>(CounterServant::kSet, value); }
};

using CounterPointer = orb::GlobalPointer<CounterStub>;

}  // namespace ohpx::scenario
