#include "ohpx/scenario/echo.hpp"

#include <algorithm>
#include <stdexcept>

namespace ohpx::scenario {

void EchoServant::dispatch(std::uint32_t method_id, wire::Decoder& in,
                           wire::Encoder& out) {
  switch (method_id) {
    case kEcho: {
      auto [values] = orb::unmarshal<std::vector<std::int32_t>>(in);
      orb::marshal_result(out, values);
      return;
    }
    case kSum: {
      auto [values] = orb::unmarshal<std::vector<std::int32_t>>(in);
      std::int64_t total = 0;
      for (std::int32_t v : values) total += v;
      orb::marshal_result(out, total);
      return;
    }
    case kPing: {
      orb::marshal_result(out, pings_.fetch_add(1) + 1);
      return;
    }
    case kReverse: {
      auto [text] = orb::unmarshal<std::string>(in);
      std::reverse(text.begin(), text.end());
      orb::marshal_result(out, text);
      return;
    }
    case kFail:
      throw std::runtime_error("echo failed");
    default:
      orb::unknown_method(kTypeName, method_id);
  }
}

Bytes EchoServant::snapshot() const {
  return wire::encode_value(pings_.load()).release();
}

void EchoServant::restore(BytesView snapshot_bytes) {
  pings_.store(wire::decode_value<std::uint64_t>(snapshot_bytes));
}

}  // namespace ohpx::scenario
