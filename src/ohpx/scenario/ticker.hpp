// Publish/subscribe over callbacks: object references as first-class
// callback handles.
//
// Contexts are symmetric in this ORB — any process that holds a reference
// can also export objects — so a client subscribes by handing the server a
// reference to its *own* listener object; the server notifies subscribers
// with oneway calls (losing a slow subscriber must not stall the
// publisher).  Subscriptions whose references go stale are dropped on the
// next publish.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::scenario {

/// Subscriber-side servant: receives ticks.
class TickListenerServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "TickListener";
  enum Method : std::uint32_t { kOnTick = 1 };

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  bool migratable() const noexcept override { return true; }
  Bytes snapshot() const override;
  void restore(BytesView snapshot_bytes) override;

  std::vector<std::int32_t> received() const;

 private:
  mutable sync::Mutex mutex_{"scenario.tick_listener"};
  std::vector<std::int32_t> received_ OHPX_GUARDED_BY(mutex_);
};

class TickListenerStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = TickListenerServant::kTypeName;
  using ObjectStub::ObjectStub;

  void on_tick_oneway(std::int32_t value) {
    call_oneway(TickListenerServant::kOnTick, value);
  }
};

/// Publisher-side servant: manages subscriptions and fans ticks out.
/// Needs its hosting context to bind subscriber references for callbacks.
class TickerServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "Ticker";
  enum Method : std::uint32_t {
    kSubscribe = 1,    // (ref bytes) -> u32 subscription token
    kUnsubscribe = 2,  // (token u32) -> bool existed
    kPublish = 3,      // (value i32) -> u32 subscribers notified
    kCount = 4,        // () -> u32 active subscriptions
  };

  explicit TickerServant(orb::Context& home) : home_(home) {}

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  std::uint32_t subscribe(const orb::ObjectRef& listener);
  bool unsubscribe(std::uint32_t token);

  /// Notifies every subscriber (oneway); returns how many were reached.
  /// Subscribers whose references fail are dropped.
  std::uint32_t publish(std::int32_t value);

  std::uint32_t count() const;

 private:
  orb::Context& home_;
  mutable sync::Mutex mutex_{"scenario.ticker"};
  std::uint32_t next_token_ OHPX_GUARDED_BY(mutex_) = 1;
  std::map<std::uint32_t, orb::ObjectRef> subscribers_ OHPX_GUARDED_BY(mutex_);
};

class TickerStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = TickerServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::uint32_t subscribe(const orb::ObjectRef& listener) {
    return call<std::uint32_t>(TickerServant::kSubscribe, listener.to_bytes());
  }
  bool unsubscribe(std::uint32_t token) {
    return call<bool>(TickerServant::kUnsubscribe, token);
  }
  std::uint32_t publish(std::int32_t value) {
    return call<std::uint32_t>(TickerServant::kPublish, value);
  }
  std::uint32_t count() { return call<std::uint32_t>(TickerServant::kCount); }
};

using TickerPointer = orb::GlobalPointer<TickerStub>;

}  // namespace ohpx::scenario
