// Environmental simulation scenario (paper §1): "a large environmental
// simulation running on a multi-processor supercomputer at a national
// lab", with clients that feed data in and clients that fetch maps out.
//
// The simulation is a real computation — 2D heat diffusion (Jacobi
// iteration) on a dense grid — so benchmarks over it exercise a genuine
// compute/communicate ratio, and migration moves real state (the full
// grid travels through snapshot/restore).
#pragma once

#include <cstdint>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/orb/stub.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::scenario {

class HeatSimServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "HeatSim";

  enum Method : std::uint32_t {
    kInit = 1,      // (rows u32, cols u32, ambient f64) -> ()
    kInject = 2,    // (row u32, col u32, temperature f64) -> ()
    kStep = 3,      // (iterations u32) -> f64 (max cell delta of last sweep)
    kSample = 4,    // (row u32, col u32) -> f64
    kFetchMap = 5,  // (stride u32) -> vector<f64> (downsampled grid)
    kStats = 6,     // () -> pair<f64,f64> (min, max temperature)
  };

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override;

  bool migratable() const noexcept override { return true; }
  Bytes snapshot() const override;
  void restore(BytesView snapshot_bytes) override;

  // Local API (used by dispatch and directly by tests).
  void init(std::uint32_t rows, std::uint32_t cols, double ambient);
  void inject(std::uint32_t row, std::uint32_t col, double temperature);
  double step(std::uint32_t iterations);
  double sample(std::uint32_t row, std::uint32_t col) const;
  std::vector<double> fetch_map(std::uint32_t stride) const;
  std::pair<double, double> stats() const;
  std::uint64_t cells() const;

 private:
  void check_initialized() const;
  void check_cell(std::uint32_t row, std::uint32_t col) const;
  std::size_t index(std::uint32_t row, std::uint32_t col) const {
    return static_cast<std::size_t>(row) * cols_ + col;
  }

  mutable sync::Mutex mutex_{"scenario.heatsim"};
  std::uint32_t rows_ OHPX_GUARDED_BY(mutex_) = 0;
  std::uint32_t cols_ OHPX_GUARDED_BY(mutex_) = 0;
  std::vector<double> grid_ OHPX_GUARDED_BY(mutex_);
  std::vector<double> scratch_ OHPX_GUARDED_BY(mutex_);
};

class HeatSimStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = HeatSimServant::kTypeName;
  using ObjectStub::ObjectStub;

  void init(std::uint32_t rows, std::uint32_t cols, double ambient) {
    call<void>(HeatSimServant::kInit, rows, cols, ambient);
  }
  void inject(std::uint32_t row, std::uint32_t col, double temperature) {
    call<void>(HeatSimServant::kInject, row, col, temperature);
  }
  double step(std::uint32_t iterations) {
    return call<double>(HeatSimServant::kStep, iterations);
  }
  double sample(std::uint32_t row, std::uint32_t col) {
    return call<double>(HeatSimServant::kSample, row, col);
  }
  std::vector<double> fetch_map(std::uint32_t stride) {
    return call<std::vector<double>>(HeatSimServant::kFetchMap, stride);
  }
  std::vector<double> fetch_map_with_cost(CostLedger& ledger,
                                          std::uint32_t stride) {
    return call_with_cost<std::vector<double>>(&ledger,
                                               HeatSimServant::kFetchMap, stride);
  }
  std::pair<double, double> stats() {
    return call<std::pair<double, double>>(HeatSimServant::kStats);
  }
};

using HeatSimPointer = orb::GlobalPointer<HeatSimStub>;

}  // namespace ohpx::scenario
