#include "ohpx/trace/trace.hpp"

#include <bit>
#include <chrono>
#include <cstring>
#include <memory>

#include "ohpx/common/rng.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::trace {
namespace {

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Thread-local PRNG for trace ids and ratio-sampling coins.  Seeded from
/// a global counter so two threads never share a stream.
Xoshiro256& local_rng() noexcept {
  static std::atomic<std::uint64_t> seed_counter{0x0b5e'7ab1'e5ee'd000ULL};
  thread_local Xoshiro256 rng(
      SplitMix64(seed_counter.fetch_add(1, std::memory_order_relaxed) ^
                 static_cast<std::uint64_t>(now_ns()))
          .next());
  return rng;
}

thread_local TraceContext t_current;

/// One thread's fixed-capacity span ring.  Single writer (the owning
/// thread); snapshot/clear readers take the `busy` gate, and the writer
/// *drops* instead of waiting when it finds the gate held — recording is
/// wait-free and allocation-free after construction.
struct ThreadBuffer {
  ThreadBuffer(std::size_t capacity, std::uint32_t index)
      : slots(capacity), thread_index(index) {}

  std::vector<SpanRecord> slots;
  std::size_t head = 0;   // next write position
  std::size_t count = 0;  // valid records (<= slots.size())
  std::uint64_t overwritten = 0;
  std::uint32_t thread_index = 0;
  std::atomic<bool> busy{false};
  std::atomic<std::uint64_t> gate_drops{0};
};

/// Scoped acquisition of a buffer's gate for readers (snapshot/clear) —
/// spins, unlike the writer, because readers are rare and may not drop.
class GateHold {
 public:
  explicit GateHold(ThreadBuffer& buffer) noexcept : buffer_(buffer) {
    bool expected = false;
    while (!buffer_.busy.compare_exchange_weak(expected, true,
                                               std::memory_order_acquire,
                                               std::memory_order_relaxed)) {
      expected = false;
    }
  }
  ~GateHold() { buffer_.busy.store(false, std::memory_order_release); }

 private:
  ThreadBuffer& buffer_;
};

/// All thread buffers ever created, under one lock class so the analysis
/// ties the vector to the mutex that guards it.
struct BufferRegistry {
  sync::Mutex mutex{"trace.registry"};
  std::vector<std::shared_ptr<ThreadBuffer>> buffers OHPX_GUARDED_BY(mutex);
};

BufferRegistry& buffer_registry() {
  static BufferRegistry instance;
  return instance;
}

/// Serializes g_active_sources transitions (config calls are rare).  The
/// sampling fields themselves stay atomics read lock-free on the hot path,
/// so they are deliberately not GUARDED_BY this mutex.
sync::Mutex& config_mutex() {
  static sync::Mutex mutex{"trace.config"};
  return mutex;
}

ThreadBuffer& local_buffer(std::size_t capacity) {
  thread_local ThreadBuffer* buffer = nullptr;
  if (buffer == nullptr) {
    BufferRegistry& reg = buffer_registry();
    sync::LockGuard lock(reg.mutex);
    auto fresh = std::make_shared<ThreadBuffer>(
        capacity, static_cast<std::uint32_t>(reg.buffers.size()));
    buffer = fresh.get();
    reg.buffers.push_back(std::move(fresh));  // outlives the thread so its
                                              // spans survive into snapshots
  }
  return *buffer;
}

void append_bounded(char* dest, std::size_t capacity, std::size_t& used,
                    std::string_view text) noexcept {
  if (used + 1 >= capacity) return;  // full (keep NUL)
  if (used > 0 && used + 2 < capacity) dest[used++] = ' ';
  const std::size_t room = capacity - 1 - used;
  const std::size_t n = text.size() < room ? text.size() : room;
  std::memcpy(dest + used, text.data(), n);
  used += n;
  dest[used] = '\0';
}

}  // namespace

// ---------------------------------------------------------------------------
// identity

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

TraceContext mint_root() noexcept {
  Xoshiro256& rng = local_rng();
  TraceContext context;
  do {
    context.trace_hi = rng.next();
    context.trace_lo = rng.next();
  } while (!context.valid());
  context.span_id = 0;  // the first Span under this context is the root
  context.sampled = true;
  return context;
}

TraceContext current_context() noexcept { return t_current; }

// ---------------------------------------------------------------------------
// sampling

std::atomic<int> TraceSink::g_active_sources{0};

SamplingOverride::~SamplingOverride() { clear(); }

void SamplingOverride::set(Sampling mode, double ratio) noexcept {
  sync::LockGuard lock(config_mutex());
  const int previous = mode_.load(std::memory_order_relaxed);
  const bool was_source = previous > static_cast<int>(Sampling::off);
  const bool is_source = mode != Sampling::off;
  ratio_bits_.store(std::bit_cast<std::uint64_t>(ratio),
                    std::memory_order_relaxed);
  mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  if (is_source && !was_source) {
    TraceSink::g_active_sources.fetch_add(1, std::memory_order_relaxed);
  } else if (!is_source && was_source) {
    TraceSink::g_active_sources.fetch_sub(1, std::memory_order_relaxed);
  }
}

void SamplingOverride::clear() noexcept {
  sync::LockGuard lock(config_mutex());
  const int previous = mode_.load(std::memory_order_relaxed);
  mode_.store(-1, std::memory_order_relaxed);
  if (previous > static_cast<int>(Sampling::off)) {
    TraceSink::g_active_sources.fetch_sub(1, std::memory_order_relaxed);
  }
}

double SamplingOverride::ratio() const noexcept {
  return std::bit_cast<double>(ratio_bits_.load(std::memory_order_relaxed));
}

bool should_sample(const SamplingOverride& core,
                   const SamplingOverride& context) noexcept {
  Sampling mode;
  double ratio;
  if (core.overridden()) {
    mode = core.mode();
    ratio = core.ratio();
  } else if (context.overridden()) {
    mode = context.mode();
    ratio = context.ratio();
  } else {
    TraceSink& sink = TraceSink::global();
    mode = sink.sampling();
    ratio = sink.sampling_ratio();
  }
  switch (mode) {
    case Sampling::off:
      return false;
    case Sampling::always:
      return true;
    case Sampling::ratio: {
      if (ratio >= 1.0) return true;
      if (ratio <= 0.0) return false;
      return local_rng().next_double() < ratio;
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// sink

TraceSink& TraceSink::global() {
  static TraceSink sink;
  return sink;
}

void TraceSink::set_sampling(Sampling mode, double ratio) noexcept {
  sync::LockGuard lock(config_mutex());
  const int previous = mode_.load(std::memory_order_relaxed);
  const bool was_source = previous != static_cast<int>(Sampling::off);
  const bool is_source = mode != Sampling::off;
  ratio_bits_.store(std::bit_cast<std::uint64_t>(ratio),
                    std::memory_order_relaxed);
  mode_.store(static_cast<int>(mode), std::memory_order_relaxed);
  if (is_source && !was_source) {
    g_active_sources.fetch_add(1, std::memory_order_relaxed);
  } else if (!is_source && was_source) {
    g_active_sources.fetch_sub(1, std::memory_order_relaxed);
  }
}

Sampling TraceSink::sampling() const noexcept {
  return static_cast<Sampling>(mode_.load(std::memory_order_relaxed));
}

double TraceSink::sampling_ratio() const noexcept {
  return std::bit_cast<double>(ratio_bits_.load(std::memory_order_relaxed));
}

void TraceSink::set_capacity(std::size_t per_thread_spans) {
  capacity_.store(per_thread_spans > 0 ? per_thread_spans : 1,
                  std::memory_order_relaxed);
}

std::size_t TraceSink::capacity() const noexcept {
  return capacity_.load(std::memory_order_relaxed);
}

void TraceSink::record(const SpanRecord& record) noexcept {
  ThreadBuffer& buffer =
      local_buffer(capacity_.load(std::memory_order_relaxed));
  bool expected = false;
  if (!buffer.busy.compare_exchange_strong(expected, true,
                                           std::memory_order_acquire,
                                           std::memory_order_relaxed)) {
    // A snapshot holds the gate: drop this span rather than stall the
    // invocation pipeline (counted, so reports stay honest).
    buffer.gate_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  SpanRecord& slot = buffer.slots[buffer.head];
  slot = record;
  slot.thread_index = buffer.thread_index;
  buffer.head = (buffer.head + 1) % buffer.slots.size();
  if (buffer.count == buffer.slots.size()) {
    ++buffer.overwritten;  // drop-oldest
  } else {
    ++buffer.count;
  }
  buffer.busy.store(false, std::memory_order_release);
}

TraceSnapshot TraceSink::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferRegistry& reg = buffer_registry();
    sync::LockGuard lock(reg.mutex);
    buffers = reg.buffers;
  }
  TraceSnapshot snap;
  for (const auto& buffer : buffers) {
    GateHold hold(*buffer);
    const std::size_t capacity = buffer->slots.size();
    const std::size_t first =
        buffer->count == capacity ? buffer->head : 0;  // oldest record
    for (std::size_t i = 0; i < buffer->count; ++i) {
      snap.spans.push_back(buffer->slots[(first + i) % capacity]);
    }
    snap.dropped += buffer->overwritten +
                    buffer->gate_drops.load(std::memory_order_relaxed);
  }
  return snap;
}

void TraceSink::clear() {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferRegistry& reg = buffer_registry();
    sync::LockGuard lock(reg.mutex);
    buffers = reg.buffers;
  }
  for (const auto& buffer : buffers) {
    GateHold hold(*buffer);
    buffer->head = 0;
    buffer->count = 0;
    buffer->overwritten = 0;
    buffer->gate_drops.store(0, std::memory_order_relaxed);
  }
}

std::uint64_t TraceSink::dropped() const {
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  {
    BufferRegistry& reg = buffer_registry();
    sync::LockGuard lock(reg.mutex);
    buffers = reg.buffers;
  }
  std::uint64_t total = 0;
  for (const auto& buffer : buffers) {
    GateHold hold(*buffer);
    total += buffer->overwritten +
             buffer->gate_drops.load(std::memory_order_relaxed);
  }
  return total;
}

// ---------------------------------------------------------------------------
// guards

ContextScope::ContextScope(const TraceContext& context) noexcept
    : saved_(t_current) {
  t_current = context;
}

ContextScope::~ContextScope() { t_current = saved_; }

void Span::arm(SpanKind kind, const char* name) noexcept {
  if (!t_current.valid()) return;  // outside any sampled trace
  armed_ = true;
  std::memset(&record_, 0, sizeof(record_));
  record_.trace_hi = t_current.trace_hi;
  record_.trace_lo = t_current.trace_lo;
  record_.parent_span = t_current.span_id;
  record_.span_id = next_span_id();
  record_.kind = kind;
  std::size_t used = 0;
  append_bounded(record_.name, SpanRecord::kNameCapacity, used,
                 std::string_view(name));
  saved_parent_ = t_current.span_id;
  t_current.span_id = record_.span_id;  // children parent under this span
  record_.start_ns = now_ns();
}

void Span::finish() noexcept {
  armed_ = false;
  record_.duration_ns = now_ns() - record_.start_ns;
  t_current.span_id = saved_parent_;
  TraceSink::global().record(record_);
}

void Span::annotate_armed(std::string_view text) noexcept {
  append_bounded(record_.annotation, SpanRecord::kAnnotationCapacity,
                 annotation_len_, text);
}

void Span::annotate_u64_armed(std::string_view label,
                              std::uint64_t value) noexcept {
  // Render "label:value" into a stack scratch, then append as one token.
  char scratch[SpanRecord::kAnnotationCapacity];
  std::size_t used = 0;
  const std::size_t label_len =
      label.size() < sizeof(scratch) - 22 ? label.size()
                                          : sizeof(scratch) - 22;
  std::memcpy(scratch, label.data(), label_len);
  used = label_len;
  scratch[used++] = ':';
  char digits[20];
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value > 0 && n < sizeof(digits));
  while (n > 0) scratch[used++] = digits[--n];
  append_bounded(record_.annotation, SpanRecord::kAnnotationCapacity,
                 annotation_len_, std::string_view(scratch, used));
}

void event_armed(const char* name, std::string_view annotation) noexcept {
  if (!t_current.valid()) return;
  SpanRecord record{};
  record.trace_hi = t_current.trace_hi;
  record.trace_lo = t_current.trace_lo;
  record.parent_span = t_current.span_id;
  record.span_id = next_span_id();
  record.kind = SpanKind::event;
  std::size_t used = 0;
  append_bounded(record.name, SpanRecord::kNameCapacity, used,
                 std::string_view(name));
  used = 0;
  append_bounded(record.annotation, SpanRecord::kAnnotationCapacity, used,
                 annotation);
  record.start_ns = now_ns();
  record.duration_ns = 0;
  TraceSink::global().record(record);
}

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::invoke:
      return "invoke";
    case SpanKind::selection:
      return "selection";
    case SpanKind::capability:
      return "capability";
    case SpanKind::encode:
      return "encode";
    case SpanKind::decode:
      return "decode";
    case SpanKind::transport:
      return "transport";
    case SpanKind::server:
      return "server";
    case SpanKind::servant:
      return "servant";
    case SpanKind::event:
      return "event";
  }
  return "unknown";
}

}  // namespace ohpx::trace
