// Canonical registry of every trace span/event name in src/.
//
// Span names are a cross-file contract: the exporter groups by them, the
// timeline tests assert on them, and dashboards key on them — so a name
// that exists only at one call site is either a typo or an undocumented
// stage.  ohpx-lint's AST tier (tools/ohpx_lint_ast.py, rule
// error-consistency) checks both directions against this list: every
// literal passed to trace::Span / trace::event in src/ must be registered
// here, and every registered name must still have a call site.
//
// Adding a span?  Add its name here (keep the array sorted) in the same
// change that introduces the call site.
#pragma once

namespace ohpx::trace::names {

inline constexpr const char* kRegistered[] = {
    "breaker.close",     // resilience: breaker closes after probe success
    "breaker.open",      // resilience: failure threshold tripped
    "breaker.probe",     // resilience: half-open trial call
    "cache.invalidate",  // orb: cached selection dropped (revision bump)
    "cap.process",       // capability: outbound chain stage
    "cap.unprocess",     // capability: inbound chain stage (reverse)
    "naming.failover",   // naming: stub rebound to another live replica
    "proto.glue",        // protocol: glue-code dispatch
    "proto.nexus",       // protocol: nexus relay hop
    "proto.relay",       // protocol: store-and-forward relay
    "proto.shm",         // protocol: shared-memory transfer
    "proto.tcp",         // protocol: TCP roundtrip
    "reactor.backpressure",  // transport: inflight window full, call refused
    "retry.backoff",     // resilience: backoff wait before re-attempt
    "retry.error",       // resilience: attempt failed, not retryable
    "retry.error_reply", // resilience: remote error reply decoded
    "retry.reconnect",   // resilience: channel rebuild before retry
    "retry.stale_ref",   // resilience: re-resolve after migration race
    "retry.transport",   // resilience: transport fault worth a retry
    "rmi.invoke",        // orb: one logical remote method invocation
    "select",            // orb: protocol selection
    "servant.dispatch",  // orb: servant-side method execution
    "server.dispatch",   // orb: server-side request decode + route
    "transport",         // transport: channel send/receive leg
    "wire.decode",       // wire: frame decode
    "wire.encode",       // wire: frame encode
};

}  // namespace ohpx::trace::names
