#include "ohpx/trace/export.hpp"

#include <algorithm>
#include <charconv>
#include <cstddef>
#include <map>
#include <vector>

namespace ohpx::trace {
namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char digits[20];
  auto [end, ec] = std::to_chars(digits, digits + sizeof(digits), value);
  (void)ec;
  out.append(digits, end);
}

void append_hex(std::string& out, std::uint64_t value, int width) {
  char digits[16];
  for (int i = width - 1; i >= 0; --i) {
    digits[i] = "0123456789abcdef"[value & 0xf];
    value >>= 4;
  }
  out.append(digits, static_cast<std::size_t>(width));
}

/// Fixed-point microseconds with 3 decimals from nanoseconds — Chrome's
/// "ts"/"dur" fields are microsecond doubles; emitting them as decimal
/// text avoids float formatting entirely.
void append_us(std::string& out, std::int64_t ns) {
  if (ns < 0) ns = 0;
  append_u64(out, static_cast<std::uint64_t>(ns / 1000));
  out.push_back('.');
  const auto frac = static_cast<std::uint64_t>(ns % 1000);
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + frac / 10 % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
}

void append_json_escaped(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
}

std::string trace_id_hex(const SpanRecord& span) {
  std::string id;
  append_hex(id, span.trace_hi, 16);
  append_hex(id, span.trace_lo, 16);
  return id;
}

}  // namespace

std::string to_chrome_json(const TraceSnapshot& snapshot) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(snapshot.spans.size());
  for (const SpanRecord& span : snapshot.spans) ordered.push_back(&span);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_ns < b->start_ns;
                   });

  std::string out;
  out.reserve(192 * ordered.size() + 64);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord* span : ordered) {
    if (!first) out.push_back(',');
    first = false;
    const bool instant = span->kind == SpanKind::event;
    out += "{\"name\":\"";
    append_json_escaped(out, span->name);
    out += "\",\"cat\":\"";
    out += to_string(span->kind);
    out += instant ? "\",\"ph\":\"i\",\"s\":\"t" : "\",\"ph\":\"X";
    out += "\",\"ts\":";
    append_us(out, span->start_ns);
    if (!instant) {
      out += ",\"dur\":";
      append_us(out, span->duration_ns);
    }
    out += ",\"pid\":1,\"tid\":";
    append_u64(out, span->thread_index);
    out += ",\"args\":{\"trace\":\"";
    out += trace_id_hex(*span);
    out += "\",\"span\":\"";
    append_hex(out, span->span_id, 16);
    out += "\",\"parent\":\"";
    append_hex(out, span->parent_span, 16);
    out += '"';
    if (span->annotation[0] != '\0') {
      out += ",\"note\":\"";
      append_json_escaped(out, span->annotation);
      out += '"';
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

namespace {

struct TreeNode {
  const SpanRecord* span = nullptr;
  std::vector<std::size_t> children;
};

void render_node(std::string& out, const std::vector<TreeNode>& nodes,
                 std::size_t index, int depth) {
  const SpanRecord& span = *nodes[index].span;
  std::string line;
  line.append(static_cast<std::size_t>(depth) * 2, ' ');
  line += span.name;
  if (line.size() < 36) line.append(36 - line.size(), ' ');
  std::string duration;
  append_us(duration, span.duration_ns);
  duration += "us";
  if (duration.size() < 14) {
    line.append(14 - duration.size(), ' ');
  }
  line += duration;
  line += "  ";
  line += to_string(span.kind);
  if (span.annotation[0] != '\0') {
    line += "  [";
    line += span.annotation;
    line += ']';
  }
  out += line;
  out.push_back('\n');
  for (std::size_t child : nodes[index].children) {
    render_node(out, nodes, child, depth + 1);
  }
}

}  // namespace

std::string to_text_tree(const TraceSnapshot& snapshot) {
  // Group spans per trace id, link children to parents present in the
  // snapshot, and render each orphan (no parent found) as a tree root.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>>
      by_trace;
  std::vector<TreeNode> nodes(snapshot.spans.size());
  std::map<std::uint64_t, std::size_t> by_span_id;
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    nodes[i].span = &snapshot.spans[i];
    by_span_id[snapshot.spans[i].span_id] = i;
  }
  std::vector<std::size_t> roots;
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanRecord& span = snapshot.spans[i];
    auto parent = by_span_id.find(span.parent_span);
    if (span.parent_span != 0 && parent != by_span_id.end() &&
        parent->second != i) {
      nodes[parent->second].children.push_back(i);
    } else {
      roots.push_back(i);
      by_trace[{span.trace_hi, span.trace_lo}].push_back(i);
    }
  }
  for (TreeNode& node : nodes) {
    std::sort(node.children.begin(), node.children.end(),
              [&](std::size_t a, std::size_t b) {
                return nodes[a].span->start_ns < nodes[b].span->start_ns;
              });
  }

  std::string out;
  for (auto& [trace_id, trace_roots] : by_trace) {
    out += "trace ";
    append_hex(out, trace_id.first, 16);
    append_hex(out, trace_id.second, 16);
    out.push_back('\n');
    std::sort(trace_roots.begin(), trace_roots.end(),
              [&](std::size_t a, std::size_t b) {
                return nodes[a].span->start_ns < nodes[b].span->start_ns;
              });
    for (std::size_t root : trace_roots) {
      render_node(out, nodes, root, 1);
    }
  }
  if (snapshot.dropped > 0) {
    out += "(dropped ";
    append_u64(out, snapshot.dropped);
    out += " spans)\n";
  }
  return out;
}

}  // namespace ohpx::trace
