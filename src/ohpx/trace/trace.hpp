// End-to-end invocation tracing (the observability half of the paper's
// open-implementation thesis: the ORB's protocol decisions are *visible*,
// not hidden).
//
// One remote call becomes one *trace*: a 128-bit trace id minted at the
// stub (or adopted from the wire on the server side), a tree of *spans*
// covering every pipeline stage — protocol selection, each capability's
// process()/unprocess(), payload encode/decode, the transport roundtrip,
// server dispatch and servant execution — and instant *events* for the
// fast-path cache's retry/invalidation decisions.  The context travels as
// an optional wire-header extension (see ohpx/wire/message.hpp), so
// nested, delegated and cross-process calls join the caller's trace.
//
// Cost contract:
//   - compiled in but disabled: every instrumentation point is one relaxed
//     atomic load and a branch (TraceSink::active());
//   - enabled: recording a span is a bounded struct copy into a fixed-
//     capacity per-thread ring buffer (drop-oldest) — no allocation, no
//     shared lock on the hot path.  The only writer/reader synchronization
//     is a per-buffer gate the writer never waits on (a snapshot in flight
//     makes the writer drop that one span instead of blocking).
//
// Sampling is steerable (the paper's "application steers the ORB"
// contract): a global mode (off / ratio / always) plus per-context and
// per-global-pointer overrides, innermost wins.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string_view>
#include <vector>

namespace ohpx::trace {

// ---------------------------------------------------------------------------
// identity

/// Propagated per-invocation identity: which trace this thread is inside
/// and which span is the current parent for new child spans.
struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< 128-bit trace id, high half
  std::uint64_t trace_lo = 0;  ///< 128-bit trace id, low half
  std::uint64_t span_id = 0;   ///< active span (parent for children)
  bool sampled = false;

  bool valid() const noexcept { return (trace_hi | trace_lo) != 0; }
};

/// Process-unique span id (never 0 — 0 means "no parent / root").
std::uint64_t next_span_id() noexcept;

/// Mints a fresh sampled root context with a random 128-bit trace id and
/// no active span yet (the first Span under it becomes the root span).
TraceContext mint_root() noexcept;

/// The thread-current trace context (invalid when no trace is active).
/// Invariant: an installed context is always sampled — unsampled calls
/// simply never install one.
TraceContext current_context() noexcept;

// ---------------------------------------------------------------------------
// span records

enum class SpanKind : std::uint8_t {
  invoke = 0,      ///< top-level client call (rmi.invoke)
  selection = 1,   ///< protocol selection incl. cache probe
  capability = 2,  ///< one capability's process()/unprocess()
  encode = 3,      ///< payload/frame encoding
  decode = 4,      ///< reply/frame decoding
  transport = 5,   ///< channel roundtrip (send + server + recv)
  server = 6,      ///< server-side dispatch pipeline
  servant = 7,     ///< user servant execution
  event = 8,       ///< zero-duration marker (retry, invalidation)
};

const char* to_string(SpanKind kind) noexcept;

/// One recorded span.  Fixed-size so ring-buffer writes never allocate:
/// names are expected to be string literals (ohpx-lint's span-names rule
/// enforces this in the hot-path dirs); annotations are bounded copies.
/// Deliberately without member initializers: Span embeds one and must
/// not pay ~100 bytes of zeroing per instrumentation point when tracing
/// is disabled.  Value-initialize (`SpanRecord record{};`) when building
/// one by hand.
struct SpanRecord {
  static constexpr std::size_t kNameCapacity = 24;
  static constexpr std::size_t kAnnotationCapacity = 48;

  std::uint64_t trace_hi;
  std::uint64_t trace_lo;
  std::uint64_t span_id;
  std::uint64_t parent_span;  // 0 = root of its process-local tree
  std::int64_t start_ns;      // steady-clock epoch, process-local
  std::int64_t duration_ns;   // 0 for instant events
  std::uint32_t thread_index; // sink-assigned, stable per thread
  SpanKind kind;
  char name[kNameCapacity];              // NUL-terminated, truncated
  char annotation[kAnnotationCapacity];  // NUL-terminated, truncated
};

/// Everything snapshot() returns — mirrors MetricsRegistry::snapshot().
struct TraceSnapshot {
  std::vector<SpanRecord> spans;  ///< oldest-first within each thread
  std::uint64_t dropped = 0;      ///< ring overwrites + gate collisions
};

// ---------------------------------------------------------------------------
// sampling

enum class Sampling : std::uint8_t {
  off = 0,
  ratio = 1,  ///< sample a fraction of root invocations
  always = 2,
};

/// A per-steering-point sampling override (one lives in each Context and
/// each CallCore).  Defaults to "inherit"; setting a mode of `ratio` or
/// `always` registers the override as an active tracing source so
/// TraceSink::active() stays a single load even with the global mode off.
class SamplingOverride {
 public:
  SamplingOverride() = default;
  ~SamplingOverride();
  SamplingOverride(const SamplingOverride&) = delete;
  SamplingOverride& operator=(const SamplingOverride&) = delete;

  void set(Sampling mode, double ratio = 1.0) noexcept;
  void clear() noexcept;  ///< back to inherit

  bool overridden() const noexcept {
    return mode_.load(std::memory_order_relaxed) >= 0;
  }
  Sampling mode() const noexcept {
    return static_cast<Sampling>(mode_.load(std::memory_order_relaxed));
  }
  double ratio() const noexcept;

 private:
  std::atomic<int> mode_{-1};  // -1 = inherit
  std::atomic<std::uint64_t> ratio_bits_{0};
};

/// Root sampling decision for a new invocation: consults `core` (per-GP),
/// then `context` (per-context), then the global sink mode — innermost
/// override wins.  Ratio mode flips a thread-local PRNG coin.
bool should_sample(const SamplingOverride& core,
                   const SamplingOverride& context) noexcept;

// ---------------------------------------------------------------------------
// sink

class TraceSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Process-wide sink (the only instance; spans from every thread land
  /// here, keyed by a per-thread ring buffer).
  static TraceSink& global();

  /// True when any sampling source (global mode or an override) could
  /// start a trace.  One relaxed load — the entire cost of compiled-in-
  /// but-disabled tracing at each instrumentation point.
  static bool active() noexcept {
    return g_active_sources.load(std::memory_order_relaxed) > 0;
  }

  /// Global sampling mode.  `ratio` is the sampled fraction in [0, 1]
  /// (only meaningful for Sampling::ratio).
  void set_sampling(Sampling mode, double ratio = 1.0) noexcept;
  Sampling sampling() const noexcept;
  double sampling_ratio() const noexcept;

  /// Ring capacity (spans per thread) for buffers created after the call;
  /// existing thread buffers keep their size.
  void set_capacity(std::size_t per_thread_spans);
  std::size_t capacity() const noexcept;

  /// Appends one span to the calling thread's ring (drop-oldest, no
  /// allocation after the thread's first span).  Wait-free for the
  /// writer: a concurrent snapshot makes it drop the span, never block.
  void record(const SpanRecord& record) noexcept;

  /// Copies out every thread's recorded spans (mirrors
  /// MetricsRegistry::snapshot()).  Spans are oldest-first per thread;
  /// use SpanRecord::start_ns for a global order.
  TraceSnapshot snapshot() const;

  /// Discards all recorded spans in place; thread buffers and outstanding
  /// trace contexts stay valid.
  void clear();

  /// Spans lost so far (ring overwrites and snapshot-gate collisions).
  std::uint64_t dropped() const;

 private:
  friend bool should_sample(const SamplingOverride&,
                            const SamplingOverride&) noexcept;
  friend class SamplingOverride;

  TraceSink() = default;

  // Ring-buffer state lives in trace.cpp as file statics: the sink is a
  // singleton, and keeping the thread registry out of the header keeps
  // this type trivially constructible before main().
  static std::atomic<int> g_active_sources;

  std::atomic<int> mode_{static_cast<int>(Sampling::off)};
  std::atomic<std::uint64_t> ratio_bits_{0};
  std::atomic<std::size_t> capacity_{kDefaultCapacity};
};

// ---------------------------------------------------------------------------
// RAII guards

/// Installs a TraceContext as thread-current for its scope — the client
/// root at the stub, or the adopted wire context in the server pipeline.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& context) noexcept;
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// RAII child span of the thread-current context.  Costs one branch when
/// tracing is inactive or the thread is outside any sampled trace.  While
/// alive, nested Spans parent under it (it installs its id as the current
/// parent and restores on end).
///
/// `name` must outlive the span; pass a string literal (enforced by the
/// ohpx-lint span-names rule in orb/, protocol/ and capability/).
class Span {
 public:
  Span(SpanKind kind, const char* name) noexcept {
    // The entire disabled-tracing cost: one relaxed load and a branch
    // (record_ stays uninitialized; arm() fills it on the sampled path).
    if (TraceSink::active()) arm(kind, name);
  }
  ~Span() { end(); }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool armed() const noexcept { return armed_; }

  /// Appends bounded text to the span's annotation (space-separated,
  /// truncated at the record's capacity — never allocates).
  void annotate(std::string_view text) noexcept {
    if (armed_) annotate_armed(text);
  }

  /// Appends `label:value` for a small integer value.
  void annotate_u64(std::string_view label, std::uint64_t value) noexcept {
    if (armed_) annotate_u64_armed(label, value);
  }

  /// Records the span now instead of at scope exit (idempotent).
  void end() noexcept {
    if (armed_) finish();
  }

  std::uint64_t span_id() const noexcept { return armed_ ? record_.span_id : 0; }

 private:
  void arm(SpanKind kind, const char* name) noexcept;
  void finish() noexcept;
  void annotate_armed(std::string_view text) noexcept;
  void annotate_u64_armed(std::string_view label, std::uint64_t value) noexcept;

  SpanRecord record_;  // meaningful iff armed_ (see arm())
  std::uint64_t saved_parent_ = 0;
  std::size_t annotation_len_ = 0;
  bool armed_ = false;
};

/// Out-of-line body of event() (the sampled path).
void event_armed(const char* name, std::string_view annotation) noexcept;

/// Records an instant event span (zero duration) under the current trace;
/// a no-op outside a sampled trace.  `name` must be a string literal.
inline void event(const char* name, std::string_view annotation) noexcept {
  if (TraceSink::active()) event_armed(name, annotation);
}

}  // namespace ohpx::trace
