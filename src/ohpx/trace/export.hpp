// Exporters for TraceSnapshot: Chrome trace_event JSON (loadable in
// chrome://tracing or Perfetto) and an aligned text rendering of the call
// trees.  Both are off the hot path — they allocate freely.
#pragma once

#include <string>

#include "ohpx/trace/trace.hpp"

namespace ohpx::trace {

/// Renders the snapshot as Chrome trace_event JSON: one "X" (complete)
/// event per span, one "i" (instant) event per zero-duration event span,
/// timestamps in microseconds, events sorted by start time.  The trace id
/// and span/parent ids ride in each event's "args".
std::string to_chrome_json(const TraceSnapshot& snapshot);

/// Renders the snapshot as aligned text call trees, one tree per root
/// span (a span whose parent is absent from the snapshot), grouped by
/// trace id.  Durations are right-aligned in microseconds.
std::string to_text_tree(const TraceSnapshot& snapshot);

}  // namespace ohpx::trace
