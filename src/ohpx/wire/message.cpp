#include "ohpx/wire/message.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/wire/crc.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::wire {

Buffer encode_frame(const MessageHeader& header, BytesView body) {
  Buffer out;
  out.reserve(kHeaderSize + body.size());
  Encoder enc(out);
  enc.put_u32(kFrameMagic);
  enc.put_u8(kWireVersion);
  enc.put_u8(static_cast<std::uint8_t>(header.type));
  enc.put_u16(header.flags);
  enc.put_u64(header.request_id);
  enc.put_u64(header.object_id);
  enc.put_u32(header.method_or_code);
  enc.put_u32(crc32(out.view(0, kHeaderSize - 4)));
  enc.put_raw(body);
  return out;
}

MessageHeader decode_frame(BytesView frame, BytesView& body) {
  if (frame.size() < kHeaderSize) {
    throw WireError(ErrorCode::wire_truncated, "frame shorter than header");
  }
  Decoder dec(frame);
  const std::uint32_t magic = dec.get_u32();
  if (magic != kFrameMagic) {
    throw WireError(ErrorCode::wire_bad_magic, "bad frame magic");
  }
  const std::uint8_t version = dec.get_u8();
  if (version != kWireVersion) {
    throw WireError(ErrorCode::wire_bad_version, "unsupported wire version");
  }
  MessageHeader header;
  const std::uint8_t type = dec.get_u8();
  if (type < 1 || type > 4) {
    throw WireError(ErrorCode::wire_bad_value, "unknown message type");
  }
  header.type = static_cast<MessageType>(type);
  header.flags = dec.get_u16();
  header.request_id = dec.get_u64();
  header.object_id = dec.get_u64();
  header.method_or_code = dec.get_u32();
  const std::uint32_t stored_crc = dec.get_u32();
  const std::uint32_t computed_crc =
      crc32(frame.subspan(0, kHeaderSize - 4));
  if (stored_crc != computed_crc) {
    throw WireError(ErrorCode::wire_bad_checksum, "frame header CRC mismatch");
  }
  body = frame.subspan(kHeaderSize);
  return header;
}

Buffer encode_error_body(std::uint32_t code, const std::string& message) {
  Buffer out;
  Encoder enc(out);
  enc.put_u32(code);
  enc.put_string(message);
  return out;
}

void decode_error_body(BytesView body, std::uint32_t& code, std::string& message) {
  Decoder dec(body);
  code = dec.get_u32();
  message = dec.get_string();
}

}  // namespace ohpx::wire
