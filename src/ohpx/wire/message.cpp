#include "ohpx/wire/message.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/wire/crc.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::wire {
namespace {

// The 32-byte header is fixed-layout, and it is (de)serialized four times
// per in-process call (encode + decode on each side), so it goes through
// direct big-endian loads/stores on a stack scratch block instead of the
// general field-at-a-time Encoder/Decoder.  Wire format is unchanged.

inline void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) |
         load_be32(p + 4);
}

}  // namespace

Buffer encode_frame(const MessageHeader& header, BytesView body) {
  Buffer out;
  encode_frame_into(out, header, body);
  return out;
}

void encode_frame_into(Buffer& out, const MessageHeader& header,
                       BytesView body) {
  std::uint8_t raw[kHeaderSize + kTraceExtensionSize + kDeadlineExtensionSize +
                   kCorrelationExtensionSize];
  store_be32(raw, kFrameMagic);
  raw[4] = kWireVersion;
  raw[5] = static_cast<std::uint8_t>(header.type);
  store_be16(raw + 6, header.flags);
  store_be64(raw + 8, header.request_id);
  store_be64(raw + 16, header.object_id);
  store_be32(raw + 24, header.method_or_code);
  store_be32(raw + 28, crc32(BytesView(raw, kHeaderSize - 4)));
  std::size_t prefix = kHeaderSize;
  if (header.has_trace()) {
    store_be64(raw + 32, header.trace_hi);
    store_be64(raw + 40, header.trace_lo);
    store_be64(raw + 48, header.trace_parent_span);
    raw[56] = header.trace_flags;
    prefix += kTraceExtensionSize;
  }
  if (header.has_deadline()) {
    store_be64(raw + prefix, static_cast<std::uint64_t>(header.deadline_ns));
    prefix += kDeadlineExtensionSize;
  }
  if (header.has_correlation()) {
    store_be64(raw + prefix, header.correlation_id);
    prefix += kCorrelationExtensionSize;
  }
  out.clear();
  out.reserve(prefix + body.size());
  out.append(BytesView(raw, prefix));
  out.append(body);
}

MessageHeader decode_frame(BytesView frame, BytesView& body) {
  if (frame.size() < kHeaderSize) {
    throw WireError(ErrorCode::wire_truncated, "frame shorter than header");
  }
  const std::uint8_t* raw = frame.data();
  if (load_be32(raw) != kFrameMagic) {
    throw WireError(ErrorCode::wire_bad_magic, "bad frame magic");
  }
  if (raw[4] != kWireVersion) {
    throw WireError(ErrorCode::wire_bad_version, "unsupported wire version");
  }
  const std::uint8_t type = raw[5];
  if (type < 1 || type > 4) {
    throw WireError(ErrorCode::wire_bad_value, "unknown message type");
  }
  MessageHeader header;
  header.type = static_cast<MessageType>(type);
  header.flags = load_be16(raw + 6);
  header.request_id = load_be64(raw + 8);
  header.object_id = load_be64(raw + 16);
  header.method_or_code = load_be32(raw + 24);
  const std::uint32_t stored_crc = load_be32(raw + 28);
  const std::uint32_t computed_crc =
      crc32(frame.subspan(0, kHeaderSize - 4));
  if (stored_crc != computed_crc) {
    throw WireError(ErrorCode::wire_bad_checksum, "frame header CRC mismatch");
  }
  std::size_t prefix = kHeaderSize;
  if (header.has_trace()) {
    if (frame.size() < kHeaderSize + kTraceExtensionSize) {
      throw WireError(ErrorCode::wire_truncated,
                      "frame shorter than trace extension");
    }
    header.trace_hi = load_be64(raw + 32);
    header.trace_lo = load_be64(raw + 40);
    header.trace_parent_span = load_be64(raw + 48);
    header.trace_flags = raw[56];
    prefix += kTraceExtensionSize;
  }
  if (header.has_deadline()) {
    if (frame.size() < prefix + kDeadlineExtensionSize) {
      throw WireError(ErrorCode::wire_truncated,
                      "frame shorter than deadline extension");
    }
    header.deadline_ns =
        static_cast<std::int64_t>(load_be64(raw + prefix));
    prefix += kDeadlineExtensionSize;
  }
  if (header.has_correlation()) {
    if (frame.size() < prefix + kCorrelationExtensionSize) {
      throw WireError(ErrorCode::wire_truncated,
                      "frame shorter than correlation extension");
    }
    header.correlation_id = load_be64(raw + prefix);
    prefix += kCorrelationExtensionSize;
  }
  body = frame.subspan(prefix);
  return header;
}

Buffer encode_error_body(std::uint32_t code, const std::string& message) {
  Buffer out;
  Encoder enc(out);
  enc.put_u32(code);
  enc.put_string(message);
  return out;
}

void decode_error_body(BytesView body, std::uint32_t& code,
                       std::string& message) {
  Decoder dec(body);
  code = dec.get_u32();
  message = dec.get_string();
}

}  // namespace ohpx::wire
