// XDR-style big-endian encoder.  All multi-byte integers go to the wire in
// network byte order; floats/doubles as their IEEE-754 bit patterns; byte
// blocks and strings as u32 length + raw bytes.  Mirrors Decoder exactly.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

#include "ohpx/wire/buffer.hpp"

namespace ohpx::wire {

class Encoder {
 public:
  /// Encodes into an externally owned buffer (appends at the end).
  explicit Encoder(Buffer& out) : out_(out) {}

  void put_u8(std::uint8_t v) { out_.append(v); }
  void put_u16(std::uint16_t v) { put_big_endian(v); }
  void put_u32(std::uint32_t v) { put_big_endian(v); }
  void put_u64(std::uint64_t v) { put_big_endian(v); }

  void put_i8(std::int8_t v) { put_u8(static_cast<std::uint8_t>(v)); }
  void put_i16(std::int16_t v) { put_u16(static_cast<std::uint16_t>(v)); }
  void put_i32(std::int32_t v) { put_u32(static_cast<std::uint32_t>(v)); }
  void put_i64(std::int64_t v) { put_u64(static_cast<std::uint64_t>(v)); }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_f32(float v) {
    static_assert(sizeof(float) == 4);
    put_u32(std::bit_cast<std::uint32_t>(v));
  }

  void put_f64(double v) {
    static_assert(sizeof(double) == 8);
    put_u64(std::bit_cast<std::uint64_t>(v));
  }

  /// u32 length followed by the raw bytes.
  void put_bytes(BytesView data) {
    put_u32(static_cast<std::uint32_t>(data.size()));
    out_.append(data);
  }

  void put_string(std::string_view text) {
    put_bytes(BytesView(reinterpret_cast<const std::uint8_t*>(text.data()),
                        text.size()));
  }

  /// Raw bytes without a length prefix (caller frames them).
  void put_raw(BytesView data) { out_.append(data); }

  Buffer& buffer() noexcept { return out_; }
  std::size_t size() const noexcept { return out_.size(); }

 private:
  template <typename T>
  void put_big_endian(T value) {
    std::uint8_t bytes[sizeof(T)];
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes[i] = static_cast<std::uint8_t>(value >> (8 * (sizeof(T) - 1 - i)));
    }
    out_.append(BytesView(bytes, sizeof(T)));
  }

  Buffer& out_;
};

}  // namespace ohpx::wire
