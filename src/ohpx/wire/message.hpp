// Request/reply frame format shared by every transport.
//
// Frame = fixed 32-byte header (CRC-protected) + body.
//
//   offset  size  field
//   0       4     magic 'OHPX'
//   4       1     version (currently 1)
//   5       1     type (request / reply / error_reply)
//   6       2     flags (bit 0: body was processed by a glue chain)
//   8       8     request id (client-chosen, echoed in the reply)
//   16      8     object id
//   24      4     method id (requests) / error code (error replies)
//   28      4     CRC-32 of bytes [0, 28)
//
// The body of an error reply is { u32 error-code, string message } so the
// client can rethrow the server-side failure with full fidelity.
#pragma once

#include <cstdint>

#include "ohpx/common/bytes.hpp"
#include "ohpx/wire/buffer.hpp"

namespace ohpx::wire {

inline constexpr std::uint32_t kFrameMagic = 0x4f485058;  // "OHPX"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;

enum class MessageType : std::uint8_t {
  request = 1,
  reply = 2,
  error_reply = 3,
  // Fire-and-forget request (Nexus remote-service-request semantics): the
  // server runs the handler and acknowledges with an empty reply; results
  // and application errors are not propagated to the caller.
  oneway = 4,
};

enum : std::uint16_t {
  kFlagGlueProcessed = 1u << 0,
};

struct MessageHeader {
  MessageType type = MessageType::request;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t object_id = 0;
  std::uint32_t method_or_code = 0;

  friend bool operator==(const MessageHeader&, const MessageHeader&) = default;
};

/// Serializes header + body into one contiguous frame.
Buffer encode_frame(const MessageHeader& header, BytesView body);

/// As encode_frame, but writes into `out` (cleared first) so callers can
/// reuse a pooled buffer instead of allocating a fresh frame per call.
void encode_frame_into(Buffer& out, const MessageHeader& header,
                       BytesView body);

/// Parses and validates a frame header; returns the header and sets
/// `body` to the view of the remaining bytes.  Throws WireError on any
/// malformed input (bad magic/version/CRC, truncation).
MessageHeader decode_frame(BytesView frame, BytesView& body);

/// Convenience: builds the body of an error reply.
Buffer encode_error_body(std::uint32_t code, const std::string& message);

/// Parses an error-reply body.
void decode_error_body(BytesView body, std::uint32_t& code, std::string& message);

}  // namespace ohpx::wire
