// Request/reply frame format shared by every transport.
//
// Frame = fixed 32-byte header (CRC-protected) + body.
//
//   offset  size  field
//   0       4     magic 'OHPX'
//   4       1     version (currently 1)
//   5       1     type (request / reply / error_reply)
//   6       2     flags (bit 0: body was processed by a glue chain;
//                        bit 1: a trace-context extension follows)
//   8       8     request id (client-chosen, echoed in the reply)
//   16      8     object id
//   24      4     method id (requests) / error code (error replies)
//   28      4     CRC-32 of bytes [0, 28)
//
// When kFlagTraceContext is set, a 25-byte trace-context extension sits
// between the fixed header and the body (the distributed-tracing identity
// from ohpx/trace/, so server dispatch and delegated calls join the
// caller's trace):
//
//   offset  size  field
//   32      8     trace id, high half
//   40      8     trace id, low half
//   48      8     parent span id (the client span the server parents under)
//   56      1     trace flags (bit 0: sampled)
//
// The extension is outside the CRC (it is advisory — a corrupt trace id
// cannot corrupt a call) and is skipped before capability/glue processing,
// which only ever sees the body.
//
// When kFlagDeadline is set, an 8-byte deadline extension follows the
// trace extension (or the fixed header when no trace context is carried):
// the call's absolute deadline in nanoseconds on the resilience clock
// (ohpx/resilience/clock.hpp), 0 meaning unbounded.  Like the trace
// extension it is advisory and outside the CRC; the server tightens its
// dispatch budget against it, it never loosens anything.
//
// When kFlagCorrelation is set, an 8-byte correlation-id extension follows
// the deadline extension (or whichever earlier extension is present; the
// extension order is fixed: trace, deadline, correlation).  The id is
// assigned by a multiplexing transport (the epoll reactor) per in-flight
// call on one connection and echoed verbatim in the matching reply —
// including error replies — so replies arriving out of order demultiplex
// to the right caller.  Like the other extensions it is advisory and
// outside the CRC.
//
// The body of an error reply is { u32 error-code, string message } so the
// client can rethrow the server-side failure with full fidelity.
#pragma once

#include <cstdint>

#include "ohpx/common/bytes.hpp"
#include "ohpx/wire/buffer.hpp"

namespace ohpx::wire {

inline constexpr std::uint32_t kFrameMagic = 0x4f485058;  // "OHPX"
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kTraceExtensionSize = 25;
inline constexpr std::size_t kDeadlineExtensionSize = 8;
inline constexpr std::size_t kCorrelationExtensionSize = 8;

enum class MessageType : std::uint8_t {
  request = 1,
  reply = 2,
  error_reply = 3,
  // Fire-and-forget request (Nexus remote-service-request semantics): the
  // server runs the handler and acknowledges with an empty reply; results
  // and application errors are not propagated to the caller.
  oneway = 4,
};

enum : std::uint16_t {
  kFlagGlueProcessed = 1u << 0,
  kFlagTraceContext = 1u << 1,
  kFlagDeadline = 1u << 2,
  kFlagCorrelation = 1u << 3,
};

enum : std::uint8_t {
  kTraceFlagSampled = 1u << 0,
};

struct MessageHeader {
  MessageType type = MessageType::request;
  std::uint16_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t object_id = 0;
  std::uint32_t method_or_code = 0;

  // Trace-context extension (meaningful iff flags & kFlagTraceContext;
  // see the layout comment above).  Plain integers here so ohpx_wire does
  // not depend on ohpx_trace.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;
  std::uint64_t trace_parent_span = 0;
  std::uint8_t trace_flags = 0;

  // Deadline extension (meaningful iff flags & kFlagDeadline): absolute
  // nanoseconds on the resilience clock, 0 = unbounded.
  std::int64_t deadline_ns = 0;

  // Correlation extension (meaningful iff flags & kFlagCorrelation):
  // transport-assigned per-call id, echoed in the reply for demux on a
  // multiplexed connection.
  std::uint64_t correlation_id = 0;

  bool has_trace() const noexcept {
    return (flags & kFlagTraceContext) != 0;
  }

  bool has_deadline() const noexcept {
    return (flags & kFlagDeadline) != 0;
  }

  bool has_correlation() const noexcept {
    return (flags & kFlagCorrelation) != 0;
  }

  friend bool operator==(const MessageHeader&, const MessageHeader&) = default;
};

/// A decoded reply: header plus the body copied out of the frame.  This
/// one struct is the reply vocabulary of every layer above the wire —
/// the protocol layer's ReplyMessage and the reactor's RawReply are both
/// aliases of it — so a reply decoded once on the reactor loop flows to
/// the stub's continuation without a re-decode or a per-layer repack.
struct ReplyEnvelope {
  MessageHeader header;
  Buffer payload;
  /// Encoded frame size (length prefix excluded), for byte accounting.
  std::size_t frame_size = 0;
};

/// Serializes header + body into one contiguous frame.
Buffer encode_frame(const MessageHeader& header, BytesView body);

/// As encode_frame, but writes into `out` (cleared first) so callers can
/// reuse a pooled buffer instead of allocating a fresh frame per call.
void encode_frame_into(Buffer& out, const MessageHeader& header,
                       BytesView body);

/// Parses and validates a frame header; returns the header and sets
/// `body` to the view of the remaining bytes.  Throws WireError on any
/// malformed input (bad magic/version/CRC, truncation).
MessageHeader decode_frame(BytesView frame, BytesView& body);

/// Convenience: builds the body of an error reply.
Buffer encode_error_body(std::uint32_t code, const std::string& message);

/// Parses an error-reply body.
void decode_error_body(BytesView body, std::uint32_t& code, std::string& message);

}  // namespace ohpx::wire
