// Generic (de)serialization over Encoder/Decoder.
//
// Built-in support: bool, integral and floating scalars, std::string,
// Bytes, std::vector<T>, std::array<T,N>, std::pair, std::map,
// std::optional.  User types opt in by providing member functions
//   void wire_serialize(wire::Encoder&) const;
//   static T wire_deserialize(wire::Decoder&);
// which the WireSerializable concept detects.
//
// The top-level helpers `encode_value` / `decode_value` are what the RMI
// stub layer uses to marshal argument packs.
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::wire {

template <typename T>
concept WireSerializable = requires(const T& cv, T& v, Encoder& enc, Decoder& dec) {
  { cv.wire_serialize(enc) } -> std::same_as<void>;
  { T::wire_deserialize(dec) } -> std::same_as<T>;
};

// ---- scalars ---------------------------------------------------------

inline void serialize(Encoder& enc, bool v) { enc.put_bool(v); }
inline void serialize(Encoder& enc, std::uint8_t v) { enc.put_u8(v); }
inline void serialize(Encoder& enc, std::uint16_t v) { enc.put_u16(v); }
inline void serialize(Encoder& enc, std::uint32_t v) { enc.put_u32(v); }
inline void serialize(Encoder& enc, std::uint64_t v) { enc.put_u64(v); }
inline void serialize(Encoder& enc, std::int8_t v) { enc.put_i8(v); }
inline void serialize(Encoder& enc, std::int16_t v) { enc.put_i16(v); }
inline void serialize(Encoder& enc, std::int32_t v) { enc.put_i32(v); }
inline void serialize(Encoder& enc, std::int64_t v) { enc.put_i64(v); }
inline void serialize(Encoder& enc, float v) { enc.put_f32(v); }
inline void serialize(Encoder& enc, double v) { enc.put_f64(v); }
inline void serialize(Encoder& enc, const std::string& v) { enc.put_string(v); }

template <typename T>
  requires std::is_enum_v<T>
void serialize(Encoder& enc, T v) {
  serialize(enc, static_cast<std::underlying_type_t<T>>(v));
}

template <WireSerializable T>
void serialize(Encoder& enc, const T& v) {
  v.wire_serialize(enc);
}

// Forward declarations so nested containers resolve.
template <typename T>
void serialize(Encoder& enc, const std::vector<T>& v);
template <typename T, std::size_t N>
void serialize(Encoder& enc, const std::array<T, N>& v);
template <typename A, typename B>
void serialize(Encoder& enc, const std::pair<A, B>& v);
template <typename K, typename V>
void serialize(Encoder& enc, const std::map<K, V>& v);
template <typename T>
void serialize(Encoder& enc, const std::optional<T>& v);

inline void serialize(Encoder& enc, const Bytes& v) { enc.put_bytes(v); }

template <typename T>
void serialize(Encoder& enc, const std::vector<T>& v) {
  enc.put_u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& item : v) serialize(enc, item);
}

template <typename T, std::size_t N>
void serialize(Encoder& enc, const std::array<T, N>& v) {
  for (const auto& item : v) serialize(enc, item);
}

template <typename A, typename B>
void serialize(Encoder& enc, const std::pair<A, B>& v) {
  serialize(enc, v.first);
  serialize(enc, v.second);
}

template <typename K, typename V>
void serialize(Encoder& enc, const std::map<K, V>& v) {
  enc.put_u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& [key, value] : v) {
    serialize(enc, key);
    serialize(enc, value);
  }
}

template <typename T>
void serialize(Encoder& enc, const std::optional<T>& v) {
  enc.put_bool(v.has_value());
  if (v) serialize(enc, *v);
}

// ---- deserialize (tag dispatch on type) -------------------------------

template <typename T>
struct Deserializer;

template <>
struct Deserializer<bool> {
  static bool get(Decoder& dec) { return dec.get_bool(); }
};
template <>
struct Deserializer<std::uint8_t> {
  static std::uint8_t get(Decoder& dec) { return dec.get_u8(); }
};
template <>
struct Deserializer<std::uint16_t> {
  static std::uint16_t get(Decoder& dec) { return dec.get_u16(); }
};
template <>
struct Deserializer<std::uint32_t> {
  static std::uint32_t get(Decoder& dec) { return dec.get_u32(); }
};
template <>
struct Deserializer<std::uint64_t> {
  static std::uint64_t get(Decoder& dec) { return dec.get_u64(); }
};
template <>
struct Deserializer<std::int8_t> {
  static std::int8_t get(Decoder& dec) { return dec.get_i8(); }
};
template <>
struct Deserializer<std::int16_t> {
  static std::int16_t get(Decoder& dec) { return dec.get_i16(); }
};
template <>
struct Deserializer<std::int32_t> {
  static std::int32_t get(Decoder& dec) { return dec.get_i32(); }
};
template <>
struct Deserializer<std::int64_t> {
  static std::int64_t get(Decoder& dec) { return dec.get_i64(); }
};
template <>
struct Deserializer<float> {
  static float get(Decoder& dec) { return dec.get_f32(); }
};
template <>
struct Deserializer<double> {
  static double get(Decoder& dec) { return dec.get_f64(); }
};
template <>
struct Deserializer<std::string> {
  static std::string get(Decoder& dec) { return dec.get_string(); }
};

template <typename T>
  requires std::is_enum_v<T>
struct Deserializer<T> {
  static T get(Decoder& dec) {
    return static_cast<T>(Deserializer<std::underlying_type_t<T>>::get(dec));
  }
};

template <WireSerializable T>
struct Deserializer<T> {
  static T get(Decoder& dec) { return T::wire_deserialize(dec); }
};

template <typename T>
struct Deserializer<std::vector<T>> {
  static std::vector<T> get(Decoder& dec) {
    const std::uint32_t n = dec.get_u32();
    // Guard against hostile counts: never pre-reserve more elements than
    // bytes remain in the buffer (each element costs at least one byte).
    if (n > dec.remaining() && sizeof(T) >= 1) {
      throw WireError(ErrorCode::wire_truncated,
                      "vector count exceeds remaining bytes");
    }
    std::vector<T> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) out.push_back(Deserializer<T>::get(dec));
    return out;
  }
};

template <>
struct Deserializer<Bytes> {
  static Bytes get(Decoder& dec) { return dec.get_bytes(); }
};

template <typename T, std::size_t N>
struct Deserializer<std::array<T, N>> {
  static std::array<T, N> get(Decoder& dec) {
    std::array<T, N> out{};
    for (auto& item : out) item = Deserializer<T>::get(dec);
    return out;
  }
};

template <typename A, typename B>
struct Deserializer<std::pair<A, B>> {
  static std::pair<A, B> get(Decoder& dec) {
    A a = Deserializer<A>::get(dec);
    B b = Deserializer<B>::get(dec);
    return {std::move(a), std::move(b)};
  }
};

template <typename K, typename V>
struct Deserializer<std::map<K, V>> {
  static std::map<K, V> get(Decoder& dec) {
    const std::uint32_t n = dec.get_u32();
    std::map<K, V> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      K key = Deserializer<K>::get(dec);
      V value = Deserializer<V>::get(dec);
      out.emplace(std::move(key), std::move(value));
    }
    return out;
  }
};

template <typename T>
struct Deserializer<std::optional<T>> {
  static std::optional<T> get(Decoder& dec) {
    if (!dec.get_bool()) return std::nullopt;
    return Deserializer<T>::get(dec);
  }
};

template <typename T>
T deserialize(Decoder& dec) {
  return Deserializer<std::remove_cvref_t<T>>::get(dec);
}

// ---- whole-value helpers ----------------------------------------------

/// Serializes a single value into a fresh buffer.
template <typename T>
Buffer encode_value(const T& value) {
  Buffer buf;
  Encoder enc(buf);
  serialize(enc, value);
  return buf;
}

/// Decodes a single value that must occupy the entire view.
template <typename T>
T decode_value(BytesView data) {
  Decoder dec(data);
  T value = deserialize<T>(dec);
  dec.expect_end();
  return value;
}

/// Serializes an argument pack in order (RMI argument marshalling).
template <typename... Args>
void serialize_all(Encoder& enc, const Args&... args) {
  (serialize(enc, args), ...);
}

}  // namespace ohpx::wire
