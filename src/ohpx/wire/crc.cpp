#include "ohpx/wire/crc.hpp"

#include <array>

namespace ohpx::wire {
namespace {

std::array<std::uint32_t, 256> build_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() noexcept {
  static const auto t = build_table();
  return t;
}

}  // namespace

void Crc32::update(BytesView data) noexcept {
  const auto& t = table();
  std::uint32_t c = state_;
  for (std::uint8_t byte : data) {
    c = t[(c ^ byte) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(BytesView data) noexcept {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace ohpx::wire
