#include "ohpx/wire/crc.hpp"

#include <array>

namespace ohpx::wire {
namespace {

// Slicing-by-4: table[0] is the classic byte-at-a-time table, table[k]
// extends it so one iteration folds four message bytes into the state.
// Every frame header pays a CRC on encode and again on decode, so this
// runs four times per in-process call.
using SliceTables = std::array<std::array<std::uint32_t, 256>, 4>;

SliceTables build_tables() noexcept {
  SliceTables tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::uint32_t i = 0; i < 256; ++i) {
    for (std::size_t k = 1; k < tables.size(); ++k) {
      tables[k][i] =
          (tables[k - 1][i] >> 8) ^ tables[0][tables[k - 1][i] & 0xffu];
    }
  }
  return tables;
}

const SliceTables& tables() noexcept {
  static const auto t = build_tables();
  return t;
}

}  // namespace

void Crc32::update(BytesView data) noexcept {
  const auto& t = tables();
  std::uint32_t c = state_;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 4) {
    c ^= static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
    c = t[3][c & 0xffu] ^ t[2][(c >> 8) & 0xffu] ^ t[1][(c >> 16) & 0xffu] ^
        t[0][(c >> 24) & 0xffu];
    p += 4;
    n -= 4;
  }
  for (; n > 0; ++p, --n) {
    c = t[0][(c ^ *p) & 0xffu] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t crc32(BytesView data) noexcept {
  Crc32 crc;
  crc.update(data);
  return crc.value();
}

}  // namespace ohpx::wire
