#include "ohpx/wire/buffer_pool.hpp"

#include <utility>

namespace ohpx::wire {

BufferPool& BufferPool::local() {
  static thread_local BufferPool pool;
  return pool;
}

Buffer BufferPool::acquire(std::size_t reserve_hint) {
  Buffer out;
  if (!free_.empty()) {
    Bytes storage = std::move(free_.back());
    free_.pop_back();
    storage.clear();  // keeps capacity
    out.assign(std::move(storage));
    ++reused_;
  } else {
    ++allocated_;
  }
  if (reserve_hint != 0) out.reserve(reserve_hint);
  return out;
}

void BufferPool::release(Buffer&& buffer) {
  Bytes storage = buffer.release();
  if (storage.capacity() == 0 || storage.capacity() > kMaxRetainedBytes ||
      free_.size() >= kMaxPooled) {
    return;  // drop: empty, oversized, or pool already full
  }
  free_.push_back(std::move(storage));
}

}  // namespace ohpx::wire
