#include "ohpx/wire/buffer_pool.hpp"

#include <memory>
#include <utility>

#include "ohpx/sync/mutex.hpp"

namespace ohpx::wire {
namespace {

// Live-pool registry for global_stats(): touched only at thread start
// and exit, never on the acquire/release hot path.  Retired totals keep
// the reused/allocated counters monotonic after a thread exits (its
// parked buffers are freed, so it stops contributing to `pooled`).
struct PoolRegistry {
  sync::Mutex mutex{"wire.buffer_pool_registry"};
  std::vector<const BufferPool*> pools;
  std::uint64_t retired_reused = 0;
  std::uint64_t retired_allocated = 0;
};

PoolRegistry& registry() {
  // Leaked on purpose (released unique_ptr): thread_local pool
  // destructors run at thread exit, possibly after function-static
  // destruction during process teardown.
  static PoolRegistry* instance = std::make_unique<PoolRegistry>().release();
  return *instance;
}

// Single-writer increment: only the owning thread mutates the counter,
// so a plain load+store pair (no locked RMW) is race-free and keeps the
// hot path at the cost of the unshared counters it replaced.
void bump(std::atomic<std::uint64_t>& counter, std::uint64_t delta) {
  counter.store(counter.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

void drop(std::atomic<std::uint64_t>& counter, std::uint64_t delta) {
  counter.store(counter.load(std::memory_order_relaxed) - delta,
                std::memory_order_relaxed);
}

}  // namespace

BufferPool::BufferPool() {
  auto& reg = registry();
  sync::LockGuard lock(reg.mutex);
  reg.pools.push_back(this);
}

BufferPool::~BufferPool() {
  auto& reg = registry();
  sync::LockGuard lock(reg.mutex);
  for (auto it = reg.pools.begin(); it != reg.pools.end(); ++it) {
    if (*it == this) {
      reg.pools.erase(it);
      break;
    }
  }
  reg.retired_reused += reused_.load(std::memory_order_relaxed);
  reg.retired_allocated += allocated_.load(std::memory_order_relaxed);
}

BufferPool& BufferPool::local() {
  static thread_local BufferPool pool;
  return pool;
}

BufferPool::GlobalStats BufferPool::global_stats() noexcept {
  auto& reg = registry();
  GlobalStats stats;
  sync::LockGuard lock(reg.mutex);
  stats.reused = reg.retired_reused;
  stats.allocated = reg.retired_allocated;
  for (const BufferPool* pool : reg.pools) {
    stats.pooled += pool->pooled_count_.load(std::memory_order_relaxed);
    stats.reused += pool->reused_.load(std::memory_order_relaxed);
    stats.allocated += pool->allocated_.load(std::memory_order_relaxed);
  }
  return stats;
}

Buffer BufferPool::acquire(std::size_t reserve_hint) {
  Buffer out;
  if (!free_.empty()) {
    Bytes storage = std::move(free_.back());
    free_.pop_back();
    storage.clear();  // keeps capacity
    out.assign(std::move(storage));
    bump(reused_, 1);
    drop(pooled_count_, 1);
  } else {
    bump(allocated_, 1);
  }
  if (reserve_hint != 0) out.reserve(reserve_hint);
  return out;
}

void BufferPool::release(Buffer&& buffer) {
  Bytes storage = buffer.release();
  if (storage.capacity() == 0 || storage.capacity() > kMaxRetainedBytes ||
      free_.size() >= kMaxPooled) {
    return;  // drop: empty, oversized, or pool already full
  }
  free_.push_back(std::move(storage));
  bump(pooled_count_, 1);
}

}  // namespace ohpx::wire
