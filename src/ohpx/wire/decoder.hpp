// XDR-style big-endian decoder over a borrowed byte view.  Every read is
// bounds-checked and throws WireError(wire_truncated) past the end, so a
// corrupted or hostile frame can never read out of bounds.
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "ohpx/common/bytes.hpp"
#include "ohpx/common/error.hpp"

namespace ohpx::wire {

class Decoder {
 public:
  explicit Decoder(BytesView data) : data_(data) {}

  std::uint8_t get_u8() {
    require(1);
    return data_[pos_++];
  }

  std::uint16_t get_u16() { return get_big_endian<std::uint16_t>(); }
  std::uint32_t get_u32() { return get_big_endian<std::uint32_t>(); }
  std::uint64_t get_u64() { return get_big_endian<std::uint64_t>(); }

  std::int8_t get_i8() { return static_cast<std::int8_t>(get_u8()); }
  std::int16_t get_i16() { return static_cast<std::int16_t>(get_u16()); }
  std::int32_t get_i32() { return static_cast<std::int32_t>(get_u32()); }
  std::int64_t get_i64() { return static_cast<std::int64_t>(get_u64()); }

  bool get_bool() {
    const std::uint8_t v = get_u8();
    if (v > 1) {
      throw WireError(ErrorCode::wire_bad_value, "bool byte not 0/1");
    }
    return v == 1;
  }

  float get_f32() { return std::bit_cast<float>(get_u32()); }
  double get_f64() { return std::bit_cast<double>(get_u64()); }

  /// u32 length + raw bytes, as written by Encoder::put_bytes.
  Bytes get_bytes() {
    const std::uint32_t len = get_u32();
    require(len);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
  }

  /// Zero-copy view variant of get_bytes; valid while the backing store lives.
  BytesView get_bytes_view() {
    const std::uint32_t len = get_u32();
    require(len);
    BytesView out = data_.subspan(pos_, len);
    pos_ += len;
    return out;
  }

  std::string get_string() {
    BytesView raw = get_bytes_view();
    return std::string(raw.begin(), raw.end());
  }

  /// Raw bytes without a length prefix.
  BytesView get_raw(std::size_t count) {
    require(count);
    BytesView out = data_.subspan(pos_, count);
    pos_ += count;
    return out;
  }

  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  /// Fails decode unless the entire input was consumed (strict framing).
  void expect_end() const {
    if (!at_end()) {
      throw WireError(ErrorCode::wire_bad_value,
                      "trailing bytes after decoded value");
    }
  }

 private:
  void require(std::size_t count) const {
    if (count > data_.size() - pos_) {
      throw WireError(ErrorCode::wire_truncated, "decode past end of buffer");
    }
  }

  template <typename T>
  T get_big_endian() {
    require(sizeof(T));
    T value = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      value = static_cast<T>((value << 8) | data_[pos_ + i]);
    }
    pos_ += sizeof(T);
    return value;
  }

  BytesView data_;
  std::size_t pos_ = 0;
};

}  // namespace ohpx::wire
