// Growable byte buffer used by the whole invocation pipeline.
//
// A single Buffer travels from the stub through the capability chain onto
// the channel and back (the paper's "no extra data copying" design point):
// capabilities transform the payload region in place where possible and
// only reallocate when the size changes (compression).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>

#include "ohpx/common/bytes.hpp"

namespace ohpx::wire {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(Bytes data) : data_(std::move(data)) {}
  Buffer(const std::uint8_t* data, std::size_t size) : data_(data, data + size) {}

  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }
  const std::uint8_t* data() const noexcept { return data_.data(); }
  std::uint8_t* data() noexcept { return data_.data(); }

  BytesView view() const noexcept { return BytesView(data_); }
  std::span<std::uint8_t> mutable_view() noexcept { return std::span<std::uint8_t>(data_); }

  /// Subrange view; clamped to the buffer end.
  BytesView view(std::size_t offset, std::size_t length) const noexcept {
    if (offset > data_.size()) return {};
    length = std::min(length, data_.size() - offset);
    return BytesView(data_.data() + offset, length);
  }

  void reserve(std::size_t capacity) { data_.reserve(capacity); }
  void resize(std::size_t size) { data_.resize(size); }
  void clear() noexcept { data_.clear(); }

  void append(BytesView bytes) { data_.insert(data_.end(), bytes.begin(), bytes.end()); }
  void append(std::uint8_t byte) { data_.push_back(byte); }

  /// Moves the underlying storage out, leaving the buffer empty.
  Bytes release() noexcept { return std::exchange(data_, Bytes{}); }

  /// Replaces the contents wholesale (used by size-changing capabilities).
  void assign(Bytes data) noexcept { data_ = std::move(data); }

  const Bytes& bytes() const noexcept { return data_; }

  friend bool operator==(const Buffer& a, const Buffer& b) noexcept {
    return a.data_ == b.data_;
  }

 private:
  Bytes data_;
};

}  // namespace ohpx::wire
