// CRC-32 (IEEE 802.3 polynomial, reflected) computed with a lazily built
// 256-entry table.  Used to protect frame headers and by the checksum
// capability.
#pragma once

#include <cstdint>

#include "ohpx/common/bytes.hpp"

namespace ohpx::wire {

/// One-shot CRC-32 of `data`.
std::uint32_t crc32(BytesView data) noexcept;

/// Incremental CRC-32: feed chunks, then read value().
class Crc32 {
 public:
  void update(BytesView data) noexcept;
  std::uint32_t value() const noexcept { return state_ ^ 0xffffffffu; }
  void reset() noexcept { state_ = 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace ohpx::wire
