// Thread-local recycling pool for wire buffers.
//
// Every request/reply roundtrip used to heap-allocate two frames (request
// out, reply in) and free them microseconds later.  The pool keeps a small
// per-thread free list of released buffers so steady-state traffic reuses
// the same allocations: acquire() hands back a cleared buffer with its old
// capacity intact, release() returns it.  The in-process fast path forms a
// closed loop (server frames are released by the client after decoding),
// so a hot caller settles on a handful of warm buffers per thread.
//
// Thread-local by design: no locks, no cross-thread ownership questions.
// A buffer released on a different thread than it was acquired on simply
// seeds that thread's pool — correctness never depends on pairing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "ohpx/wire/buffer.hpp"

namespace ohpx::wire {

class BufferPool {
 public:
  /// Process-wide pool occupancy for the introspection plane, summed
  /// over every live thread's pool (plus totals retired by exited
  /// threads).  The counters are single-writer atomics — only the
  /// owning thread writes, with plain load+store (no RMW), so the
  /// acquire/release hot path costs the same as the unshared counters
  /// it replaced; the exporter's sum is eventually consistent.
  struct GlobalStats {
    std::uint64_t pooled = 0;     // buffers currently parked, all threads
    std::uint64_t reused = 0;     // acquisitions served from a pool
    std::uint64_t allocated = 0;  // acquisitions that had to allocate
  };
  static GlobalStats global_stats() noexcept;

  /// Free-list depth per thread; beyond this, released buffers are freed.
  static constexpr std::size_t kMaxPooled = 8;

  /// Buffers whose capacity exceeds this are not retained — one giant
  /// payload must not pin megabytes per thread forever.
  static constexpr std::size_t kMaxRetainedBytes = std::size_t{4} << 20;

  /// The calling thread's pool.
  static BufferPool& local();

  /// Returns an empty buffer, reusing a pooled allocation when one is
  /// available, and ensures capacity for `reserve_hint` bytes.
  Buffer acquire(std::size_t reserve_hint = 0);

  /// Donates a no-longer-needed buffer back to the pool.
  void release(Buffer&& buffer);

  /// Registers with the process-wide pool list (global_stats' view).
  BufferPool();

  /// Thread exit frees the parked buffers and folds the totals into the
  /// retired tally so the _total counters stay monotonic.
  ~BufferPool();

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  std::size_t pooled() const noexcept {
    return free_.size();
  }
  std::uint64_t reused() const noexcept {
    return reused_.load(std::memory_order_relaxed);
  }
  std::uint64_t allocated() const noexcept {
    return allocated_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<Bytes> free_;
  // Single-writer counters: only the owning thread mutates them (with
  // non-RMW load+store), the global_stats() reader sums them relaxed.
  std::atomic<std::uint64_t> pooled_count_{0};
  std::atomic<std::uint64_t> reused_{0};
  std::atomic<std::uint64_t> allocated_{0};
};

}  // namespace ohpx::wire
