// Thread-local recycling pool for wire buffers.
//
// Every request/reply roundtrip used to heap-allocate two frames (request
// out, reply in) and free them microseconds later.  The pool keeps a small
// per-thread free list of released buffers so steady-state traffic reuses
// the same allocations: acquire() hands back a cleared buffer with its old
// capacity intact, release() returns it.  The in-process fast path forms a
// closed loop (server frames are released by the client after decoding),
// so a hot caller settles on a handful of warm buffers per thread.
//
// Thread-local by design: no locks, no cross-thread ownership questions.
// A buffer released on a different thread than it was acquired on simply
// seeds that thread's pool — correctness never depends on pairing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ohpx/wire/buffer.hpp"

namespace ohpx::wire {

class BufferPool {
 public:
  /// Free-list depth per thread; beyond this, released buffers are freed.
  static constexpr std::size_t kMaxPooled = 8;

  /// Buffers whose capacity exceeds this are not retained — one giant
  /// payload must not pin megabytes per thread forever.
  static constexpr std::size_t kMaxRetainedBytes = std::size_t{4} << 20;

  /// The calling thread's pool.
  static BufferPool& local();

  /// Returns an empty buffer, reusing a pooled allocation when one is
  /// available, and ensures capacity for `reserve_hint` bytes.
  Buffer acquire(std::size_t reserve_hint = 0);

  /// Donates a no-longer-needed buffer back to the pool.
  void release(Buffer&& buffer);

  std::size_t pooled() const noexcept { return free_.size(); }
  std::uint64_t reused() const noexcept { return reused_; }
  std::uint64_t allocated() const noexcept { return allocated_; }

 private:
  std::vector<Bytes> free_;
  std::uint64_t reused_ = 0;
  std::uint64_t allocated_ = 0;
};

}  // namespace ohpx::wire
