// Machine / LAN / link model standing in for the paper's physical testbed
// (Sun Ultra-10s on Ethernet + 155 Mbps ATM — see DESIGN.md §2).
//
// The topology answers the two placement predicates the paper's
// applicability rules need — same machine? same LAN? — and supplies a
// LinkSpec (bandwidth + latency) for any machine pair so simulated
// transports can charge modeled wire time.  It also tracks a scalar load
// figure per machine for the load-balancing subsystem.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/clock.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::netsim {

using MachineId = std::uint32_t;
using LanId = std::uint32_t;

inline constexpr MachineId kInvalidMachine = 0xffffffffu;
inline constexpr LanId kInvalidLan = 0xffffffffu;

/// Physical link characteristics.  bandwidth_bps is payload bits/second.
struct LinkSpec {
  std::string name;
  double bandwidth_bps = 0.0;
  Nanoseconds latency{0};

  /// Modeled one-way transfer time for `bytes` over this link.
  Nanoseconds transfer_time(std::uint64_t bytes) const noexcept {
    if (bandwidth_bps <= 0.0) return latency;
    const double seconds = static_cast<double>(bytes) * 8.0 / bandwidth_bps;
    return latency + Nanoseconds(static_cast<std::int64_t>(seconds * 1e9));
  }
};

/// Common presets (numbers match the era of the paper's testbed).
LinkSpec ethernet_10();       // 10 Mbps,  ~1.0 ms latency
LinkSpec fast_ethernet_100(); // 100 Mbps, ~0.5 ms latency
LinkSpec atm_155();           // 155 Mbps, ~0.3 ms latency
LinkSpec wan_t3();            // 45 Mbps,  ~20 ms latency (inter-LAN default)
LinkSpec loopback();          // 2 Gbps,   ~0.02 ms (same-machine IPC)

class Topology {
 public:
  Topology();

  LanId add_lan(const std::string& name);
  MachineId add_machine(const std::string& name, LanId lan);

  std::size_t lan_count() const;
  std::size_t machine_count() const;
  const std::string& machine_name(MachineId m) const;
  const std::string& lan_name(LanId lan) const;
  LanId lan_of(MachineId m) const;

  /// Whether `m` names a machine of *this* topology.  Object references
  /// arriving from another process carry machine ids that mean nothing
  /// here; placement predicates treat them as "unknown, not local".
  bool has_machine(MachineId m) const;

  bool same_machine(MachineId a, MachineId b) const;
  bool same_lan(MachineId a, MachineId b) const;
  bool same_campus(MachineId a, MachineId b) const;

  /// Groups `lan` into an administrative campus/site (default: every LAN
  /// is its own campus).  Capabilities can scope themselves to
  /// cross-campus traffic only — e.g. "no security needed on the same
  /// campus" in the paper's Figure 4 experiment.
  void set_campus(LanId lan, std::uint32_t campus);
  std::uint32_t campus_of(LanId lan) const;

  /// Sets the intra-LAN link for `lan` (e.g. ATM for one LAN, Ethernet
  /// for another).
  void set_lan_link(LanId lan, LinkSpec spec);

  /// Sets the link used between a specific pair of LANs.
  void set_wan_link(LanId a, LanId b, LinkSpec spec);

  /// Sets the fallback link for LAN pairs with no explicit wan link.
  void set_default_wan_link(LinkSpec spec);

  /// Sets the link used when client and server share a machine.
  void set_loopback_link(LinkSpec spec);

  /// The link a message between `a` and `b` traverses.
  LinkSpec link_between(MachineId a, MachineId b) const;

  // -- load tracking (for the high-water-mark balancer) --
  void set_load(MachineId m, double load);
  void add_load(MachineId m, double delta);
  double load(MachineId m) const;
  /// Machine with the smallest load; ties broken by lowest id.
  MachineId least_loaded() const;

 private:
  void check_machine(MachineId m) const;
  void check_lan(LanId lan) const;

  struct Machine {
    std::string name;
    LanId lan = kInvalidLan;
    double load = 0.0;
  };
  struct Lan {
    std::string name;
    LinkSpec link;
    std::uint32_t campus = 0;
  };

  mutable sync::Mutex mutex_{"netsim.topology"};
  std::vector<Machine> machines_ OHPX_GUARDED_BY(mutex_);
  std::vector<Lan> lans_ OHPX_GUARDED_BY(mutex_);
  std::map<std::pair<LanId, LanId>, LinkSpec> wan_links_ OHPX_GUARDED_BY(mutex_);
  LinkSpec default_wan_ OHPX_GUARDED_BY(mutex_);
  LinkSpec loopback_ OHPX_GUARDED_BY(mutex_);
};

/// The placement of one client/server pair, consumed by applicability
/// predicates of protocols and capabilities (paper §3.2, §4.3).
struct Placement {
  MachineId client_machine = kInvalidMachine;
  MachineId server_machine = kInvalidMachine;
  const Topology* topology = nullptr;

  /// Both ends are machines this topology knows about.  False for
  /// references minted in another process (their machine ids are foreign),
  /// in which case every same_* predicate is false and the link falls back
  /// to the default WAN model — the conservative reading of "somewhere
  /// else entirely".
  bool resolvable() const {
    return topology != nullptr && topology->has_machine(client_machine) &&
           topology->has_machine(server_machine);
  }

  bool same_machine() const {
    return resolvable() &&
           topology->same_machine(client_machine, server_machine);
  }
  bool same_lan() const {
    return resolvable() && topology->same_lan(client_machine, server_machine);
  }
  bool same_campus() const {
    return resolvable() &&
           topology->same_campus(client_machine, server_machine);
  }
  LinkSpec link() const {
    if (!resolvable()) return wan_t3();
    return topology->link_between(client_machine, server_machine);
  }
};

}  // namespace ohpx::netsim
