#include "ohpx/netsim/topology.hpp"

#include <algorithm>

#include "ohpx/sync/mutex.hpp"

namespace ohpx::netsim {

using std::chrono::microseconds;

LinkSpec ethernet_10() {
  return LinkSpec{"ethernet-10", 10e6, microseconds(1000)};
}
LinkSpec fast_ethernet_100() {
  return LinkSpec{"ethernet-100", 100e6, microseconds(500)};
}
LinkSpec atm_155() {
  return LinkSpec{"atm-155", 155e6, microseconds(300)};
}
LinkSpec wan_t3() {
  return LinkSpec{"wan-t3", 45e6, microseconds(20000)};
}
LinkSpec loopback() {
  return LinkSpec{"loopback", 2e9, microseconds(20)};
}

Topology::Topology() : default_wan_(wan_t3()), loopback_(loopback()) {}

LanId Topology::add_lan(const std::string& name) {
  sync::LockGuard lock(mutex_);
  const LanId id = static_cast<LanId>(lans_.size());
  lans_.push_back(Lan{name, fast_ethernet_100(), id});
  return id;
}

MachineId Topology::add_machine(const std::string& name, LanId lan) {
  sync::LockGuard lock(mutex_);
  if (lan >= lans_.size()) {
    throw Error(ErrorCode::internal, "add_machine: unknown LAN");
  }
  machines_.push_back(Machine{name, lan, 0.0});
  return static_cast<MachineId>(machines_.size() - 1);
}

std::size_t Topology::lan_count() const {
  sync::LockGuard lock(mutex_);
  return lans_.size();
}

std::size_t Topology::machine_count() const {
  sync::LockGuard lock(mutex_);
  return machines_.size();
}

const std::string& Topology::machine_name(MachineId m) const {
  sync::LockGuard lock(mutex_);
  check_machine(m);
  return machines_[m].name;
}

const std::string& Topology::lan_name(LanId lan) const {
  sync::LockGuard lock(mutex_);
  check_lan(lan);
  return lans_[lan].name;
}

LanId Topology::lan_of(MachineId m) const {
  sync::LockGuard lock(mutex_);
  check_machine(m);
  return machines_[m].lan;
}

bool Topology::has_machine(MachineId m) const {
  sync::LockGuard lock(mutex_);
  return m < machines_.size();
}

bool Topology::same_machine(MachineId a, MachineId b) const {
  sync::LockGuard lock(mutex_);
  check_machine(a);
  check_machine(b);
  return a == b;
}

bool Topology::same_lan(MachineId a, MachineId b) const {
  sync::LockGuard lock(mutex_);
  check_machine(a);
  check_machine(b);
  return machines_[a].lan == machines_[b].lan;
}

bool Topology::same_campus(MachineId a, MachineId b) const {
  sync::LockGuard lock(mutex_);
  check_machine(a);
  check_machine(b);
  return lans_[machines_[a].lan].campus == lans_[machines_[b].lan].campus;
}

void Topology::set_campus(LanId lan, std::uint32_t campus) {
  sync::LockGuard lock(mutex_);
  check_lan(lan);
  lans_[lan].campus = campus;
}

std::uint32_t Topology::campus_of(LanId lan) const {
  sync::LockGuard lock(mutex_);
  check_lan(lan);
  return lans_[lan].campus;
}

void Topology::set_lan_link(LanId lan, LinkSpec spec) {
  sync::LockGuard lock(mutex_);
  check_lan(lan);
  lans_[lan].link = std::move(spec);
}

void Topology::set_wan_link(LanId a, LanId b, LinkSpec spec) {
  sync::LockGuard lock(mutex_);
  check_lan(a);
  check_lan(b);
  wan_links_[std::minmax(a, b)] = std::move(spec);
}

void Topology::set_default_wan_link(LinkSpec spec) {
  sync::LockGuard lock(mutex_);
  default_wan_ = std::move(spec);
}

void Topology::set_loopback_link(LinkSpec spec) {
  sync::LockGuard lock(mutex_);
  loopback_ = std::move(spec);
}

LinkSpec Topology::link_between(MachineId a, MachineId b) const {
  sync::LockGuard lock(mutex_);
  check_machine(a);
  check_machine(b);
  if (a == b) return loopback_;
  const LanId lan_a = machines_[a].lan;
  const LanId lan_b = machines_[b].lan;
  if (lan_a == lan_b) return lans_[lan_a].link;
  const auto it = wan_links_.find(std::minmax(lan_a, lan_b));
  if (it != wan_links_.end()) return it->second;
  return default_wan_;
}

void Topology::set_load(MachineId m, double load) {
  sync::LockGuard lock(mutex_);
  check_machine(m);
  machines_[m].load = load;
}

void Topology::add_load(MachineId m, double delta) {
  sync::LockGuard lock(mutex_);
  check_machine(m);
  machines_[m].load += delta;
}

double Topology::load(MachineId m) const {
  sync::LockGuard lock(mutex_);
  check_machine(m);
  return machines_[m].load;
}

MachineId Topology::least_loaded() const {
  sync::LockGuard lock(mutex_);
  if (machines_.empty()) {
    throw Error(ErrorCode::internal, "least_loaded: no machines");
  }
  MachineId best = 0;
  for (MachineId m = 1; m < machines_.size(); ++m) {
    if (machines_[m].load < machines_[best].load) best = m;
  }
  return best;
}

void Topology::check_machine(MachineId m) const {
  if (m >= machines_.size()) {
    throw Error(ErrorCode::internal, "unknown machine id");
  }
}

void Topology::check_lan(LanId lan) const {
  if (lan >= lans_.size()) {
    throw Error(ErrorCode::internal, "unknown LAN id");
  }
}

}  // namespace ohpx::netsim
