#include "ohpx/netsim/parser.hpp"

#include <sstream>
#include <vector>

namespace ohpx::netsim {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw Error(ErrorCode::wire_bad_value,
              "topology line " + std::to_string(line) + ": " + message);
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream stream(line);
  std::string token;
  while (stream >> token) {
    if (token[0] == '#') break;  // trailing comment
    tokens.push_back(token);
  }
  return tokens;
}

}  // namespace

LanId ParsedTopology::lan(const std::string& name) const {
  const auto it = lans.find(name);
  if (it == lans.end()) {
    throw Error(ErrorCode::wire_bad_value, "unknown LAN '" + name + "'");
  }
  return it->second;
}

MachineId ParsedTopology::machine(const std::string& name) const {
  const auto it = machines.find(name);
  if (it == machines.end()) {
    throw Error(ErrorCode::wire_bad_value, "unknown machine '" + name + "'");
  }
  return it->second;
}

LinkSpec parse_link_spec(std::string_view token) {
  if (token == "ethernet10") return ethernet_10();
  if (token == "ethernet100") return fast_ethernet_100();
  if (token == "atm155") return atm_155();
  if (token == "t3") return wan_t3();
  if (token == "loopback") return loopback();
  if (token.rfind("custom:", 0) == 0) {
    const std::string body(token.substr(7));
    const auto colon = body.find(':');
    if (colon == std::string::npos) {
      throw Error(ErrorCode::wire_bad_value,
                  "custom link needs custom:<mbps>:<latency_us>");
    }
    try {
      const double mbps = std::stod(body.substr(0, colon));
      const long long latency_us = std::stoll(body.substr(colon + 1));
      if (mbps <= 0 || latency_us < 0) {
        throw Error(ErrorCode::wire_bad_value, "custom link values out of range");
      }
      return LinkSpec{"custom-" + body, mbps * 1e6,
                      std::chrono::microseconds(latency_us)};
    } catch (const std::invalid_argument&) {
      throw Error(ErrorCode::wire_bad_value, "custom link values not numeric");
    } catch (const std::out_of_range&) {
      throw Error(ErrorCode::wire_bad_value, "custom link values out of range");
    }
  }
  throw Error(ErrorCode::wire_bad_value,
              "unknown link spec '" + std::string(token) + "'");
}

ParsedTopology parse_topology(std::string_view text) {
  ParsedTopology out;
  std::istringstream stream{std::string(text)};
  std::string line;
  std::size_t line_number = 0;

  while (std::getline(stream, line)) {
    ++line_number;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& directive = tokens[0];

    if (directive == "lan") {
      // lan <name> [link-spec] [campus=<n>]
      if (tokens.size() < 2) fail(line_number, "lan needs a name");
      if (out.lans.contains(tokens[1])) {
        fail(line_number, "duplicate LAN '" + tokens[1] + "'");
      }
      const LanId lan = out.topology().add_lan(tokens[1]);
      out.lans[tokens[1]] = lan;
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        if (tokens[i].rfind("campus=", 0) == 0) {
          try {
            out.topology().set_campus(
                lan, static_cast<std::uint32_t>(std::stoul(tokens[i].substr(7))));
          } catch (const std::exception&) {
            fail(line_number, "bad campus id");
          }
        } else {
          try {
            out.topology().set_lan_link(lan, parse_link_spec(tokens[i]));
          } catch (const Error& e) {
            fail(line_number, e.what());
          }
        }
      }
    } else if (directive == "machine") {
      // machine <name> <lan>
      if (tokens.size() != 3) fail(line_number, "machine needs <name> <lan>");
      if (out.machines.contains(tokens[1])) {
        fail(line_number, "duplicate machine '" + tokens[1] + "'");
      }
      const auto it = out.lans.find(tokens[2]);
      if (it == out.lans.end()) {
        fail(line_number, "unknown LAN '" + tokens[2] + "'");
      }
      out.machines[tokens[1]] = out.topology().add_machine(tokens[1], it->second);
    } else if (directive == "wan") {
      // wan <lan-a> <lan-b> <link-spec>
      if (tokens.size() != 4) {
        fail(line_number, "wan needs <lan-a> <lan-b> <link>");
      }
      const auto a = out.lans.find(tokens[1]);
      const auto b = out.lans.find(tokens[2]);
      if (a == out.lans.end() || b == out.lans.end()) {
        fail(line_number, "wan references unknown LAN");
      }
      try {
        out.topology().set_wan_link(a->second, b->second,
                                  parse_link_spec(tokens[3]));
      } catch (const Error& e) {
        fail(line_number, e.what());
      }
    } else if (directive == "default_wan") {
      if (tokens.size() != 2) fail(line_number, "default_wan needs <link>");
      try {
        out.topology().set_default_wan_link(parse_link_spec(tokens[1]));
      } catch (const Error& e) {
        fail(line_number, e.what());
      }
    } else if (directive == "loopback") {
      if (tokens.size() != 2) fail(line_number, "loopback needs <link>");
      try {
        out.topology().set_loopback_link(parse_link_spec(tokens[1]));
      } catch (const Error& e) {
        fail(line_number, e.what());
      }
    } else {
      fail(line_number, "unknown directive '" + directive + "'");
    }
  }
  return out;
}

}  // namespace ohpx::netsim
