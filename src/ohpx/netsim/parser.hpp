// Text format for describing a topology, so examples, tests and
// deployments can declare their world instead of hand-coding it:
//
//   # comments and blank lines are ignored
//   lan lab atm155 campus=0
//   lan uni ethernet100 campus=1
//   machine bigiron lab
//   machine ws17 lab
//   machine cluster uni
//   wan lab uni t3
//   default_wan t3
//   loopback loopback
//
// Link specifiers are either a preset (ethernet10, ethernet100, atm155,
// t3, loopback) or custom:<mbps>:<latency_us> (e.g. custom:622:200 for
// OC-12 with 200 us latency).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "ohpx/netsim/topology.hpp"

namespace ohpx::netsim {

struct ParsedTopology {
  // Topology owns a mutex and is pinned in place; keep it on the heap so
  // ParsedTopology itself stays movable.
  std::shared_ptr<Topology> storage = std::make_shared<Topology>();
  std::map<std::string, LanId> lans;
  std::map<std::string, MachineId> machines;

  Topology& topology() const { return *storage; }

  LanId lan(const std::string& name) const;
  MachineId machine(const std::string& name) const;
};

/// Resolves a link specifier (preset name or custom:<mbps>:<latency_us>).
/// Throws Error(wire_bad_value) on unknown specifiers.
LinkSpec parse_link_spec(std::string_view token);

/// Parses a full topology description; throws Error(wire_bad_value) with
/// a line number on any malformed directive.
ParsedTopology parse_topology(std::string_view text);

}  // namespace ohpx::netsim
