// Clang thread-safety annotation macros (no-ops on other compilers).
//
// The ORB's central promise — capability chains, applicability
// re-evaluation and migration running *concurrently with user traffic* —
// only holds if every shared member is provably reached under its lock.
// These macros let the code state that contract where the data lives:
//
//   mutable sync::Mutex mutex_{"layer.component"};
//   std::deque<Task> queue_ OHPX_GUARDED_BY(mutex_);
//
// Under Clang, `-Wthread-safety` (promoted to an error by the top-level
// CMakeLists when the compiler supports it) turns the declarations into
// compile-time checks; under GCC and MSVC they expand to nothing and cost
// nothing.  Always lock through the ohpx::sync wrappers
// (ohpx/sync/mutex.hpp): the standard guards carry no annotations, so a
// raw std::lock_guard is invisible to the analysis.
// See docs/static_analysis.md for the conventions used across the repo.
#pragma once

#if defined(__clang__) && (!defined(SWIG))
#define OHPX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OHPX_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

/// Declares a type to be a lockable capability (used by the ohpx::sync
/// wrappers; rarely needed elsewhere).
#define OHPX_CAPABILITY(x) OHPX_THREAD_ANNOTATION(capability(x))

/// Member is only read/written while `x` is held.
#define OHPX_GUARDED_BY(x) OHPX_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x`.
#define OHPX_PT_GUARDED_BY(x) OHPX_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function must be called with the given lock(s) already held.
#define OHPX_REQUIRES(...) \
  OHPX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function must be called with at least a shared (reader) hold on the
/// given lock(s).
#define OHPX_REQUIRES_SHARED(...) \
  OHPX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function must be called with the given lock(s) NOT held (it acquires
/// them itself; calling with them held would deadlock).
#define OHPX_EXCLUDES(...) OHPX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function acquires the lock and returns holding it.
#define OHPX_ACQUIRE(...) \
  OHPX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function acquires a shared (reader) hold and returns holding it.
#define OHPX_ACQUIRE_SHARED(...) \
  OHPX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// Function releases a lock the caller held.
#define OHPX_RELEASE(...) \
  OHPX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function releases a shared (reader) hold the caller had.
#define OHPX_RELEASE_SHARED(...) \
  OHPX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// Function attempts the lock; the first argument is the return value that
/// means "acquired" (e.g. OHPX_TRY_ACQUIRE(true) on a bool try_lock()).
#define OHPX_TRY_ACQUIRE(...) \
  OHPX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Shared-hold variant of OHPX_TRY_ACQUIRE.
#define OHPX_TRY_ACQUIRE_SHARED(...) \
  OHPX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

/// Asserts (at runtime, by contract) that the calling thread already holds
/// the capability — the analysis believes it from here on.
#define OHPX_ASSERT_CAPABILITY(x) \
  OHPX_THREAD_ANNOTATION(assert_capability(x))

/// Scoped lock type (lock_guard-style RAII wrappers).
#define OHPX_SCOPED_CAPABILITY OHPX_THREAD_ANNOTATION(scoped_lockable)

/// Return value is a reference to a `x`-guarded member.
#define OHPX_RETURN_CAPABILITY(x) OHPX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for code the analysis cannot follow (keep rare; justify
/// each use in a comment).
#define OHPX_NO_THREAD_SAFETY_ANALYSIS \
  OHPX_THREAD_ANNOTATION(no_thread_safety_analysis)
