#include "ohpx/common/thread_pool.hpp"

#include <algorithm>

#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  {
    sync::LockGuard lock(mutex_);
    stopping_ = true;
    queue_.clear();
  }
  wake_.notify_all();
  // joinable() flips as threads are joined, so concurrent shutdown callers
  // must not both walk the vector; the first to arrive does the joining.
  sync::LockGuard join_lock(join_mutex_);
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    sync::LockGuard lock(mutex_);
    if (stopping_) {
      throw Error(ErrorCode::internal, "thread pool is shutting down");
    }
    queue_.push_back(std::move(task));
  }
  wake_.notify_one();
}

std::size_t ThreadPool::pending() const {
  sync::LockGuard lock(mutex_);
  return queue_.size();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(4);
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      sync::UniqueLock lock(mutex_);
      // Explicit predicate loop (not the lambda overload): the thread-safety
      // analysis cannot see through the wait-predicate closure, and the loop
      // keeps queue_/stopping_ accesses visibly under the lock.
      while (!stopping_ && queue_.empty()) wake_.wait(lock.native());
      if (stopping_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace ohpx
