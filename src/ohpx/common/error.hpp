// Error taxonomy for the Open HPC++ stack.
//
// Every failure that can cross a module boundary is expressed as a subclass
// of ohpx::Error carrying an ErrorCode, so callers can catch either the
// broad base or a precise category.  Remote failures are re-raised on the
// client as RemoteError preserving the server-side code and message.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ohpx {

enum class ErrorCode : std::uint32_t {
  ok = 0,
  // wire / framing
  wire_truncated = 100,
  wire_bad_magic = 101,
  wire_bad_version = 102,
  wire_bad_checksum = 103,
  wire_overflow = 104,
  wire_bad_value = 105,
  // transport
  transport_closed = 200,
  transport_connect_failed = 201,
  transport_io = 202,
  transport_unknown_endpoint = 203,
  // A bounded inflight window is full: the call was refused *before* any
  // bytes hit the wire, so retrying (after backoff) is always safe.
  backpressure = 204,
  // protocol layer
  protocol_unknown = 300,
  protocol_not_applicable = 301,
  protocol_no_match = 302,
  protocol_bad_proto_data = 303,
  // capabilities
  capability_denied = 400,
  capability_expired = 401,
  capability_exhausted = 402,
  capability_auth_failed = 403,
  capability_unknown = 404,
  capability_bad_payload = 405,
  // ORB / object layer
  object_not_found = 500,
  method_not_found = 501,
  stale_reference = 502,
  bad_object_ref = 503,
  context_not_found = 504,
  type_mismatch = 505,
  // runtime
  migration_failed = 600,
  not_migratable = 601,
  // application-raised errors forwarded over the wire
  remote_application_error = 700,
  // resilience
  deadline_exceeded = 800,
  internal = 999,
};

/// Human-readable name of an ErrorCode (stable, used on the wire in tests).
std::string_view to_string(ErrorCode code) noexcept;

/// Root of the Open HPC++ exception hierarchy.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& what_arg)
      : std::runtime_error(what_arg), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Marshalling / framing failures.
class WireError : public Error {
 public:
  using Error::Error;
};

/// Channel-level failures (sockets, queues, unknown endpoints).
class TransportError : public Error {
 public:
  using Error::Error;
};

/// Protocol selection / dispatch failures.
class ProtocolError : public Error {
 public:
  using Error::Error;
};

/// A capability refused to admit or to verify a request.
class CapabilityDenied : public Error {
 public:
  using Error::Error;
};

/// Object registry failures (lookup, stale references after migration).
class ObjectError : public Error {
 public:
  using Error::Error;
};

/// An error raised on the server and propagated back to the caller.
class RemoteError : public Error {
 public:
  RemoteError(ErrorCode code, const std::string& what_arg)
      : Error(code, what_arg) {}
};

/// The call's deadline budget ran out before the pipeline finished.  Never
/// retried: the budget bounds the whole logical call, retries included.
class DeadlineExceeded : public Error {
 public:
  explicit DeadlineExceeded(const std::string& what_arg)
      : Error(ErrorCode::deadline_exceeded, what_arg) {}
  DeadlineExceeded(ErrorCode code, const std::string& what_arg)
      : Error(code, what_arg) {}
};

/// Throws the exception subclass matching `code`'s category.
[[noreturn]] void throw_error(ErrorCode code, const std::string& message);

}  // namespace ohpx
