// Fixed-size thread pool used for concurrent fan-out (group broadcasts,
// parallel clients in benchmarks).  Tasks are plain functions; async()
// wraps a callable into a packaged task and returns its future.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1).
  explicit ThreadPool(std::size_t threads);

  /// Drains nothing: pending tasks are abandoned unexecuted at shutdown,
  /// but tasks already running are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; throws Error(internal) after shutdown began.
  void submit(std::function<void()> task);

  /// Begins shutdown and joins all workers: subsequent submits throw,
  /// queued-but-unstarted tasks are abandoned, tasks already running
  /// complete.  Idempotent, and safe to race with submit() from other
  /// threads.  Must not be called from inside a pool task (self-join).
  void shutdown();

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto async(F&& callable) -> std::future<std::invoke_result_t<F>> {
    using Ret = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<Ret()>>(
        std::forward<F>(callable));
    std::future<Ret> future = task->get_future();
    submit([task] { (*task)(); });
    return future;
  }

  std::size_t thread_count() const noexcept { return workers_.size(); }
  std::size_t pending() const;

  /// Process-wide shared pool (4 workers — enough to overlap I/O-shaped
  /// work even on small machines, bounded so fan-outs cannot fork-bomb).
  static ThreadPool& shared();

 private:
  void worker_loop();

  mutable sync::Mutex mutex_{"common.thread_pool"};
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_ OHPX_GUARDED_BY(mutex_);
  bool stopping_ OHPX_GUARDED_BY(mutex_) = false;
  // serializes concurrent shutdown() joiners
  sync::Mutex join_mutex_{"common.thread_pool.join"};
  std::vector<std::thread> workers_;  // laid down in the constructor; only
                                      // joined (under join_mutex_) after
};

}  // namespace ohpx
