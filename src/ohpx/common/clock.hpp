// Time accounting for the hybrid real/modeled cost model.
//
// Benchmarks in this repo combine *real* CPU time (marshalling, capability
// byte-processing) with *modeled* network time (latency + bytes/bandwidth of
// a simulated link).  A CostLedger accumulates both halves per invocation so
// harnesses can report bandwidth as bytes / (real + modeled) — see DESIGN.md
// §7 "Time accounting".
#pragma once

#include <chrono>
#include <cstdint>

namespace ohpx {

using Nanoseconds = std::chrono::nanoseconds;

/// Monotonic stopwatch over std::chrono::steady_clock.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}

  void reset() { start_ = std::chrono::steady_clock::now(); }

  Nanoseconds elapsed() const {
    return std::chrono::duration_cast<Nanoseconds>(
        std::chrono::steady_clock::now() - start_);
  }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(elapsed()).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Per-invocation cost accumulator: real CPU time plus modeled link time.
class CostLedger {
 public:
  /// Pay-when-used profiling: with real timing disabled every
  /// ScopedRealTime scope over this ledger skips its clock reads entirely
  /// (two syscalls-worth per scope on the invocation hot path).  Modeled
  /// costs and byte counts still accumulate.
  void disable_real_timing() noexcept { real_timing_ = false; }
  bool real_timing_enabled() const noexcept { return real_timing_; }

  void add_real(Nanoseconds d) noexcept { real_ += d; }
  void add_modeled(Nanoseconds d) noexcept { modeled_ += d; }
  void add_bytes_sent(std::uint64_t n) noexcept { bytes_sent_ += n; }
  void add_bytes_received(std::uint64_t n) noexcept { bytes_received_ += n; }

  Nanoseconds real() const noexcept { return real_; }
  Nanoseconds modeled() const noexcept { return modeled_; }
  Nanoseconds total() const noexcept { return real_ + modeled_; }
  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t bytes_received() const noexcept { return bytes_received_; }

  double total_seconds() const noexcept {
    return std::chrono::duration<double>(total()).count();
  }

  void merge(const CostLedger& other) noexcept {
    real_ += other.real_;
    modeled_ += other.modeled_;
    bytes_sent_ += other.bytes_sent_;
    bytes_received_ += other.bytes_received_;
  }

  void reset() noexcept { *this = CostLedger{}; }

 private:
  Nanoseconds real_{0};
  Nanoseconds modeled_{0};
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  bool real_timing_ = true;
};

/// RAII helper: adds the scope's wall time to a ledger's real component.
/// A scope over a null ledger, or over one with real timing disabled, is
/// disarmed: it never touches the clock.
class ScopedRealTime {
 public:
  explicit ScopedRealTime(CostLedger& ledger)
      : ScopedRealTime(&ledger) {}
  explicit ScopedRealTime(CostLedger* ledger)
      : ledger_(ledger),
        armed_(ledger != nullptr && ledger->real_timing_enabled()) {
    if (armed_) start_ = std::chrono::steady_clock::now();
  }
  ScopedRealTime(const ScopedRealTime&) = delete;
  ScopedRealTime& operator=(const ScopedRealTime&) = delete;
  ~ScopedRealTime() {
    if (armed_) {
      ledger_->add_real(std::chrono::duration_cast<Nanoseconds>(
          std::chrono::steady_clock::now() - start_));
    }
  }

 private:
  CostLedger* ledger_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ohpx
