#include "ohpx/common/error.hpp"

namespace ohpx {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::wire_truncated: return "wire_truncated";
    case ErrorCode::wire_bad_magic: return "wire_bad_magic";
    case ErrorCode::wire_bad_version: return "wire_bad_version";
    case ErrorCode::wire_bad_checksum: return "wire_bad_checksum";
    case ErrorCode::wire_overflow: return "wire_overflow";
    case ErrorCode::wire_bad_value: return "wire_bad_value";
    case ErrorCode::transport_closed: return "transport_closed";
    case ErrorCode::transport_connect_failed: return "transport_connect_failed";
    case ErrorCode::transport_io: return "transport_io";
    case ErrorCode::transport_unknown_endpoint: return "transport_unknown_endpoint";
    case ErrorCode::backpressure: return "backpressure";
    case ErrorCode::protocol_unknown: return "protocol_unknown";
    case ErrorCode::protocol_not_applicable: return "protocol_not_applicable";
    case ErrorCode::protocol_no_match: return "protocol_no_match";
    case ErrorCode::protocol_bad_proto_data: return "protocol_bad_proto_data";
    case ErrorCode::capability_denied: return "capability_denied";
    case ErrorCode::capability_expired: return "capability_expired";
    case ErrorCode::capability_exhausted: return "capability_exhausted";
    case ErrorCode::capability_auth_failed: return "capability_auth_failed";
    case ErrorCode::capability_unknown: return "capability_unknown";
    case ErrorCode::capability_bad_payload: return "capability_bad_payload";
    case ErrorCode::object_not_found: return "object_not_found";
    case ErrorCode::method_not_found: return "method_not_found";
    case ErrorCode::stale_reference: return "stale_reference";
    case ErrorCode::bad_object_ref: return "bad_object_ref";
    case ErrorCode::context_not_found: return "context_not_found";
    case ErrorCode::type_mismatch: return "type_mismatch";
    case ErrorCode::migration_failed: return "migration_failed";
    case ErrorCode::not_migratable: return "not_migratable";
    case ErrorCode::remote_application_error: return "remote_application_error";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::internal: return "internal";
  }
  return "unknown";
}

void throw_error(ErrorCode code, const std::string& message) {
  const auto value = static_cast<std::uint32_t>(code);
  if (value >= 100 && value < 200) throw WireError(code, message);
  if (value >= 200 && value < 300) throw TransportError(code, message);
  if (value >= 300 && value < 400) throw ProtocolError(code, message);
  if (value >= 400 && value < 500) throw CapabilityDenied(code, message);
  if (value >= 500 && value < 600) throw ObjectError(code, message);
  if (value == 700) throw RemoteError(code, message);
  if (value == 800) throw DeadlineExceeded(code, message);
  throw Error(code, message);
}

}  // namespace ohpx
