// Deterministic pseudo-random generators used for keys, nonces and test
// workloads.  SplitMix64 seeds Xoshiro256**; both are from-scratch, public
// domain constructions.  Not cryptographically strong — the security
// capabilities in this repo model the paper's opaque byte-processors, they
// are not a production cipher suite (see DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>

namespace ohpx {

/// SplitMix64: stateless-feeling 64-bit mixer, good for seeding.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast, high-quality 64-bit PRNG.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    SplitMix64 mixer(seed);
    for (auto& word : state_) word = mixer.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound); bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace ohpx
