#include "ohpx/common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "ohpx/sync/mutex.hpp"

namespace ohpx {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::warn)};
sync::Mutex g_emit_mutex{"log.emit"};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::info: return "INFO ";
    case LogLevel::warn: return "WARN ";
    case LogLevel::error: return "ERROR";
    case LogLevel::off: return "OFF  ";
  }
  return "?????";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

namespace log_detail {

void emit(LogLevel level, std::string_view component, const std::string& message) {
  using namespace std::chrono;
  const auto now = duration_cast<milliseconds>(
                       steady_clock::now().time_since_epoch())
                       .count();
  sync::LockGuard lock(g_emit_mutex);
  std::fprintf(stderr, "[%10lld.%03lld] %s [%.*s] %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_name(level),
               static_cast<int>(component.size()), component.data(),
               message.c_str());
}

}  // namespace log_detail
}  // namespace ohpx
