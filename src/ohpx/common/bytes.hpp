// Byte-level helpers shared across the stack: the canonical byte container,
// hex encoding, and constant-time comparison for MAC verification.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ohpx {

using Bytes = std::vector<std::uint8_t>;
using BytesView = std::span<const std::uint8_t>;

/// Lower-case hex encoding of `data`.
std::string to_hex(BytesView data);

/// Parses lower/upper-case hex; throws WireError(wire_bad_value) on bad input.
Bytes from_hex(std::string_view hex);

/// Builds Bytes from a string's raw characters.
Bytes bytes_of(std::string_view text);

/// Interprets bytes as text (no validation).
std::string text_of(BytesView data);

/// Constant-time equality, resistant to timing side channels; used for MACs.
bool constant_time_equal(BytesView a, BytesView b) noexcept;

}  // namespace ohpx
