#include "ohpx/common/bytes.hpp"

#include "ohpx/common/error.hpp"

namespace ohpx {
namespace {

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string to_hex(BytesView data) {
  static constexpr char digits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw WireError(ErrorCode::wire_bad_value, "hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_digit(hex[i]);
    const int lo = hex_digit(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw WireError(ErrorCode::wire_bad_value, "invalid hex digit");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes bytes_of(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

std::string text_of(BytesView data) {
  return std::string(data.begin(), data.end());
}

bool constant_time_equal(BytesView a, BytesView b) noexcept {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace ohpx
