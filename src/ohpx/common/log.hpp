// Minimal leveled, thread-safe logger.  Default level is `warn` so library
// users see problems but tests and benchmarks stay quiet; examples raise it
// to `info` to narrate protocol selection decisions.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace ohpx {

enum class LogLevel : int { trace = 0, debug = 1, info = 2, warn = 3, error = 4, off = 5 };

namespace log_detail {
void emit(LogLevel level, std::string_view component, const std::string& message);
}

/// Global log threshold; messages below it are dropped.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Streams a log line for `component` if `level` passes the threshold.
template <typename... Args>
void log(LogLevel level, std::string_view component, Args&&... args) {
  if (level < log_level()) return;
  std::ostringstream oss;
  (oss << ... << std::forward<Args>(args));
  log_detail::emit(level, component, oss.str());
}

template <typename... Args>
void log_trace(std::string_view component, Args&&... args) {
  log(LogLevel::trace, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_debug(std::string_view component, Args&&... args) {
  log(LogLevel::debug, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_info(std::string_view component, Args&&... args) {
  log(LogLevel::info, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_warn(std::string_view component, Args&&... args) {
  log(LogLevel::warn, component, std::forward<Args>(args)...);
}
template <typename... Args>
void log_error(std::string_view component, Args&&... args) {
  log(LogLevel::error, component, std::forward<Args>(args)...);
}

}  // namespace ohpx
