// ohpx::Future / ohpx::Promise — the completion vocabulary of the async
// invocation path.
//
// std::future cannot express what the reactor needs: completion from a
// foreign event-loop thread, *idempotent* settlement (a reply racing a
// deadline cancellation must lose silently, never complete the future a
// second time), and a lightweight continuation hook so a raw reply frame
// can be decoded into a typed result without parking a thread per call.
//
// Contract:
//   - a future settles exactly once (first of set_value / set_exception /
//     cancel wins; later attempts return false and are dropped);
//   - get() waits, then returns the value or rethrows the stored
//     exception; it may be called once (the value is moved out);
//   - on_ready() runs the callback on the settling thread — or inline
//     when the future already settled.  Callbacks must be cheap and must
//     not block: on the reactor path they run on the event loop.
//
// Waiting uses a condition variable on real time: a Future is a
// cross-thread rendezvous, not a modeled-cost actor, so the resilience
// ManualClock does not apply (cancellation driven by that clock still
// works — the *reactor* watches the resilience clock and settles the
// future, the waiter just wakes up).
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <utility>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/clock.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx {

namespace detail {

template <typename T>
struct FutureStorage {
  std::optional<T> value;
};
template <>
struct FutureStorage<void> {
  bool value = false;  // "a value was stored" marker
};

template <typename T>
class FutureState {
 public:
  bool ready() const {
    sync::LockGuard lock(mutex_);
    return settled_;
  }

  template <typename... V>
  bool set_value(V&&... v) {
    std::function<void()> continuation;
    {
      sync::LockGuard lock(mutex_);
      if (settled_) return false;
      if constexpr (std::is_void_v<T>) {
        storage_.value = true;
      } else {
        storage_.value.emplace(std::forward<V>(v)...);
      }
      settled_ = true;
      continuation = std::move(continuation_);
      continuation_ = nullptr;
    }
    ready_.notify_all();
    if (continuation) continuation();
    return true;
  }

  bool set_exception(std::exception_ptr error) {
    std::function<void()> continuation;
    {
      sync::LockGuard lock(mutex_);
      if (settled_) return false;
      error_ = std::move(error);
      settled_ = true;
      continuation = std::move(continuation_);
      continuation_ = nullptr;
    }
    ready_.notify_all();
    if (continuation) continuation();
    return true;
  }

  void wait() {
    sync::UniqueLock lock(mutex_);
    while (!settled_) ready_.wait(lock.native());
  }

  bool wait_for(Nanoseconds timeout) {
    sync::UniqueLock lock(mutex_);
    const auto until = std::chrono::steady_clock::now() + timeout;
    while (!settled_) {
      if (ready_.wait_until(lock.native(), until) ==
          std::cv_status::timeout) {
        return settled_;
      }
    }
    return true;
  }

  T take() {
    wait();
    sync::LockGuard lock(mutex_);
    if (error_) std::rethrow_exception(error_);
    if constexpr (std::is_void_v<T>) {
      return;
    } else {
      if (!storage_.value.has_value()) {
        throw Error(ErrorCode::internal, "future value already taken");
      }
      T out = std::move(*storage_.value);
      storage_.value.reset();
      return out;
    }
  }

  /// The stored exception, or nullptr when settled with a value (or not
  /// yet settled).
  std::exception_ptr error() const {
    sync::LockGuard lock(mutex_);
    return error_;
  }

  void on_ready(std::function<void()> continuation) {
    bool run_now = false;
    {
      sync::LockGuard lock(mutex_);
      if (settled_) {
        run_now = true;
      } else {
        continuation_ = std::move(continuation);
      }
    }
    if (run_now) continuation();
  }

 private:
  mutable sync::Mutex mutex_{"common.future"};
  std::condition_variable ready_;
  bool settled_ OHPX_GUARDED_BY(mutex_) = false;
  FutureStorage<T> storage_ OHPX_GUARDED_BY(mutex_);
  std::exception_ptr error_ OHPX_GUARDED_BY(mutex_);
  std::function<void()> continuation_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace detail

template <typename T>
class Promise;

template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const noexcept { return state_ != nullptr; }
  bool ready() const { return state_ && state_->ready(); }

  /// Blocks until settled, then returns the value (moved out — call get()
  /// once) or rethrows the stored exception.
  T get() {
    ensure_valid();
    return state_->take();
  }

  void wait() {
    ensure_valid();
    state_->wait();
  }

  /// Waits up to `timeout` (real time); true when the future settled.
  bool wait_for(Nanoseconds timeout) {
    ensure_valid();
    return state_->wait_for(timeout);
  }

  /// Runs `fn` on the settling thread once this future settles (inline if
  /// it already has).  `fn` receives this future's shared state via a
  /// fresh Future handle; it must not block.
  void on_ready(std::function<void(Future<T>)> fn) {
    ensure_valid();
    auto state = state_;
    state_->on_ready([state, fn = std::move(fn)] { fn(Future<T>(state)); });
  }

  /// Maps this future into a Future<U> by running `fn` on the settling
  /// thread.  `fn` takes the settled Future<T> and returns U (or throws);
  /// exceptions — stored or thrown by `fn` — flow into the result.
  /// Registers the continuation on the shared state directly: one
  /// type-erased callable per stage, not two — under reactor fan-in the
  /// map chain runs per call, so the extra std::function wrapper showed
  /// up as an allocation per stage.
  template <typename U, typename F>
  Future<U> map(F fn) {
    ensure_valid();
    Promise<U> promise;
    Future<U> mapped = promise.future();
    state_->on_ready(
        [state = state_, promise, fn = std::move(fn)]() mutable {
          try {
            if constexpr (std::is_void_v<U>) {
              fn(Future<T>(std::move(state)));
              promise.set_value();
            } else {
              promise.set_value(fn(Future<T>(std::move(state))));
            }
          } catch (...) {
            promise.set_exception(std::current_exception());
          }
        });
    return mapped;
  }

 private:
  friend class Promise<T>;
  explicit Future(std::shared_ptr<detail::FutureState<T>> state)
      : state_(std::move(state)) {}

  void ensure_valid() const {
    if (!state_) {
      throw Error(ErrorCode::internal, "future has no shared state");
    }
  }

  std::shared_ptr<detail::FutureState<T>> state_;
};

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<detail::FutureState<T>>()) {}

  Future<T> future() const { return Future<T>(state_); }

  /// First settlement wins; all of these return false (and change
  /// nothing) when the future already settled.
  template <typename... V>
  bool set_value(V&&... v) {
    return state_->set_value(std::forward<V>(v)...);
  }

  bool set_exception(std::exception_ptr error) {
    return state_->set_exception(std::move(error));
  }

  /// Settles with an ohpx error — the cancellation entry point (deadline
  /// expiry, connection teardown).  Idempotent like every settlement.
  bool cancel(ErrorCode code, const std::string& message) {
    try {
      throw_error(code, message);
    } catch (...) {
      return state_->set_exception(std::current_exception());
    }
  }

  bool settled() const { return state_->ready(); }

 private:
  std::shared_ptr<detail::FutureState<T>> state_;
};

}  // namespace ohpx
