#include "ohpx/transport/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"

namespace ohpx::transport {
namespace {

// Request heads larger than this are refused — nothing the introspection
// plane serves needs more than a method line and a few headers.
constexpr std::size_t kMaxRequestHead = 8u << 10;

[[noreturn]] void throw_errno(const char* what) {
  throw TransportError(ErrorCode::transport_io,
                       std::string(what) + ": " + std::strerror(errno));
}

const char* reason_phrase(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Internal Server Error";
  }
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& response) {
  std::string head = "HTTP/1.1 " + std::to_string(response.status) + " " +
                     reason_phrase(response.status) + "\r\n";
  head += "Content-Type: " + response.content_type + "\r\n";
  head += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  send_all(fd, head);
  send_all(fd, response.body);
}

}  // namespace

HttpListener::HttpListener(std::uint16_t port, HttpHandler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(listen_fd_);
    throw_errno("bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    ::close(listen_fd_);
    throw_errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw_errno("listen");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpListener::~HttpListener() { stop(); }

void HttpListener::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    sync::LockGuard lock(workers_mutex_);
    workers.swap(workers_);
    finished_.clear();
    for (int fd : open_connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void HttpListener::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    sync::LockGuard lock(workers_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    reap_finished_locked();
    open_connections_.insert(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

// Same reaping discipline as TcpListener: join workers whose connections
// ended so a long-lived exporter does not accumulate finished threads.
void HttpListener::reap_finished_locked() {
  for (const std::thread::id id : finished_) {
    const auto it =
        std::find_if(workers_.begin(), workers_.end(),
                     [id](const std::thread& t) { return t.get_id() == id; });
    if (it != workers_.end()) {
      it->join();
      workers_.erase(it);
    }
  }
  finished_.clear();
}

void HttpListener::serve_connection(int fd) {
  struct ConnectionGuard {
    HttpListener* listener;
    int fd;
    ~ConnectionGuard() {
      {
        sync::LockGuard lock(listener->workers_mutex_);
        listener->open_connections_.erase(fd);
        listener->finished_.push_back(std::this_thread::get_id());
      }
      ::close(fd);
    }
  } guard{this, fd};

  try {
    // Read until the end of the request head; the body (if any) is
    // ignored — every introspection endpoint is a GET.
    std::string head;
    char chunk[2048];
    while (head.find("\r\n\r\n") == std::string::npos) {
      if (head.size() > kMaxRequestHead) {
        send_response(fd, {400, "text/plain", "request head too large\n"});
        return;
      }
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return;  // peer vanished mid-request
      }
      if (n == 0) return;  // EOF before a full request
      head.append(chunk, static_cast<std::size_t>(n));
    }

    // Request line: METHOD SP PATH SP VERSION.
    const std::size_t line_end = head.find("\r\n");
    const std::string line = head.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      send_response(fd, {400, "text/plain", "malformed request line\n"});
      return;
    }
    const std::string method = line.substr(0, sp1);
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    if (method != "GET") {
      send_response(fd, {405, "text/plain", "only GET is served here\n"});
      return;
    }

    HttpResponse response;
    try {
      response = handler_(path);
    } catch (const std::exception& e) {
      response = {500, "text/plain", std::string("handler error: ") +
                                         e.what() + "\n"};
    }
    send_response(fd, response);
  } catch (const TransportError&) {
    // Peer closed or I/O failed; drop the connection quietly.
  } catch (const std::exception& e) {
    log_warn("http", "connection handler error: ", e.what());
  }
}

}  // namespace ohpx::transport
