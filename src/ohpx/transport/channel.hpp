// Transport abstraction under the protocol layer.
//
// A Channel is a bidirectional request/reply bearer: the client-side
// proto-object hands it a fully framed request and gets back the framed
// reply.  The server side is an Endpoint — a named frame handler a channel
// delivers into.  Channels charge their costs (real or modeled) to the
// caller's CostLedger.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "ohpx/common/clock.hpp"
#include "ohpx/wire/buffer.hpp"

namespace ohpx::transport {

/// Server-side frame handler: consumes a request frame, produces the reply
/// frame.  Must be thread-safe; may be invoked concurrently.
using FrameHandler = std::function<wire::Buffer(const wire::Buffer&)>;

class Channel {
 public:
  virtual ~Channel() = default;

  /// Sends `request`, blocks for the reply.  Cost of the exchange (real
  /// wall time or modeled wire time) is added to `ledger`.
  virtual wire::Buffer roundtrip(const wire::Buffer& request,
                                 CostLedger& ledger) = 0;

  /// Human-readable description for logs.
  virtual std::string describe() const = 0;
};

using ChannelPtr = std::unique_ptr<Channel>;

}  // namespace ohpx::transport
