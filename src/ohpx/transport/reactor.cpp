#include "ohpx/transport/reactor.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <functional>

#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/resilience/clock.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/tcp.hpp"
#include "ohpx/wire/buffer_pool.hpp"

namespace ohpx::transport {
namespace {

constexpr std::size_t kMaxFrameSize = 256u << 20;  // matches tcp.cpp's cap
constexpr std::size_t kLenPrefixSize = 4;

void store_prefix(std::uint8_t* p, std::uint32_t size) noexcept {
  p[0] = static_cast<std::uint8_t>(size >> 24);
  p[1] = static_cast<std::uint8_t>(size >> 16);
  p[2] = static_cast<std::uint8_t>(size >> 8);
  p[3] = static_cast<std::uint8_t>(size);
}

std::exception_ptr make_transport_error(ErrorCode code,
                                        const std::string& message) {
  return std::make_exception_ptr(TransportError(code, message));
}

}  // namespace

// ---- lifecycle -------------------------------------------------------------

Reactor::Reactor(ReactorConfig config)
    : config_(config),
      window_(config.inflight_window),
      stall_threshold_(config.stall_threshold_ns) {
  if (config_.shards == 0) config_.shards = 1;
  if (config_.max_batch_frames == 0) config_.max_batch_frames = 1;

  // Resolve handles before any loop thread exists: MetricsRegistry::global()
  // is thereby constructed before this Reactor and outlives it.  The same
  // ordering argument pins the flight recorder the stall watchdog feeds.
  (void)introspect::FlightRecorder::global();
  auto& registry = metrics::MetricsRegistry::global();
  batches_ = registry.counter_handle(metrics::names::kReactorBatches);
  frames_ = registry.counter_handle(metrics::names::kReactorFrames);
  backpressure_ = registry.counter_handle(metrics::names::kReactorBackpressure);
  deadline_cancels_ =
      registry.counter_handle(metrics::names::kReactorDeadlineCancelled);
  reconnects_ = registry.counter_handle(metrics::names::kReactorReconnects);
  stalls_ = registry.counter_handle(metrics::names::kRmiReactorStall);
  inflight_gauge_ = registry.counter_handle(metrics::names::kReactorInflight);
  connections_gauge_ =
      registry.counter_handle(metrics::names::kReactorConnections);
  loop_lag_ = registry.latency_handle(metrics::names::kReactorLoopLag);
  batch_frames_ = registry.latency_handle(metrics::names::kReactorBatchFrames);

  shards_.reserve(config_.shards);
  for (unsigned i = 0; i < config_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (shard->epoll_fd < 0) {
      throw TransportError(ErrorCode::transport_io,
                           std::string("epoll_create1: ") +
                               std::strerror(errno));
    }
    shard->event_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (shard->event_fd < 0) {
      ::close(shard->epoll_fd);
      throw TransportError(ErrorCode::transport_io,
                           std::string("eventfd: ") + std::strerror(errno));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.ptr = nullptr;  // nullptr marks the wakeup eventfd
    ::epoll_ctl(shard->epoll_fd, EPOLL_CTL_ADD, shard->event_fd, &ev);
    shards_.push_back(std::move(shard));
  }
  for (auto& shard : shards_) {
    Shard* raw = shard.get();
    raw->thread = std::thread([this, raw] { loop(*raw); });
  }
}

Reactor::~Reactor() {
  stop();
  for (auto& shard : shards_) {
    if (shard->event_fd >= 0) ::close(shard->event_fd);
    if (shard->epoll_fd >= 0) ::close(shard->epoll_fd);
  }
}

void Reactor::stop() {
  bool expected = false;
  if (!stopped_.compare_exchange_strong(expected, true)) return;
  for (auto& shard : shards_) {
    {
      sync::LockGuard lock(shard->mutex);
      shard->stopping = true;
    }
    wake(*shard);
  }
  for (auto& shard : shards_) {
    if (shard->thread.joinable()) shard->thread.join();
  }
}

Reactor& Reactor::global() {
  static Reactor instance;
  return instance;
}

// ---- submit (caller thread) ------------------------------------------------

Reactor::Shard& Reactor::shard_for(const std::string& host,
                                   std::uint16_t port) noexcept {
  const std::size_t h =
      std::hash<std::string>{}(host) * 31 + std::hash<std::uint16_t>{}(port);
  return *shards_[h % shards_.size()];
}

void Reactor::wake(Shard& shard) noexcept {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      ::write(shard.event_fd, &one, sizeof(one));  // EAGAIN = already armed
}

Future<RawReply> Reactor::submit(const std::string& host, std::uint16_t port,
                                 const wire::MessageHeader& header,
                                 BytesView payload) {
  const std::int64_t deadline = resilience::current_deadline_ns();
  if (resilience::deadline_expired(deadline)) {
    throw DeadlineExceeded("deadline exceeded before transport send");
  }

  Shard& shard = shard_for(host, port);
  Promise<RawReply> promise;

  // Encode before taking the shard mutex: the loop thread holds it for
  // whole processing passes, so every cycle spent under it by a submitter
  // is a lock handoff waiting to happen.  A window-full refusal wastes
  // this encode — acceptable for the exceptional path.
  wire::MessageHeader stamped = header;
  stamped.flags |= wire::kFlagCorrelation;
  stamped.correlation_id =
      next_correlation_.fetch_add(1, std::memory_order_relaxed);
  OutFrame out;
  wire::encode_frame_into(out.frame, stamped, payload);
  store_prefix(out.prefix, static_cast<std::uint32_t>(out.frame.size()));

  bool window_full = false;
  std::size_t window_now = 0;
  {
    sync::LockGuard lock(shard.mutex);
    if (shard.stopping) {
      throw TransportError(ErrorCode::transport_closed, "reactor stopped");
    }
    auto& slot = shard.conns[{host, port}];
    if (!slot) {
      slot = std::make_unique<Connection>();
      slot->host = host;
      slot->port = port;
      slot->inflight.reserve(window_.load(std::memory_order_relaxed));
    }
    Connection& conn = *slot;
    window_now = window_.load(std::memory_order_relaxed);
    if (conn.inflight.size() >= window_now) {
      window_full = true;  // refuse outside the lock
    } else {
      conn.outq.push_back(std::move(out));

      Pending pending;
      pending.promise = promise;
      pending.deadline_ns = deadline;
      conn.inflight.emplace(stamped.correlation_id, std::move(pending));
      if (deadline != resilience::kNoDeadline) ++conn.deadline_count;
      shard.submit_seq.fetch_add(1, std::memory_order_seq_cst);
    }
  }
  if (window_full) {
    backpressure_->fetch_add(1, std::memory_order_relaxed);
    trace::event("reactor.backpressure", "inflight window full");
    throw TransportError(ErrorCode::backpressure,
                         "inflight window full (" +
                             std::to_string(window_now) + ") for " + host +
                             ":" + std::to_string(port));
  }
  // Wake elision: while the loop is awake it services submissions at the
  // end of its tick anyway, so the eventfd write (a syscall per call under
  // fan-in) is only needed to interrupt an epoll_wait.
  if (shard.asleep.load(std::memory_order_seq_cst)) wake(shard);
  return promise.future();
}

void Reactor::set_inflight_window(std::size_t window) noexcept {
  window_.store(window == 0 ? 1 : window, std::memory_order_relaxed);
}

std::size_t Reactor::inflight_window() const noexcept {
  return window_.load(std::memory_order_relaxed);
}

void Reactor::set_stall_threshold(Nanoseconds threshold) noexcept {
  stall_threshold_.store(threshold.count(), std::memory_order_relaxed);
}

Nanoseconds Reactor::stall_threshold() const noexcept {
  return Nanoseconds(stall_threshold_.load(std::memory_order_relaxed));
}

std::size_t Reactor::pending_calls() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    sync::LockGuard lock(shard->mutex);
    for (const auto& [key, conn] : shard->conns) {
      total += conn->inflight.size();
    }
  }
  return total;
}

std::vector<Reactor::ConnectionStats> Reactor::connection_stats() const {
  std::vector<ConnectionStats> out;
  for (const auto& shard : shards_) {
    sync::LockGuard lock(shard->mutex);
    for (const auto& [key, conn] : shard->conns) {
      ConnectionStats stats;
      stats.host = conn->host;
      stats.port = conn->port;
      stats.inflight = conn->inflight.size();
      stats.queued = conn->outq.size();
      stats.connected = conn->fd >= 0 && !conn->connecting;
      stats.reconnects = conn->reconnects;
      out.push_back(std::move(stats));
    }
  }
  return out;
}

void Reactor::poke() noexcept {
  for (auto& shard : shards_) wake(*shard);
}

// ---- event loop ------------------------------------------------------------

void Reactor::loop(Shard& shard) {
  std::vector<epoll_event> events(64);
  std::vector<Settlement> settled;
  std::uint64_t serviced_seq = 0;

  for (;;) {
    int timeout_ms = -1;
    bool exiting = false;
    {
      sync::LockGuard lock(shard.mutex);
      if (shard.stopping) {
        // Drain: every queued or awaiting call fails closed, connections
        // close, and the thread exits after settling outside the lock.
        for (auto& [key, conn] : shard.conns) {
          fail_connection(shard, *conn, ErrorCode::transport_closed,
                          "reactor stopped", settled);
        }
        shard.conns.clear();
        exiting = true;
      } else {
        for (const auto& [key, conn] : shard.conns) {
          if (conn->deadline_count > 0) {
            timeout_ms = config_.poll_granularity_ms;
            break;
          }
        }
      }
    }
    if (exiting) {
      publish_gauges(shard, 0, 0);
      for (auto& s : settled) s.settle();
      settled.clear();
      return;
    }

    // Sleep decision (Dekker handshake with submit): declare intent to
    // sleep, then re-check for submissions that raced the declaration —
    // they saw asleep == false and skipped the eventfd, so poll instead
    // of parking.
    shard.asleep.store(true, std::memory_order_seq_cst);
    if (shard.submit_seq.load(std::memory_order_seq_cst) != serviced_seq) {
      timeout_ms = 0;
    }
    const int n = ::epoll_wait(shard.epoll_fd, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    shard.asleep.store(false, std::memory_order_seq_cst);
    if (n < 0 && errno != EINTR) {
      log_warn("reactor", "epoll_wait failed: ", std::strerror(errno));
      return;
    }

    // Loop-lag sample: everything from here to the end of settlement is
    // time this tick kept the loop busy — time parked in epoll_wait never
    // counts.  note_tick_lag() feeds the histogram and the stall watchdog.
    Stopwatch tick_watch;
    std::size_t inflight_now = 0;
    std::size_t connections_now = 0;

    {
      sync::LockGuard lock(shard.mutex);
      for (int i = 0; i < (n < 0 ? 0 : n); ++i) {
        if (events[i].data.ptr == nullptr) {
          std::uint64_t drained = 0;
          [[maybe_unused]] ssize_t r =
              ::read(shard.event_fd, &drained, sizeof(drained));
          continue;
        }
        auto* conn = static_cast<Connection*>(events[i].data.ptr);
        if (conn->fd < 0) continue;  // failed earlier in this batch
        const std::uint32_t ev = events[i].events;
        if (conn->connecting && (ev & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
          finish_connect(shard, *conn, settled);
          continue;
        }
        if (ev & EPOLLIN) read_ready(shard, *conn, settled);
        if (conn->fd >= 0 && (ev & EPOLLOUT)) flush(shard, *conn, settled);
        if (conn->fd >= 0 && (ev & (EPOLLERR | EPOLLHUP))) {
          fail_connection(shard, *conn, ErrorCode::transport_closed,
                          "connection reset", settled);
        }
      }
      // Everything enqueued up to this point (we hold the shard mutex, and
      // submit bumps the sequence inside it) is serviced by this pass.
      serviced_seq = shard.submit_seq.load(std::memory_order_relaxed);
      service_submissions(shard, settled);
      cancel_expired(shard, settled);

      // Reap connections that failed during this tick (fd already closed;
      // the record only lingered so epoll_event pointers stayed valid).
      for (auto it = shard.conns.begin(); it != shard.conns.end();) {
        if (it->second->fd < 0 && it->second->inflight.empty() &&
            it->second->outq.empty()) {
          it = shard.conns.erase(it);
        } else {
          inflight_now += it->second->inflight.size();
          ++connections_now;
          ++it;
        }
      }
    }
    publish_gauges(shard, inflight_now, connections_now);
    for (auto& s : settled) s.settle();
    settled.clear();
    note_tick_lag(tick_watch.elapsed());
  }
}

void Reactor::publish_gauges(Shard& shard, std::size_t inflight,
                             std::size_t connections) noexcept {
  // Each shard refreshes its own contribution, then stores the cross-shard
  // sum — the last writer wins with a value at most one tick stale, which
  // is exactly what a gauge promises.
  shard.gauge_inflight.store(inflight, std::memory_order_relaxed);
  shard.gauge_connections.store(connections, std::memory_order_relaxed);
  std::size_t total_inflight = 0;
  std::size_t total_connections = 0;
  for (const auto& other : shards_) {
    total_inflight += other->gauge_inflight.load(std::memory_order_relaxed);
    total_connections +=
        other->gauge_connections.load(std::memory_order_relaxed);
  }
  inflight_gauge_->store(total_inflight, std::memory_order_relaxed);
  connections_gauge_->store(total_connections, std::memory_order_relaxed);
}

// Stall watchdog: a tick that kept the loop busy past the threshold means
// every other connection on this shard waited that long for service — the
// reactor-side equivalent of a blocked event loop.  Cheap path first: the
// histogram record is three relaxed adds, the threshold probe one load.
void Reactor::note_tick_lag(Nanoseconds lag) {
  loop_lag_->record(lag);
  const std::int64_t threshold =
      stall_threshold_.load(std::memory_order_relaxed);
  if (threshold <= 0 || lag.count() < threshold) return;
  stalls_->fetch_add(1, std::memory_order_relaxed);
  introspect::FlightRecorder::global().record(
      introspect::EventKind::stall, ErrorCode::ok,
      "reactor loop lag " + std::to_string(lag.count() / 1000) + " us");
  // Dump once per process: the first stall is the interesting one, and a
  // stalling loop must not amplify itself by rendering the ring per tick.
  bool expected = false;
  if (stall_dump_logged_.compare_exchange_strong(expected, true)) {
    log_warn("reactor", "event-loop stall: tick took ",
             lag.count() / 1000, " us (threshold ", threshold / 1000,
             " us)\n", introspect::FlightRecorder::global().dump());
  }
}

// Gives every connection with staged work a socket and a flush: called
// once per tick, so frames submitted while the loop was busy leave in one
// coalesced batch (flush-on-idle).
void Reactor::service_submissions(Shard& shard,
                                  std::vector<Settlement>& out) {
  for (auto& [key, conn] : shard.conns) {
    if (conn->outq.empty()) continue;
    if (conn->fd < 0) {
      open_connection(shard, *conn, out);
      if (conn->fd < 0 || conn->connecting) continue;
    }
    if (!conn->connecting && !conn->want_write) {
      flush(shard, *conn, out);
    }
  }
}

void Reactor::open_connection(Shard& shard, Connection& conn,
                              std::vector<Settlement>& out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          0);
  if (fd < 0) {
    fail_connection(shard, conn, ErrorCode::transport_connect_failed,
                    std::string("socket: ") + std::strerror(errno), out);
    return;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(conn.port);
  try {
    addr.sin_addr = resolve_ipv4(conn.host);
  } catch (const TransportError& e) {
    ::close(fd);
    fail_connection(shard, conn, ErrorCode::transport_connect_failed,
                    e.what(), out);
    return;
  }
  conn.fd = fd;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      fail_connection(shard, conn, ErrorCode::transport_connect_failed,
                      std::string("connect: ") + std::strerror(errno), out);
      return;
    }
    conn.connecting = true;
  }
  if (!conn.connecting) note_connected(conn);  // loopback connect can
                                               // complete synchronously
  update_interest(shard, conn, /*want_write=*/conn.connecting);
}

void Reactor::note_connected(Connection& conn) noexcept {
  if (conn.ever_connected) {
    ++conn.reconnects;
    reconnects_->fetch_add(1, std::memory_order_relaxed);
  }
  conn.ever_connected = true;
}

void Reactor::finish_connect(Shard& shard, Connection& conn,
                             std::vector<Settlement>& out) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
    err = errno;
  }
  if (err != 0) {
    fail_connection(shard, conn, ErrorCode::transport_connect_failed,
                    std::string("connect: ") + std::strerror(err), out);
    return;
  }
  conn.connecting = false;
  note_connected(conn);
  update_interest(shard, conn, /*want_write=*/false);
  flush(shard, conn, out);
}

// Drains the outbound queue in gather-write batches.  Each sendmsg carries
// up to max_batch_frames (prefix, frame) iovec pairs within
// max_batch_bytes (flush-on-budget); a short write advances out_offset
// into the front entry, EAGAIN arms EPOLLOUT and yields.
void Reactor::flush(Shard& shard, Connection& conn,
                    std::vector<Settlement>& out) {
  while (!conn.outq.empty()) {
    iovec iov[512];
    std::size_t iov_count = 0;
    std::size_t batch_bytes = 0;
    std::size_t batch_frames = 0;
    std::size_t skip = conn.out_offset;
    for (auto it = conn.outq.begin();
         it != conn.outq.end() && batch_frames < config_.max_batch_frames &&
         iov_count + 2 <= 512 && batch_bytes < config_.max_batch_bytes;
         ++it, ++batch_frames) {
      const std::uint8_t* prefix = it->prefix;
      std::size_t prefix_len = kLenPrefixSize;
      const std::uint8_t* body = it->frame.data();
      std::size_t body_len = it->frame.size();
      if (skip > 0) {  // only ever nonzero for the front entry
        const std::size_t prefix_skip = std::min(skip, prefix_len);
        prefix += prefix_skip;
        prefix_len -= prefix_skip;
        const std::size_t body_skip = skip - prefix_skip;
        body += body_skip;
        body_len -= body_skip;
        skip = 0;
      }
      if (prefix_len > 0) {
        iov[iov_count].iov_base = const_cast<std::uint8_t*>(prefix);
        iov[iov_count].iov_len = prefix_len;
        ++iov_count;
      }
      if (body_len > 0) {
        iov[iov_count].iov_base = const_cast<std::uint8_t*>(body);
        iov[iov_count].iov_len = body_len;
        ++iov_count;
      }
      batch_bytes += prefix_len + body_len;
    }
    if (iov_count == 0) {  // fully-sent front entry (should not persist)
      conn.outq.pop_front();
      conn.out_offset = 0;
      continue;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(conn.fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        update_interest(shard, conn, /*want_write=*/true);
        return;
      }
      fail_connection(shard, conn, ErrorCode::transport_io,
                      std::string("sendmsg: ") + std::strerror(errno), out);
      return;
    }
    batches_->fetch_add(1, std::memory_order_relaxed);
    // Batch-size histogram, encoded 1 us per frame so the log2 buckets
    // read as frame-count bands (1, 2-3, 4-7, ... frames per sendmsg).
    batch_frames_->record(
        Nanoseconds(static_cast<std::int64_t>(batch_frames) * 1000));
    std::size_t sent = static_cast<std::size_t>(n);
    conn.out_offset += sent;
    while (!conn.outq.empty()) {
      const std::size_t entry_size =
          kLenPrefixSize + conn.outq.front().frame.size();
      if (conn.out_offset < entry_size) break;
      conn.out_offset -= entry_size;
      // Fully on the wire: recycle the frame allocation through this
      // thread's pool, where drain_inbuf's reply-body acquisitions pick
      // it right back up.
      wire::BufferPool::local().release(std::move(conn.outq.front().frame));
      conn.outq.pop_front();
      frames_->fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (conn.want_write) update_interest(shard, conn, /*want_write=*/false);
}

// Parses every complete length-prefixed frame out of conn.inbuf, settling
// the pending call each one correlates to.  Replies whose call was already
// cancelled (deadline) demux to nothing and are dropped.  Returns false
// when the connection was failed (unsyncable stream).
bool Reactor::drain_inbuf(Shard& shard, Connection& conn,
                          std::vector<Settlement>& out) {
  std::size_t consumed = 0;
  while (conn.inbuf.size() - consumed >= kLenPrefixSize) {
    const std::uint8_t* p = conn.inbuf.data() + consumed;
    const std::size_t frame_size = (static_cast<std::size_t>(p[0]) << 24) |
                                   (static_cast<std::size_t>(p[1]) << 16) |
                                   (static_cast<std::size_t>(p[2]) << 8) |
                                   static_cast<std::size_t>(p[3]);
    if (frame_size > kMaxFrameSize) {
      fail_connection(shard, conn, ErrorCode::transport_io,
                      "frame exceeds size cap", out);
      return false;
    }
    if (conn.inbuf.size() - consumed - kLenPrefixSize < frame_size) break;
    const BytesView frame_view(p + kLenPrefixSize, frame_size);
    consumed += kLenPrefixSize + frame_size;
    try {
      BytesView body;
      const wire::MessageHeader header = wire::decode_frame(frame_view, body);
      if (!header.has_correlation()) {
        log_warn("reactor", "reply without correlation id dropped");
        continue;
      }
      const auto it = conn.inflight.find(header.correlation_id);
      if (it == conn.inflight.end()) continue;  // call already cancelled
      // Copy only the body out of the read buffer, and only for a call
      // that still wants the reply — a cancelled call's reply costs zero
      // allocations.  The body buffer comes from this thread's pool: the
      // stub's decode continuation runs on this same loop thread and
      // releases the payload back, so steady-state fan-in recycles a
      // handful of warm buffers instead of allocating per reply.
      Settlement s;
      s.promise = std::move(it->second.promise);
      s.reply.header = header;
      s.reply.frame_size = frame_size;
      s.reply.payload = wire::BufferPool::local().acquire(body.size());
      s.reply.payload.append(body);
      if (it->second.deadline_ns != resilience::kNoDeadline) {
        --conn.deadline_count;
      }
      conn.inflight.erase(it);
      out.push_back(std::move(s));
    } catch (const WireError& e) {
      // A corrupt frame on a byte stream cannot be resynchronized.
      fail_connection(shard, conn, ErrorCode::transport_io,
                      std::string("corrupt reply frame: ") + e.what(), out);
      return false;
    }
  }
  if (consumed > 0) {
    conn.inbuf.erase(conn.inbuf.begin(),
                     conn.inbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
  }
  return true;
}

// Reads until EAGAIN in bulk chunks — one recv covers many pipelined
// replies — parsing frames out of the buffer after each chunk.
void Reactor::read_ready(Shard& shard, Connection& conn,
                         std::vector<Settlement>& out) {
  constexpr std::size_t kReadChunk = 256u << 10;
  for (;;) {
    const std::size_t old_size = conn.inbuf.size();
    conn.inbuf.resize(old_size + kReadChunk);
    const ssize_t n = ::recv(conn.fd, conn.inbuf.data() + old_size,
                             kReadChunk, 0);
    if (n < 0) {
      conn.inbuf.resize(old_size);
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      fail_connection(shard, conn, ErrorCode::transport_io,
                      std::string("recv: ") + std::strerror(errno), out);
      return;
    }
    if (n == 0) {
      conn.inbuf.resize(old_size);
      fail_connection(shard, conn, ErrorCode::transport_closed,
                      old_size == 0 ? "connection closed"
                                    : "connection closed mid-frame",
                      out);
      return;
    }
    conn.inbuf.resize(old_size + static_cast<std::size_t>(n));
    if (!drain_inbuf(shard, conn, out)) return;
  }
}

// Fails every pending call on `conn` and closes its socket.  The record
// stays in the map (fd = -1) until the end of the tick so epoll_event
// pointers from this batch remain valid; a later submit() reuses it.
void Reactor::fail_connection(Shard& shard, Connection& conn, ErrorCode code,
                              const std::string& message,
                              std::vector<Settlement>& out) {
  const std::string described =
      "tcp " + conn.host + ":" + std::to_string(conn.port) + ": " + message;
  const std::exception_ptr error = make_transport_error(code, described);
  // Cold path by definition (the connection just died): one flight-recorder
  // entry per failure, not per pending call.
  introspect::FlightRecorder::global().record(introspect::EventKind::error,
                                              code, described);
  for (auto& [corr, pending] : conn.inflight) {
    Settlement s;
    s.promise = std::move(pending.promise);
    s.error = error;
    out.push_back(std::move(s));
  }
  conn.inflight.clear();
  conn.deadline_count = 0;
  conn.outq.clear();
  conn.out_offset = 0;
  conn.inbuf.clear();
  if (conn.fd >= 0) {
    if (conn.registered) {
      ::epoll_ctl(shard.epoll_fd, EPOLL_CTL_DEL, conn.fd, nullptr);
    }
    ::close(conn.fd);
  }
  conn.fd = -1;
  conn.connecting = false;
  conn.registered = false;
  conn.want_write = false;
}

// Deadline sweep on the resilience clock (ManualClock-compatible): any
// pending call whose deadline has passed settles with DeadlineExceeded.
// The reply may still arrive; it then finds no inflight entry and is
// dropped — settlement stays once-only either way.
void Reactor::cancel_expired(Shard& shard, std::vector<Settlement>& out) {
  bool any = false;
  for (const auto& [key, conn] : shard.conns) {
    if (conn->deadline_count > 0) {
      any = true;
      break;
    }
  }
  if (!any) return;
  std::size_t cancelled = 0;
  const std::int64_t now = resilience::now_ns();
  for (auto& [key, conn] : shard.conns) {
    if (conn->deadline_count == 0) continue;
    for (auto it = conn->inflight.begin(); it != conn->inflight.end();) {
      if (it->second.deadline_ns != resilience::kNoDeadline &&
          now >= it->second.deadline_ns) {
        Settlement s;
        s.promise = std::move(it->second.promise);
        s.error = std::make_exception_ptr(
            DeadlineExceeded("deadline exceeded awaiting reply"));
        out.push_back(std::move(s));
        deadline_cancels_->fetch_add(1, std::memory_order_relaxed);
        ++cancelled;
        --conn->deadline_count;
        it = conn->inflight.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (cancelled > 0) {
    introspect::FlightRecorder::global().record(
        introspect::EventKind::deadline, ErrorCode::deadline_exceeded,
        "reactor cancelled " + std::to_string(cancelled) +
            " call(s) past deadline");
  }
}

void Reactor::update_interest(Shard& shard, Connection& conn,
                              bool want_write) {
  if (conn.registered && conn.want_write == want_write) return;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_write ? EPOLLOUT : 0u);
  ev.data.ptr = &conn;
  const int op = conn.registered ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
  if (::epoll_ctl(shard.epoll_fd, op, conn.fd, &ev) < 0) {
    log_warn("reactor", "epoll_ctl failed: ", std::strerror(errno));
  }
  conn.registered = true;
  conn.want_write = want_write;
}

}  // namespace ohpx::transport
