// Simulated-network channel: delivers frames through the in-process
// endpoint registry while charging *modeled* wire time for a configurable
// link (latency + bytes/bandwidth, both directions).  This is how the
// benchmark suite reproduces the paper's ATM/Ethernet testbed on one
// machine (DESIGN.md §2, §7).
#pragma once

#include <functional>
#include <string>

#include "ohpx/netsim/topology.hpp"
#include "ohpx/transport/inproc.hpp"

namespace ohpx::transport {

/// Supplies the link in effect for the *current* call; re-evaluated per
/// roundtrip so migration-driven placement changes are picked up.
using LinkProvider = std::function<netsim::LinkSpec()>;

class SimChannel final : public Channel {
 public:
  SimChannel(std::string endpoint, LinkProvider link_provider);

  /// Convenience: fixed link.
  SimChannel(std::string endpoint, netsim::LinkSpec link);

  wire::Buffer roundtrip(const wire::Buffer& request, CostLedger& ledger) override;
  std::string describe() const override;

 private:
  InProcChannel inner_;
  LinkProvider link_provider_;
};

}  // namespace ohpx::transport
