// Event-driven async TCP transport: one epoll loop (optionally sharded)
// owns every outbound connection, so a single client thread can keep
// thousands of calls in flight where the blocking TcpChannel holds exactly
// one.
//
// Shape of the machine (DESIGN-level summary; docs/transport.md has the
// full walkthrough):
//
//   - submit() runs on the caller's thread: it stamps a correlation id
//     into the frame header (wire extension kFlagCorrelation), encodes the
//     frame, queues it on the destination's connection, registers a
//     Promise under that id, pokes the loop through an eventfd, and
//     returns the Future.  No socket syscall happens on the caller.
//
//   - the loop thread owns all I/O.  Queued frames to the same destination
//     coalesce into one sendmsg gather write (up to max_batch_frames /
//     max_batch_bytes per syscall) — flush-on-idle: whatever accumulated
//     while the loop was busy goes out in one batch; flush-on-budget: a
//     long queue is cut into budget-sized syscalls so one destination
//     cannot starve the loop.  Replies demultiplex by the echoed
//     correlation id, in whatever order the server produces them.
//
//   - every connection carries a bounded inflight window (queued + on the
//     wire, awaiting reply).  A submit() into a full window is refused
//     *synchronously* with ErrorCode::backpressure before any byte moves —
//     the one transport error that is always safe to retry and must never
//     trip a breaker (see resilience/retry.cpp and orb/invocation.cpp).
//
//   - deadlines cancel futures: each pending call remembers the ambient
//     deadline at submit time; the loop scans pending deadlines every tick
//     (bounded epoll timeout while any exist) on the *resilience* clock,
//     so ManualClock-driven tests work — advance the clock, poke(), and
//     the future settles with DeadlineExceeded.  A reply racing the
//     cancellation loses: settlement is once-only (ohpx::Future).
//
// The blocking TcpChannel remains the fallback bearer (and the baseline
// the fan-in benchmark measures against); both speak the same length-
// prefixed framing against the same TcpListener.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/bytes.hpp"
#include "ohpx/common/future.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/wire/buffer.hpp"
#include "ohpx/wire/message.hpp"

namespace ohpx::transport {

/// A reply as the reactor settles it: decoded exactly once, on the loop
/// thread.  The demultiplexer must decode every frame anyway to read the
/// echoed correlation id, so handing the caller the raw bytes would force
/// a second decode — and a second CRC pass — per call (under fan-in that
/// was ~half the crc32 work of the whole client).  The alias makes it the
/// same type the protocol layer calls ReplyMessage: the tcp async path
/// passes the settled future upward with no per-layer repack stage.
using RawReply = wire::ReplyEnvelope;

struct ReactorConfig {
  /// Event-loop shards; connections hash to a shard by (host, port).  One
  /// shard saturates loopback comfortably; shard when one loop thread
  /// becomes the bottleneck across many destinations.
  unsigned shards = 1;
  /// Per-connection inflight window: queued + awaiting-reply calls beyond
  /// this are refused with ErrorCode::backpressure.  Tunable at runtime
  /// via set_inflight_window().
  std::size_t inflight_window = 1024;
  /// Flush budget: at most this many frames / bytes per sendmsg batch.
  std::size_t max_batch_frames = 256;
  std::size_t max_batch_bytes = 256u << 10;
  /// Loop tick granularity while calls with deadlines are pending — the
  /// upper bound on how late a deadline cancellation fires.
  int poll_granularity_ms = 5;

  /// Stall watchdog: a loop tick whose processing time (everything between
  /// an epoll_wait return and the next sleep decision — time *parked* in
  /// epoll_wait never counts) reaches this threshold bumps
  /// rmi.reactor.stall and drops a flight-recorder entry; the first stall
  /// additionally logs a full recorder dump.  0 disables the watchdog.
  /// Tunable at runtime via set_stall_threshold().
  std::int64_t stall_threshold_ns = 500'000'000;
};

class Reactor {
 public:
  explicit Reactor(ReactorConfig config = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Process-wide reactor used by the tcp protocol's async path.
  static Reactor& global();

  /// Queues one call to host:port.  Stamps a fresh correlation id (the
  /// caller's header must not carry one), captures the thread-ambient
  /// deadline for cancellation, and returns a future settling with the
  /// decoded reply (header + body — the loop thread already decoded the
  /// frame to demultiplex, so the caller never re-parses bytes).
  ///
  /// Throws synchronously: DeadlineExceeded when the ambient deadline has
  /// already passed, TransportError(backpressure) when the destination's
  /// inflight window is full (nothing was queued — retry after backoff).
  Future<RawReply> submit(const std::string& host, std::uint16_t port,
                          const wire::MessageHeader& header,
                          BytesView payload);

  /// Dynamic window tuning (tests shrink it to force backpressure).
  void set_inflight_window(std::size_t window) noexcept;
  std::size_t inflight_window() const noexcept;

  /// Stall-watchdog threshold tuning (tests shrink it to force a stall;
  /// 0 disables).  See ReactorConfig::stall_threshold_ns.
  void set_stall_threshold(Nanoseconds threshold) noexcept;
  Nanoseconds stall_threshold() const noexcept;

  /// Calls queued or awaiting a reply, across all connections.
  std::size_t pending_calls() const;

  /// Point-in-time health of one connection, for the introspection plane.
  struct ConnectionStats {
    std::string host;
    std::uint16_t port = 0;
    std::size_t inflight = 0;    // queued + awaiting reply
    std::size_t queued = 0;      // frames not yet fully on the wire
    bool connected = false;      // socket open, handshake complete
    std::uint64_t reconnects = 0;
  };

  /// Every live connection across all shards (order unspecified).
  std::vector<ConnectionStats> connection_stats() const;

  /// Wakes every shard for an immediate tick — after advancing a
  /// ManualClock, this makes deadline cancellation prompt instead of
  /// waiting out the poll granularity.
  void poke() noexcept;

  /// Fails all pending calls (transport_closed), closes every connection
  /// and joins the loop threads.  Idempotent; the destructor calls it.
  void stop();

 private:
  // One call awaiting its reply (or still queued).
  struct Pending {
    Promise<RawReply> promise;
    std::int64_t deadline_ns = 0;  // resilience clock; 0 = unbounded
  };

  // An encoded frame staged for the wire: 4-byte big-endian length prefix
  // kept separate so the flush path gather-writes (prefix, frame) iovec
  // pairs without copying the frame behind a prefix.
  struct OutFrame {
    std::uint8_t prefix[4];
    wire::Buffer frame;
  };

  struct Connection {
    std::string host;
    std::uint16_t port = 0;
    int fd = -1;
    bool connecting = false;  // nonblocking connect() in progress
    bool registered = false;  // fd added to the shard's epoll set
    bool want_write = false;  // EPOLLOUT currently requested

    // Write side: frames not yet (fully) handed to the kernel.
    // out_offset = bytes of the front entry (prefix + frame) already sent.
    std::deque<OutFrame> outq;
    std::size_t out_offset = 0;

    // Read side: bulk receive buffer.  Each readable tick recvs big
    // chunks and parses every complete length-prefixed frame out; the
    // tail (a partial frame, if any) stays for the next tick.  One
    // syscall covers many replies under fan-in.
    std::vector<std::uint8_t> inbuf;

    // Reconnect bookkeeping: ever_connected marks the first successful
    // handshake, so later successes count as re-establishments.
    bool ever_connected = false;
    std::uint64_t reconnects = 0;

    // Correlation id -> pending call; its size *is* the inflight count the
    // window bounds.  Hashed, not ordered: at a 1k-deep window the
    // per-call find/insert/erase triple on a red-black tree was a
    // measurable slice of the demux cost.  deadline_count tracks entries
    // with a real deadline so idle ticks stay free when nothing can
    // expire.
    std::unordered_map<std::uint64_t, Pending> inflight;
    std::size_t deadline_count = 0;
  };

  struct Shard {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    // Wake elision: submit() pays the eventfd write syscall only while the
    // loop is (about to be) parked in epoll_wait.  The loop publishes
    // asleep=true immediately before sleeping and then re-checks
    // submit_seq (a Dekker handshake, both seq_cst): either the submitter
    // observes asleep and writes the eventfd, or the loop observes the
    // new sequence number and skips the sleep — a wakeup is never lost.
    std::atomic<bool> asleep{false};
    std::atomic<std::uint64_t> submit_seq{0};
    mutable sync::Mutex mutex{"transport.reactor.shard"};
    // This shard's contribution to the reactor.inflight / .connections
    // gauges, refreshed at the end of every tick (the loop sums across
    // shards and stores the totals into the metrics registry).
    std::atomic<std::size_t> gauge_inflight{0};
    std::atomic<std::size_t> gauge_connections{0};
    bool stopping OHPX_GUARDED_BY(mutex) = false;
    std::map<std::pair<std::string, std::uint16_t>,
             std::unique_ptr<Connection>>
        conns OHPX_GUARDED_BY(mutex);
  };

  // A settled call carried out of the locked region: promises are
  // fulfilled *after* the shard mutex drops, so a continuation that
  // re-enters submit() cannot deadlock.
  struct Settlement {
    Promise<RawReply> promise;
    RawReply reply;                     // meaningful when !error
    std::exception_ptr error = nullptr;

    void settle() {
      if (error) {
        promise.set_exception(error);
      } else {
        promise.set_value(std::move(reply));
      }
    }
  };

  Shard& shard_for(const std::string& host, std::uint16_t port) noexcept;
  void wake(Shard& shard) noexcept;
  void loop(Shard& shard);
  void service_submissions(Shard& shard, std::vector<Settlement>& out)
      OHPX_REQUIRES(shard.mutex);
  void open_connection(Shard& shard, Connection& conn,
                       std::vector<Settlement>& out)
      OHPX_REQUIRES(shard.mutex);
  void finish_connect(Shard& shard, Connection& conn,
                      std::vector<Settlement>& out) OHPX_REQUIRES(shard.mutex);
  void flush(Shard& shard, Connection& conn, std::vector<Settlement>& out)
      OHPX_REQUIRES(shard.mutex);
  void read_ready(Shard& shard, Connection& conn,
                  std::vector<Settlement>& out) OHPX_REQUIRES(shard.mutex);
  bool drain_inbuf(Shard& shard, Connection& conn,
                   std::vector<Settlement>& out) OHPX_REQUIRES(shard.mutex);
  void fail_connection(Shard& shard, Connection& conn, ErrorCode code,
                       const std::string& message,
                       std::vector<Settlement>& out)
      OHPX_REQUIRES(shard.mutex);
  void cancel_expired(Shard& shard, std::vector<Settlement>& out)
      OHPX_REQUIRES(shard.mutex);
  void update_interest(Shard& shard, Connection& conn, bool want_write)
      OHPX_REQUIRES(shard.mutex);
  void note_connected(Connection& conn) noexcept;
  void publish_gauges(Shard& shard, std::size_t inflight,
                      std::size_t connections) noexcept;
  void note_tick_lag(Nanoseconds lag);

  ReactorConfig config_;
  std::atomic<std::size_t> window_;
  std::atomic<std::int64_t> stall_threshold_{0};
  std::atomic<bool> stall_dump_logged_{false};
  std::atomic<std::uint64_t> next_correlation_{1};
  std::atomic<bool> stopped_{false};

  // Resolved once in the constructor, which runs after (and therefore
  // destructs before) MetricsRegistry::global() — loop threads may bump
  // these until stop() completes.
  metrics::MetricsRegistry::Counter* batches_ = nullptr;
  metrics::MetricsRegistry::Counter* frames_ = nullptr;
  metrics::MetricsRegistry::Counter* backpressure_ = nullptr;
  metrics::MetricsRegistry::Counter* deadline_cancels_ = nullptr;
  metrics::MetricsRegistry::Counter* reconnects_ = nullptr;
  metrics::MetricsRegistry::Counter* stalls_ = nullptr;
  // Gauges (store(), not fetch_add): refreshed at the end of every tick.
  metrics::MetricsRegistry::Counter* inflight_gauge_ = nullptr;
  metrics::MetricsRegistry::Counter* connections_gauge_ = nullptr;
  // Histograms: per-tick loop lag (real time) and frames per sendmsg
  // batch (encoded as 1 us per frame — see flush()).
  metrics::LatencyHistogram* loop_lag_ = nullptr;
  metrics::LatencyHistogram* batch_frames_ = nullptr;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ohpx::transport
