// In-process transport: a process-wide registry of named endpoints and a
// channel that calls the bound handler directly.  This is the bearer for
// the shared-memory protocol and (wrapped in a SimChannel) for the
// simulated network protocols.
#pragma once

#include <map>
#include <string>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/channel.hpp"

namespace ohpx::transport {

/// Process-wide name → handler table.  An "endpoint name" plays the role
/// of a host:port for in-process communication; proto-data inside object
/// references carries these names.
class EndpointRegistry {
 public:
  static EndpointRegistry& instance();

  /// Binds `name`; rebinding an existing name replaces the handler (this is
  /// what migration does when a context re-homes an object's endpoint).
  void bind(const std::string& name, FrameHandler handler);

  void unbind(const std::string& name);

  /// Looks up a handler; throws TransportError(transport_unknown_endpoint).
  FrameHandler lookup(const std::string& name) const;

  bool contains(const std::string& name) const;

  std::size_t size() const;

  /// Removes every binding (test isolation).
  void clear();

 private:
  EndpointRegistry() = default;

  mutable sync::Mutex mutex_{"transport.inproc.endpoints"};
  std::map<std::string, FrameHandler> handlers_ OHPX_GUARDED_BY(mutex_);
};

/// Channel that synchronously invokes an endpoint's handler.  The handler
/// is resolved per call so rebinding (migration) takes effect immediately.
class InProcChannel final : public Channel {
 public:
  explicit InProcChannel(std::string endpoint);

  wire::Buffer roundtrip(const wire::Buffer& request, CostLedger& ledger) override;
  std::string describe() const override;

  const std::string& endpoint() const noexcept { return endpoint_; }

 private:
  std::string endpoint_;
};

}  // namespace ohpx::transport
