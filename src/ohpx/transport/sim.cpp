#include "ohpx/transport/sim.hpp"

#include <utility>

#include "ohpx/common/error.hpp"
#include "ohpx/resilience/fault_plan.hpp"

namespace ohpx::transport {

SimChannel::SimChannel(std::string endpoint, LinkProvider link_provider)
    : inner_(std::move(endpoint)), link_provider_(std::move(link_provider)) {}

SimChannel::SimChannel(std::string endpoint, netsim::LinkSpec link)
    : inner_(std::move(endpoint)),
      link_provider_([spec = std::move(link)] { return spec; }) {}

wire::Buffer SimChannel::roundtrip(const wire::Buffer& request,
                                   CostLedger& ledger) {
  const netsim::LinkSpec link = link_provider_();
  ledger.add_modeled(link.transfer_time(request.size()));

  resilience::FaultDecision fault;
  auto& injector = resilience::FaultInjector::instance();
  if (injector.active()) {
    fault = injector.decide(inner_.endpoint());
  }

  switch (fault.kind) {
    case resilience::FaultKind::drop:
      // The frame dies on the simulated wire; the bound handler never runs.
      throw TransportError(ErrorCode::transport_io,
                           "fault injection: frame to '" + inner_.endpoint() +
                               "' dropped");
    case resilience::FaultKind::delay:
      resilience::sleep_for(fault.delay);
      ledger.add_modeled(fault.delay);
      break;
    case resilience::FaultKind::duplicate:
      // The network delivered the request twice; the first reply is lost,
      // the second is what the caller sees (server-side counters observe
      // both deliveries).
      (void)inner_.roundtrip(request, ledger);
      break;
    case resilience::FaultKind::none:
    case resilience::FaultKind::corrupt:
      break;
  }

  wire::Buffer reply = inner_.roundtrip(request, ledger);
  ledger.add_modeled(link.transfer_time(reply.size()));

  if (fault.kind == resilience::FaultKind::corrupt && reply.size() > 0) {
    // Flip the last byte of the reply.  For a reply with a body that is a
    // body byte (a checksum capability catches it); for a bare header it
    // lands in the CRC field and framing catches it.  Either way the
    // corruption is *detected*, never silently consumed.
    reply.data()[reply.size() - 1] ^= 0xff;
  }
  return reply;
}

std::string SimChannel::describe() const {
  return "sim[" + link_provider_().name + "]:" + inner_.endpoint();
}

}  // namespace ohpx::transport
