#include "ohpx/transport/sim.hpp"

#include <utility>

namespace ohpx::transport {

SimChannel::SimChannel(std::string endpoint, LinkProvider link_provider)
    : inner_(std::move(endpoint)), link_provider_(std::move(link_provider)) {}

SimChannel::SimChannel(std::string endpoint, netsim::LinkSpec link)
    : inner_(std::move(endpoint)),
      link_provider_([spec = std::move(link)] { return spec; }) {}

wire::Buffer SimChannel::roundtrip(const wire::Buffer& request,
                                   CostLedger& ledger) {
  const netsim::LinkSpec link = link_provider_();
  ledger.add_modeled(link.transfer_time(request.size()));
  wire::Buffer reply = inner_.roundtrip(request, ledger);
  ledger.add_modeled(link.transfer_time(reply.size()));
  return reply;
}

std::string SimChannel::describe() const {
  return "sim[" + link_provider_().name + "]:" + inner_.endpoint();
}

}  // namespace ohpx::transport
