#include "ohpx/transport/tcp.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::transport {
namespace {

constexpr std::size_t kMaxFrameSize = 256u << 20;  // 256 MiB sanity cap

[[noreturn]] void throw_errno(ErrorCode code, const char* what) {
  throw TransportError(code, std::string(what) + ": " + std::strerror(errno));
}

// Gather-write of iovecs with full partial-write handling: a short send
// advances into the iovec array and retries until every byte is out.
// sendmsg (not writev) so MSG_NOSIGNAL applies — a dead peer must surface
// as EPIPE/transport_io, never as a process-killing SIGPIPE.
void sendmsg_full(int fd, iovec* iov, std::size_t iov_count) {
  while (iov_count > 0) {
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(ErrorCode::transport_io, "sendmsg");
    }
    while (iov_count > 0 && static_cast<std::size_t>(n) >= iov[0].iov_len) {
      n -= static_cast<ssize_t>(iov[0].iov_len);
      ++iov;
      --iov_count;
    }
    if (iov_count > 0 && n > 0) {
      iov[0].iov_base = static_cast<std::uint8_t*>(iov[0].iov_base) + n;
      iov[0].iov_len -= static_cast<std::size_t>(n);
    }
  }
}

/// One sendmsg per <=256 replies: gathered (prefix, frame) iovec pairs.
/// Under fan-in pipelining the handler produces bursts of replies between
/// blocking reads; coalescing them cuts the server's syscalls per call
/// from ~3 to ~2/batch, which is most of the fan-in speedup server-side.
void write_reply_batch(int fd, std::vector<wire::Buffer>& replies) {
  constexpr std::size_t kMaxBatch = 256;
  std::uint8_t prefixes[kMaxBatch][4];
  iovec iov[kMaxBatch * 2];
  std::size_t next = 0;
  while (next < replies.size()) {
    std::size_t iov_count = 0, batched = 0;
    for (; batched < kMaxBatch && next + batched < replies.size(); ++batched) {
      const wire::Buffer& reply = replies[next + batched];
      const std::uint32_t size = static_cast<std::uint32_t>(reply.size());
      std::uint8_t* prefix = prefixes[batched];
      prefix[0] = static_cast<std::uint8_t>(size >> 24);
      prefix[1] = static_cast<std::uint8_t>(size >> 16);
      prefix[2] = static_cast<std::uint8_t>(size >> 8);
      prefix[3] = static_cast<std::uint8_t>(size);
      iov[iov_count].iov_base = prefix;
      iov[iov_count].iov_len = 4;
      ++iov_count;
      if (!reply.empty()) {
        iov[iov_count].iov_base = const_cast<std::uint8_t*>(reply.data());
        iov[iov_count].iov_len = reply.size();
        ++iov_count;
      }
    }
    sendmsg_full(fd, iov, iov_count);
    next += batched;
  }
  replies.clear();
}

/// Returns false on clean EOF at a frame boundary (start == true).
bool read_full(int fd, std::uint8_t* data, std::size_t size, bool eof_ok) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(ErrorCode::transport_io, "recv");
    }
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw TransportError(ErrorCode::transport_closed,
                           "connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

in_addr resolve_ipv4(const std::string& host) {
  in_addr addr{};
  if (host.empty() || host == "0.0.0.0") {
    addr.s_addr = htonl(INADDR_ANY);
    return addr;
  }
  if (::inet_pton(AF_INET, host.c_str(), &addr) == 1) {
    return addr;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &result);
  if (rc != 0 || result == nullptr) {
    if (result) ::freeaddrinfo(result);
    throw TransportError(ErrorCode::transport_connect_failed,
                         "cannot resolve host '" + host +
                             "': " + ::gai_strerror(rc));
  }
  addr = reinterpret_cast<sockaddr_in*>(result->ai_addr)->sin_addr;
  ::freeaddrinfo(result);
  return addr;
}

// One gather write of length-prefix + frame instead of two sends: without
// the single syscall, the 4-byte prefix used to go out as its own segment
// whenever the kernel flushed between the calls, and a short second send
// (under memory pressure) could interleave with another writer's prefix.
// TCP_NODELAY stays on (set at connect/accept), so small frames are not
// delayed waiting for an ACK — this path is the blocking *fallback* bearer;
// the reactor (reactor.hpp) batches many frames per sendmsg on top of the
// same framing.
void tcp_write_frame(int fd, const wire::Buffer& frame) {
  std::uint8_t len[4];
  const std::uint32_t size = static_cast<std::uint32_t>(frame.size());
  len[0] = static_cast<std::uint8_t>(size >> 24);
  len[1] = static_cast<std::uint8_t>(size >> 16);
  len[2] = static_cast<std::uint8_t>(size >> 8);
  len[3] = static_cast<std::uint8_t>(size);
  iovec iov[2];
  iov[0].iov_base = len;
  iov[0].iov_len = sizeof(len);
  iov[1].iov_base = const_cast<std::uint8_t*>(frame.data());
  iov[1].iov_len = frame.size();
  sendmsg_full(fd, iov, frame.size() > 0 ? 2 : 1);
}

wire::Buffer tcp_read_frame(int fd) {
  std::uint8_t len[4];
  if (!read_full(fd, len, 4, /*eof_ok=*/true)) {
    throw TransportError(ErrorCode::transport_closed, "connection closed");
  }
  const std::size_t size = (static_cast<std::size_t>(len[0]) << 24) |
                           (static_cast<std::size_t>(len[1]) << 16) |
                           (static_cast<std::size_t>(len[2]) << 8) |
                           static_cast<std::size_t>(len[3]);
  if (size > kMaxFrameSize) {
    throw TransportError(ErrorCode::transport_io, "frame exceeds size cap");
  }
  wire::Buffer frame;
  frame.resize(size);
  read_full(fd, frame.data(), size, /*eof_ok=*/false);
  return frame;
}

// ---- TcpListener ---------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port, FrameHandler handler)
    : TcpListener("127.0.0.1", port, std::move(handler)) {}

TcpListener::TcpListener(const std::string& host, std::uint16_t port,
                         FrameHandler handler)
    : handler_(std::move(handler)) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = resolve_ipv4(host);  // before socket(): a throw here
                                       // must not leak an fd
  addr.sin_port = htons(port);

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno(ErrorCode::transport_io, "socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw_errno(ErrorCode::transport_io, "bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(listen_fd_);
    throw_errno(ErrorCode::transport_io, "getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw_errno(ErrorCode::transport_io, "listen");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpListener::~TcpListener() { stop(); }

void TcpListener::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;  // already stopped
  }
  // Shut the listening socket down to unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    sync::LockGuard lock(workers_mutex_);
    workers.swap(workers_);
    finished_.clear();
    // Unblock workers parked in recv() on live connections; they observe
    // EOF, clean up their fd and exit.
    for (int fd : open_connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void TcpListener::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    sync::LockGuard lock(workers_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    reap_finished_locked();
    open_connections_.insert(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

// Joins workers whose connections have ended so a long-lived listener does
// not accumulate one joinable-but-finished thread per past connection.
// Joining under the lock is safe: a thread registers in finished_ as its
// last lock-holding act, so the join only waits for its final returns.
void TcpListener::reap_finished_locked() {
  for (const std::thread::id id : finished_) {
    const auto it =
        std::find_if(workers_.begin(), workers_.end(),
                     [id](const std::thread& t) { return t.get_id() == id; });
    if (it != workers_.end()) {
      it->join();
      workers_.erase(it);
    }
  }
  finished_.clear();
}

void TcpListener::serve_connection(int fd) {
  // Deregister-and-close exactly once, on *every* exit path.  Before this
  // guard, an exception that escaped the catch clauses below (anything not
  // derived from std::exception) unwound past the cleanup block: the fd
  // stayed in open_connections_ forever — stop() would then shutdown() a
  // number the kernel had recycled for an unrelated connection — and the
  // worker thread was never reaped.
  struct ConnectionGuard {
    TcpListener* listener;
    int fd;
    ~ConnectionGuard() {
      {
        sync::LockGuard lock(listener->workers_mutex_);
        listener->open_connections_.erase(fd);
        listener->finished_.push_back(std::this_thread::get_id());
      }
      ::close(fd);
    }
  } guard{this, fd};

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  try {
    // Buffered request pipeline: each blocking recv takes whatever burst
    // the client pipelined, every complete frame in the buffer is
    // dispatched, and the accumulated replies flush as one gathered
    // sendmsg before the next blocking read (flushing first is also what
    // prevents deadlock — the client may be waiting on these replies).
    // One call at a time still costs one recv + one send, exactly the old
    // behaviour; a reactor fan-in burst costs two syscalls per *batch*.
    constexpr std::size_t kReadChunk = 256u << 10;
    std::vector<std::uint8_t> inbuf;
    std::vector<wire::Buffer> replies;
    while (!stopping_.load(std::memory_order_relaxed)) {
      std::size_t consumed = 0;
      while (inbuf.size() - consumed >= 4) {
        const std::uint8_t* p = inbuf.data() + consumed;
        const std::size_t size = (static_cast<std::size_t>(p[0]) << 24) |
                                 (static_cast<std::size_t>(p[1]) << 16) |
                                 (static_cast<std::size_t>(p[2]) << 8) |
                                 static_cast<std::size_t>(p[3]);
        if (size > kMaxFrameSize) {
          throw TransportError(ErrorCode::transport_io,
                               "frame exceeds size cap");
        }
        if (inbuf.size() - consumed - 4 < size) break;
        wire::Buffer request;
        request.resize(size);
        std::memcpy(request.data(), p + 4, size);
        consumed += 4 + size;
        replies.push_back(handler_(request));
      }
      if (consumed > 0) {
        inbuf.erase(inbuf.begin(),
                    inbuf.begin() + static_cast<std::ptrdiff_t>(consumed));
      }
      if (!replies.empty()) write_reply_batch(fd, replies);

      const std::size_t old_size = inbuf.size();
      inbuf.resize(old_size + kReadChunk);
      const ssize_t n = ::recv(fd, inbuf.data() + old_size, kReadChunk, 0);
      if (n < 0) {
        inbuf.resize(old_size);
        if (errno == EINTR) continue;
        throw_errno(ErrorCode::transport_io, "recv");
      }
      if (n == 0) {
        if (old_size == 0) break;  // clean EOF at a frame boundary
        throw TransportError(ErrorCode::transport_closed,
                             "connection closed mid-frame");
      }
      inbuf.resize(old_size + static_cast<std::size_t>(n));
    }
  } catch (const TransportError&) {
    // Peer closed or I/O failed; drop the connection quietly.
  } catch (const std::exception& e) {
    log_warn("tcp", "connection handler error: ", e.what());
  } catch (...) {
    log_warn("tcp", "connection handler error: non-standard exception");
  }
}

// ---- TcpChannel ------------------------------------------------------------

TcpChannel::TcpChannel(const std::string& host, std::uint16_t port)
    : host_(host), port_(port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr = resolve_ipv4(host);
  addr.sin_port = htons(port);

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno(ErrorCode::transport_connect_failed, "socket");
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    throw_errno(ErrorCode::transport_connect_failed, "connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

wire::Buffer TcpChannel::roundtrip(const wire::Buffer& request,
                                   CostLedger& ledger) {
  sync::LockGuard lock(io_mutex_);
  // Honor the ambient deadline on a real socket: refuse a send whose
  // budget is spent, and bound the reply wait by the remaining budget so
  // a stuck server cannot hold the caller past its deadline.
  const std::int64_t deadline = resilience::current_deadline_ns();
  if (resilience::deadline_expired(deadline)) {
    throw DeadlineExceeded("deadline exceeded before transport send");
  }
  if (deadline != resilience::kNoDeadline) {
    const auto remaining = resilience::deadline_remaining(deadline);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(remaining.count() / 1'000'000'000);
    tv.tv_usec = static_cast<suseconds_t>((remaining.count() / 1000) % 1'000'000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  } else {
    timeval tv{};  // zero = no timeout
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ledger.add_bytes_sent(request.size());
  ScopedRealTime timer(ledger);
  tcp_write_frame(fd_, request);
  wire::Buffer reply = tcp_read_frame(fd_);
  ledger.add_bytes_received(reply.size());
  return reply;
}

std::string TcpChannel::describe() const {
  return "tcp:" + host_ + ":" + std::to_string(port_);
}

}  // namespace ohpx::transport
