#include "ohpx/transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::transport {
namespace {

constexpr std::size_t kMaxFrameSize = 256u << 20;  // 256 MiB sanity cap

[[noreturn]] void throw_errno(ErrorCode code, const char* what) {
  throw TransportError(code, std::string(what) + ": " + std::strerror(errno));
}

void write_full(int fd, const std::uint8_t* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(ErrorCode::transport_io, "send");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Returns false on clean EOF at a frame boundary (start == true).
bool read_full(int fd, std::uint8_t* data, std::size_t size, bool eof_ok) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno(ErrorCode::transport_io, "recv");
    }
    if (n == 0) {
      if (eof_ok && got == 0) return false;
      throw TransportError(ErrorCode::transport_closed,
                           "connection closed mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void tcp_write_frame(int fd, const wire::Buffer& frame) {
  std::uint8_t len[4];
  const std::uint32_t size = static_cast<std::uint32_t>(frame.size());
  len[0] = static_cast<std::uint8_t>(size >> 24);
  len[1] = static_cast<std::uint8_t>(size >> 16);
  len[2] = static_cast<std::uint8_t>(size >> 8);
  len[3] = static_cast<std::uint8_t>(size);
  write_full(fd, len, 4);
  write_full(fd, frame.data(), frame.size());
}

wire::Buffer tcp_read_frame(int fd) {
  std::uint8_t len[4];
  if (!read_full(fd, len, 4, /*eof_ok=*/true)) {
    throw TransportError(ErrorCode::transport_closed, "connection closed");
  }
  const std::size_t size = (static_cast<std::size_t>(len[0]) << 24) |
                           (static_cast<std::size_t>(len[1]) << 16) |
                           (static_cast<std::size_t>(len[2]) << 8) |
                           static_cast<std::size_t>(len[3]);
  if (size > kMaxFrameSize) {
    throw TransportError(ErrorCode::transport_io, "frame exceeds size cap");
  }
  wire::Buffer frame;
  frame.resize(size);
  read_full(fd, frame.data(), size, /*eof_ok=*/false);
  return frame;
}

// ---- TcpListener ---------------------------------------------------------

TcpListener::TcpListener(std::uint16_t port, FrameHandler handler)
    : handler_(std::move(handler)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno(ErrorCode::transport_io, "socket");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(listen_fd_);
    throw_errno(ErrorCode::transport_io, "bind");
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    ::close(listen_fd_);
    throw_errno(ErrorCode::transport_io, "getsockname");
  }
  port_ = ntohs(addr.sin_port);

  if (::listen(listen_fd_, 16) < 0) {
    ::close(listen_fd_);
    throw_errno(ErrorCode::transport_io, "listen");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TcpListener::~TcpListener() { stop(); }

void TcpListener::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) {
    return;  // already stopped
  }
  // Shut the listening socket down to unblock accept().
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> workers;
  {
    sync::LockGuard lock(workers_mutex_);
    workers.swap(workers_);
    finished_.clear();
    // Unblock workers parked in recv() on live connections; they observe
    // EOF, clean up their fd and exit.
    for (int fd : open_connections_) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (auto& worker : workers) {
    if (worker.joinable()) worker.join();
  }
}

void TcpListener::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed
    }
    sync::LockGuard lock(workers_mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    reap_finished_locked();
    open_connections_.insert(fd);
    workers_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

// Joins workers whose connections have ended so a long-lived listener does
// not accumulate one joinable-but-finished thread per past connection.
// Joining under the lock is safe: a thread registers in finished_ as its
// last lock-holding act, so the join only waits for its final returns.
void TcpListener::reap_finished_locked() {
  for (const std::thread::id id : finished_) {
    const auto it =
        std::find_if(workers_.begin(), workers_.end(),
                     [id](const std::thread& t) { return t.get_id() == id; });
    if (it != workers_.end()) {
      it->join();
      workers_.erase(it);
    }
  }
  finished_.clear();
}

void TcpListener::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  try {
    while (!stopping_.load(std::memory_order_relaxed)) {
      wire::Buffer request = tcp_read_frame(fd);
      wire::Buffer reply = handler_(request);
      tcp_write_frame(fd, reply);
    }
  } catch (const TransportError&) {
    // Peer closed or I/O failed; drop the connection quietly.
  } catch (const std::exception& e) {
    log_warn("tcp", "connection handler error: ", e.what());
  }
  {
    sync::LockGuard lock(workers_mutex_);
    open_connections_.erase(fd);
    finished_.push_back(std::this_thread::get_id());
  }
  ::close(fd);
}

// ---- TcpChannel ------------------------------------------------------------

TcpChannel::TcpChannel(const std::string& host, std::uint16_t port)
    : host_(host), port_(port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno(ErrorCode::transport_connect_failed, "socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw TransportError(ErrorCode::transport_connect_failed,
                         "bad address: " + host);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd_);
    throw_errno(ErrorCode::transport_connect_failed, "connect");
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

TcpChannel::~TcpChannel() {
  if (fd_ >= 0) ::close(fd_);
}

wire::Buffer TcpChannel::roundtrip(const wire::Buffer& request,
                                   CostLedger& ledger) {
  sync::LockGuard lock(io_mutex_);
  // Honor the ambient deadline on a real socket: refuse a send whose
  // budget is spent, and bound the reply wait by the remaining budget so
  // a stuck server cannot hold the caller past its deadline.
  const std::int64_t deadline = resilience::current_deadline_ns();
  if (resilience::deadline_expired(deadline)) {
    throw DeadlineExceeded("deadline exceeded before transport send");
  }
  if (deadline != resilience::kNoDeadline) {
    const auto remaining = resilience::deadline_remaining(deadline);
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(remaining.count() / 1'000'000'000);
    tv.tv_usec = static_cast<suseconds_t>((remaining.count() / 1000) % 1'000'000);
    if (tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  } else {
    timeval tv{};  // zero = no timeout
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ledger.add_bytes_sent(request.size());
  ScopedRealTime timer(ledger);
  tcp_write_frame(fd_, request);
  wire::Buffer reply = tcp_read_frame(fd_);
  ledger.add_bytes_received(reply.size());
  return reply;
}

std::string TcpChannel::describe() const {
  return "tcp:" + host_ + ":" + std::to_string(port_);
}

}  // namespace ohpx::transport
