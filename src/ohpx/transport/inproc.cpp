#include "ohpx/transport/inproc.hpp"

#include <utility>

#include "ohpx/common/error.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::transport {

EndpointRegistry& EndpointRegistry::instance() {
  static EndpointRegistry registry;
  return registry;
}

void EndpointRegistry::bind(const std::string& name, FrameHandler handler) {
  sync::LockGuard lock(mutex_);
  handlers_[name] = std::move(handler);
}

void EndpointRegistry::unbind(const std::string& name) {
  sync::LockGuard lock(mutex_);
  handlers_.erase(name);
}

FrameHandler EndpointRegistry::lookup(const std::string& name) const {
  sync::LockGuard lock(mutex_);
  const auto it = handlers_.find(name);
  if (it == handlers_.end()) {
    throw TransportError(ErrorCode::transport_unknown_endpoint,
                         "no endpoint bound to '" + name + "'");
  }
  return it->second;
}

bool EndpointRegistry::contains(const std::string& name) const {
  sync::LockGuard lock(mutex_);
  return handlers_.contains(name);
}

std::size_t EndpointRegistry::size() const {
  sync::LockGuard lock(mutex_);
  return handlers_.size();
}

void EndpointRegistry::clear() {
  sync::LockGuard lock(mutex_);
  handlers_.clear();
}

InProcChannel::InProcChannel(std::string endpoint)
    : endpoint_(std::move(endpoint)) {}

wire::Buffer InProcChannel::roundtrip(const wire::Buffer& request,
                                      CostLedger& ledger) {
  if (resilience::deadline_expired(resilience::current_deadline_ns())) {
    throw DeadlineExceeded("deadline exceeded before transport send");
  }
  FrameHandler handler = EndpointRegistry::instance().lookup(endpoint_);
  ledger.add_bytes_sent(request.size());
  ScopedRealTime timer(ledger);
  wire::Buffer reply = handler(request);
  ledger.add_bytes_received(reply.size());
  return reply;
}

std::string InProcChannel::describe() const {
  return "inproc:" + endpoint_;
}

}  // namespace ohpx::transport
