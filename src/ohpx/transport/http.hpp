// Minimal HTTP/1.x listener for the introspection plane.
//
// Deliberately tiny: GET only, Connection: close, one response per
// connection, loopback only — enough for `curl :port/metrics`, a
// Prometheus scrape, and ohpx-top's polling, and nothing more.  It lives
// in transport/ because that is the one directory allowed to make
// blocking socket syscalls (tools/ohpx_lint_ast.py, rule
// blocking-sockets); everything above hands in a path->response callback.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::transport {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
};

/// Called per request with the request path (e.g. "/metrics"); runs on the
/// connection's thread.  Throwing maps to a 500 response.
using HttpHandler = std::function<HttpResponse(const std::string& path)>;

/// Accepting side: binds 127.0.0.1:`port` (0 = ephemeral) and serves each
/// connection on its own thread — the same shape as TcpListener, tuned for
/// a handful of concurrent scrapers rather than RPC fan-in.
class HttpListener {
 public:
  HttpListener(std::uint16_t port, HttpHandler handler);
  ~HttpListener();

  HttpListener(const HttpListener&) = delete;
  HttpListener& operator=(const HttpListener&) = delete;

  /// The actual bound port (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins all threads.  Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked() OHPX_REQUIRES(workers_mutex_);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  HttpHandler handler_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  sync::Mutex workers_mutex_{"transport.http.workers"};
  std::vector<std::thread> workers_ OHPX_GUARDED_BY(workers_mutex_);
  std::set<int> open_connections_ OHPX_GUARDED_BY(workers_mutex_);
  std::vector<std::thread::id> finished_ OHPX_GUARDED_BY(workers_mutex_);
};

}  // namespace ohpx::transport
