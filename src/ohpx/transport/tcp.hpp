// Real TCP transport built directly on the POSIX socket API.  Stream
// framing: u32 big-endian payload length + payload.  This is the
// "Nexus-based TCP protocol" bearer when running against a real network
// stack (the benchmark suite instead uses the netsim-timed channel so
// results are deterministic — see DESIGN.md §2).  Listeners default to
// loopback but can bind any local interface, which is what lets a World
// span OS processes and machines (docs/deployment.md).
#pragma once

#include <netinet/in.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/channel.hpp"

namespace ohpx::transport {

/// Resolves `host` to an IPv4 address: dotted-quad fast path, getaddrinfo
/// fallback for names ("localhost", machine names).  "" and "0.0.0.0" map
/// to INADDR_ANY (listeners bind every interface).  Throws
/// TransportError(transport_connect_failed) for unresolvable hosts.
in_addr resolve_ipv4(const std::string& host);

/// Accepting side: binds `host`:`port` (port 0 = ephemeral, host "" /
/// "0.0.0.0" = all interfaces), serves each connection on its own thread,
/// dispatching frames into `handler`.
class TcpListener {
 public:
  TcpListener(std::uint16_t port, FrameHandler handler);
  TcpListener(const std::string& host, std::uint16_t port,
              FrameHandler handler);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// The actual bound port (useful with port 0).
  std::uint16_t port() const noexcept { return port_; }

  /// Stops accepting and joins all threads.  Idempotent.
  void stop();

 private:
  void accept_loop();
  void serve_connection(int fd);
  void reap_finished_locked() OHPX_REQUIRES(workers_mutex_);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  FrameHandler handler_;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  sync::Mutex workers_mutex_{"transport.tcp.workers"};
  std::vector<std::thread> workers_ OHPX_GUARDED_BY(workers_mutex_);
  std::set<int> open_connections_ OHPX_GUARDED_BY(workers_mutex_);
  std::vector<std::thread::id> finished_ OHPX_GUARDED_BY(workers_mutex_);
};

/// Connecting side: one persistent connection, one in-flight request at a
/// time (callers serialize through an internal mutex).
class TcpChannel final : public Channel {
 public:
  TcpChannel(const std::string& host, std::uint16_t port);
  ~TcpChannel() override;

  TcpChannel(const TcpChannel&) = delete;
  TcpChannel& operator=(const TcpChannel&) = delete;

  wire::Buffer roundtrip(const wire::Buffer& request, CostLedger& ledger) override;
  std::string describe() const override;

 private:
  int fd_ = -1;
  std::string host_;
  std::uint16_t port_;
  sync::Mutex io_mutex_{"transport.tcp.io"};
};

/// Frame I/O helpers shared by both sides (exposed for tests).
void tcp_write_frame(int fd, const wire::Buffer& frame);
wire::Buffer tcp_read_frame(int fd);

}  // namespace ohpx::transport
