#include "ohpx/crypto/mac.hpp"

namespace ohpx::crypto {
namespace {

std::uint64_t rotl(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
              std::uint64_t& v3) noexcept {
  v0 += v1;
  v1 = rotl(v1, 13);
  v1 ^= v0;
  v0 = rotl(v0, 32);
  v2 += v3;
  v3 = rotl(v3, 16);
  v3 ^= v2;
  v0 += v3;
  v3 = rotl(v3, 21);
  v3 ^= v0;
  v2 += v1;
  v1 = rotl(v1, 17);
  v1 ^= v2;
  v2 = rotl(v2, 32);
}

}  // namespace

std::uint64_t siphash24(const Key128& key, BytesView data) noexcept {
  const std::uint64_t k0 = key.lo();
  const std::uint64_t k1 = key.hi();
  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t n = data.size();
  const std::size_t end = n - (n % 8);
  for (std::size_t i = 0; i < end; i += 8) {
    std::uint64_t m = 0;
    for (int b = 7; b >= 0; --b) {
      m = (m << 8) | data[i + static_cast<std::size_t>(b)];
    }
    v3 ^= m;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = static_cast<std::uint64_t>(n & 0xff) << 56;
  for (std::size_t i = end, shift = 0; i < n; ++i, shift += 8) {
    last |= static_cast<std::uint64_t>(data[i]) << shift;
  }
  v3 ^= last;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  sipround(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

Bytes mac_tag(const Key128& key, BytesView data) {
  const std::uint64_t h = siphash24(key, data);
  Bytes tag(kMacTagSize);
  for (std::size_t i = 0; i < kMacTagSize; ++i) {
    tag[i] = static_cast<std::uint8_t>(h >> (8 * i));
  }
  return tag;
}

bool mac_verify(const Key128& key, BytesView data, BytesView tag) noexcept {
  if (tag.size() != kMacTagSize) return false;
  const Bytes expected = mac_tag(key, data);
  return constant_time_equal(expected, tag);
}

}  // namespace ohpx::crypto
