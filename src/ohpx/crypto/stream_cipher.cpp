#include "ohpx/crypto/stream_cipher.hpp"

namespace ohpx::crypto {
namespace {

std::uint64_t splitmix(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

StreamCipher::StreamCipher(const Key128& key, std::uint64_t nonce) noexcept {
  std::uint64_t seed = key.lo() ^ rotl(key.hi(), 31) ^ (nonce * 0xda942042e4dd58b5ULL);
  for (auto& word : state_) word = splitmix(seed);
}

std::uint64_t StreamCipher::next_word() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

void StreamCipher::apply(std::span<std::uint8_t> data) noexcept {
  std::size_t i = 0;
  // Whole 8-byte blocks.
  for (; i + 8 <= data.size(); i += 8) {
    const std::uint64_t ks = next_word();
    for (int b = 0; b < 8; ++b) {
      data[i + static_cast<std::size_t>(b)] ^=
          static_cast<std::uint8_t>(ks >> (8 * b));
    }
  }
  // Tail.
  if (i < data.size()) {
    const std::uint64_t ks = next_word();
    for (int b = 0; i < data.size(); ++i, ++b) {
      data[i] ^= static_cast<std::uint8_t>(ks >> (8 * b));
    }
  }
}

void stream_crypt(const Key128& key, std::uint64_t nonce,
                  std::span<std::uint8_t> data) noexcept {
  StreamCipher cipher(key, nonce);
  cipher.apply(data);
}

}  // namespace ohpx::crypto
