// Keystream cipher used by the encryption capability.
//
// Construction: a xoshiro256** generator is seeded from (key, nonce); its
// output words are XORed over the payload.  Symmetric: apply() twice with
// the same (key, nonce) restores the plaintext.  This is deliberately a
// *model* of the paper's opaque "security capability" — a real per-byte
// transformation with realistic cost — not a production cipher (DESIGN.md
// §2 records the substitution).
#pragma once

#include <cstdint>

#include "ohpx/common/bytes.hpp"
#include "ohpx/crypto/key.hpp"

namespace ohpx::crypto {

class StreamCipher {
 public:
  StreamCipher(const Key128& key, std::uint64_t nonce) noexcept;

  /// XORs the keystream over `data` in place.
  void apply(std::span<std::uint8_t> data) noexcept;

 private:
  std::uint64_t next_word() noexcept;

  std::uint64_t state_[4];
};

/// One-shot convenience: encrypt/decrypt `data` in place.
void stream_crypt(const Key128& key, std::uint64_t nonce,
                  std::span<std::uint8_t> data) noexcept;

}  // namespace ohpx::crypto
