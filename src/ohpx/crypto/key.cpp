#include "ohpx/crypto/key.hpp"

#include "ohpx/common/bytes.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/common/rng.hpp"

namespace ohpx::crypto {
namespace {

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::uint64_t Key128::lo() const noexcept { return load_le64(bytes.data()); }
std::uint64_t Key128::hi() const noexcept { return load_le64(bytes.data() + 8); }

std::string Key128::to_hex() const {
  return ohpx::to_hex(BytesView(bytes.data(), bytes.size()));
}

Key128 Key128::from_hex(std::string_view hex) {
  const Bytes raw = ohpx::from_hex(hex);
  if (raw.size() != 16) {
    throw WireError(ErrorCode::wire_bad_value, "Key128 hex must be 32 digits");
  }
  Key128 key;
  std::copy(raw.begin(), raw.end(), key.bytes.begin());
  return key;
}

Key128 Key128::from_seed(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  Key128 key;
  for (int half = 0; half < 2; ++half) {
    std::uint64_t word = mixer.next();
    for (int i = 0; i < 8; ++i) {
      key.bytes[half * 8 + i] = static_cast<std::uint8_t>(word >> (8 * i));
    }
  }
  return key;
}

Key128 Key128::from_passphrase(std::string_view passphrase) noexcept {
  // FNV-1a over the passphrase, folded twice with different offsets, then
  // expanded through SplitMix64.  Deterministic across platforms.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : passphrase) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return from_seed(h);
}

}  // namespace ohpx::crypto
