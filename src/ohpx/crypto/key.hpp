// 128-bit symmetric key material shared by the encryption and
// authentication capabilities.  Keys are exchangeable as hex strings so
// capability descriptors can carry them inside serialized object
// references (paper §4: "capabilities can be exchanged between processes").
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace ohpx::crypto {

struct Key128 {
  std::array<std::uint8_t, 16> bytes{};

  /// Two 64-bit halves, little-endian, used by SipHash and the keystream.
  std::uint64_t lo() const noexcept;
  std::uint64_t hi() const noexcept;

  std::string to_hex() const;
  static Key128 from_hex(std::string_view hex);

  /// Deterministic key derived from a seed (tests, examples).
  static Key128 from_seed(std::uint64_t seed) noexcept;

  /// Key derived from a passphrase by iterated mixing.
  static Key128 from_passphrase(std::string_view passphrase) noexcept;

  friend bool operator==(const Key128&, const Key128&) = default;
};

}  // namespace ohpx::crypto
