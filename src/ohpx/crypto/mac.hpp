// SipHash-2-4 message authentication code (Aumasson & Bernstein), built
// from scratch.  Used by the authentication capability to tag each request
// with an 8-byte MAC the server side verifies before dispatch.
#pragma once

#include <cstdint>

#include "ohpx/common/bytes.hpp"
#include "ohpx/crypto/key.hpp"

namespace ohpx::crypto {

/// SipHash-2-4 of `data` under `key`.
std::uint64_t siphash24(const Key128& key, BytesView data) noexcept;

/// 8-byte little-endian encoding of siphash24 — the wire form of a MAC tag.
Bytes mac_tag(const Key128& key, BytesView data);

/// Constant-time verification of a wire tag.
bool mac_verify(const Key128& key, BytesView data, BytesView tag) noexcept;

inline constexpr std::size_t kMacTagSize = 8;

}  // namespace ohpx::crypto
