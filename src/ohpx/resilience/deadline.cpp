#include "ohpx/resilience/deadline.hpp"

#include <limits>

namespace ohpx::resilience {
namespace {

thread_local std::int64_t t_deadline_ns = kNoDeadline;

}  // namespace

std::int64_t current_deadline_ns() noexcept { return t_deadline_ns; }

Nanoseconds deadline_remaining(std::int64_t deadline_ns) noexcept {
  if (deadline_ns == kNoDeadline) {
    return Nanoseconds(std::numeric_limits<std::int64_t>::max());
  }
  const std::int64_t left = deadline_ns - now_ns();
  return Nanoseconds(left > 0 ? left : 0);
}

DeadlineScope::DeadlineScope(std::int64_t deadline_ns) noexcept
    : saved_(t_deadline_ns) {
  t_deadline_ns = tighten_deadline(saved_, deadline_ns);
}

DeadlineScope::~DeadlineScope() { t_deadline_ns = saved_; }

}  // namespace ohpx::resilience
