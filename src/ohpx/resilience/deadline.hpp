// Per-call deadline budgets.
//
// A deadline is minted at the stub (now + budget), installed as the
// thread-ambient deadline for the call, carried over the wire as an
// optional header extension, and checked at every expensive pipeline
// stage: protocol selection, capability process(), transport send, and
// server dispatch.  Expiry surfaces as ErrorCode::deadline_exceeded.
//
// Deadlines are absolute nanoseconds on the resilience clock
// (ohpx/resilience/clock.hpp), with 0 meaning "unbounded".  Ambient
// propagation means a servant calling downstream objects inherits its
// caller's remaining budget — the whole call tree shares one budget, the
// classic deadline-propagation contract.
#pragma once

#include <cstdint>

#include "ohpx/resilience/clock.hpp"

namespace ohpx::resilience {

/// Sentinel: no deadline.
inline constexpr std::int64_t kNoDeadline = 0;

/// The calling thread's ambient deadline (kNoDeadline when unbounded).
std::int64_t current_deadline_ns() noexcept;

/// True when `deadline_ns` names a real deadline that has passed on the
/// resilience clock.  kNoDeadline never expires.
inline bool deadline_expired(std::int64_t deadline_ns) noexcept {
  return deadline_ns != kNoDeadline && now_ns() >= deadline_ns;
}

/// Remaining budget of `deadline_ns` (clamped at 0); a huge value when
/// unbounded.
Nanoseconds deadline_remaining(std::int64_t deadline_ns) noexcept;

/// Tightest of two deadlines (kNoDeadline loses to any real deadline).
inline std::int64_t tighten_deadline(std::int64_t a, std::int64_t b) noexcept {
  if (a == kNoDeadline) return b;
  if (b == kNoDeadline) return a;
  return a < b ? a : b;
}

/// RAII: installs `deadline_ns` as the thread-ambient deadline, tightened
/// against whatever deadline is already ambient (a nested call can only
/// shrink the budget, never extend its caller's).  Restores on exit.
class DeadlineScope {
 public:
  explicit DeadlineScope(std::int64_t deadline_ns) noexcept;
  ~DeadlineScope();
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  std::int64_t saved_;
};

}  // namespace ohpx::resilience
