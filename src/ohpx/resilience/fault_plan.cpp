#include "ohpx/resilience/fault_plan.hpp"

#include "ohpx/sync/mutex.hpp"

namespace ohpx::resilience {
namespace {

// FNV-1a, so endpoint-name mixing is stable across runs and platforms
// (std::hash makes no such promise).
std::uint64_t hash_endpoint(const std::string& endpoint) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : endpoint) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::none:
      return "none";
    case FaultKind::drop:
      return "drop";
    case FaultKind::delay:
      return "delay";
    case FaultKind::duplicate:
      return "duplicate";
    case FaultKind::corrupt:
      return "corrupt";
  }
  return "unknown";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::set_plan(const std::string& endpoint,
                             const FaultSchedule& schedule) {
  sync::LockGuard lock(mutex_);
  EndpointState& state = states_[endpoint];
  state.schedule = schedule;
  state.scheduled = true;
  state.rng = Xoshiro256(schedule.seed ^ hash_endpoint(endpoint));
  state.calls = 0;
  active_.store(true, std::memory_order_release);
}

void FaultInjector::clear() {
  sync::LockGuard lock(mutex_);
  states_.clear();
  active_.store(false, std::memory_order_release);
}

FaultDecision FaultInjector::decide(const std::string& endpoint) {
  sync::LockGuard lock(mutex_);
  EndpointState& state = states_[endpoint];
  const std::uint64_t index = state.calls++;
  if (!state.scheduled) return {};

  const FaultSchedule& schedule = state.schedule;
  for (const auto& [at, kind] : schedule.scripted) {
    if (at == index) return {kind, schedule.delay};
  }

  const double total_rate = schedule.drop_rate + schedule.duplicate_rate +
                            schedule.corrupt_rate + schedule.delay_rate;
  if (total_rate <= 0.0) return {};

  // One draw per call keeps the stream aligned with the call index even
  // when rates change between schedule edits of equal shape.
  const double u = state.rng.next_double();
  double threshold = schedule.drop_rate;
  if (u < threshold) return {FaultKind::drop, schedule.delay};
  threshold += schedule.duplicate_rate;
  if (u < threshold) return {FaultKind::duplicate, schedule.delay};
  threshold += schedule.corrupt_rate;
  if (u < threshold) return {FaultKind::corrupt, schedule.delay};
  threshold += schedule.delay_rate;
  if (u < threshold) return {FaultKind::delay, schedule.delay};
  return {};
}

std::uint64_t FaultInjector::call_count(const std::string& endpoint) const {
  sync::LockGuard lock(mutex_);
  const auto it = states_.find(endpoint);
  return it == states_.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::total_calls() const {
  sync::LockGuard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, state] : states_) total += state.calls;
  return total;
}

}  // namespace ohpx::resilience
