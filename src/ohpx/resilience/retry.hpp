// Policy-driven retry with deterministic exponential backoff.
//
// A RetryPolicy bounds how many times one logical call may be attempted
// and how long to wait between attempts (exponential backoff with seeded
// jitter, so the full backoff sequence is reproducible from the policy
// seed).  Policies are configurable at three scopes — globally, per
// Context, and per global pointer (CallCore) — with the innermost scope
// winning, mirroring the trace-sampling steering contract.
//
// What is worth retrying is a fixed classification (is_retryable): faults
// of the channel and of migration races are transient; refusals of
// authority (auth, quota, lease) are answers, not accidents, and must
// never be retried.
#pragma once

#include <atomic>
#include <cstdint>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/clock.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::resilience {

struct RetryPolicy {
  /// Total attempts for one logical call (first try + retries).  1 = no
  /// retries at all.
  int max_attempts = 3;

  /// Delay before the first retry; 0 = retry immediately (the default, so
  /// the in-process fast path never waits).
  Nanoseconds initial_backoff{0};

  /// Backoff growth per retry (attempt n waits initial * multiplier^n,
  /// capped at max_backoff).
  double backoff_multiplier = 2.0;

  Nanoseconds max_backoff{std::chrono::milliseconds(100)};

  /// Jitter as a fraction of the computed delay: the actual wait is
  /// delay * (1 + jitter * (2u - 1)) for a seeded uniform u in [0, 1).
  /// 0 = no jitter.
  double jitter = 0.0;

  /// Seed for the jitter stream — the whole backoff sequence is a pure
  /// function of (policy, seed).
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  friend bool operator==(const RetryPolicy&, const RetryPolicy&) = default;
};

/// Transient failures worth another attempt: channel faults (the endpoint
/// may rebind, the breaker may fail us over), frame/payload corruption
/// (checksums caught it; a re-send is clean), and migration races.
/// Everything that expresses a *decision* — capability refusals, missing
/// objects, expired deadlines — is final.
bool is_retryable(ErrorCode code) noexcept;

/// Deterministic backoff sequence for one logical call: next() yields the
/// delay before retry 1, 2, ... per the policy, jittered from the policy
/// seed.
class BackoffSchedule {
 public:
  explicit BackoffSchedule(const RetryPolicy& policy) noexcept;

  Nanoseconds next() noexcept;

 private:
  RetryPolicy policy_;
  Xoshiro256 rng_;
  double current_ns_;
};

/// Bumped on every policy edit at any scope; callers memoizing a resolved
/// policy revalidate against it with one relaxed load.
std::uint64_t retry_policy_revision() noexcept;

/// Global (outermost) retry policy.
void set_global_retry_policy(const RetryPolicy& policy);
void clear_global_retry_policy();  ///< back to the default RetryPolicy{}

/// One optional policy override (a Context and a CallCore each own one).
/// set()/clear() bump the global revision so memoized resolutions refresh.
class RetryOverride {
 public:
  RetryOverride() = default;
  RetryOverride(const RetryOverride&) = delete;
  RetryOverride& operator=(const RetryOverride&) = delete;

  void set(const RetryPolicy& policy);
  void clear();

  bool overridden() const noexcept {
    return engaged_.load(std::memory_order_acquire);
  }

  /// The override's policy; only meaningful while overridden().
  RetryPolicy get() const;

 private:
  mutable sync::Mutex mutex_{"resilience.retry_override"};
  RetryPolicy policy_ OHPX_GUARDED_BY(mutex_);
  std::atomic<bool> engaged_{false};
};

/// Innermost-wins resolution: `core` (per-GP) beats `context` beats the
/// global policy.
RetryPolicy resolve_retry_policy(const RetryOverride& core,
                                 const RetryOverride& context);

}  // namespace ohpx::resilience
