#include "ohpx/resilience/breaker.hpp"

namespace ohpx::resilience {

CircuitBreaker::Transition CircuitBreaker::allow(bool& admitted) noexcept {
  if (!config_.enabled()) {
    admitted = true;
    return Transition::none;
  }
  const auto state = static_cast<State>(state_.load(std::memory_order_acquire));
  if (state == State::closed) {
    admitted = true;
    return Transition::none;
  }
  if (state == State::open) {
    const std::int64_t opened_at = opened_at_ns_.load(std::memory_order_acquire);
    if (now_ns() - opened_at < config_.cooldown.count()) {
      admitted = false;
      return Transition::none;
    }
    // Cooldown elapsed: exactly one caller wins the probe slot.
    auto expected = static_cast<std::uint8_t>(State::open);
    if (state_.compare_exchange_strong(
            expected, static_cast<std::uint8_t>(State::half_open),
            std::memory_order_acq_rel)) {
      probe_in_flight_.store(true, std::memory_order_release);
      admitted = true;
      return Transition::probing;
    }
    // Someone else transitioned first; fall through to half-open handling.
  }
  // half_open: only the thread that made the transition holds the probe.
  bool expected = false;
  admitted = probe_in_flight_.compare_exchange_strong(
      expected, true, std::memory_order_acq_rel);
  return admitted ? Transition::probing : Transition::none;
}

CircuitBreaker::Transition CircuitBreaker::on_success() noexcept {
  if (!config_.enabled()) return Transition::none;
  consecutive_failures_.store(0, std::memory_order_relaxed);
  const auto state = static_cast<State>(state_.load(std::memory_order_acquire));
  if (state == State::half_open) {
    state_.store(static_cast<std::uint8_t>(State::closed),
                 std::memory_order_release);
    probe_in_flight_.store(false, std::memory_order_release);
    return Transition::closed;
  }
  return Transition::none;
}

CircuitBreaker::Transition CircuitBreaker::on_failure() noexcept {
  if (!config_.enabled()) return Transition::none;
  const auto state = static_cast<State>(state_.load(std::memory_order_acquire));
  if (state == State::half_open) {
    // The probe failed: straight back to open, cooldown restarts.
    opened_at_ns_.store(now_ns(), std::memory_order_release);
    state_.store(static_cast<std::uint8_t>(State::open),
                 std::memory_order_release);
    probe_in_flight_.store(false, std::memory_order_release);
    return Transition::opened;
  }
  const int failures =
      consecutive_failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (state == State::closed && failures >= config_.failure_threshold) {
    opened_at_ns_.store(now_ns(), std::memory_order_release);
    state_.store(static_cast<std::uint8_t>(State::open),
                 std::memory_order_release);
    return Transition::opened;
  }
  return Transition::none;
}

const char* to_string(CircuitBreaker::State state) noexcept {
  switch (state) {
    case CircuitBreaker::State::closed:
      return "closed";
    case CircuitBreaker::State::open:
      return "open";
    case CircuitBreaker::State::half_open:
      return "half_open";
  }
  return "unknown";
}

BreakerSet::BreakerSet(std::size_t entries, const BreakerConfig& config) {
  breakers_.reserve(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    breakers_.push_back(std::make_unique<CircuitBreaker>(config));
  }
}

void BreakerSet::set_trip_hook(TripHook hook) {
  sync::LockGuard lock(hook_mutex_);
  trip_hook_ = std::move(hook);
}

void BreakerSet::notify_trip(std::size_t entry) const {
  TripHook hook;
  {
    sync::LockGuard lock(hook_mutex_);
    hook = trip_hook_;
  }
  if (hook) hook(entry);
}

BreakerRegistry& BreakerRegistry::global() {
  static BreakerRegistry registry;
  return registry;
}

void BreakerRegistry::add(const std::shared_ptr<BreakerSet>& set,
                          std::string label,
                          std::vector<std::string> entries) {
  sync::LockGuard lock(mutex_);
  for (Registration& registration : registrations_) {
    if (registration.label == label) {
      registration.set = set;
      registration.entries = std::move(entries);
      return;
    }
  }
  registrations_.push_back({set, std::move(label), std::move(entries)});
}

void BreakerRegistry::remove(const std::string& label) {
  sync::LockGuard lock(mutex_);
  for (auto it = registrations_.begin(); it != registrations_.end(); ++it) {
    if (it->label == label) {
      registrations_.erase(it);
      return;
    }
  }
}

std::vector<BreakerSetInfo> BreakerRegistry::snapshot() {
  sync::LockGuard lock(mutex_);
  std::vector<BreakerSetInfo> out;
  out.reserve(registrations_.size());
  for (auto it = registrations_.begin(); it != registrations_.end();) {
    if (std::shared_ptr<BreakerSet> live = it->set.lock()) {
      out.push_back({it->label, it->entries, std::move(live)});
      ++it;
    } else {
      it = registrations_.erase(it);  // owner died: prune in passing
    }
  }
  return out;
}

}  // namespace ohpx::resilience
