// Deterministic fault-injection plans for the sim transport.
//
// A FaultSchedule describes, per endpoint, which calls get hurt and how:
// scripted call indices ("drop call 3, corrupt call 7") for precise tests,
// plus seeded rates for chaos soaks — the whole fault sequence is a pure
// function of (schedule, endpoint, call order), so a soak that passes once
// passes forever under the same seed.
//
// The injector only *decides*; applying a fault (throwing a transport
// error, flipping a byte, waiting on the resilience clock) is the
// transport's job, which keeps this module free of transport dependencies.
// Per-endpoint call counts double as the retry-amplification observable:
// attempts-on-the-wire / logical-calls is read straight off the injector.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/resilience/clock.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::resilience {

enum class FaultKind : std::uint8_t {
  none = 0,
  drop,       ///< the roundtrip dies with a transport error
  delay,      ///< the roundtrip waits `delay` on the resilience clock first
  duplicate,  ///< the request is delivered twice (first reply discarded)
  corrupt,    ///< one byte of the reply is flipped
};

const char* to_string(FaultKind kind) noexcept;

struct FaultSchedule {
  /// Probabilistic faults, evaluated from one uniform draw per call in the
  /// order drop, duplicate, corrupt, delay (so rates are exclusive slices,
  /// not independent coins).  All zero = scripted-only schedule.
  double drop_rate = 0.0;
  double duplicate_rate = 0.0;
  double corrupt_rate = 0.0;
  double delay_rate = 0.0;

  /// How long a `delay` fault waits.
  Nanoseconds delay{std::chrono::microseconds(50)};

  /// Seed for this endpoint's fault stream (mixed with the endpoint name,
  /// so distinct endpoints under one plan draw independent streams).
  std::uint64_t seed = 1;

  /// Scripted faults by 0-based call index; they win over the rates for
  /// their call.  Unsorted is fine.
  std::vector<std::pair<std::uint64_t, FaultKind>> scripted;
};

/// What decide() told the transport to do to the current call.
struct FaultDecision {
  FaultKind kind = FaultKind::none;
  Nanoseconds delay{0};
};

/// Process-wide fault plan: endpoint name -> schedule.  Inactive (the
/// default) costs the transport one relaxed load per roundtrip.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Installs/replaces the schedule for `endpoint` and activates the
  /// injector.  Resets that endpoint's call count and fault stream.
  void set_plan(const std::string& endpoint, const FaultSchedule& schedule);

  /// Removes all schedules, zeroes all counts, deactivates.
  void clear();

  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }

  /// Advances `endpoint`'s call counter and returns the fault for this
  /// call.  Endpoints without a schedule are still counted (their calls
  /// feed the amplification observable) but never faulted.
  FaultDecision decide(const std::string& endpoint);

  /// Calls decide()d for `endpoint` since its plan was set (0 if unknown).
  std::uint64_t call_count(const std::string& endpoint) const;

  /// Sum of all per-endpoint call counts.
  std::uint64_t total_calls() const;

 private:
  FaultInjector() = default;

  struct EndpointState {
    FaultSchedule schedule;
    bool scheduled = false;  ///< false for count-only endpoints
    Xoshiro256 rng{0};
    std::uint64_t calls = 0;
  };

  mutable sync::Mutex mutex_{"resilience.fault_plan"};
  std::map<std::string, EndpointState> states_ OHPX_GUARDED_BY(mutex_);
  std::atomic<bool> active_{false};
};

/// RAII plan for tests: installs schedules on construction (via add()),
/// clears the whole injector on destruction.
class ScopedFaultPlan {
 public:
  ScopedFaultPlan() = default;
  ~ScopedFaultPlan() { FaultInjector::instance().clear(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;

  void add(const std::string& endpoint, const FaultSchedule& schedule) {
    FaultInjector::instance().set_plan(endpoint, schedule);
  }
};

}  // namespace ohpx::resilience
