// Injectable monotonic clock for every resilience decision (deadlines,
// backoff waits, breaker cooldowns, injected fault delays).
//
// Production uses the steady clock; tests install a ManualClock so every
// time-dependent failure path — a deadline firing mid-pipeline, a breaker
// cooling down, a scripted transport delay — runs deterministically with
// zero wall-clock waits.  The ohpx-lint `no-test-sleeps` rule enforces
// that tests advance this clock instead of sleeping.
#pragma once

#include <atomic>
#include <cstdint>

#include "ohpx/common/clock.hpp"

namespace ohpx::resilience {

/// A source of monotonic time plus a way to wait on it.  Implementations
/// must be thread-safe: the invocation pipeline reads the clock from any
/// calling thread.
class ClockSource {
 public:
  virtual ~ClockSource() = default;

  /// Monotonic nanoseconds since an arbitrary (per-source) epoch.
  virtual std::int64_t now_ns() noexcept = 0;

  /// Blocks (or pretends to) for `duration`.  After the call, now_ns()
  /// must have advanced by at least `duration`.
  virtual void sleep_for(Nanoseconds duration) = 0;
};

/// Installs `source` as the process-wide resilience clock; returns the
/// previously installed source (nullptr = the built-in steady clock).
/// Pass nullptr to restore the default.  The caller keeps ownership.
ClockSource* install_clock(ClockSource* source) noexcept;

/// Current time on the installed clock (steady_clock when none installed).
std::int64_t now_ns() noexcept;

/// Waits on the installed clock: a real sleep under the default source, a
/// pure virtual-time advance under a ManualClock.
void sleep_for(Nanoseconds duration);

/// Virtual clock for deterministic tests: time only moves when the test
/// advances it (sleep_for advances it too, so retry backoff and injected
/// delays complete instantly while still being observable).
class ManualClock final : public ClockSource {
 public:
  explicit ManualClock(std::int64_t start_ns = 0) noexcept : now_(start_ns) {}

  std::int64_t now_ns() noexcept override {
    return now_.load(std::memory_order_relaxed);
  }

  void sleep_for(Nanoseconds duration) override { advance(duration); }

  void advance(Nanoseconds duration) noexcept {
    now_.fetch_add(duration.count(), std::memory_order_relaxed);
  }

  void set(std::int64_t value_ns) noexcept {
    now_.store(value_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_;
};

/// RAII install of a ManualClock for a test scope; restores the previous
/// source on destruction.
class ScopedManualClock {
 public:
  explicit ScopedManualClock(std::int64_t start_ns = 0) noexcept
      : clock_(start_ns), previous_(install_clock(&clock_)) {}
  ~ScopedManualClock() { install_clock(previous_); }
  ScopedManualClock(const ScopedManualClock&) = delete;
  ScopedManualClock& operator=(const ScopedManualClock&) = delete;

  ManualClock& clock() noexcept { return clock_; }

 private:
  ManualClock clock_;
  ClockSource* previous_;
};

}  // namespace ohpx::resilience
