#include "ohpx/resilience/retry.hpp"

#include <algorithm>

#include "ohpx/sync/mutex.hpp"

namespace ohpx::resilience {
namespace {

std::atomic<std::uint64_t> g_policy_revision{1};

/// Outermost policy scope, under one lock class so the analysis ties the
/// slot to the mutex that guards it.
struct GlobalPolicy {
  sync::Mutex mutex{"resilience.retry_global"};
  RetryPolicy policy OHPX_GUARDED_BY(mutex);
};

GlobalPolicy& global_policy() {
  static GlobalPolicy instance;
  return instance;
}

void bump_revision() noexcept {
  g_policy_revision.fetch_add(1, std::memory_order_release);
}

}  // namespace

// Exhaustive on purpose — no default — so adding an ErrorCode without
// deciding its retry class is a compile warning here and an ohpx-lint
// error (error-consistency rule in tools/ohpx_lint_ast.py).
bool is_retryable(ErrorCode code) noexcept {
  switch (code) {
    // Channel faults: the endpoint may rebind, a breaker may fail over.
    case ErrorCode::transport_closed:
    case ErrorCode::transport_connect_failed:
    case ErrorCode::transport_io:
    case ErrorCode::transport_unknown_endpoint:
    // Window-full refusal: nothing was sent, so a backed-off re-attempt is
    // always safe (and the natural reaction to transient overload).
    case ErrorCode::backpressure:
    // Corruption caught by framing or by a checksum capability: the next
    // send is a fresh frame.
    case ErrorCode::wire_truncated:
    case ErrorCode::wire_bad_checksum:
    case ErrorCode::capability_bad_payload:
    // Migration race: the republish already happened, re-resolve and go.
    case ErrorCode::stale_reference:
      return true;
    // Success needs no retry.
    case ErrorCode::ok:
    // Malformed frames that a re-send would reproduce byte-for-byte.
    case ErrorCode::wire_bad_magic:
    case ErrorCode::wire_bad_version:
    case ErrorCode::wire_overflow:
    case ErrorCode::wire_bad_value:
    // Protocol selection verdicts: deterministic given the same ref.
    case ErrorCode::protocol_unknown:
    case ErrorCode::protocol_not_applicable:
    case ErrorCode::protocol_no_match:
    case ErrorCode::protocol_bad_proto_data:
    // Refusals of authority are answers, not accidents.
    case ErrorCode::capability_denied:
    case ErrorCode::capability_expired:
    case ErrorCode::capability_exhausted:
    case ErrorCode::capability_auth_failed:
    case ErrorCode::capability_unknown:
    // Object-layer misses other than the migration race above.
    case ErrorCode::object_not_found:
    case ErrorCode::method_not_found:
    case ErrorCode::bad_object_ref:
    case ErrorCode::context_not_found:
    case ErrorCode::type_mismatch:
    // Runtime decisions and application-raised errors are final.
    case ErrorCode::migration_failed:
    case ErrorCode::not_migratable:
    case ErrorCode::remote_application_error:
    // The budget is spent; retrying would only overdraw it.
    case ErrorCode::deadline_exceeded:
    case ErrorCode::internal:
      return false;
  }
  return false;  // unreachable for in-range codes
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy) noexcept
    : policy_(policy),
      rng_(policy.seed),
      current_ns_(static_cast<double>(policy.initial_backoff.count())) {}

Nanoseconds BackoffSchedule::next() noexcept {
  const double capped =
      std::min(current_ns_, static_cast<double>(policy_.max_backoff.count()));
  double jittered = capped;
  if (policy_.jitter > 0.0 && capped > 0.0) {
    const double u = rng_.next_double();
    jittered = capped * (1.0 + policy_.jitter * (2.0 * u - 1.0));
  }
  current_ns_ = current_ns_ * policy_.backoff_multiplier;
  return Nanoseconds(static_cast<std::int64_t>(std::max(jittered, 0.0)));
}

std::uint64_t retry_policy_revision() noexcept {
  return g_policy_revision.load(std::memory_order_acquire);
}

void set_global_retry_policy(const RetryPolicy& policy) {
  {
    GlobalPolicy& global = global_policy();
    sync::LockGuard lock(global.mutex);
    global.policy = policy;
  }
  bump_revision();
}

void clear_global_retry_policy() { set_global_retry_policy(RetryPolicy{}); }

void RetryOverride::set(const RetryPolicy& policy) {
  {
    sync::LockGuard lock(mutex_);
    policy_ = policy;
  }
  engaged_.store(true, std::memory_order_release);
  bump_revision();
}

void RetryOverride::clear() {
  engaged_.store(false, std::memory_order_release);
  bump_revision();
}

RetryPolicy RetryOverride::get() const {
  sync::LockGuard lock(mutex_);
  return policy_;
}

RetryPolicy resolve_retry_policy(const RetryOverride& core,
                                 const RetryOverride& context) {
  if (core.overridden()) return core.get();
  if (context.overridden()) return context.get();
  GlobalPolicy& global = global_policy();
  sync::LockGuard lock(global.mutex);
  return global.policy;
}

}  // namespace ohpx::resilience
