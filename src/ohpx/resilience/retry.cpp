#include "ohpx/resilience/retry.hpp"

#include <algorithm>
#include <mutex>

namespace ohpx::resilience {
namespace {

std::atomic<std::uint64_t> g_policy_revision{1};

std::mutex& global_policy_mutex() {
  static std::mutex mutex;
  return mutex;
}

RetryPolicy& global_policy_slot() {
  static RetryPolicy policy;
  return policy;
}

void bump_revision() noexcept {
  g_policy_revision.fetch_add(1, std::memory_order_release);
}

}  // namespace

bool is_retryable(ErrorCode code) noexcept {
  switch (code) {
    // Channel faults: the endpoint may rebind, a breaker may fail over.
    case ErrorCode::transport_closed:
    case ErrorCode::transport_connect_failed:
    case ErrorCode::transport_io:
    case ErrorCode::transport_unknown_endpoint:
    // Corruption caught by framing or by a checksum capability: the next
    // send is a fresh frame.
    case ErrorCode::wire_truncated:
    case ErrorCode::wire_bad_checksum:
    case ErrorCode::capability_bad_payload:
    // Migration race: the republish already happened, re-resolve and go.
    case ErrorCode::stale_reference:
      return true;
    default:
      return false;
  }
}

BackoffSchedule::BackoffSchedule(const RetryPolicy& policy) noexcept
    : policy_(policy),
      rng_(policy.seed),
      current_ns_(static_cast<double>(policy.initial_backoff.count())) {}

Nanoseconds BackoffSchedule::next() noexcept {
  const double capped =
      std::min(current_ns_, static_cast<double>(policy_.max_backoff.count()));
  double jittered = capped;
  if (policy_.jitter > 0.0 && capped > 0.0) {
    const double u = rng_.next_double();
    jittered = capped * (1.0 + policy_.jitter * (2.0 * u - 1.0));
  }
  current_ns_ = current_ns_ * policy_.backoff_multiplier;
  return Nanoseconds(static_cast<std::int64_t>(std::max(jittered, 0.0)));
}

std::uint64_t retry_policy_revision() noexcept {
  return g_policy_revision.load(std::memory_order_acquire);
}

void set_global_retry_policy(const RetryPolicy& policy) {
  {
    std::lock_guard lock(global_policy_mutex());
    global_policy_slot() = policy;
  }
  bump_revision();
}

void clear_global_retry_policy() { set_global_retry_policy(RetryPolicy{}); }

void RetryOverride::set(const RetryPolicy& policy) {
  {
    std::lock_guard lock(mutex_);
    policy_ = policy;
  }
  engaged_.store(true, std::memory_order_release);
  bump_revision();
}

void RetryOverride::clear() {
  engaged_.store(false, std::memory_order_release);
  bump_revision();
}

RetryPolicy RetryOverride::get() const {
  std::lock_guard lock(mutex_);
  return policy_;
}

RetryPolicy resolve_retry_policy(const RetryOverride& core,
                                 const RetryOverride& context) {
  if (core.overridden()) return core.get();
  if (context.overridden()) return context.get();
  std::lock_guard lock(global_policy_mutex());
  return global_policy_slot();
}

}  // namespace ohpx::resilience
