// Per-protocol-entry circuit breakers.
//
// The paper's adaptivity contract — applicability is re-evaluated per
// request, and the first applicable OR-table ∩ pool entry wins — extends
// naturally to faults: a breaker that has *opened* makes its entry
// temporarily inapplicable, so selection fails over to the next entry
// with no special-case code, and a cooldown later the entry gets one
// half-open probe to earn its place back.
//
//   closed     normal service; consecutive failures are counted
//   open       failure_threshold consecutive failures seen; the entry is
//              skipped until `cooldown` elapses on the resilience clock
//   half_open  cooldown elapsed; exactly one probe call is admitted —
//              success closes the breaker, failure re-opens it
//
// Thread-safe; allow()/on_success()/on_failure() are a few atomic ops.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/resilience/clock.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::resilience {

struct BreakerConfig {
  /// Consecutive transport failures that trip the breaker.  0 disables
  /// breaking entirely (the default: plain selection, zero overhead).
  int failure_threshold = 0;

  /// How long a tripped entry stays inapplicable before one half-open
  /// probe is admitted (measured on the resilience clock).
  Nanoseconds cooldown{std::chrono::milliseconds(100)};

  bool enabled() const noexcept { return failure_threshold > 0; }

  friend bool operator==(const BreakerConfig&, const BreakerConfig&) = default;
};

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { closed = 0, open = 1, half_open = 2 };

  /// What an allow()/on_failure() call just did, so the owner can emit
  /// trace events and metrics without the breaker knowing their names.
  enum class Transition : std::uint8_t { none, opened, probing, closed };

  explicit CircuitBreaker(const BreakerConfig& config) noexcept
      : config_(config) {}

  /// May this entry serve a call right now?  Open entries answer no until
  /// the cooldown expires, then admit exactly one probe (half-open).
  /// Returns the transition taken (probing when this call became the
  /// probe).
  Transition allow(bool& admitted) noexcept;

  /// The attempt reached the server and came back (any reply, even an
  /// error reply, proves the channel works).  Closes a half-open breaker.
  Transition on_success() noexcept;

  /// The attempt died in the transport.  Trips the breaker at the
  /// threshold; re-opens a half-open breaker immediately.
  Transition on_failure() noexcept;

  State state() const noexcept {
    return static_cast<State>(state_.load(std::memory_order_acquire));
  }

  const BreakerConfig& config() const noexcept { return config_; }

 private:
  BreakerConfig config_;
  std::atomic<std::uint8_t> state_{static_cast<std::uint8_t>(State::closed)};
  std::atomic<int> consecutive_failures_{0};
  std::atomic<std::int64_t> opened_at_ns_{0};
  std::atomic<bool> probe_in_flight_{false};
};

const char* to_string(CircuitBreaker::State state) noexcept;

/// One breaker per protocol-table entry of a CallCore, parallel to its
/// candidate vector.  Disabled configs produce no breakers at all, so the
/// common path stays a null check.
class BreakerSet {
 public:
  /// Invoked (outside any lock) each time an entry's breaker *opens*, with
  /// the tripped entry index.  Failover layers hook this to re-resolve a
  /// name instead of waiting out cooldowns (naming/failover.hpp).
  using TripHook = std::function<void(std::size_t)>;

  BreakerSet(std::size_t entries, const BreakerConfig& config);

  CircuitBreaker& at(std::size_t index) noexcept { return *breakers_[index]; }
  const CircuitBreaker& at(std::size_t index) const noexcept {
    return *breakers_[index];
  }
  std::size_t size() const noexcept { return breakers_.size(); }

  /// Installs (or clears, with nullptr) the trip hook.  The hook may be
  /// called from any thread that drives calls through the owning CallCore
  /// and must not re-enter the breaker set; installers that capture
  /// `this`-like state must clear the hook before that state dies.
  void set_trip_hook(TripHook hook);

  /// Owner-side notification: called after on_failure()/allow() reported
  /// Transition::opened for `entry`.  Copies the hook out of the lock
  /// before invoking, so a hook can take unrelated locks safely.
  void notify_trip(std::size_t entry) const;

 private:
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  mutable sync::Mutex hook_mutex_{"resilience.breaker_hook"};
  TripHook trip_hook_ OHPX_GUARDED_BY(hook_mutex_);
};

/// One registered breaker set, resolved live at snapshot time.
struct BreakerSetInfo {
  std::string label;                  // owner identity, e.g. "obj/7"
  std::vector<std::string> entries;   // protocol name per breaker entry
  std::shared_ptr<BreakerSet> set;    // pinned for the snapshot's lifetime
};

/// Process-wide directory of live breaker sets, so the introspection plane
/// can dump every breaker's state without the owners knowing about it.
/// Registration is weak: a CallCore that drops its set (or dies) simply
/// vanishes from the next snapshot — no unregister call to forget.
class BreakerRegistry {
 public:
  static BreakerRegistry& global();

  /// Registers a set under `label` with one name per breaker entry
  /// (parallel to BreakerSet indices).  Re-registering the same label
  /// replaces the previous registration (a reconfigured CallCore swaps
  /// its set in place).
  void add(const std::shared_ptr<BreakerSet>& set, std::string label,
           std::vector<std::string> entries);

  /// Removes the registration under `label` (breakers disabled).
  void remove(const std::string& label);

  /// Live sets only, registration order; expired entries are pruned.
  std::vector<BreakerSetInfo> snapshot();

 private:
  struct Registration {
    std::weak_ptr<BreakerSet> set;
    std::string label;
    std::vector<std::string> entries;
  };

  mutable sync::Mutex mutex_{"resilience.breaker_registry"};
  std::vector<Registration> registrations_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::resilience
