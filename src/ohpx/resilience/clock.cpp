#include "ohpx/resilience/clock.hpp"

#include <chrono>
#include <thread>

namespace ohpx::resilience {
namespace {

std::atomic<ClockSource*> g_clock{nullptr};

std::int64_t steady_now_ns() noexcept {
  return std::chrono::duration_cast<Nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

ClockSource* install_clock(ClockSource* source) noexcept {
  return g_clock.exchange(source, std::memory_order_acq_rel);
}

std::int64_t now_ns() noexcept {
  ClockSource* source = g_clock.load(std::memory_order_acquire);
  return source != nullptr ? source->now_ns() : steady_now_ns();
}

void sleep_for(Nanoseconds duration) {
  if (duration.count() <= 0) return;
  ClockSource* source = g_clock.load(std::memory_order_acquire);
  if (source != nullptr) {
    source->sleep_for(duration);
  } else {
    std::this_thread::sleep_for(duration);
  }
}

}  // namespace ohpx::resilience
