// Object migration (paper §4.3): "Open HPC++ provides a facility for
// objects to migrate from one context to another".  Migration is the
// engine behind both the Figure 4 experiment (a server hopping machines
// while its clients adapt protocols per hop) and the load balancer.
//
// Two modes:
//  * migrate_shared — transfers the live servant pointer and its glue
//    bindings to the target context (in-process "pseudo migrate", exactly
//    what the paper's experiment does).
//  * migrate_copy — snapshot()/restore() through the ServantTypeRegistry,
//    exercising the path a cross-process migration would take.  Capability
//    state travels via descriptors (a quota keeps its remaining count, a
//    lease its remaining time).
//
// Ordering guarantees: the object is activated (and its location
// republished) at the target *before* it is deactivated at the source, so
// a concurrent client sees either the old home (which still answers) or
// the new one; the stale-reference retry in CallCore covers the residual
// race.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "ohpx/common/annotations.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

/// type name → default-constructed servant factory, needed by
/// migrate_copy to materialize the target-side instance.
class ServantTypeRegistry {
 public:
  static ServantTypeRegistry& instance();

  void register_type(const std::string& type_name,
                     std::function<orb::ServantPtr()> factory);

  template <typename T>
  void register_type() {
    register_type(std::string(T::kTypeName),
                  [] { return std::make_shared<T>(); });
  }

  bool contains(const std::string& type_name) const;

  /// Throws Error(not_migratable) for unregistered types.
  orb::ServantPtr create(const std::string& type_name) const;

 private:
  ServantTypeRegistry() = default;
  mutable sync::Mutex mutex_{"runtime.servant_types"};
  std::map<std::string, std::function<orb::ServantPtr()>> factories_
      OHPX_GUARDED_BY(mutex_);
};

/// Moves the live servant instance from `from` to `to`.
void migrate_shared(orb::ObjectId object_id, orb::Context& from,
                    orb::Context& to);

/// Snapshot/restore migration through the type registry.
void migrate_copy(orb::ObjectId object_id, orb::Context& from,
                  orb::Context& to);

}  // namespace ohpx::runtime
