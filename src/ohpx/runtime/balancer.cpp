#include "ohpx/runtime/balancer.hpp"

#include <algorithm>

#include "ohpx/common/log.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

LoadBalancer::LoadBalancer(World& world, BalancerPolicy policy)
    : world_(world), policy_(policy) {}

void LoadBalancer::track(orb::ObjectId object_id, double load_share) {
  sync::LockGuard lock(mutex_);
  tracked_[object_id] = load_share;
}

void LoadBalancer::untrack(orb::ObjectId object_id) {
  sync::LockGuard lock(mutex_);
  tracked_.erase(object_id);
}

orb::Context& LoadBalancer::context_on(netsim::MachineId machine) {
  const auto existing = world_.contexts_on(machine);
  if (!existing.empty()) return *existing.front();
  return world_.create_context(machine);
}

std::vector<MigrationEvent> LoadBalancer::rebalance_once() {
  std::vector<MigrationEvent> events;
  netsim::Topology& topology = world_.topology();

  std::map<orb::ObjectId, double> tracked;
  {
    sync::LockGuard lock(mutex_);
    tracked = tracked_;
  }

  for (netsim::MachineId machine = 0; machine < topology.machine_count();
       ++machine) {
    if (topology.load(machine) <= policy_.high_water) continue;

    // Candidate objects on this machine, heaviest first.
    std::vector<std::pair<orb::ObjectId, double>> candidates;
    for (const auto& [object_id, share] : tracked) {
      orb::Context* home = world_.find_context_of(object_id);
      if (home != nullptr && home->machine() == machine) {
        candidates.emplace_back(object_id, share);
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    for (const auto& [object_id, share] : candidates) {
      if (topology.load(machine) <= policy_.target_water) break;
      if (events.size() >= policy_.max_migrations_per_round) break;

      const netsim::MachineId destination = topology.least_loaded();
      if (destination == machine) break;  // nowhere better to go

      orb::Context* source = world_.find_context_of(object_id);
      if (source == nullptr) continue;
      orb::Context& target = context_on(destination);

      try {
        migrate_shared(object_id, *source, target);
      } catch (const Error& e) {
        log_warn("balancer", "skipping object ", object_id, ": ", e.what());
        continue;
      }
      topology.add_load(machine, -share);
      topology.add_load(destination, share);
      events.push_back(MigrationEvent{object_id, machine, destination, share});
    }
  }
  return events;
}

}  // namespace ohpx::runtime
