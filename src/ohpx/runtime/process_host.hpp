// ProcessHost: boots one or more contexts in a standalone OS process from
// a small config — the piece that lets a logical World span processes and
// machines (ROADMAP item: multi-process deployment).
//
// Each ProcessHost owns a private runtime::World (one machine named by the
// config), opens a real accepting TCP listener per context, and — when a
// name-service bootstrap URI is configured — keeps every advertise()d
// object registered at the ohpx-named daemon with lease heartbeats: bind
// as a replica, renew every `heartbeat_interval`, re-register automatically
// when the daemon restarts.  Clean shutdown withdraws the registrations.
//
//   ProcessHostConfig cfg;
//   cfg.machine_name = "srv-a";
//   cfg.listen_host = "0.0.0.0"; cfg.listen_port = 7410;
//   cfg.named_uri = "10.0.0.5:7400";
//   runtime::ProcessHost host(cfg);
//   auto ref = orb::RefBuilder(host.context(), servant).tcp().build();
//   host.advertise("svc/echo", ref);     // replica of svc/echo, kept alive
//
// tools/ohpx_hostd.cpp is the config-file/argv front end of this class.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/naming/name_client.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

struct ProcessHostConfig {
  /// Topology name of this process's machine (and its LAN, "<name>-lan").
  std::string machine_name = "host";

  /// Listener coordinates for context 0; further contexts bind ephemeral
  /// ports on the same host.  Port 0 = ephemeral; host "0.0.0.0" = all
  /// interfaces.
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;

  /// Hostname minted into ORs (defaults to listen_host; required for
  /// wildcard binds that should advertise a routable name).
  std::string advertise_host;

  /// Bootstrap URI of the name service ("host:port" or a reference file;
  /// naming/bootstrap.hpp).  Empty = no directory, advertise() throws.
  std::string named_uri;

  /// Contexts to boot (each a listener of its own).
  std::size_t contexts = 1;

  /// Lease cadence: registrations carry `replica_ttl`, renewed every
  /// `heartbeat_interval`.  The gap between the two is the failover
  /// detection budget when a process dies without reporting.
  std::chrono::milliseconds heartbeat_interval{500};
  std::chrono::milliseconds replica_ttl{2000};

  /// Parses "key = value" lines (#-comments, blank lines ignored).  Keys:
  /// machine, listen (host:port), advertise, named, contexts,
  /// heartbeat_ms, ttl_ms.  Throws ObjectError(bad_object_ref) on
  /// unreadable files or unknown keys.
  static ProcessHostConfig from_file(const std::string& path);

  /// Parses command-line flags (--machine, --listen host:port, --advertise,
  /// --named URI, --contexts N, --heartbeat-ms N, --ttl-ms N, --config
  /// FILE as the base).  Throws on unknown flags.
  static ProcessHostConfig from_args(int argc, const char* const* argv);
};

class ProcessHost {
 public:
  explicit ProcessHost(ProcessHostConfig config);
  ~ProcessHost();

  ProcessHost(const ProcessHost&) = delete;
  ProcessHost& operator=(const ProcessHost&) = delete;

  World& world() noexcept { return world_; }
  const ProcessHostConfig& config() const noexcept { return config_; }

  std::size_t context_count() const noexcept { return contexts_.size(); }
  orb::Context& context(std::size_t index = 0) { return *contexts_.at(index); }

  /// The port context 0 actually bound (resolves ephemeral requests).
  std::uint16_t port() const;

  bool has_names() const noexcept { return names_ != nullptr; }

  /// The directory client; throws ObjectError(bad_object_ref) when the
  /// config named no directory.
  naming::NameClient& names();

  /// Registers `ref` as a replica of `name` at the directory and keeps
  /// the registration alive (heartbeat thread, started lazily).  Returns
  /// the replica id.
  std::uint64_t advertise(const std::string& name, const orb::ObjectRef& ref);

  /// Withdraws one advertise()d registration (clean shutdown; the dtor
  /// withdraws everything left).
  void withdraw(const std::string& name, std::uint64_t replica_id);

 private:
  struct Advertised {
    std::string name;
    std::uint64_t replica_id = 0;
    Bytes ref;  // serialized, for re-registration after a daemon restart
  };

  void heartbeat_loop();
  void ensure_heartbeat_thread_locked() OHPX_REQUIRES(mutex_);

  ProcessHostConfig config_;
  World world_;
  std::vector<orb::Context*> contexts_;
  std::unique_ptr<naming::NameClient> names_;

  mutable sync::Mutex mutex_{"runtime.process_host"};
  std::vector<Advertised> advertised_ OHPX_GUARDED_BY(mutex_);
  bool stopping_ OHPX_GUARDED_BY(mutex_) = false;
  bool heartbeat_running_ OHPX_GUARDED_BY(mutex_) = false;
  std::condition_variable stop_cv_;
  std::thread heartbeat_thread_;
};

}  // namespace ohpx::runtime
