#include "ohpx/runtime/process_host.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "ohpx/common/error.hpp"

namespace ohpx::runtime {
namespace {

std::string trim(const std::string& text) {
  const auto begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

std::uint64_t parse_number(const std::string& value, const std::string& what) {
  try {
    const long long parsed = std::stoll(value);
    if (parsed < 0) throw std::out_of_range("negative");
    return static_cast<std::uint64_t>(parsed);
  } catch (const std::exception&) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "process-host config: bad number for " + what + ": '" +
                          value + "'");
  }
}

/// "host:port" → pair; a bare ":port" keeps the default host.
void parse_listen(const std::string& value, ProcessHostConfig& config) {
  const auto colon = value.rfind(':');
  if (colon == std::string::npos) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "process-host config: listen wants host:port, got '" +
                          value + "'");
  }
  if (colon > 0) config.listen_host = value.substr(0, colon);
  const std::uint64_t port =
      parse_number(value.substr(colon + 1), "listen port");
  if (port > 65535) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "process-host config: listen port out of range");
  }
  config.listen_port = static_cast<std::uint16_t>(port);
}

void apply_key(const std::string& key, const std::string& value,
               ProcessHostConfig& config) {
  if (key == "machine") {
    config.machine_name = value;
  } else if (key == "listen") {
    parse_listen(value, config);
  } else if (key == "advertise") {
    config.advertise_host = value;
  } else if (key == "named") {
    config.named_uri = value;
  } else if (key == "contexts") {
    config.contexts = static_cast<std::size_t>(parse_number(value, key));
  } else if (key == "heartbeat_ms") {
    config.heartbeat_interval =
        std::chrono::milliseconds(parse_number(value, key));
  } else if (key == "ttl_ms") {
    config.replica_ttl = std::chrono::milliseconds(parse_number(value, key));
  } else {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "process-host config: unknown key '" + key + "'");
  }
}

}  // namespace

ProcessHostConfig ProcessHostConfig::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot read process-host config '" + path + "'");
  }
  ProcessHostConfig config;
  std::string line;
  while (std::getline(in, line)) {
    const std::string text = trim(line);
    if (text.empty() || text[0] == '#') continue;
    const auto eq = text.find('=');
    if (eq == std::string::npos) {
      throw ObjectError(ErrorCode::bad_object_ref,
                        "process-host config: expected key = value, got '" +
                            text + "'");
    }
    apply_key(trim(text.substr(0, eq)), trim(text.substr(eq + 1)), config);
  }
  return config;
}

ProcessHostConfig ProcessHostConfig::from_args(int argc,
                                               const char* const* argv) {
  ProcessHostConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value_of = [&]() -> std::string {
      if (i + 1 >= argc) {
        throw ObjectError(ErrorCode::bad_object_ref,
                          "process-host flag " + flag + " wants a value");
      }
      return argv[++i];
    };
    if (flag == "--config") {
      // The file is the base; later flags override it.
      config = from_file(value_of());
    } else if (flag == "--machine") {
      config.machine_name = value_of();
    } else if (flag == "--listen") {
      parse_listen(value_of(), config);
    } else if (flag == "--advertise") {
      config.advertise_host = value_of();
    } else if (flag == "--named") {
      config.named_uri = value_of();
    } else if (flag == "--contexts") {
      config.contexts =
          static_cast<std::size_t>(parse_number(value_of(), "contexts"));
    } else if (flag == "--heartbeat-ms") {
      config.heartbeat_interval =
          std::chrono::milliseconds(parse_number(value_of(), "heartbeat-ms"));
    } else if (flag == "--ttl-ms") {
      config.replica_ttl =
          std::chrono::milliseconds(parse_number(value_of(), "ttl-ms"));
    } else {
      throw ObjectError(ErrorCode::bad_object_ref,
                        "unknown process-host flag '" + flag + "'");
    }
  }
  return config;
}

ProcessHost::ProcessHost(ProcessHostConfig config)
    : config_(std::move(config)) {
  if (config_.contexts == 0) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "process-host config: contexts must be >= 1");
  }
  const netsim::LanId lan = world_.add_lan(config_.machine_name + "-lan");
  const netsim::MachineId machine =
      world_.add_machine(config_.machine_name, lan);
  contexts_.reserve(config_.contexts);
  for (std::size_t i = 0; i < config_.contexts; ++i) {
    orb::Context& context = world_.create_context(machine);
    // Context 0 takes the configured port; the rest bind ephemeral ports
    // on the same interface so each has its own accepting listener.
    context.enable_tcp(config_.listen_host,
                       i == 0 ? config_.listen_port : std::uint16_t{0},
                       config_.advertise_host);
    contexts_.push_back(&context);
  }
  if (!config_.named_uri.empty()) {
    names_ = std::make_unique<naming::NameClient>(*contexts_.front(),
                                                  config_.named_uri);
  }
}

ProcessHost::~ProcessHost() {
  std::vector<Advertised> to_withdraw;
  {
    sync::UniqueLock lock(mutex_);
    stopping_ = true;
    to_withdraw = std::move(advertised_);
    advertised_.clear();
  }
  stop_cv_.notify_all();
  if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  for (const Advertised& entry : to_withdraw) {
    try {
      names_->unbind_replica(entry.name, entry.replica_id);
    } catch (const Error&) {
      // Best effort: the daemon may already be gone; the lease will lapse.
    }
  }
}

std::uint16_t ProcessHost::port() const {
  return contexts_.front()->current_address().tcp_port;
}

naming::NameClient& ProcessHost::names() {
  if (!names_) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "process host has no name service configured");
  }
  return *names_;
}

std::uint64_t ProcessHost::advertise(const std::string& name,
                                     const orb::ObjectRef& ref) {
  const std::uint64_t replica_id =
      names().bind_replica(name, ref, config_.replica_ttl);
  sync::LockGuard lock(mutex_);
  advertised_.push_back(Advertised{name, replica_id, ref.to_bytes()});
  ensure_heartbeat_thread_locked();
  return replica_id;
}

void ProcessHost::withdraw(const std::string& name, std::uint64_t replica_id) {
  {
    sync::LockGuard lock(mutex_);
    advertised_.erase(
        std::remove_if(advertised_.begin(), advertised_.end(),
                       [&](const Advertised& entry) {
                         return entry.name == name &&
                                entry.replica_id == replica_id;
                       }),
        advertised_.end());
  }
  names().unbind_replica(name, replica_id);
}

void ProcessHost::ensure_heartbeat_thread_locked() {
  if (heartbeat_running_ || stopping_) return;
  heartbeat_running_ = true;
  heartbeat_thread_ = std::thread([this] { heartbeat_loop(); });
}

void ProcessHost::heartbeat_loop() {
  while (true) {
    std::vector<Advertised> snapshot;
    {
      sync::UniqueLock lock(mutex_);
      const auto deadline =
          std::chrono::steady_clock::now() + config_.heartbeat_interval;
      while (!stopping_) {
        if (stop_cv_.wait_until(lock.native(), deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      if (stopping_) return;
      snapshot = advertised_;
    }
    for (Advertised& entry : snapshot) {
      try {
        if (!names_->heartbeat(entry.name, entry.replica_id,
                               config_.replica_ttl)) {
          // Registration gone (daemon restarted or lease lapsed during a
          // partition): re-register under a fresh replica id.
          const std::uint64_t fresh = names_->bind_replica(
              entry.name, orb::ObjectRef::from_bytes(entry.ref),
              config_.replica_ttl);
          sync::LockGuard lock(mutex_);
          for (Advertised& live : advertised_) {
            if (live.name == entry.name &&
                live.replica_id == entry.replica_id) {
              live.replica_id = fresh;
            }
          }
        }
      } catch (const Error&) {
        // Directory unreachable: keep beating; leases are renewed again
        // as soon as it comes back (or re-registered via the false path).
      }
    }
  }
}

}  // namespace ohpx::runtime
