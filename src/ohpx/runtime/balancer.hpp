// High-water-mark load balancer (paper §4.3: "the load on the server's
// machine increases beyond a high-water mark and the application decides to
// migrate S0 to a machine residing on the LAN of client P2").
//
// The balancer watches the topology's per-machine load figures, and when a
// machine exceeds the high-water mark it migrates registered objects (by
// descending load contribution) to the least-loaded machine until the
// source drops below the mark.  Migration re-homes glue bindings, so the
// capability/protocol choice of every client adapts on the next call —
// the paper's central claim about capabilities + load balancing working in
// tandem.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

struct BalancerPolicy {
  double high_water = 0.75;  // migrate objects off machines above this
  double target_water = 0.50;  // stop once the source is at/below this
  std::size_t max_migrations_per_round = 8;
};

struct MigrationEvent {
  orb::ObjectId object_id = orb::kInvalidObject;
  netsim::MachineId from_machine = netsim::kInvalidMachine;
  netsim::MachineId to_machine = netsim::kInvalidMachine;
  double load_moved = 0.0;
};

class LoadBalancer {
 public:
  explicit LoadBalancer(World& world, BalancerPolicy policy = {});

  /// Registers an object as balanceable with its estimated load share.
  void track(orb::ObjectId object_id, double load_share);
  void untrack(orb::ObjectId object_id);

  /// One balancing pass; returns the migrations performed.  Machine loads
  /// in the topology are adjusted by each moved object's share.
  std::vector<MigrationEvent> rebalance_once();

  const BalancerPolicy& policy() const noexcept { return policy_; }

 private:
  /// A context on `machine` to migrate into (first existing, else created).
  orb::Context& context_on(netsim::MachineId machine);

  World& world_;
  BalancerPolicy policy_;
  sync::Mutex mutex_{"runtime.balancer"};
  std::map<orb::ObjectId, double> tracked_ OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::runtime
