#include "ohpx/runtime/migration.hpp"

#include "ohpx/capability/registry.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {
namespace {

orb::ServantPtr take_servant(orb::ObjectId object_id, orb::Context& from) {
  orb::ServantPtr servant = from.find_servant(object_id);
  if (!servant) {
    throw ObjectError(ErrorCode::object_not_found,
                      "migrate: object " + std::to_string(object_id) +
                          " is not hosted in context " +
                          std::to_string(from.id()));
  }
  if (!servant->migratable()) {
    throw Error(ErrorCode::not_migratable,
                "migrate: servant type '" + std::string(servant->type_name()) +
                    "' is not migratable");
  }
  return servant;
}

/// Re-homes every glue binding of `object_id` onto `to`, preserving glue
/// ids (clients keep using the ids baked into their ORs).  Capability
/// state crosses via descriptors: remaining quota, remaining lease time.
void move_glue_bindings(orb::ObjectId object_id, orb::Context& from,
                        orb::Context& to) {
  for (const auto& binding : from.glue_bindings_of(object_id)) {
    cap::CapabilityChain chain =
        cap::CapabilityRegistry::instance().instantiate_chain(
            binding->chain.server_descriptors());
    to.register_glue_with_id(binding->glue_id, object_id, std::move(chain));
  }
  from.remove_glue_of(object_id);
}

void finish_migration(orb::ObjectId object_id, orb::Context& from,
                      orb::Context& to, orb::ServantPtr servant) {
  move_glue_bindings(object_id, from, to);
  // Target first (publishes the new location), then source teardown — a
  // concurrent request always finds a live home.
  to.activate_with_id(object_id, std::move(servant));
  from.deactivate(object_id, /*forget_location=*/false);
  log_info("migration", "object ", object_id, " moved ctx ", from.id(), " -> ",
           to.id(), " (machine ", to.topology().machine_name(to.machine()),
           ")");
}

}  // namespace

ServantTypeRegistry& ServantTypeRegistry::instance() {
  static ServantTypeRegistry registry;
  return registry;
}

void ServantTypeRegistry::register_type(
    const std::string& type_name, std::function<orb::ServantPtr()> factory) {
  sync::LockGuard lock(mutex_);
  factories_[type_name] = std::move(factory);
}

bool ServantTypeRegistry::contains(const std::string& type_name) const {
  sync::LockGuard lock(mutex_);
  return factories_.contains(type_name);
}

orb::ServantPtr ServantTypeRegistry::create(const std::string& type_name) const {
  std::function<orb::ServantPtr()> factory;
  {
    sync::LockGuard lock(mutex_);
    const auto it = factories_.find(type_name);
    if (it == factories_.end()) {
      throw Error(ErrorCode::not_migratable,
                  "no servant factory registered for type '" + type_name + "'");
    }
    factory = it->second;
  }
  return factory();
}

void migrate_shared(orb::ObjectId object_id, orb::Context& from,
                    orb::Context& to) {
  orb::ServantPtr servant = take_servant(object_id, from);
  finish_migration(object_id, from, to, std::move(servant));
}

void migrate_copy(orb::ObjectId object_id, orb::Context& from,
                  orb::Context& to) {
  orb::ServantPtr source = take_servant(object_id, from);
  orb::ServantPtr target =
      ServantTypeRegistry::instance().create(std::string(source->type_name()));
  target->restore(source->snapshot());
  finish_migration(object_id, from, to, std::move(target));
}

}  // namespace ohpx::runtime
