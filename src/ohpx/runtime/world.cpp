#include "ohpx/runtime/world.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

orb::Context& World::create_context(netsim::MachineId machine) {
  auto context = std::make_unique<orb::Context>(
      orb::Context::allocate_id(), machine, topology_, location_);
  sync::LockGuard lock(mutex_);
  contexts_.push_back(std::move(context));
  return *contexts_.back();
}

std::size_t World::context_count() const {
  sync::LockGuard lock(mutex_);
  return contexts_.size();
}

orb::Context& World::context(orb::ContextId id) {
  sync::LockGuard lock(mutex_);
  for (const auto& context : contexts_) {
    if (context->id() == id) return *context;
  }
  throw ObjectError(ErrorCode::context_not_found,
                    "no context with id " + std::to_string(id));
}

std::vector<orb::Context*> World::contexts_on(netsim::MachineId machine) {
  sync::LockGuard lock(mutex_);
  std::vector<orb::Context*> out;
  for (const auto& context : contexts_) {
    if (context->machine() == machine) out.push_back(context.get());
  }
  return out;
}

orb::Context* World::find_context_of(orb::ObjectId object_id) {
  sync::LockGuard lock(mutex_);
  for (const auto& context : contexts_) {
    if (context->hosts(object_id)) return context.get();
  }
  return nullptr;
}

}  // namespace ohpx::runtime
