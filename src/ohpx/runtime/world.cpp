#include "ohpx/runtime/world.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

orb::Context& World::create_context(netsim::MachineId machine) {
  auto context = std::make_unique<orb::Context>(
      orb::Context::allocate_id(), machine, topology_, location_);
  sync::LockGuard lock(mutex_);
  contexts_.push_back(std::move(context));
  orb::Context* created = contexts_.back().get();
  contexts_by_id_.emplace(created->id(), created);
  return *created;
}

std::size_t World::context_count() const {
  sync::LockGuard lock(mutex_);
  return contexts_.size();
}

orb::Context& World::context(orb::ContextId id) {
  sync::LockGuard lock(mutex_);
  const auto it = contexts_by_id_.find(id);
  if (it == contexts_by_id_.end()) {
    throw ObjectError(ErrorCode::context_not_found,
                      "no context with id " + std::to_string(id));
  }
  return *it->second;
}

std::vector<orb::Context*> World::contexts_on(netsim::MachineId machine) {
  sync::LockGuard lock(mutex_);
  std::vector<orb::Context*> out;
  for (const auto& context : contexts_) {
    if (context->machine() == machine) out.push_back(context.get());
  }
  return out;
}

orb::Context* World::find_context_of(orb::ObjectId object_id) {
  // Fast path: the location service already maps object → context id (it
  // is the source of truth the ORB routes by), so hosting lookups are an
  // index probe, not a scan over every context's servant table.
  const auto address = location_.resolve(object_id);
  sync::LockGuard lock(mutex_);
  if (address) {
    const auto it = contexts_by_id_.find(address->context_id);
    if (it != contexts_by_id_.end() && it->second->hosts(object_id)) {
      return it->second;
    }
  }
  // Slow path: activated-but-republished-elsewhere or never-published
  // objects (migration windows, location entries kept past deactivate).
  for (const auto& context : contexts_) {
    if (context->hosts(object_id)) return context.get();
  }
  return nullptr;
}

}  // namespace ohpx::runtime
