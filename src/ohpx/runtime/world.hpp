// World: composition root for one Open HPC++ "universe" — the topology,
// the location service, and the contexts living on its machines.  A World
// is what an application (or a test/benchmark) builds first; everything
// else hangs off it.
//
// One process can host several independent Worlds (tests do), because all
// cross-context traffic is addressed through per-context endpoints rather
// than globals.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/netsim/topology.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/orb/location.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::runtime {

class World {
 public:
  World() = default;
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  netsim::Topology& topology() noexcept { return topology_; }
  orb::LocationService& location() noexcept { return location_; }

  netsim::LanId add_lan(const std::string& name) {
    return topology_.add_lan(name);
  }
  netsim::MachineId add_machine(const std::string& name, netsim::LanId lan) {
    return topology_.add_machine(name, lan);
  }

  /// Creates a context on `machine`; the World owns it.
  orb::Context& create_context(netsim::MachineId machine);

  std::size_t context_count() const;

  /// Context by id; throws ObjectError(context_not_found).
  orb::Context& context(orb::ContextId id);

  /// Contexts placed on `machine` (pointers remain owned by the World).
  std::vector<orb::Context*> contexts_on(netsim::MachineId machine);

  /// The context currently hosting `object_id`, or nullptr.  O(1)-ish:
  /// resolves the object's context id through the location service and
  /// probes the context index; only unpublished objects (migration
  /// windows) fall back to scanning.
  orb::Context* find_context_of(orb::ObjectId object_id);

 private:
  netsim::Topology topology_;
  orb::LocationService location_;
  mutable sync::Mutex mutex_{"runtime.world"};
  std::vector<std::unique_ptr<orb::Context>> contexts_ OHPX_GUARDED_BY(mutex_);
  std::unordered_map<orb::ContextId, orb::Context*> contexts_by_id_
      OHPX_GUARDED_BY(mutex_);
};

}  // namespace ohpx::runtime
