#include "ohpx/orb/object_ref.hpp"

#include "ohpx/common/error.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::orb {

void serialize_address(wire::Encoder& enc, const proto::ServerAddress& address) {
  enc.put_u32(address.context_id);
  enc.put_u32(address.machine);
  enc.put_string(address.endpoint);
  enc.put_string(address.tcp_host);
  enc.put_u16(address.tcp_port);
  enc.put_u64(address.epoch);
}

proto::ServerAddress deserialize_address(wire::Decoder& dec) {
  proto::ServerAddress address;
  address.context_id = dec.get_u32();
  address.machine = dec.get_u32();
  address.endpoint = dec.get_string();
  address.tcp_host = dec.get_string();
  address.tcp_port = dec.get_u16();
  address.epoch = dec.get_u64();
  return address;
}

void ObjectRef::wire_serialize(wire::Encoder& enc) const {
  enc.put_u64(object_id_);
  enc.put_string(type_name_);
  serialize_address(enc, home_);
  table_.wire_serialize(enc);
}

ObjectRef ObjectRef::wire_deserialize(wire::Decoder& dec) {
  ObjectRef ref;
  ref.object_id_ = dec.get_u64();
  ref.type_name_ = dec.get_string();
  ref.home_ = deserialize_address(dec);
  ref.table_ = proto::ProtoTable::wire_deserialize(dec);
  return ref;
}

Bytes ObjectRef::to_bytes() const {
  wire::Buffer buf;
  wire::Encoder enc(buf);
  wire_serialize(enc);
  return buf.release();
}

ObjectRef ObjectRef::from_bytes(BytesView raw) {
  wire::Decoder dec(raw);
  ObjectRef ref = wire_deserialize(dec);
  dec.expect_end();
  if (!ref.valid()) {
    throw ObjectError(ErrorCode::bad_object_ref, "deserialized invalid OR");
  }
  return ref;
}

}  // namespace ohpx::orb
