// Global Pointer (paper §2): "a generalization of the C pointer type to
// support pointers to objects residing in remote contexts...  closely
// linked to the idea of a remote object reference that acts as a proxy for
// a remote object."
//
// GlobalPointer<StubT> binds an ObjectRef inside a client context and
// exposes StubT's methods through operator->.  It is copyable, serializable
// (via the OR), and re-bindable in another context — passing a GP to a peer
// passes the capabilities embedded in its OR with it.
#pragma once

#include <concepts>
#include <string_view>

#include "ohpx/orb/stub.hpp"

namespace ohpx::orb {

template <typename StubT>
concept TypedStub = std::derived_from<StubT, ObjectStub> && requires {
  { StubT::kTypeName } -> std::convertible_to<std::string_view>;
};

template <TypedStub StubT>
class GlobalPointer {
 public:
  GlobalPointer() = default;

  /// Binds `ref` in `context`; throws ObjectError(type_mismatch) when the
  /// reference was minted for a different interface.
  GlobalPointer(Context& context, ObjectRef ref) {
    if (ref.type_name() != StubT::kTypeName) {
      throw ObjectError(ErrorCode::type_mismatch,
                        "reference is for type '" + ref.type_name() +
                            "', expected '" + std::string(StubT::kTypeName) +
                            "'");
    }
    stub_ = StubT(context, std::move(ref));
  }

  bool bound() const noexcept { return stub_.bound(); }
  explicit operator bool() const noexcept { return bound(); }

  StubT* operator->() { return &stub_; }
  const StubT* operator->() const { return &stub_; }
  StubT& stub() { return stub_; }
  const StubT& stub() const { return stub_; }

  const ObjectRef& ref() const { return stub_.ref(); }

  /// Serializes the underlying OR — the unit of exchange between contexts.
  Bytes to_bytes() const { return ref().to_bytes(); }

  /// Rebinds a serialized reference in (possibly another) context.
  static GlobalPointer from_bytes(Context& context, BytesView raw) {
    return GlobalPointer(context, ObjectRef::from_bytes(raw));
  }

 private:
  StubT stub_;
};

}  // namespace ohpx::orb
