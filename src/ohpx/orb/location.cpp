#include "ohpx/orb/location.hpp"

#include "ohpx/sync/mutex.hpp"

namespace ohpx::orb {

void LocationService::publish(ObjectId object_id,
                              proto::ServerAddress address) {
  sync::LockGuard lock(mutex_);
  const auto it = addresses_.find(object_id);
  address.epoch = (it == addresses_.end()) ? 1 : it->second.epoch + 1;
  addresses_[object_id] = std::move(address);
  version_.fetch_add(1, std::memory_order_release);
}

std::optional<proto::ServerAddress> LocationService::resolve(
    ObjectId object_id) const {
  sync::LockGuard lock(mutex_);
  const auto it = addresses_.find(object_id);
  if (it == addresses_.end()) return std::nullopt;
  return it->second;
}

void LocationService::remove(ObjectId object_id) {
  sync::LockGuard lock(mutex_);
  if (addresses_.erase(object_id) != 0) {
    version_.fetch_add(1, std::memory_order_release);
  }
}

std::uint64_t LocationService::epoch_of(ObjectId object_id) const {
  sync::LockGuard lock(mutex_);
  const auto it = addresses_.find(object_id);
  return it == addresses_.end() ? 0 : it->second.epoch;
}

std::size_t LocationService::size() const {
  sync::LockGuard lock(mutex_);
  return addresses_.size();
}

}  // namespace ohpx::orb
