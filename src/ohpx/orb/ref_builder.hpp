// Fluent builder for object references.
//
// The builder is where a server decides, per reference, which protocols a
// client may use and which capabilities guard them — the paper's central
// policy knob ("a server resource may want to provide different kinds of
// accesses for different clients", §1):
//
//   auto ref = RefBuilder(ctx, servant)
//                  .glue({auth, quota}, "nexus-tcp")  // preferred
//                  .shm()
//                  .nexus()                           // fallback
//                  .build();
//
// Capability instances passed to glue() become the *server-side* chain
// (the paper's glue class GC, which "has its own copies of the
// capabilities"); their descriptors travel in the OR and are re-
// instantiated as the client-side copies.
#pragma once

#include <vector>

#include "ohpx/capability/capability.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/orb/object_ref.hpp"

namespace ohpx::orb {

class RefBuilder {
 public:
  /// Builder for a servant not yet activated (build() activates it).
  RefBuilder(Context& context, ServantPtr servant);

  /// Builder for an already-activated object (mint another OR with a
  /// different protocol table / capability set for a different client).
  RefBuilder(Context& context, ObjectId object_id);

  /// Appends a glue protocol entry wrapping `delegate` with `capabilities`
  /// (chain order = vector order).
  RefBuilder& glue(std::vector<cap::CapabilityPtr> capabilities,
                   const std::string& delegate = "nexus-tcp");

  /// Appends the shared-memory protocol (same-machine only).
  RefBuilder& shm();

  /// Appends the real-socket TCP protocol (requires ctx.enable_tcp()).
  RefBuilder& tcp();

  /// Appends the simulated-network "nexus-tcp" protocol.
  RefBuilder& nexus();

  /// Appends an arbitrary (custom) protocol entry.
  RefBuilder& custom(proto::ProtocolEntry entry);

  /// Activates the servant if needed and mints the OR.  With no protocol
  /// calls, the default table is [shm, nexus-tcp] (+tcp when enabled).
  ObjectRef build();

 private:
  void ensure_activated();

  Context& context_;
  ServantPtr servant_;           // null when building for an existing object
  ObjectId object_id_ = kInvalidObject;
  std::string type_name_;
  proto::ProtoTable table_;
};

}  // namespace ohpx::orb
