// Location service: the live object_id → address map that supersedes the
// (immutable) home address baked into each OR.  Migration republishes an
// object under its new context and bumps the per-object epoch; global
// pointers resolve through here on every call, which is what lets a GP
// adapt its protocol choice the moment its server object moves (paper §4.3
// and the Figure 4 experiment).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>

#include "ohpx/common/annotations.hpp"
#include "ohpx/protocol/target.hpp"
#include "ohpx/sync/mutex.hpp"

namespace ohpx::orb {

using ObjectId = std::uint64_t;

class LocationService {
 public:
  /// Publishes (or republishes) an object's current address.  The stored
  /// epoch increments on every republish.
  void publish(ObjectId object_id, proto::ServerAddress address);

  /// Current address, or nullopt for unknown objects.
  std::optional<proto::ServerAddress> resolve(ObjectId object_id) const;

  /// Forgets an object (destroyed, not migrated).
  void remove(ObjectId object_id);

  /// Per-object epoch; 0 if unknown.  Cheap staleness probe for caches.
  std::uint64_t epoch_of(ObjectId object_id) const;

  /// Service-wide edit counter: bumped by every publish/remove of *any*
  /// object.  A single atomic load, so per-call cache probes pay nothing
  /// while the world is quiet; when it has moved, callers fall back to
  /// the precise per-object epoch_of() to see whether *their* object was
  /// the one that changed.
  std::uint64_t version() const noexcept {
    return version_.load(std::memory_order_acquire);
  }

  std::size_t size() const;

 private:
  mutable sync::Mutex mutex_{"orb.location"};
  std::map<ObjectId, proto::ServerAddress> addresses_ OHPX_GUARDED_BY(mutex_);
  std::atomic<std::uint64_t> version_{1};
};

}  // namespace ohpx::orb
