// Declarative servant dispatch: bind method ids to member functions once,
// and let the table do the unmarshal / invoke / marshal dance — the moral
// equivalent of an IDL-generated skeleton, without a generator.
//
//   class Calc final : public orb::Servant {
//    public:
//     static constexpr std::string_view kTypeName = "Calc";
//     enum Method : std::uint32_t { kAdd = 1, kNeg = 2 };
//
//     std::int64_t add(std::int64_t a, std::int64_t b) { return a + b; }
//     std::int64_t neg(std::int64_t a) { return -a; }
//
//     std::string_view type_name() const noexcept override { return kTypeName; }
//     void dispatch(std::uint32_t m, wire::Decoder& in,
//                   wire::Encoder& out) override {
//       static const auto kTable = orb::MethodTable<Calc>{}
//                                      .bind(kAdd, &Calc::add)
//                                      .bind(kNeg, &Calc::neg);
//       kTable.dispatch(*this, m, in, out);
//     }
//   };
//
// Arguments are decoded in declaration order; void results marshal
// nothing.  Unknown ids raise the canonical method_not_found error.
#pragma once

#include <functional>
#include <map>
#include <tuple>

#include "ohpx/orb/servant.hpp"

namespace ohpx::orb {

template <typename Impl>
class MethodTable {
 public:
  using Thunk = std::function<void(Impl&, wire::Decoder&, wire::Encoder&)>;

  /// Binds `method_id` to a member function; arguments are unmarshalled
  /// by value in order, the result (if non-void) is marshalled back.
  template <typename Ret, typename... Args>
  MethodTable&& bind(std::uint32_t method_id, Ret (Impl::*fn)(Args...)) && {
    thunks_[method_id] = make_thunk<Ret, Args...>(fn);
    return std::move(*this);
  }

  /// Const-member overload.
  template <typename Ret, typename... Args>
  MethodTable&& bind(std::uint32_t method_id,
                     Ret (Impl::*fn)(Args...) const) && {
    thunks_[method_id] = make_thunk_const<Ret, Args...>(fn);
    return std::move(*this);
  }

  /// Lvalue variants so tables can also be built incrementally.
  template <typename Fn>
  MethodTable& bind(std::uint32_t method_id, Fn fn) & {
    std::move(*this).bind(method_id, fn);
    return *this;
  }

  void dispatch(Impl& servant, std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) const {
    const auto it = thunks_.find(method_id);
    if (it == thunks_.end()) {
      unknown_method(servant.type_name(), method_id);
    }
    it->second(servant, in, out);
  }

  std::size_t size() const noexcept { return thunks_.size(); }

 private:
  template <typename Ret, typename... Args, typename Fn>
  static Thunk make_thunk_impl(Fn fn) {
    return [fn](Impl& servant, wire::Decoder& in, wire::Encoder& out) {
      auto args = unmarshal<std::remove_cvref_t<Args>...>(in);
      if constexpr (std::is_void_v<Ret>) {
        std::apply([&](auto&&... unpacked) { std::invoke(fn, servant, unpacked...); },
                   std::move(args));
      } else {
        Ret result = std::apply(
            [&](auto&&... unpacked) { return std::invoke(fn, servant, unpacked...); },
            std::move(args));
        marshal_result(out, result);
      }
    };
  }

  template <typename Ret, typename... Args>
  static Thunk make_thunk(Ret (Impl::*fn)(Args...)) {
    return make_thunk_impl<Ret, Args...>(fn);
  }

  template <typename Ret, typename... Args>
  static Thunk make_thunk_const(Ret (Impl::*fn)(Args...) const) {
    return make_thunk_impl<Ret, Args...>(fn);
  }

  std::map<std::uint32_t, Thunk> thunks_;
};

}  // namespace ohpx::orb
