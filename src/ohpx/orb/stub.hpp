// Stub base class: the typed client-side face of a remote object.
//
// A user stub derives from ObjectStub, declares its type name, and wraps
// each remote method around call<Ret>(METHOD_ID, args...):
//
//   class CounterStub : public orb::ObjectStub {
//    public:
//     static constexpr std::string_view kTypeName = "Counter";
//     using ObjectStub::ObjectStub;
//     std::int64_t add(std::int64_t delta) {
//       return call<std::int64_t>(kAdd, delta);
//     }
//   };
//
// Stubs are cheap value types: copies share the CallCore (and therefore
// the client-side capability state — quotas keep counting across copies,
// exactly like handing the same capability around).
#pragma once

#include <utility>

#include "ohpx/common/future.hpp"
#include "ohpx/orb/invocation.hpp"
#include "ohpx/wire/buffer_pool.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::orb {

class ObjectStub {
 public:
  ObjectStub() = default;
  ObjectStub(Context& context, ObjectRef ref)
      : core_(std::make_shared<CallCore>(context, std::move(ref))) {}

  bool bound() const noexcept { return core_ != nullptr; }

  const ObjectRef& ref() const {
    ensure_bound();
    return core_->ref();
  }

  /// Protocol used by the most recent call (adaptivity observable).
  std::string last_protocol() const {
    ensure_bound();
    return core_->last_protocol();
  }

  /// Protocol that would be selected for a call right now.
  std::string probe_protocol() const {
    ensure_bound();
    return core_->probe_protocol();
  }

  /// Toggles the memoized protocol-selection fast path (on by default).
  void set_selection_cache(bool enabled) {
    ensure_bound();
    core_->set_selection_cache(enabled);
  }

  /// Per-GP trace sampling override (paper's steering contract applied to
  /// observability): always / ratio / off for calls through this stub,
  /// winning over the context override and the global sink mode.
  void set_trace_sampling(trace::Sampling mode, double ratio = 1.0) {
    ensure_bound();
    core_->set_trace_sampling(mode, ratio);
  }
  void clear_trace_sampling() {
    ensure_bound();
    core_->clear_trace_sampling();
  }

  /// Per-call deadline budget for calls through this stub (0 = unbounded):
  /// each call mints `budget` from now on the resilience clock, checks it
  /// at every pipeline stage and carries it to the server.
  void set_deadline_budget(Nanoseconds budget) {
    ensure_bound();
    core_->set_deadline_budget(budget);
  }

  /// Per-GP retry policy (innermost steering point: wins over the context
  /// override and the global policy).
  void set_retry_policy(const resilience::RetryPolicy& policy) {
    ensure_bound();
    core_->set_retry_policy(policy);
  }
  void clear_retry_policy() {
    ensure_bound();
    core_->clear_retry_policy();
  }

  /// Per-protocol-entry circuit breakers for this stub's OR table
  /// (failure_threshold == 0 — the default — disables them).
  void set_breaker_config(const resilience::BreakerConfig& config) {
    ensure_bound();
    core_->set_breaker_config(config);
  }

  /// Breaker state of one protocol-table entry (failover observable).
  resilience::CircuitBreaker::State breaker_state(std::size_t entry) const {
    ensure_bound();
    return core_->breaker_state(entry);
  }

  /// Hook invoked when a breaker entry opens (nullptr clears); failover
  /// layers use it to trigger a re-resolve (see CallCore for the lifetime
  /// contract).
  void set_breaker_trip_hook(resilience::BreakerSet::TripHook hook) {
    ensure_bound();
    core_->set_breaker_trip_hook(std::move(hook));
  }

  /// Typed remote call: marshals `args`, invokes, unmarshals Ret.
  template <typename Ret, typename... Args>
  Ret call(std::uint32_t method_id, const Args&... args) {
    return call_with_cost<Ret>(nullptr, method_id, args...);
  }

  /// As call(), but accrues marshalling/capability/wire costs to `ledger`
  /// (benchmark harness entry point).
  template <typename Ret, typename... Args>
  Ret call_with_cost(CostLedger* ledger, std::uint32_t method_id,
                     const Args&... args) {
    ensure_bound();
    wire::Buffer payload;
    {
      ScopedRealTime timer(ledger);  // disarmed when nobody is profiling
      wire::Encoder enc(payload);
      wire::serialize_all(enc, args...);
    }
    wire::Buffer reply =
        core_->invoke_raw(method_id, std::move(payload), ledger);
    // Returning the decoded reply buffer to the pool closes the recycle
    // loop opened in frame_roundtrip: steady-state calls reuse the same
    // handful of warm allocations.
    if constexpr (std::is_void_v<Ret>) {
      wire::BufferPool::local().release(std::move(reply));
      return;
    } else {
      ScopedRealTime timer(ledger);
      Ret result = wire::decode_value<Ret>(reply.view());
      wire::BufferPool::local().release(std::move(reply));
      return result;
    }
  }

  /// Fire-and-forget call: marshals args, delivers the request, returns
  /// as soon as the server acknowledges delivery.  Results and application
  /// errors are dropped server-side; infrastructure errors still throw.
  template <typename... Args>
  void call_oneway(std::uint32_t method_id, const Args&... args) {
    ensure_bound();
    wire::Buffer payload;
    {
      wire::Encoder enc(payload);
      wire::serialize_all(enc, args...);
    }
    core_->invoke_oneway(method_id, std::move(payload), nullptr);
  }

  /// Asynchronous remote call (HPC++ heritage: remote invocations that
  /// overlap with local work).  Arguments are marshalled eagerly on the
  /// calling thread and the call is *submitted* before this returns —
  /// over the epoll reactor when the selected protocol supports it (no
  /// thread is parked per call, so one caller can keep thousands in
  /// flight), on a shared worker thread otherwise.  The result, or the
  /// remote/transport exception, is delivered through the future; a full
  /// inflight window surfaces here as a synchronous
  /// TransportError(backpressure) throw, and the ambient deadline cancels
  /// the future with DeadlineExceeded.
  template <typename Ret, typename... Args>
  ohpx::Future<Ret> call_async(std::uint32_t method_id, const Args&... args) {
    ensure_bound();
    // Pooled: invoke_async_reply() releases the argument buffer back to
    // this thread's pool once the frame is encoded, so a fan-in caller
    // recycles one warm buffer instead of allocating per call.
    wire::Buffer payload = wire::BufferPool::local().acquire();
    {
      wire::Encoder enc(payload);
      wire::serialize_all(enc, args...);
    }
    // Capturing core_ in the decode continuation pins the CallCore (and
    // its protocol objects) until the future settles.  The split
    // invoke_async_reply / finish_async_reply form folds the invocation
    // layer's settlement work (breaker feed, error decoding) into this one
    // continuation — one future stage fewer per call than stacking a
    // second map over invoke_async_raw.
    CallCorePtr core = core_;
    CallCore::AsyncReplyTicket ticket;
    Future<proto::ReplyMessage> raw =
        core->invoke_async_reply(method_id, std::move(payload), ticket);
    return raw.map<Ret>([core, ticket](Future<proto::ReplyMessage> settled) {
      wire::Buffer reply =
          CallCore::finish_async_reply(std::move(settled), ticket);
      if constexpr (std::is_void_v<Ret>) {
        wire::BufferPool::local().release(std::move(reply));
      } else {
        Ret result = wire::decode_value<Ret>(reply.view());
        wire::BufferPool::local().release(std::move(reply));
        return result;
      }
    });
  }

 protected:
  CallCore& core() {
    ensure_bound();
    return *core_;
  }

 private:
  void ensure_bound() const {
    if (!core_) {
      throw ObjectError(ErrorCode::bad_object_ref, "stub is not bound");
    }
  }

  CallCorePtr core_;
};

}  // namespace ohpx::orb
