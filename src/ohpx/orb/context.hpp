// Context (paper §2): "a virtual address space" — the unit an Open HPC++
// application is partitioned into.  A context hosts servants, terminates
// the server side of every protocol (the paper's proto-classes and glue
// classes), and acts as the client-side home of global pointers (request
// ids, proto-pool).
//
// Server pipeline (per incoming frame):
//   decode frame → [glue? strip glue id, unprocess through the server copy
//   of the capability chain, admission checks] → dispatch to servant →
//   [glue? process the reply back through the chain] → encode reply frame.
// Any exception becomes an error reply carrying the ohpx ErrorCode, which
// the client re-raises as a typed exception.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ohpx/capability/chain.hpp"
#include "ohpx/common/annotations.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/netsim/topology.hpp"
#include "ohpx/orb/location.hpp"
#include "ohpx/orb/object_ref.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/protocol/pool.hpp"
#include "ohpx/resilience/retry.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/tcp.hpp"
#include "ohpx/wire/message.hpp"

namespace ohpx::orb {

using ContextId = std::uint32_t;

/// Server-side glue binding: one registered capability chain (the paper's
/// glue class GC with "its own copies of the capabilities").
struct GlueBinding {
  std::uint32_t glue_id = 0;
  ObjectId object_id = kInvalidObject;
  cap::CapabilityChain chain;
};

class Context {
 public:
  /// Creates a context on `machine`, binds its in-process endpoint
  /// ("ctx/<id>") and registers nothing else.  Topology and location
  /// service must outlive the context.
  Context(ContextId id, netsim::MachineId machine, netsim::Topology& topology,
          LocationService& location);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  ContextId id() const noexcept { return id_; }
  netsim::MachineId machine() const noexcept { return machine_; }
  netsim::Topology& topology() noexcept { return topology_; }
  const netsim::Topology& topology() const noexcept { return topology_; }
  LocationService& location() noexcept { return location_; }
  const std::string& endpoint_name() const noexcept { return endpoint_; }

  /// The client-side proto-pool of this context (paper §3.1).
  proto::ProtoPool& pool() noexcept { return pool_; }
  const proto::ProtoPool& pool() const noexcept { return pool_; }

  /// Starts a real TCP listener for this context (loopback, ephemeral
  /// port); after this the context's address advertises host/port and the
  /// "tcp" protocol becomes applicable to it.
  void enable_tcp();

  /// As enable_tcp(), binding `listen_host`:`port` (port 0 = ephemeral,
  /// host "0.0.0.0" = all interfaces).  `advertise_host` is the address
  /// minted into ORs and the location service — the name peers dial.  It
  /// defaults to `listen_host`, or 127.0.0.1 for wildcard binds (a peer
  /// cannot dial 0.0.0.0); multi-machine deployments pass the machine's
  /// routable name here (docs/deployment.md).
  void enable_tcp(const std::string& listen_host, std::uint16_t port,
                  const std::string& advertise_host = "");

  bool tcp_enabled() const noexcept { return listener_ != nullptr; }

  /// This context's current address block (what the location service and
  /// minted ORs carry).
  proto::ServerAddress current_address() const;

  // -- servant hosting --

  /// Registers a servant under a fresh object id and publishes its
  /// location.  Returns the id.
  ObjectId activate(ServantPtr servant);

  /// Registers a servant under a caller-supplied id (migration re-homing).
  void activate_with_id(ObjectId object_id, ServantPtr servant);

  /// Unregisters a servant.  If `forget_location` the object disappears
  /// from the location service too (destroy); migration keeps the entry.
  void deactivate(ObjectId object_id, bool forget_location = true);

  ServantPtr find_servant(ObjectId object_id) const;
  bool hosts(ObjectId object_id) const;
  std::vector<ObjectId> hosted_objects() const;

  // -- server-side glue chains --

  /// Registers a server-side capability chain for `object_id`; returns the
  /// process-unique glue id carried in glue proto-data.
  std::uint32_t register_glue(ObjectId object_id, cap::CapabilityChain chain);

  /// Registers under a pre-existing glue id (migration re-homing).
  void register_glue_with_id(std::uint32_t glue_id, ObjectId object_id,
                             cap::CapabilityChain chain);

  /// Snapshot of the bindings attached to one object (for migration).
  std::vector<std::shared_ptr<GlueBinding>> glue_bindings_of(
      ObjectId object_id) const;

  /// Access to one binding (server-side inspection of quotas, audits...).
  std::shared_ptr<GlueBinding> find_glue(std::uint32_t glue_id) const;

  /// Drops the bindings attached to one object.
  void remove_glue_of(ObjectId object_id);

  /// Revokes a single glue binding: outstanding references that carry this
  /// glue id lose access immediately (their requests are refused with
  /// capability_unknown), while other references to the object keep
  /// working.  Returns false if the id was not registered here.
  bool revoke_glue(std::uint32_t glue_id);

  // -- client-side ids --

  /// Process-unique request id (context id folded into the high bits so
  /// capability nonces never collide across clients).
  std::uint64_t next_request_id() noexcept;

  /// Fresh context id for ad-hoc construction (Worlds assign their own).
  static ContextId allocate_id() noexcept;

  // -- trace sampling --

  /// Per-context trace sampling override: wins over the global sink mode,
  /// loses to a per-GP override on a CallCore (innermost steering wins).
  void set_trace_sampling(trace::Sampling mode, double ratio = 1.0) noexcept {
    trace_sampling_.set(mode, ratio);
  }
  void clear_trace_sampling() noexcept { trace_sampling_.clear(); }
  trace::SamplingOverride& trace_sampling() noexcept {
    return trace_sampling_;
  }

  // -- retry policy --

  /// Per-context retry policy override: wins over the global policy, loses
  /// to a per-GP override on a CallCore (same innermost-wins contract as
  /// trace sampling).
  void set_retry_policy(const resilience::RetryPolicy& policy) {
    retry_policy_.set(policy);
  }
  void clear_retry_policy() { retry_policy_.clear(); }
  resilience::RetryOverride& retry_policy() noexcept { return retry_policy_; }

  /// The complete server pipeline; public so transports acquired outside
  /// the context (tests, custom listeners) can reuse it.
  wire::Buffer handle_frame(const wire::Buffer& frame) noexcept;

 private:
  wire::Buffer handle_frame_or_throw(const wire::Buffer& frame);
  wire::Buffer error_frame(const wire::MessageHeader& request_header,
                           ErrorCode code, const std::string& message) const;

  ContextId id_;
  netsim::MachineId machine_;
  netsim::Topology& topology_;
  LocationService& location_;
  std::string endpoint_;
  proto::ProtoPool pool_;

  mutable sync::Mutex mutex_{"orb.context"};
  std::map<ObjectId, ServantPtr> servants_ OHPX_GUARDED_BY(mutex_);
  std::map<std::uint32_t, std::shared_ptr<GlueBinding>> glue_bindings_
      OHPX_GUARDED_BY(mutex_);

  std::unique_ptr<transport::TcpListener> listener_;
  std::string advertise_host_;  // set alongside listener_
  std::atomic<std::uint64_t> request_counter_{0};
  trace::SamplingOverride trace_sampling_;
  resilience::RetryOverride retry_policy_;

  // Interned hot-path metrics (resolved once; see MetricsRegistry handles):
  // the process-wide request counter plus this context's own series —
  // "server.ctx.requests.<id>" / "server.ctx.latency.<id>" — which the
  // exporter renders as per-context families and ohpx-top keys its live
  // table on.
  metrics::MetricsRegistry::Counter* requests_counter_;
  metrics::MetricsRegistry::Counter* ctx_requests_counter_;
  metrics::LatencyHistogram* dispatch_latency_;
  metrics::LatencyHistogram* ctx_dispatch_latency_;
};

}  // namespace ohpx::orb
