#include "ohpx/orb/invocation.hpp"

#include "ohpx/common/log.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/protocol/select.hpp"

namespace ohpx::orb {

CallCore::CallCore(Context& context, ObjectRef ref)
    : context_(context), ref_(std::move(ref)) {
  if (!ref_.valid()) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot bind to an invalid object reference");
  }
  protocols_ = proto::ProtocolRegistry::instance().instantiate_table(ref_.table());
  if (protocols_.empty()) {
    throw ProtocolError(ErrorCode::protocol_no_match,
                        "object reference carries no usable protocol");
  }
}

proto::CallTarget CallCore::resolve_target() const {
  proto::CallTarget target;
  const auto resolved = context_.location().resolve(ref_.object_id());
  target.address = resolved ? *resolved : ref_.home();
  target.placement = netsim::Placement{context_.machine(),
                                       target.address.machine,
                                       &context_.topology()};
  return target;
}

std::string CallCore::probe_protocol() const {
  const proto::CallTarget target = resolve_target();
  proto::Protocol* selected =
      proto::select_protocol(protocols_, context_.pool(), target);
  return selected ? selected->describe() : std::string();
}

wire::Buffer CallCore::invoke_raw(std::uint32_t method_id,
                                  const wire::Buffer& args,
                                  CostLedger* ledger) {
  return invoke_internal(method_id, args, ledger, /*oneway=*/false);
}

void CallCore::invoke_oneway(std::uint32_t method_id, const wire::Buffer& args,
                             CostLedger* ledger) {
  invoke_internal(method_id, args, ledger, /*oneway=*/true);
}

wire::Buffer CallCore::invoke_internal(std::uint32_t method_id,
                                       const wire::Buffer& args,
                                       CostLedger* ledger, bool oneway) {
  CostLedger local;
  CostLedger& cost = ledger ? *ledger : local;

  for (int attempt = 0;; ++attempt) {
    const proto::CallTarget target = resolve_target();

    wire::MessageHeader header;
    header.type =
        oneway ? wire::MessageType::oneway : wire::MessageType::request;
    header.request_id = context_.next_request_id();
    header.object_id = ref_.object_id();
    header.method_or_code = method_id;

    proto::Protocol& protocol =
        proto::select_protocol_or_throw(protocols_, context_.pool(), target);
    {
      std::lock_guard lock(mutex_);
      last_protocol_ = protocol.describe();
    }
    auto& registry = metrics::MetricsRegistry::global();
    registry.increment("rmi.calls");
    registry.increment("rmi.calls." + std::string(protocol.name()));

    // The protocol consumes its payload (capabilities transform in place),
    // so each attempt gets its own copy of the encoded arguments.
    wire::Buffer payload(args.bytes());
    proto::ReplyMessage reply =
        protocol.invoke(header, std::move(payload), target, cost);

    if (reply.header.type == wire::MessageType::reply) {
      registry.record_latency("rmi.latency", cost.total());
      return std::move(reply.payload);
    }

    std::uint32_t code_raw = 0;
    std::string message;
    wire::decode_error_body(reply.payload.view(), code_raw, message);
    const ErrorCode code = static_cast<ErrorCode>(code_raw);
    registry.increment("rmi.errors." + std::string(to_string(code)));
    if (code == ErrorCode::stale_reference && attempt + 1 < kMaxAttempts) {
      log_debug("orb", "stale reference for object ", ref_.object_id(),
                ", re-resolving (attempt ", attempt + 1, ")");
      continue;
    }
    throw_error(code, message);
  }
}

std::string CallCore::last_protocol() const {
  std::lock_guard lock(mutex_);
  return last_protocol_;
}

}  // namespace ohpx::orb
