#include "ohpx/orb/invocation.hpp"

#include <optional>
#include <utility>

#include "ohpx/common/log.hpp"
#include "ohpx/common/thread_pool.hpp"
#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/protocol/select.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/wire/buffer_pool.hpp"

namespace ohpx::orb {

CallCore::CallCore(Context& context, ObjectRef ref)
    : context_(context), ref_(std::move(ref)) {
  if (!ref_.valid()) {
    throw ObjectError(ErrorCode::bad_object_ref,
                      "cannot bind to an invalid object reference");
  }
  protocols_ =
      proto::ProtocolRegistry::instance().instantiate_table(ref_.table());
  if (protocols_.empty()) {
    throw ProtocolError(ErrorCode::protocol_no_match,
                        "object reference carries no usable protocol");
  }
  for (const auto& protocol : protocols_) {
    if (!protocol->applicability_is_stable()) {
      cacheable_ = false;  // e.g. relay: gateway liveness is not epoch-keyed
      break;
    }
  }
  auto& registry = metrics::MetricsRegistry::global();
  calls_total_ = registry.counter_handle(metrics::names::kRmiCalls);
  cache_hits_ = registry.counter_handle(metrics::names::kRmiSelectCacheHit);
  cache_misses_ = registry.counter_handle(metrics::names::kRmiSelectCacheMiss);
  cache_invalidate_ =
      registry.counter_handle(metrics::names::kRmiSelectCacheInvalidate);
  retries_ = registry.counter_handle(metrics::names::kRmiRetries);
  backpressure_ = registry.counter_handle(metrics::names::kRmiBackpressure);
  deadline_exceeded_ =
      registry.counter_handle(metrics::names::kRmiDeadlineExceeded);
  breaker_opened_ = registry.counter_handle(metrics::names::kRmiBreakerOpened);
  breaker_closed_ = registry.counter_handle(metrics::names::kRmiBreakerClosed);
  async_deadline_cancelled_ =
      registry.counter_handle(metrics::names::kRmiAsyncDeadlineCancelled);
  latency_ = registry.latency_handle(metrics::names::kRmiLatency);
  async_latency_ = registry.latency_handle(metrics::names::kRmiAsyncLatency);
}

proto::CallTarget CallCore::resolve_target() const {
  proto::CallTarget target;
  const auto resolved = context_.location().resolve(ref_.object_id());
  target.address = resolved ? *resolved : ref_.home();
  target.placement = netsim::Placement{context_.machine(),
                                       target.address.machine,
                                       &context_.topology()};
  return target;
}

std::string CallCore::probe_protocol() const {
  const proto::CallTarget target = resolve_target();
  proto::Protocol* selected =
      proto::select_protocol(protocols_, context_.pool(), target);
  return selected ? selected->describe() : std::string();
}

void CallCore::set_breaker_config(const resilience::BreakerConfig& config) {
  // Every live breaker set is visible to the introspection plane: the
  // registry entry carries one protocol name per breaker entry, so the
  // exporter can render `ohpx_breaker_state{set, entry, protocol}` without
  // reaching back into this CallCore.
  const std::string label = "obj/" + std::to_string(ref_.object_id());
  std::shared_ptr<resilience::BreakerSet> registered;
  {
    sync::LockGuard lock(mutex_);
    if (config.enabled()) {
      breakers_ =
          std::make_shared<resilience::BreakerSet>(protocols_.size(), config);
      if (breaker_trip_hook_) breakers_->set_trip_hook(breaker_trip_hook_);
      breakers_enabled_.store(true, std::memory_order_release);
      registered = breakers_;
    } else {
      breakers_enabled_.store(false, std::memory_order_release);
      breakers_.reset();
    }
  }
  if (registered) {
    std::vector<std::string> entries;
    entries.reserve(protocols_.size());
    for (const auto& protocol : protocols_) {
      entries.emplace_back(protocol->name());
    }
    resilience::BreakerRegistry::global().add(registered, label,
                                              std::move(entries));
  } else {
    resilience::BreakerRegistry::global().remove(label);
  }
}

void CallCore::set_breaker_trip_hook(resilience::BreakerSet::TripHook hook) {
  sync::LockGuard lock(mutex_);
  breaker_trip_hook_ = std::move(hook);
  if (breakers_) breakers_->set_trip_hook(breaker_trip_hook_);
}

resilience::CircuitBreaker::State CallCore::breaker_state(
    std::size_t entry) const {
  if (!breakers_enabled_.load(std::memory_order_acquire)) {
    return resilience::CircuitBreaker::State::closed;
  }
  sync::LockGuard lock(mutex_);
  if (!breakers_ || entry >= breakers_->size()) {
    return resilience::CircuitBreaker::State::closed;
  }
  return breakers_->at(entry).state();
}

std::shared_ptr<resilience::BreakerSet> CallCore::breaker_set() const {
  if (!breakers_enabled_.load(std::memory_order_relaxed)) return nullptr;
  sync::LockGuard lock(mutex_);
  return breakers_;
}

int CallCore::max_attempts_now() {
  const std::uint64_t revision = resilience::retry_policy_revision();
  if (retry_revision_seen_.load(std::memory_order_acquire) != revision) {
    const resilience::RetryPolicy policy = resilience::resolve_retry_policy(
        retry_policy_, context_.retry_policy());
    sync::LockGuard lock(mutex_);
    cached_policy_ = policy;
    cached_max_attempts_.store(policy.max_attempts,
                               std::memory_order_relaxed);
    retry_revision_seen_.store(revision, std::memory_order_release);
  }
  return cached_max_attempts_.load(std::memory_order_relaxed);
}

resilience::RetryPolicy CallCore::retry_policy_now() {
  (void)max_attempts_now();  // refresh the memo if policies changed
  sync::LockGuard lock(mutex_);
  return cached_policy_;
}

void CallCore::wait_backoff(
    std::optional<resilience::BackoffSchedule>& backoff, CostLedger& cost) {
  if (!backoff) backoff.emplace(retry_policy_now());
  const Nanoseconds delay = backoff->next();
  if (delay.count() <= 0) return;
  trace::event("retry.backoff", "waiting before retry");
  cost.add_modeled(delay);
  resilience::sleep_for(delay);
}

wire::Buffer CallCore::invoke_raw(std::uint32_t method_id, wire::Buffer args,
                                  CostLedger* ledger) {
  return invoke_internal(method_id, std::move(args), ledger, /*oneway=*/false);
}

void CallCore::invoke_oneway(std::uint32_t method_id, wire::Buffer args,
                             CostLedger* ledger) {
  wire::BufferPool::local().release(
      invoke_internal(method_id, std::move(args), ledger, /*oneway=*/true));
}

CallCore::Selection CallCore::select_for_call(
    bool use_cache, const std::shared_ptr<resilience::BreakerSet>& breakers) {
  Selection sel;
  std::shared_ptr<const CachedSelection> entry;

  // Probe the invalidation signals *before* resolving, so a concurrent
  // republish between the probe and the fill can only make the cached
  // entry look older than it is (a spurious miss next call, never a
  // stale hit).  The location probe is two-level: the service-wide
  // version (one atomic load) is enough while the map is quiet; only
  // when *some* object republished do we ask the precise per-object
  // epoch question — and if our object was not the one that moved, the
  // entry is revalidated at the newer version.
  std::uint64_t epoch = 0;
  bool epoch_probed = false;
  std::uint64_t generation = 0;
  std::uint64_t version = 0;
  if (use_cache) {
    version = context_.location().version();
    generation = context_.pool().generation();
    {
      sync::LockGuard lock(mutex_);
      entry = cache_;
    }
    if (entry != nullptr && entry->pool_generation == generation) {
      if (entry->location_version != version) {
        epoch = context_.location().epoch_of(ref_.object_id());
        epoch_probed = true;
        if (epoch == entry->location_epoch) {
          auto refreshed = std::make_shared<CachedSelection>(*entry);
          refreshed->location_version = version;
          sync::LockGuard lock(mutex_);
          if (cache_ == entry) cache_ = std::move(refreshed);
        } else {
          entry = nullptr;  // our object moved: stale, re-select below
          cache_invalidate_->fetch_add(1, std::memory_order_relaxed);
          trace::event("cache.invalidate", "epoch-changed");
        }
      }
    } else {
      entry = nullptr;
    }
    // A memoized selection must still pass its breaker: an entry whose
    // breaker tripped is temporarily inapplicable, so the hit degrades
    // to a gated re-selection (failover to the next table entry).
    if (entry != nullptr && breakers) {
      bool admitted = false;
      const auto transition = breakers->at(entry->entry_index).allow(admitted);
      if (transition == resilience::CircuitBreaker::Transition::probing) {
        trace::event("breaker.probe", entry->described);
      }
      if (!admitted) entry = nullptr;
    }
    if (entry != nullptr) {
      // last_protocol_ already equals entry->described: every fill sets
      // both under one lock, and every path that rewrites last_protocol_
      // without refilling also drops the cache.
      sel.protocol = entry->protocol;
      sel.proto_counter = entry->calls_by_protocol;
      sel.entry_index = entry->entry_index;
      sel.entry = std::move(entry);
      sel.from_cache = true;
      cache_hits_->fetch_add(1, std::memory_order_relaxed);
      return sel;
    }
  }

  if (use_cache) {
    cache_misses_->fetch_add(1, std::memory_order_relaxed);
    if (!epoch_probed) {
      epoch = context_.location().epoch_of(ref_.object_id());
    }
  }
  sel.resolved = resolve_target();
  if (breakers) {
    sel.protocol = &proto::select_protocol_or_throw(
        protocols_, context_.pool(), sel.resolved, sel.entry_index,
        [&](std::size_t candidate) {
          bool admitted = false;
          const auto transition = breakers->at(candidate).allow(admitted);
          if (transition == resilience::CircuitBreaker::Transition::probing) {
            trace::event("breaker.probe", protocols_[candidate]->name());
          }
          return admitted;
        });
  } else {
    sel.protocol = &proto::select_protocol_or_throw(
        protocols_, context_.pool(), sel.resolved, sel.entry_index,
        proto::EntryGate{});
  }
  std::string described = sel.protocol->describe();
  sel.proto_counter = metrics::MetricsRegistry::global().counter_handle(
      metrics::names::protocol_calls(sel.protocol->name()));
  sync::LockGuard lock(mutex_);
  last_protocol_ = described;
  if (use_cache) {
    auto fresh = std::make_shared<CachedSelection>();
    fresh->protocol = sel.protocol;
    fresh->target = sel.resolved;
    fresh->entry_index = sel.entry_index;
    fresh->location_epoch = epoch;
    fresh->location_version = version;
    fresh->pool_generation = generation;
    fresh->described = std::move(described);
    fresh->calls_by_protocol = sel.proto_counter;
    cache_ = std::move(fresh);
  } else {
    cache_.reset();  // never serve a selection cached before the
                     // toggle or a failed attempt
  }
  return sel;
}

wire::Buffer CallCore::invoke_internal(std::uint32_t method_id,
                                       wire::Buffer args, CostLedger* ledger,
                                       bool oneway) {
  CostLedger local;
  CostLedger& cost = ledger ? *ledger : local;
  auto& registry = metrics::MetricsRegistry::global();

  // Pay-when-used profiling: fast-path calls nobody attached a ledger to
  // skip the fine-grained cost clocks (several steady_clock reads per
  // call).  The uncached baseline keeps the always-on accounting of the
  // literal per-request pipeline — it is the fast path's "before" arm.
  if (!ledger && cacheable_ && cache_enabled_.load(std::memory_order_relaxed)) {
    local.disable_real_timing();
  }

  // Mint this call's deadline from the configured budget, tightened
  // against any ambient deadline (a servant calling downstream spends its
  // caller's remaining budget, never more).  With no budget and no
  // ambient deadline this is one relaxed load and one thread-local read.
  std::optional<resilience::DeadlineScope> deadline_scope;
  const std::int64_t budget =
      deadline_budget_ns_.load(std::memory_order_relaxed);
  if (budget > 0) {
    deadline_scope.emplace(resilience::now_ns() + budget);
  }
  const std::int64_t deadline = resilience::current_deadline_ns();

  // Root-or-join: a call made outside any trace mints a fresh root (if the
  // sampling decision says so); a call made *inside* one — a servant
  // invoking another object, a delegated hop — joins the ambient trace so
  // the whole causal chain lands in one tree.  When tracing is inactive
  // this whole block is one relaxed load.
  std::optional<trace::ContextScope> trace_scope;
  if (trace::TraceSink::active() && !trace::current_context().valid() &&
      trace::should_sample(trace_sampling_, context_.trace_sampling())) {
    trace_scope.emplace(trace::mint_root());
  }
  trace::Span call_span(trace::SpanKind::invoke, "rmi.invoke");
  call_span.annotate_u64("obj", ref_.object_id());
  call_span.annotate_u64("method", method_id);

  const int max_attempts = max_attempts_now();
  const std::shared_ptr<resilience::BreakerSet> breakers = breaker_set();
  std::optional<resilience::BackoffSchedule> backoff;

  for (int attempt = 0;; ++attempt) {
    if (resilience::deadline_expired(deadline)) {
      // The budget bounds the *logical* call, retries and backoff waits
      // included — an expired budget ends the loop no matter how many
      // attempts the retry policy would still allow.
      deadline_exceeded_->fetch_add(1, std::memory_order_relaxed);
      introspect::FlightRecorder::global().record(
          introspect::EventKind::deadline, ErrorCode::deadline_exceeded,
          "budget spent after " + std::to_string(attempt) + " attempt(s)");
      throw DeadlineExceeded("call deadline exceeded after " +
                             std::to_string(attempt) + " attempt(s)");
    }

    const bool use_cache =
        cacheable_ && cache_enabled_.load(std::memory_order_relaxed);

    trace::Span select_span(trace::SpanKind::selection, "select");

    Selection sel = select_for_call(use_cache, breakers);
    proto::Protocol* protocol = sel.protocol;
    const proto::CallTarget* target = &sel.target();
    metrics::MetricsRegistry::Counter* proto_counter = sel.proto_counter;
    const std::size_t entry_index = sel.entry_index;
    const bool served_from_cache = sel.from_cache;

    if (select_span.armed()) {
      select_span.annotate(served_from_cache ? "cache:hit"
                           : use_cache       ? "cache:miss"
                                             : "cache:off");
      select_span.annotate(protocol->name());
    }
    select_span.end();

    wire::MessageHeader header;
    header.type =
        oneway ? wire::MessageType::oneway : wire::MessageType::request;
    header.request_id = context_.next_request_id();
    header.object_id = ref_.object_id();
    header.method_or_code = method_id;

    // Propagate the trace over the wire: the current span here is the
    // rmi.invoke span (the selection span already ended), so server-side
    // spans parent directly under the client call.
    if (const trace::TraceContext tctx = trace::TraceSink::active()
                                             ? trace::current_context()
                                             : trace::TraceContext{};
        tctx.valid()) {
      header.flags |= wire::kFlagTraceContext;
      header.trace_hi = tctx.trace_hi;
      header.trace_lo = tctx.trace_lo;
      header.trace_parent_span = tctx.span_id;
      header.trace_flags = wire::kTraceFlagSampled;
    }

    // Propagate the deadline over the wire so the server refuses dispatch
    // (and servants inherit the budget) once it has passed.
    if (deadline != resilience::kNoDeadline) {
      header.flags |= wire::kFlagDeadline;
      header.deadline_ns = deadline;
    }

    if (use_cache) {
      calls_total_->fetch_add(1, std::memory_order_relaxed);
    } else {
      // Baseline arm: resolve the counter by name on every call, exactly
      // like the pre-fast-path pipeline.
      registry.counter_handle(metrics::names::kRmiCalls)
          ->fetch_add(1, std::memory_order_relaxed);
    }
    proto_counter->fetch_add(1, std::memory_order_relaxed);

    // Zero-copy handoff: the protocol works on the caller's buffer in
    // place.  Only when the protocol destroys the payload (glue) *and* a
    // retry is still possible do we stash a pristine copy.
    const bool may_retry = attempt + 1 < max_attempts;
    wire::Buffer retry_stash;
    if (may_retry && !protocol->preserves_payload()) {
      retry_stash = wire::Buffer(args.bytes());
    }

    proto::ReplyMessage reply;
    try {
      reply = protocol->invoke(header, args, *target, cost);
    } catch (const DeadlineExceeded&) {
      {
        sync::LockGuard lock(mutex_);
        cache_.reset();
      }
      deadline_exceeded_->fetch_add(1, std::memory_order_relaxed);
      throw;
    } catch (const TransportError& e) {
      // The channel itself failed: feed the entry's breaker (a tripped
      // breaker makes the entry inapplicable, so the retry below — or the
      // next call — fails over to the next table entry).  Backpressure is
      // the exception: a window-full refusal means the channel is *too*
      // healthy to keep up, not broken — it must never push a breaker
      // toward open (it would turn transient overload into failover).
      if (e.code() == ErrorCode::backpressure) {
        backpressure_->fetch_add(1, std::memory_order_relaxed);
        introspect::FlightRecorder::global().record(
            introspect::EventKind::backpressure, e.code(), protocol->name());
      } else if (breakers) {
        const auto transition = breakers->at(entry_index).on_failure();
        if (transition == resilience::CircuitBreaker::Transition::opened) {
          breaker_opened_->fetch_add(1, std::memory_order_relaxed);
          introspect::FlightRecorder::global().record(
              introspect::EventKind::breaker_open, e.code(), protocol->name());
          trace::event("breaker.open", protocol->name());
          breakers->notify_trip(entry_index);
        }
      }
      {
        sync::LockGuard lock(mutex_);
        cache_.reset();
      }
      // Retry on transient channel faults under the retry policy: a
      // memoized selection can outlive an endpoint (listener torn down,
      // context destroyed), and a fresh re-evaluation is exactly what an
      // uncached call would have done.  Non-retryable errors — capability
      // denials above all — propagate unchanged, cached or not.
      if (may_retry && resilience::is_retryable(e.code())) {
        retries_->fetch_add(1, std::memory_order_relaxed);
        introspect::FlightRecorder::global().record(
            introspect::EventKind::retry, e.code(),
            "transport fault, re-selecting");
        trace::event("retry.transport", "cached endpoint gone, re-selecting");
        wait_backoff(backoff, cost);
        if (!protocol->preserves_payload()) args = std::move(retry_stash);
        continue;
      }
      throw;
    } catch (const Error& e) {
      {
        sync::LockGuard lock(mutex_);
        cache_.reset();
      }
      // Client-side detection of a damaged exchange — a reply that fails
      // framing (wire_bad_checksum) or capability verification
      // (capability_bad_payload) — is as transient as a channel fault: the
      // re-send is a fresh frame.  Refusals (auth, quota, lease) are
      // decisions and fall through to the throw.
      if (may_retry && resilience::is_retryable(e.code())) {
        retries_->fetch_add(1, std::memory_order_relaxed);
        introspect::FlightRecorder::global().record(
            introspect::EventKind::retry, e.code(), "damaged exchange, re-sending");
        trace::event("retry.error", to_string(e.code()));
        wait_backoff(backoff, cost);
        if (!protocol->preserves_payload()) args = std::move(retry_stash);
        continue;
      }
      throw;
    }

    // Any reply — even an error reply — proves the channel works; a
    // half-open breaker closes on it.
    if (breakers) {
      const auto transition = breakers->at(entry_index).on_success();
      if (transition == resilience::CircuitBreaker::Transition::closed) {
        breaker_closed_->fetch_add(1, std::memory_order_relaxed);
        introspect::FlightRecorder::global().record(
            introspect::EventKind::breaker_close, ErrorCode::ok,
            protocol->name());
        trace::event("breaker.close", protocol->name());
      }
    }

    if (reply.header.type == wire::MessageType::reply) {
      if (use_cache) {
        latency_->record(cost.total());
      } else {
        registry.latency_handle(metrics::names::kRmiLatency)
            ->record(cost.total());
      }
      return std::move(reply.payload);
    }

    std::uint32_t code_raw = 0;
    std::string message;
    wire::decode_error_body(reply.payload.view(), code_raw, message);
    const ErrorCode code = static_cast<ErrorCode>(code_raw);
    registry.counter_handle(metrics::names::rmi_error(to_string(code)))
        ->fetch_add(1, std::memory_order_relaxed);
    if (may_retry && resilience::is_retryable(code)) {
      {
        // A failed attempt must never leave its selection memoized (for
        // stale references the republish that made us stale already
        // bumped the epoch, but drop the entry explicitly so the retry
        // always re-selects).
        sync::LockGuard lock(mutex_);
        cache_.reset();
      }
      retries_->fetch_add(1, std::memory_order_relaxed);
      introspect::FlightRecorder::global().record(introspect::EventKind::retry,
                                                  code, "retryable error reply");
      if (code == ErrorCode::stale_reference) {
        trace::event("retry.stale_ref", "object migrated, re-resolving");
        log_debug("orb", "stale reference for object ", ref_.object_id(),
                  ", re-resolving (attempt ", attempt + 1, ")");
      } else {
        trace::event("retry.error_reply", to_string(code));
        log_debug("orb", "retryable error reply (", to_string(code),
                  ") for object ", ref_.object_id(), " (attempt ",
                  attempt + 1, ")");
      }
      wait_backoff(backoff, cost);
      if (!protocol->preserves_payload()) args = std::move(retry_stash);
      continue;
    }
    introspect::FlightRecorder::global().record(introspect::EventKind::error,
                                                code, message);
    throw_error(code, message);
  }
}

Future<wire::Buffer> CallCore::invoke_async_raw(std::uint32_t method_id,
                                                wire::Buffer args) {
  AsyncReplyTicket ticket;
  Future<proto::ReplyMessage> reply =
      invoke_async_reply(method_id, std::move(args), ticket);
  return reply.map<wire::Buffer>([ticket](Future<proto::ReplyMessage> settled) {
    return finish_async_reply(std::move(settled), ticket);
  });
}

Future<proto::ReplyMessage> CallCore::invoke_async_reply(
    std::uint32_t method_id, wire::Buffer args, AsyncReplyTicket& ticket) {
  // Completion latency is measured submit-to-settlement: start the
  // ticket's stopwatch before any pipeline work so the recorded value
  // covers selection, submit and the reactor round-trip.
  ticket.watch = Stopwatch();
  ticket.latency = async_latency_;
  ticket.async_deadline_counter = async_deadline_cancelled_;
  // Mint the deadline exactly like the sync path: the reactor captures
  // the ambient value at submit and cancels the future when it passes.
  std::optional<resilience::DeadlineScope> deadline_scope;
  const std::int64_t budget =
      deadline_budget_ns_.load(std::memory_order_relaxed);
  if (budget > 0) {
    deadline_scope.emplace(resilience::now_ns() + budget);
  }
  const std::int64_t deadline = resilience::current_deadline_ns();
  if (resilience::deadline_expired(deadline)) {
    deadline_exceeded_->fetch_add(1, std::memory_order_relaxed);
    throw DeadlineExceeded("call deadline exceeded before async submit");
  }

  // Root-or-join, per call: each async submission stamps its own trace
  // context into its own header — a thousand in-flight calls are a
  // thousand distinct wire contexts, not one per flush batch.
  std::optional<trace::ContextScope> trace_scope;
  if (trace::TraceSink::active() && !trace::current_context().valid() &&
      trace::should_sample(trace_sampling_, context_.trace_sampling())) {
    trace_scope.emplace(trace::mint_root());
  }
  trace::Span call_span(trace::SpanKind::invoke, "rmi.invoke");
  call_span.annotate_u64("obj", ref_.object_id());
  call_span.annotate_u64("method", method_id);
  call_span.annotate("async");

  // Selection: the same memoized fast path as the sync pipeline.  Under
  // fan-in every submission after the first is a cache hit — one atomic
  // version probe plus the breaker gate — instead of paying a re-resolve,
  // a table scan, a describe() build and a metric-name lookup per call.
  const std::shared_ptr<resilience::BreakerSet> breakers = breaker_set();
  const bool use_cache =
      cacheable_ && cache_enabled_.load(std::memory_order_relaxed);
  Selection sel = select_for_call(use_cache, breakers);
  proto::Protocol* const protocol = sel.protocol;
  const proto::CallTarget& target = sel.target();
  const std::size_t entry_index = sel.entry_index;

  calls_total_->fetch_add(1, std::memory_order_relaxed);
  sel.proto_counter->fetch_add(1, std::memory_order_relaxed);

  wire::MessageHeader header;
  header.type = wire::MessageType::request;
  header.request_id = context_.next_request_id();
  header.object_id = ref_.object_id();
  header.method_or_code = method_id;
  if (const trace::TraceContext tctx = trace::TraceSink::active()
                                           ? trace::current_context()
                                           : trace::TraceContext{};
      tctx.valid()) {
    header.flags |= wire::kFlagTraceContext;
    header.trace_hi = tctx.trace_hi;
    header.trace_lo = tctx.trace_lo;
    header.trace_parent_span = tctx.span_id;
    header.trace_flags = wire::kTraceFlagSampled;
  }
  if (deadline != resilience::kNoDeadline) {
    header.flags |= wire::kFlagDeadline;
    header.deadline_ns = deadline;
  }

  if (protocol->supports_async()) {
    Future<proto::ReplyMessage> exchange;
    try {
      exchange = protocol->invoke_async(header, args, target);
    } catch (const TransportError& e) {
      // Synchronous refusal.  Backpressure never feeds the breaker (the
      // channel is saturated, not broken); real submit-time faults do.
      if (e.code() == ErrorCode::backpressure) {
        backpressure_->fetch_add(1, std::memory_order_relaxed);
      } else if (breakers) {
        const auto transition = breakers->at(entry_index).on_failure();
        if (transition == resilience::CircuitBreaker::Transition::opened) {
          breaker_opened_->fetch_add(1, std::memory_order_relaxed);
          trace::event("breaker.open", protocol->name());
          breakers->notify_trip(entry_index);
        }
      }
      throw;
    }
    // The argument buffer was consumed by the (synchronous) frame encode
    // inside invoke_async; recycle it for the caller's next marshal.
    wire::BufferPool::local().release(std::move(args));
    // Settlement-side bookkeeping (breaker feed, error decoding) moves
    // into the caller's continuation via the ticket — counters live in
    // the global registry and the breaker set is shared ownership, so the
    // ticket may outlive this CallCore.
    ticket.breakers = breakers;
    ticket.entry_index = entry_index;
    ticket.deadline_counter = deadline_exceeded_;
    ticket.expect_request_id = header.request_id;
    return exchange;
  }

  // Worker-thread fallback for protocols without an event-driven bearer:
  // the full synchronous pipeline (retries included, breakers fed, error
  // replies re-raised) runs on a shared pool thread, with the caller's
  // deadline and trace context carried across explicitly (thread-ambient
  // state does not follow the task).  The ticket records that nothing is
  // left for finish_async_reply() but handing over the payload.
  ticket.pipeline_complete = true;
  auto args_holder = std::make_shared<wire::Buffer>(std::move(args));
  const trace::TraceContext tctx = trace::TraceSink::active()
                                       ? trace::current_context()
                                       : trace::TraceContext{};
  Promise<proto::ReplyMessage> promise;
  ThreadPool::shared().submit(
      [this, method_id, args_holder, promise, deadline, tctx]() mutable {
        try {
          resilience::DeadlineScope scope(deadline);
          std::optional<trace::ContextScope> trace_join;
          if (tctx.valid()) trace_join.emplace(tctx);
          proto::ReplyMessage done;
          done.header.type = wire::MessageType::reply;
          done.payload = invoke_internal(method_id, std::move(*args_holder),
                                         /*ledger=*/nullptr,
                                         /*oneway=*/false);
          promise.set_value(std::move(done));
        } catch (...) {
          promise.set_exception(std::current_exception());
        }
      });
  return promise.future();
}

wire::Buffer CallCore::finish_async_reply(Future<proto::ReplyMessage> settled,
                                          const AsyncReplyTicket& ticket) {
  proto::ReplyMessage reply;
  try {
    reply = settled.get();
  } catch (const DeadlineExceeded&) {
    if (ticket.deadline_counter) {
      ticket.deadline_counter->fetch_add(1, std::memory_order_relaxed);
    }
    if (ticket.async_deadline_counter) {
      ticket.async_deadline_counter->fetch_add(1, std::memory_order_relaxed);
    }
    introspect::FlightRecorder::global().record(
        introspect::EventKind::deadline, ErrorCode::deadline_exceeded,
        "async future cancelled past deadline");
    throw;
  } catch (const TransportError& e) {
    if (ticket.breakers && e.code() != ErrorCode::backpressure) {
      const auto transition =
          ticket.breakers->at(ticket.entry_index).on_failure();
      if (transition == resilience::CircuitBreaker::Transition::opened) {
        ticket.breakers->notify_trip(ticket.entry_index);
      }
    }
    throw;
  }
  // The fallback pipeline already fed breakers and re-raised error
  // replies; the async bearer hands those duties to this continuation.
  if (ticket.pipeline_complete) {
    if (ticket.latency) ticket.latency->record(ticket.watch.elapsed());
    return std::move(reply.payload);
  }
  // Any reply proves the channel works (even an error reply).
  if (ticket.breakers) ticket.breakers->at(ticket.entry_index).on_success();
  if (reply.header.type == wire::MessageType::request) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "request frame received where reply expected");
  }
  if (reply.header.request_id != ticket.expect_request_id) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "reply for a different request id");
  }
  if (reply.header.type == wire::MessageType::reply) {
    if (ticket.latency) ticket.latency->record(ticket.watch.elapsed());
    return std::move(reply.payload);
  }
  std::uint32_t code_raw = 0;
  std::string message;
  wire::decode_error_body(reply.payload.view(), code_raw, message);
  throw_error(static_cast<ErrorCode>(code_raw), message);
}

std::string CallCore::last_protocol() const {
  sync::LockGuard lock(mutex_);
  return last_protocol_;
}

}  // namespace ohpx::orb
