#include "ohpx/orb/ref_builder.hpp"

#include "ohpx/protocol/glue_wire.hpp"

namespace ohpx::orb {

RefBuilder::RefBuilder(Context& context, ServantPtr servant)
    : context_(context), servant_(std::move(servant)) {
  if (!servant_) {
    throw ObjectError(ErrorCode::internal, "RefBuilder: null servant");
  }
  type_name_ = std::string(servant_->type_name());
}

RefBuilder::RefBuilder(Context& context, ObjectId object_id)
    : context_(context), object_id_(object_id) {
  ServantPtr servant = context.find_servant(object_id);
  if (!servant) {
    throw ObjectError(ErrorCode::object_not_found,
                      "RefBuilder: object " + std::to_string(object_id) +
                          " is not hosted in this context");
  }
  type_name_ = std::string(servant->type_name());
}

void RefBuilder::ensure_activated() {
  if (object_id_ == kInvalidObject) {
    object_id_ = context_.activate(servant_);
    servant_.reset();
  }
}

RefBuilder& RefBuilder::glue(std::vector<cap::CapabilityPtr> capabilities,
                             const std::string& delegate) {
  ensure_activated();
  // Descriptors are captured *before* handing the instances to the server
  // chain, so client copies start from the same state.
  cap::CapabilityChain chain(std::move(capabilities));
  proto::GlueProtoData data;
  data.capabilities = chain.descriptors();
  data.delegate = proto::ProtocolEntry{delegate, {}};
  data.glue_id = context_.register_glue(object_id_, std::move(chain));

  proto::ProtocolEntry entry;
  entry.name = "glue";
  entry.proto_data = proto::encode_glue_proto_data(data);
  table_.add(std::move(entry));
  return *this;
}

RefBuilder& RefBuilder::shm() {
  table_.add(proto::ProtocolEntry{"shm", {}});
  return *this;
}

RefBuilder& RefBuilder::tcp() {
  table_.add(proto::ProtocolEntry{"tcp", {}});
  return *this;
}

RefBuilder& RefBuilder::nexus() {
  table_.add(proto::ProtocolEntry{"nexus-tcp", {}});
  return *this;
}

RefBuilder& RefBuilder::custom(proto::ProtocolEntry entry) {
  table_.add(std::move(entry));
  return *this;
}

ObjectRef RefBuilder::build() {
  ensure_activated();
  if (table_.empty()) {
    table_.add(proto::ProtocolEntry{"shm", {}});
    if (context_.tcp_enabled()) {
      table_.add(proto::ProtocolEntry{"tcp", {}});
    }
    table_.add(proto::ProtocolEntry{"nexus-tcp", {}});
  }
  return ObjectRef(object_id_, type_name_, context_.current_address(),
                   std::move(table_));
}

}  // namespace ohpx::orb
