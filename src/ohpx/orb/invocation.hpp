// Client-side invocation core shared by all stubs bound to one OR.
//
// Per call (paper §3.2): resolve the object's current address through the
// location service (falling back to the OR's home address), compute the
// placement, select the first applicable pool-allowed protocol from the
// OR's table, and fire.  Error replies are re-raised as typed exceptions;
// stale-reference replies (migration race) trigger a bounded re-resolve
// and retry.
//
// Fast path: the paper re-evaluates selection per request, but between two
// calls nothing that feeds the decision usually changed.  The selection
// inputs are exactly (object address, pool contents), so CallCore memoizes
// the chosen protocol keyed on (location epoch, pool generation) and
// revalidates both probes per call — a republish (migration, enable_tcp)
// or a pool edit invalidates the cache on the very next call, preserving
// the adaptivity contract while skipping the re-resolve, the table scan,
// the describe() string build and the per-call metric-name lookups.
// References carrying a protocol whose applicability depends on state
// outside that key (Protocol::applicability_is_stable() == false, e.g.
// relay) are never cached.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/common/future.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/orb/object_ref.hpp"
#include "ohpx/protocol/protocol.hpp"
#include "ohpx/resilience/breaker.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/resilience/retry.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/trace/trace.hpp"

namespace ohpx::orb {

class CallCore {
 public:
  CallCore(Context& context, ObjectRef ref);

  /// Marshals nothing — the caller provides the encoded argument payload
  /// (by value: move it in to avoid a copy; the buffer is consumed).
  /// Returns the reply payload.  Costs (marshalling, capability work, wire
  /// time) accrue to `ledger` when non-null.
  wire::Buffer invoke_raw(std::uint32_t method_id, wire::Buffer args,
                          CostLedger* ledger);

  /// Fire-and-forget variant: the server runs the method but returns only
  /// an empty delivery ack; results and application errors are dropped on
  /// the server (infrastructure errors — no such object, capability
  /// denied — still surface here).
  void invoke_oneway(std::uint32_t method_id, wire::Buffer args,
                     CostLedger* ledger);

  /// Asynchronous invocation: selection, header build and submission run
  /// on the calling thread; the returned future settles with the reply
  /// payload (or the typed error) when the exchange completes — off the
  /// reactor event loop when the selected protocol supports_async(), on a
  /// shared worker thread otherwise.  Unlike the synchronous path there
  /// is no retry loop: transient errors (including backpressure refusals,
  /// which this method throws synchronously) surface to the caller, who
  /// owns the re-submission decision for in-flight fan-in.  The ambient
  /// deadline cancels pending futures; the ambient trace context is
  /// stamped per call.  This CallCore must outlive settlement — callers
  /// holding it through CallCorePtr (stubs do) get that for free by
  /// capturing the pointer in a continuation.
  Future<wire::Buffer> invoke_async_raw(std::uint32_t method_id,
                                        wire::Buffer args);

  /// Per-call bookkeeping handed out by invoke_async_reply() and consumed
  /// by finish_async_reply(): which breaker entry the settlement feeds,
  /// the deadline-miss counter, and whether the reply already ran the full
  /// synchronous pipeline (worker-thread fallback — nothing left to do but
  /// hand over the payload).  Copyable by design: continuations capture it
  /// by value.
  struct AsyncReplyTicket {
    std::shared_ptr<resilience::BreakerSet> breakers;
    std::size_t entry_index = 0;
    metrics::MetricsRegistry::Counter* deadline_counter = nullptr;
    /// Async-settlement instrumentation: completion latency (submit to
    /// settlement) and the deadline-cancellation count, recorded in
    /// finish_async_reply — the continuation path's equivalents of the
    /// sync pipeline's kRmiLatency / kRmiDeadlineExceeded bookkeeping.
    metrics::LatencyHistogram* latency = nullptr;
    metrics::MetricsRegistry::Counter* async_deadline_counter = nullptr;
    /// Started at submit (invoke_async_reply resets it on entry).
    Stopwatch watch;
    /// Request id the reply must echo — the correlation sanity the sync
    /// pipeline gets from parse_reply_frame, applied at settlement.
    std::uint64_t expect_request_id = 0;
    bool pipeline_complete = false;
  };

  /// Split form of invoke_async_raw() for callers that decode the reply in
  /// a continuation of their own (stubs do): the submission half returns
  /// the protocol-level reply future and fills `ticket`; the caller folds
  /// one finish_async_reply() call into its decode continuation.  Folding
  /// matters under fan-in: every future stage is a shared-state
  /// allocation, a settlement under its lock, and a type-erased
  /// continuation — per call — so the stub path runs one merged stage
  /// where invoke_async_raw() + map would run two.
  Future<proto::ReplyMessage> invoke_async_reply(std::uint32_t method_id,
                                                 wire::Buffer args,
                                                 AsyncReplyTicket& ticket);

  /// Settlement half: breaker bookkeeping, error-reply decoding, payload
  /// extraction.  Call exactly once, with the settled reply future.
  static wire::Buffer finish_async_reply(Future<proto::ReplyMessage> settled,
                                         const AsyncReplyTicket& ticket);

  const ObjectRef& ref() const noexcept { return ref_; }
  Context& context() noexcept { return context_; }

  /// describe() of the protocol used by the most recent call — the
  /// observable for adaptivity tests and the Figure 4 experiment.
  std::string last_protocol() const;

  /// Resolves the current call target (public for diagnostics).
  proto::CallTarget resolve_target() const;

  /// The protocol that *would* be selected right now, without calling.
  /// Always performs a full re-evaluation (never consults the cache).
  std::string probe_protocol() const;

  /// Toggles the memoized selection fast path (on by default).  Off means
  /// every call re-resolves and re-scans exactly like the paper's literal
  /// rule — the benchmark baseline.
  void set_selection_cache(bool enabled) noexcept {
    cache_enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool selection_cache_enabled() const noexcept {
    return cache_enabled_.load(std::memory_order_relaxed);
  }

  /// Per-GP trace sampling override (innermost steering point: wins over
  /// the context override and the global sink mode).
  void set_trace_sampling(trace::Sampling mode, double ratio = 1.0) noexcept {
    trace_sampling_.set(mode, ratio);
  }
  void clear_trace_sampling() noexcept { trace_sampling_.clear(); }

  /// Per-call deadline budget: every call through this core mints an
  /// absolute deadline `budget` from now on the resilience clock,
  /// tightened against any ambient deadline, checked at every pipeline
  /// stage and carried over the wire.  Zero (the default) = unbounded.
  void set_deadline_budget(Nanoseconds budget) noexcept {
    deadline_budget_ns_.store(budget.count(), std::memory_order_relaxed);
  }
  Nanoseconds deadline_budget() const noexcept {
    return Nanoseconds(deadline_budget_ns_.load(std::memory_order_relaxed));
  }

  /// Per-GP retry policy override (innermost steering point: wins over the
  /// context override and the global policy).
  void set_retry_policy(const resilience::RetryPolicy& policy) {
    retry_policy_.set(policy);
  }
  void clear_retry_policy() { retry_policy_.clear(); }

  /// Installs per-protocol-entry circuit breakers (one per OR-table entry,
  /// fresh state).  A config with failure_threshold == 0 removes them —
  /// the default, costing the fast path one relaxed load.
  void set_breaker_config(const resilience::BreakerConfig& config);

  /// Breaker state of one protocol-table entry (closed when breakers are
  /// not enabled) — the observable for failover tests and metrics dumps.
  resilience::CircuitBreaker::State breaker_state(std::size_t entry) const;

  /// Installs a hook invoked each time a breaker entry opens (nullptr
  /// clears it).  Survives set_breaker_config(): the hook is re-applied to
  /// the replacement set.  The installer must clear the hook before any
  /// state it captures dies — async settlement tickets keep the breaker
  /// set (and therefore the hook) alive past this CallCore.
  void set_breaker_trip_hook(resilience::BreakerSet::TripHook hook);

 private:
  /// One memoized selection: valid while the location epoch and pool
  /// generation both still match.  `protocol` points into `protocols_`
  /// (owned by this CallCore, so the pointer is stable).  Entries are
  /// immutable once published (shared_ptr-to-const snapshots), so a hit
  /// copies one pointer instead of a CallTarget full of address strings.
  /// `location_version` is the service-wide edit counter at fill time: a
  /// single atomic load revalidates the entry while the location map is
  /// quiet, and only when *some* object republished do we pay the precise
  /// per-object epoch_of() probe.
  struct CachedSelection {
    proto::Protocol* protocol = nullptr;
    proto::CallTarget target;
    std::size_t entry_index = 0;  // position in protocols_, keys breakers
    std::uint64_t location_epoch = 0;
    std::uint64_t location_version = 0;
    std::uint64_t pool_generation = 0;
    std::string described;
    metrics::MetricsRegistry::Counter* calls_by_protocol = nullptr;
  };

  /// One call's resolved selection, cached or fresh.  On a hit `entry`
  /// pins the immutable snapshot, so target() stays valid for as long as
  /// the Selection lives; on a miss the freshly resolved target is owned
  /// by `resolved`.
  struct Selection {
    proto::Protocol* protocol = nullptr;
    proto::CallTarget resolved;                    // filled on misses only
    std::shared_ptr<const CachedSelection> entry;  // non-null on hits
    metrics::MetricsRegistry::Counter* proto_counter = nullptr;
    std::size_t entry_index = 0;
    bool from_cache = false;

    const proto::CallTarget& target() const noexcept {
      return entry ? entry->target : resolved;
    }
  };

  /// The memoized protocol selection shared by the sync and async paths:
  /// probe the invalidation signals, revalidate or drop the cached entry,
  /// gate it through its breaker, and fall back to a full re-selection
  /// (filling the cache) on a miss.  Bumps cache_hits_/cache_misses_ and
  /// last_protocol_.
  Selection select_for_call(
      bool use_cache,
      const std::shared_ptr<resilience::BreakerSet>& breakers);

  wire::Buffer invoke_internal(std::uint32_t method_id, wire::Buffer args,
                               CostLedger* ledger, bool oneway);

  /// Fast-path view of the resolved retry policy: one global-revision probe
  /// revalidates a memoized resolution, so the default-policy hot path
  /// never touches a mutex.  retry_policy_now() returns the full policy
  /// (failure path only).
  int max_attempts_now();
  resilience::RetryPolicy retry_policy_now();

  /// Breaker set snapshot (nullptr when breakers are off — the default).
  std::shared_ptr<resilience::BreakerSet> breaker_set() const;

  /// Waits out the policy backoff before a retry (no-op under the default
  /// zero-backoff policy); the schedule is created lazily on first use.
  void wait_backoff(std::optional<resilience::BackoffSchedule>& backoff,
                    CostLedger& cost);

  Context& context_;
  ObjectRef ref_;
  std::vector<proto::ProtocolPtr> protocols_;  // built once, reused (keeps
                                               // client capability state)
  bool cacheable_ = true;  // all table entries have stable applicability
  std::atomic<bool> cache_enabled_{true};
  trace::SamplingOverride trace_sampling_;

  // Resilience state.  The deadline budget is one relaxed load per call;
  // the resolved retry policy is memoized against the global revision
  // counter (two relaxed loads per call while policies are quiet); the
  // breaker set pointer is copied under the lock only when enabled.
  std::atomic<std::int64_t> deadline_budget_ns_{0};
  resilience::RetryOverride retry_policy_;
  std::atomic<std::uint64_t> retry_revision_seen_{0};
  std::atomic<int> cached_max_attempts_{3};
  std::atomic<bool> breakers_enabled_{false};

  // Interned hot-path metrics handles (stable for process lifetime).
  metrics::MetricsRegistry::Counter* calls_total_;
  metrics::MetricsRegistry::Counter* cache_hits_;
  metrics::MetricsRegistry::Counter* cache_misses_;
  metrics::MetricsRegistry::Counter* cache_invalidate_;
  metrics::MetricsRegistry::Counter* retries_;
  metrics::MetricsRegistry::Counter* backpressure_;
  metrics::MetricsRegistry::Counter* deadline_exceeded_;
  metrics::MetricsRegistry::Counter* breaker_opened_;
  metrics::MetricsRegistry::Counter* breaker_closed_;
  metrics::MetricsRegistry::Counter* async_deadline_cancelled_;
  metrics::LatencyHistogram* latency_;
  metrics::LatencyHistogram* async_latency_;

  mutable sync::Mutex mutex_{"orb.call_core"};
  std::shared_ptr<const CachedSelection> cache_ OHPX_GUARDED_BY(mutex_);
  std::string last_protocol_ OHPX_GUARDED_BY(mutex_);
  resilience::RetryPolicy cached_policy_ OHPX_GUARDED_BY(mutex_);
  std::shared_ptr<resilience::BreakerSet> breakers_ OHPX_GUARDED_BY(mutex_);
  resilience::BreakerSet::TripHook breaker_trip_hook_ OHPX_GUARDED_BY(mutex_);
};

using CallCorePtr = std::shared_ptr<CallCore>;

}  // namespace ohpx::orb
