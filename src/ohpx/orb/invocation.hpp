// Client-side invocation core shared by all stubs bound to one OR.
//
// Per call (paper §3.2): resolve the object's current address through the
// location service (falling back to the OR's home address), compute the
// placement, select the first applicable pool-allowed protocol from the
// OR's table, and fire.  Error replies are re-raised as typed exceptions;
// stale-reference replies (migration race) trigger a bounded re-resolve
// and retry.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "ohpx/common/annotations.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/orb/object_ref.hpp"
#include "ohpx/protocol/protocol.hpp"

namespace ohpx::orb {

class CallCore {
 public:
  CallCore(Context& context, ObjectRef ref);

  /// Marshals nothing — the caller provides the encoded argument payload.
  /// Returns the reply payload.  Costs (marshalling, capability work, wire
  /// time) accrue to `ledger` when non-null.
  wire::Buffer invoke_raw(std::uint32_t method_id, const wire::Buffer& args,
                          CostLedger* ledger);

  /// Fire-and-forget variant: the server runs the method but returns only
  /// an empty delivery ack; results and application errors are dropped on
  /// the server (infrastructure errors — no such object, capability
  /// denied — still surface here).
  void invoke_oneway(std::uint32_t method_id, const wire::Buffer& args,
                     CostLedger* ledger);

  const ObjectRef& ref() const noexcept { return ref_; }
  Context& context() noexcept { return context_; }

  /// describe() of the protocol used by the most recent call — the
  /// observable for adaptivity tests and the Figure 4 experiment.
  std::string last_protocol() const;

  /// Resolves the current call target (public for diagnostics).
  proto::CallTarget resolve_target() const;

  /// The protocol that *would* be selected right now, without calling.
  std::string probe_protocol() const;

 private:
  wire::Buffer invoke_internal(std::uint32_t method_id, const wire::Buffer& args,
                               CostLedger* ledger, bool oneway);

  static constexpr int kMaxAttempts = 3;

  Context& context_;
  ObjectRef ref_;
  std::vector<proto::ProtocolPtr> protocols_;  // built once, reused (keeps
                                               // client capability state)
  mutable std::mutex mutex_;
  std::string last_protocol_ OHPX_GUARDED_BY(mutex_);
};

using CallCorePtr = std::shared_ptr<CallCore>;

}  // namespace ohpx::orb
