// Object Reference (paper §3.1): uniquely identifies an Open HPC++ server
// object and carries the protocol table used to reach it.
//
// "As different GPs to a single server object may contain ORs with
// different protocol tables, the GPs may support different communication
// protocols" — a server can mint several ORs for one object (full-trust
// local OR, authenticated WAN OR, metered pay-per-use OR...), which is how
// the weather-service example implements per-client access policies.
//
// ORs are fully serializable, including the capability descriptors inside
// glue entries, so references (and the capabilities they carry) can be
// passed between processes.
#pragma once

#include <cstdint>
#include <string>

#include "ohpx/protocol/entry.hpp"
#include "ohpx/protocol/target.hpp"
#include "ohpx/wire/decoder.hpp"
#include "ohpx/wire/encoder.hpp"

namespace ohpx::orb {

using ObjectId = std::uint64_t;
inline constexpr ObjectId kInvalidObject = 0;

/// Serialization for the address block shared with the protocol layer.
void serialize_address(wire::Encoder& enc, const proto::ServerAddress& address);
proto::ServerAddress deserialize_address(wire::Decoder& dec);

class ObjectRef {
 public:
  ObjectRef() = default;
  ObjectRef(ObjectId object_id, std::string type_name,
            proto::ServerAddress home, proto::ProtoTable table)
      : object_id_(object_id),
        type_name_(std::move(type_name)),
        home_(std::move(home)),
        table_(std::move(table)) {}

  ObjectId object_id() const noexcept { return object_id_; }
  const std::string& type_name() const noexcept { return type_name_; }

  /// The address the object lived at when the OR was minted; the location
  /// service supersedes it after migration.
  const proto::ServerAddress& home() const noexcept { return home_; }

  const proto::ProtoTable& table() const noexcept { return table_; }
  proto::ProtoTable& mutable_table() noexcept { return table_; }

  bool valid() const noexcept { return object_id_ != kInvalidObject; }

  void wire_serialize(wire::Encoder& enc) const;
  static ObjectRef wire_deserialize(wire::Decoder& dec);

  /// Compact whole-reference encode/decode (hand a reference to a peer).
  Bytes to_bytes() const;
  static ObjectRef from_bytes(BytesView raw);

  friend bool operator==(const ObjectRef&, const ObjectRef&) = default;

 private:
  ObjectId object_id_ = kInvalidObject;
  std::string type_name_;
  proto::ServerAddress home_;
  proto::ProtoTable table_;
};

}  // namespace ohpx::orb
