#include "ohpx/orb/context.hpp"

#include <optional>

#include "ohpx/common/log.hpp"
#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/sync/mutex.hpp"
#include "ohpx/transport/inproc.hpp"
#include "ohpx/wire/buffer_pool.hpp"

namespace ohpx::orb {
namespace {

std::atomic<ContextId> g_next_context_id{1};
std::atomic<ObjectId> g_next_object_id{1};
std::atomic<std::uint32_t> g_next_glue_id{1};

// Bumps the per-context request counter and samples dispatch wall time
// into the aggregate and per-context histograms with one clock-read
// pair — and only when the introspection plane armed deep timing
// (metrics::enable_deep_timing): the disarmed constructor is a relaxed
// load and a branch, so the invocation fast path keeps its measured
// cost with no exporter in the process.
class DispatchTimer {
 public:
  DispatchTimer(metrics::MetricsRegistry::Counter* ctx_requests,
                metrics::LatencyHistogram* aggregate,
                metrics::LatencyHistogram* per_context) noexcept {
    if (metrics::deep_timing_enabled()) {
      ctx_requests->fetch_add(1, std::memory_order_relaxed);
      aggregate_ = aggregate;
      per_context_ = per_context;
      watch_.emplace();
    }
  }
  DispatchTimer(const DispatchTimer&) = delete;
  DispatchTimer& operator=(const DispatchTimer&) = delete;
  ~DispatchTimer() {
    if (!watch_.has_value()) return;
    const Nanoseconds elapsed = watch_->elapsed();
    aggregate_->record(elapsed);
    per_context_->record(elapsed);
  }

 private:
  metrics::LatencyHistogram* aggregate_ = nullptr;
  metrics::LatencyHistogram* per_context_ = nullptr;
  std::optional<Stopwatch> watch_;
};

}  // namespace

ContextId Context::allocate_id() noexcept {
  return g_next_context_id.fetch_add(1, std::memory_order_relaxed);
}

Context::Context(ContextId id, netsim::MachineId machine,
                 netsim::Topology& topology, LocationService& location)
    : id_(id),
      machine_(machine),
      topology_(topology),
      location_(location),
      endpoint_("ctx/" + std::to_string(id)),
      pool_(proto::ProtoPool::standard()),
      requests_counter_(metrics::MetricsRegistry::global().counter_handle(
          metrics::names::kServerRequests)),
      ctx_requests_counter_(metrics::MetricsRegistry::global().counter_handle(
          metrics::names::context_requests(id))),
      dispatch_latency_(metrics::MetricsRegistry::global().latency_handle(
          metrics::names::kServerDispatchLatency)),
      ctx_dispatch_latency_(metrics::MetricsRegistry::global().latency_handle(
          metrics::names::context_latency(id))) {
  transport::EndpointRegistry::instance().bind(
      endpoint_,
      [this](const wire::Buffer& frame) { return handle_frame(frame); });
}

Context::~Context() {
  transport::EndpointRegistry::instance().unbind(endpoint_);
  if (listener_) listener_->stop();
  // Forget the location of objects still hosted here; migrated-away
  // objects are someone else's to publish.
  sync::LockGuard lock(mutex_);
  for (const auto& [object_id, servant] : servants_) {
    location_.remove(object_id);
  }
}

void Context::enable_tcp() { enable_tcp("127.0.0.1", 0); }

void Context::enable_tcp(const std::string& listen_host, std::uint16_t port,
                         const std::string& advertise_host) {
  if (listener_) return;
  listener_ = std::make_unique<transport::TcpListener>(
      listen_host, port,
      [this](const wire::Buffer& frame) { return handle_frame(frame); });
  if (!advertise_host.empty()) {
    advertise_host_ = advertise_host;
  } else if (listen_host.empty() || listen_host == "0.0.0.0") {
    advertise_host_ = "127.0.0.1";  // peers cannot dial a wildcard bind
  } else {
    advertise_host_ = listen_host;
  }
  // Republish every hosted object so references pick up the TCP address.
  std::vector<ObjectId> hosted = hosted_objects();
  for (ObjectId object_id : hosted) {
    location_.publish(object_id, current_address());
  }
}

proto::ServerAddress Context::current_address() const {
  proto::ServerAddress address;
  address.context_id = id_;
  address.machine = machine_;
  address.endpoint = endpoint_;
  if (listener_) {
    address.tcp_host = advertise_host_;
    address.tcp_port = listener_->port();
  }
  return address;
}

ObjectId Context::activate(ServantPtr servant) {
  if (!servant) {
    throw ObjectError(ErrorCode::internal, "activate: null servant");
  }
  const ObjectId object_id =
      g_next_object_id.fetch_add(1, std::memory_order_relaxed);
  activate_with_id(object_id, std::move(servant));
  return object_id;
}

void Context::activate_with_id(ObjectId object_id, ServantPtr servant) {
  if (!servant) {
    throw ObjectError(ErrorCode::internal, "activate: null servant");
  }
  {
    sync::LockGuard lock(mutex_);
    servants_[object_id] = std::move(servant);
  }
  location_.publish(object_id, current_address());
}

void Context::deactivate(ObjectId object_id, bool forget_location) {
  {
    sync::LockGuard lock(mutex_);
    servants_.erase(object_id);
  }
  if (forget_location) {
    location_.remove(object_id);
    remove_glue_of(object_id);
  }
}

ServantPtr Context::find_servant(ObjectId object_id) const {
  sync::LockGuard lock(mutex_);
  const auto it = servants_.find(object_id);
  return it == servants_.end() ? nullptr : it->second;
}

bool Context::hosts(ObjectId object_id) const {
  sync::LockGuard lock(mutex_);
  return servants_.contains(object_id);
}

std::vector<ObjectId> Context::hosted_objects() const {
  sync::LockGuard lock(mutex_);
  std::vector<ObjectId> out;
  out.reserve(servants_.size());
  for (const auto& [object_id, servant] : servants_) out.push_back(object_id);
  return out;
}

std::uint32_t Context::register_glue(ObjectId object_id,
                                     cap::CapabilityChain chain) {
  const std::uint32_t glue_id =
      g_next_glue_id.fetch_add(1, std::memory_order_relaxed);
  register_glue_with_id(glue_id, object_id, std::move(chain));
  return glue_id;
}

void Context::register_glue_with_id(std::uint32_t glue_id, ObjectId object_id,
                                    cap::CapabilityChain chain) {
  auto binding = std::make_shared<GlueBinding>();
  binding->glue_id = glue_id;
  binding->object_id = object_id;
  binding->chain = std::move(chain);
  sync::LockGuard lock(mutex_);
  glue_bindings_[glue_id] = std::move(binding);
}

std::vector<std::shared_ptr<GlueBinding>> Context::glue_bindings_of(
    ObjectId object_id) const {
  sync::LockGuard lock(mutex_);
  std::vector<std::shared_ptr<GlueBinding>> out;
  for (const auto& [glue_id, binding] : glue_bindings_) {
    if (binding->object_id == object_id) out.push_back(binding);
  }
  return out;
}

std::shared_ptr<GlueBinding> Context::find_glue(std::uint32_t glue_id) const {
  sync::LockGuard lock(mutex_);
  const auto it = glue_bindings_.find(glue_id);
  return it == glue_bindings_.end() ? nullptr : it->second;
}

void Context::remove_glue_of(ObjectId object_id) {
  sync::LockGuard lock(mutex_);
  for (auto it = glue_bindings_.begin(); it != glue_bindings_.end();) {
    if (it->second->object_id == object_id) {
      it = glue_bindings_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Context::revoke_glue(std::uint32_t glue_id) {
  sync::LockGuard lock(mutex_);
  return glue_bindings_.erase(glue_id) != 0;
}

std::uint64_t Context::next_request_id() noexcept {
  const std::uint64_t seq =
      request_counter_.fetch_add(1, std::memory_order_relaxed);
  return (static_cast<std::uint64_t>(id_) << 40) | (seq & 0xffffffffffULL);
}

wire::Buffer Context::handle_frame(const wire::Buffer& frame) noexcept {
  requests_counter_->fetch_add(1, std::memory_order_relaxed);
  // The per-context series (requests counter + dispatch latency, the
  // exporter's per-context families) are deep instrumentation, armed
  // only by the introspection plane: disarmed dispatch pays one relaxed
  // load and a branch on top of the pre-existing aggregate counter, the
  // same cost contract tracing keeps (docs/observability.md).  Latency
  // covers decode + route + servant, error paths included — two
  // histograms from a single clock-read pair.
  DispatchTimer dispatch_timer(ctx_requests_counter_, dispatch_latency_,
                               ctx_dispatch_latency_);
  try {
    return handle_frame_or_throw(frame);
  } catch (const Error& e) {
    metrics::MetricsRegistry::global()
        .counter_handle(metrics::names::server_error(to_string(e.code())))
        ->fetch_add(1, std::memory_order_relaxed);
    wire::MessageHeader header;
    BytesView body;
    try {
      header = wire::decode_frame(frame.view(), body);
    } catch (...) {
      header = wire::MessageHeader{};
    }
    return error_frame(header, e.code(), e.what());
  } catch (const std::exception& e) {
    metrics::MetricsRegistry::global()
        .counter_handle(metrics::names::server_error(
            to_string(ErrorCode::remote_application_error)))
        ->fetch_add(1, std::memory_order_relaxed);
    wire::MessageHeader header;
    BytesView body;
    try {
      header = wire::decode_frame(frame.view(), body);
    } catch (...) {
      header = wire::MessageHeader{};
    }
    return error_frame(header, ErrorCode::remote_application_error, e.what());
  }
}

wire::Buffer Context::handle_frame_or_throw(const wire::Buffer& frame) {
  BytesView body;
  const wire::MessageHeader header = wire::decode_frame(frame.view(), body);
  const bool oneway = header.type == wire::MessageType::oneway;
  if (header.type != wire::MessageType::request && !oneway) {
    throw ProtocolError(ErrorCode::protocol_unknown,
                        "server received a non-request frame");
  }

  // Join the caller's trace: the wire extension carries the trace id and
  // the client span to parent under, so client and server spans land in
  // one tree even across processes.
  std::optional<trace::ContextScope> trace_scope;
  if (header.has_trace() &&
      (header.trace_flags & wire::kTraceFlagSampled) != 0 &&
      trace::TraceSink::active()) {
    trace::TraceContext adopted;
    adopted.trace_hi = header.trace_hi;
    adopted.trace_lo = header.trace_lo;
    adopted.span_id = header.trace_parent_span;
    adopted.sampled = true;
    trace_scope.emplace(adopted);
  }
  trace::Span server_span(trace::SpanKind::server, "server.dispatch");
  server_span.annotate_u64("obj", header.object_id);

  // Adopt the caller's deadline: install it as the ambient deadline so a
  // servant calling further objects spends the same budget, and refuse
  // dispatch outright when the budget is already gone — the client has
  // given up, work done now is wasted.
  std::optional<resilience::DeadlineScope> deadline_scope;
  if (header.has_deadline()) {
    deadline_scope.emplace(header.deadline_ns);
  }
  if (resilience::deadline_expired(resilience::current_deadline_ns())) {
    throw DeadlineExceeded("deadline exceeded before server dispatch");
  }

  // Zero-copy dispatch: only glue processing mutates the payload, so the
  // common path decodes arguments straight out of the request frame.
  BytesView payload_view = body;
  wire::Buffer payload;

  cap::CallContext call;
  call.request_id = header.request_id;
  call.object_id = header.object_id;
  call.method_id = header.method_or_code;
  call.direction = cap::Direction::request;
  // Server side does not know the caller's machine; capabilities only
  // evaluate placement-dependent applicability on the client.
  call.placement = netsim::Placement{};
  call.deadline_ns = resilience::current_deadline_ns();

  std::shared_ptr<GlueBinding> binding;
  if (header.flags & wire::kFlagGlueProcessed) {
    payload = wire::Buffer(body.data(), body.size());
    const std::uint32_t glue_id = proto::strip_glue_id(payload);
    binding = find_glue(glue_id);
    if (!binding) {
      throw CapabilityDenied(ErrorCode::capability_unknown,
                             "no glue binding " + std::to_string(glue_id) +
                                 " in context " + std::to_string(id_));
    }
    if (binding->object_id != header.object_id) {
      throw CapabilityDenied(
          ErrorCode::capability_denied,
          "glue binding does not belong to the addressed object");
    }
    binding->chain.process_inbound(payload, call);
    payload_view = payload.view();
  }

  ServantPtr servant = find_servant(header.object_id);
  if (!servant) {
    // Distinguish "moved elsewhere" from "gone": helps clients rebind.
    const auto current = location_.resolve(header.object_id);
    if (current && current->context_id != id_) {
      throw ObjectError(ErrorCode::stale_reference,
                        "object " + std::to_string(header.object_id) +
                            " migrated to context " +
                            std::to_string(current->context_id));
    }
    throw ObjectError(ErrorCode::object_not_found,
                      "object " + std::to_string(header.object_id) +
                          " not hosted in context " + std::to_string(id_));
  }

  wire::Decoder in(payload_view);
  // Pooled: released below once copied into the reply frame, so a busy
  // server recycles one warm result buffer per thread instead of
  // allocating per dispatch.
  wire::Buffer result = wire::BufferPool::local().acquire();
  wire::Encoder out(result);
  {
    trace::Span servant_span(trace::SpanKind::servant, "servant.dispatch");
    servant_span.annotate_u64("method", header.method_or_code);
    if (oneway) {
      // Fire-and-forget: the handler runs, but neither its result nor its
      // application errors travel back (Nexus RSR semantics).  The empty
      // ack only confirms delivery.
      try {
        servant->dispatch(header.method_or_code, in, out);
      } catch (const std::exception& e) {
        log_warn("orb", "oneway handler error (dropped): ", e.what());
      }
      result.clear();
    } else {
      servant->dispatch(header.method_or_code, in, out);
    }
  }

  wire::MessageHeader reply_header;
  reply_header.type = wire::MessageType::reply;
  reply_header.request_id = header.request_id;
  reply_header.object_id = header.object_id;
  reply_header.method_or_code = 0;
  // Echo the transport correlation id so multiplexed replies demux even
  // when the connection reorders or batches them.
  if (header.has_correlation()) {
    reply_header.flags |= wire::kFlagCorrelation;
    reply_header.correlation_id = header.correlation_id;
  }

  if (binding && !oneway) {
    call.direction = cap::Direction::reply;
    binding->chain.process_outbound(result, call);
    reply_header.flags |= wire::kFlagGlueProcessed;
  }
  // Pooled reply frame: on the in-process path the client releases it back
  // to this thread's pool after decoding, closing the recycle loop.
  wire::Buffer reply_frame = wire::BufferPool::local().acquire(
      wire::kHeaderSize + result.size());
  wire::encode_frame_into(reply_frame, reply_header, result.view());
  wire::BufferPool::local().release(std::move(result));
  return reply_frame;
}

wire::Buffer Context::error_frame(const wire::MessageHeader& request_header,
                                  ErrorCode code,
                                  const std::string& message) const {
  wire::MessageHeader header;
  header.type = wire::MessageType::error_reply;
  header.request_id = request_header.request_id;
  header.object_id = request_header.object_id;
  header.method_or_code = static_cast<std::uint32_t>(code);
  // Error replies demux like ordinary replies on a multiplexed connection.
  if (request_header.has_correlation()) {
    header.flags |= wire::kFlagCorrelation;
    header.correlation_id = request_header.correlation_id;
  }
  const wire::Buffer body =
      wire::encode_error_body(static_cast<std::uint32_t>(code), message);
  return wire::encode_frame(header, body.view());
}

}  // namespace ohpx::orb
