// Servant: the server-side implementation object behind an OR.
//
// A servant implements dispatch(): decode arguments, run the method, encode
// the result.  The unmarshal/marshal helpers below keep hand-written
// skeletons to a switch statement per method.  Migratable servants
// additionally implement snapshot()/restore() (the paper's object migration
// facility, §4.3, citing [1] EMOP).
#pragma once

#include <memory>
#include <string_view>
#include <tuple>

#include "ohpx/common/bytes.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::orb {

class Servant {
 public:
  virtual ~Servant() = default;

  /// Stable type name, checked against the OR's type on typed binding.
  virtual std::string_view type_name() const noexcept = 0;

  /// Executes method `method_id`: reads arguments from `in`, writes the
  /// result to `out`.  Unknown ids must throw
  /// ObjectError(method_not_found).  Application errors may throw any
  /// exception; the server pipeline converts them to error replies.
  virtual void dispatch(std::uint32_t method_id, wire::Decoder& in,
                        wire::Encoder& out) = 0;

  // -- migration hooks (default: not migratable) --

  virtual bool migratable() const noexcept { return false; }

  /// Serializes the servant's state for transfer.
  virtual Bytes snapshot() const {
    throw Error(ErrorCode::not_migratable,
                std::string(type_name()) + " does not support snapshot");
  }

  /// Restores state captured by snapshot() on a fresh instance.
  virtual void restore(BytesView snapshot_bytes) {
    (void)snapshot_bytes;
    throw Error(ErrorCode::not_migratable,
                std::string(type_name()) + " does not support restore");
  }
};

using ServantPtr = std::shared_ptr<Servant>;

/// Decodes an argument tuple in declaration order.
template <typename... Args>
std::tuple<Args...> unmarshal(wire::Decoder& in) {
  // Braced-init-list evaluation order guarantees left-to-right decode.
  return std::tuple<Args...>{wire::deserialize<Args>(in)...};
}

/// Encodes a method result.
template <typename T>
void marshal_result(wire::Encoder& out, const T& value) {
  wire::serialize(out, value);
}

/// Throws the canonical unknown-method error.
[[noreturn]] inline void unknown_method(std::string_view type,
                                        std::uint32_t method_id) {
  throw ObjectError(ErrorCode::method_not_found,
                    std::string(type) + ": unknown method id " +
                        std::to_string(method_id));
}

}  // namespace ohpx::orb
