// Offline attenuation of object references.
//
// A holder of a reference whose glue entries carry a delegation capability
// can mint a narrower reference for a third party without contacting the
// server: attenuate_reference() rewrites every delegation descriptor in
// the OR with one more caveat (re-folding the bearer token), leaving all
// other capabilities and protocols untouched.  The server's verifier
// accepts the new token because the fold is anchored in its root key.
#pragma once

#include <string>

#include "ohpx/orb/object_ref.hpp"

namespace ohpx::orb {

/// Returns a copy of `ref` in which every delegation capability has been
/// narrowed by `caveat`.  Throws CapabilityDenied(capability_unknown) if
/// the reference carries no delegation capability (nothing to attenuate).
ObjectRef attenuate_reference(const ObjectRef& ref, const std::string& caveat);

}  // namespace ohpx::orb
