#include "ohpx/orb/attenuate.hpp"

#include "ohpx/capability/builtin/delegation.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/protocol/glue_wire.hpp"

namespace ohpx::orb {

ObjectRef attenuate_reference(const ObjectRef& ref, const std::string& caveat) {
  proto::ProtoTable table;
  bool attenuated = false;

  for (const auto& entry : ref.table().entries()) {
    if (entry.name != "glue") {
      table.add(entry);
      continue;
    }
    proto::GlueProtoData data = proto::decode_glue_proto_data(entry.proto_data);
    for (auto& descriptor : data.capabilities) {
      if (descriptor.kind != "delegation") continue;
      const auto bearer = std::dynamic_pointer_cast<cap::DelegationCapability>(
          cap::DelegationCapability::from_descriptor(descriptor));
      descriptor = bearer->attenuate(caveat)->descriptor();
      attenuated = true;
    }
    table.add(proto::ProtocolEntry{"glue", proto::encode_glue_proto_data(data)});
  }

  if (!attenuated) {
    throw CapabilityDenied(
        ErrorCode::capability_unknown,
        "reference carries no delegation capability to attenuate");
  }
  return ObjectRef(ref.object_id(), ref.type_name(), ref.home(),
                   std::move(table));
}

}  // namespace ohpx::orb
