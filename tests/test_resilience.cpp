// Resilience layer (docs/resilience.md): deadline budgets minted at the
// stub and enforced at every pipeline stage, policy-driven retry with a
// deterministic backoff schedule, per-protocol-entry circuit breakers that
// fail a call over to the next OR-table entry, and the seeded fault plans
// the chaos harness is built on.  Every time-dependent path here runs on
// an installed ManualClock — no wall-clock sleeps anywhere.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/orb/servant.hpp"
#include "ohpx/resilience/breaker.hpp"
#include "ohpx/resilience/clock.hpp"
#include "ohpx/resilience/deadline.hpp"
#include "ohpx/resilience/fault_plan.hpp"
#include "ohpx/resilience/retry.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/channel.hpp"
#include "ohpx/transport/inproc.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;
using namespace std::chrono_literals;

constexpr std::int64_t kMs = 1'000'000;

// ---- deadline arithmetic ----------------------------------------------------------

TEST(Deadline, ExpiryAndRemainingOnTheInstalledClock) {
  resilience::ScopedManualClock scoped(/*start_ns=*/100);

  EXPECT_TRUE(resilience::deadline_expired(50));
  EXPECT_TRUE(resilience::deadline_expired(100)) << "expiry is inclusive";
  EXPECT_FALSE(resilience::deadline_expired(150));
  EXPECT_FALSE(resilience::deadline_expired(resilience::kNoDeadline))
      << "the sentinel never expires";

  EXPECT_EQ(resilience::deadline_remaining(150).count(), 50);
  EXPECT_EQ(resilience::deadline_remaining(40).count(), 0)
      << "remaining is clamped at zero";
  EXPECT_GT(resilience::deadline_remaining(resilience::kNoDeadline),
            std::chrono::hours(1));
}

TEST(Deadline, TightenPrefersTheEarlierRealDeadline) {
  using resilience::kNoDeadline;
  using resilience::tighten_deadline;
  EXPECT_EQ(tighten_deadline(kNoDeadline, kNoDeadline), kNoDeadline);
  EXPECT_EQ(tighten_deadline(kNoDeadline, 70), 70);
  EXPECT_EQ(tighten_deadline(70, kNoDeadline), 70);
  EXPECT_EQ(tighten_deadline(70, 90), 70);
  EXPECT_EQ(tighten_deadline(90, 70), 70);
}

TEST(Deadline, ScopeTightensButNeverExtendsAndRestores) {
  ASSERT_EQ(resilience::current_deadline_ns(), resilience::kNoDeadline);
  {
    resilience::DeadlineScope outer(100);
    EXPECT_EQ(resilience::current_deadline_ns(), 100);
    {
      resilience::DeadlineScope looser(200);
      EXPECT_EQ(resilience::current_deadline_ns(), 100)
          << "a nested call cannot extend its caller's budget";
    }
    {
      resilience::DeadlineScope tighter(50);
      EXPECT_EQ(resilience::current_deadline_ns(), 50);
    }
    EXPECT_EQ(resilience::current_deadline_ns(), 100);
  }
  EXPECT_EQ(resilience::current_deadline_ns(), resilience::kNoDeadline);
}

// ---- retry policy -----------------------------------------------------------------

TEST(Retry, ClassificationIsFixed) {
  // Transient: channel faults, corruption caught by a checksum, migration
  // races.
  for (const ErrorCode code :
       {ErrorCode::transport_closed, ErrorCode::transport_connect_failed,
        ErrorCode::transport_io, ErrorCode::transport_unknown_endpoint,
        ErrorCode::wire_truncated, ErrorCode::wire_bad_checksum,
        ErrorCode::capability_bad_payload, ErrorCode::stale_reference}) {
    EXPECT_TRUE(resilience::is_retryable(code)) << to_string(code);
  }
  // Final answers: refusals of authority, missing objects, expired budget.
  for (const ErrorCode code :
       {ErrorCode::capability_denied, ErrorCode::capability_expired,
        ErrorCode::capability_exhausted, ErrorCode::capability_auth_failed,
        ErrorCode::object_not_found, ErrorCode::method_not_found,
        ErrorCode::deadline_exceeded, ErrorCode::remote_application_error}) {
    EXPECT_FALSE(resilience::is_retryable(code)) << to_string(code);
  }
}

TEST(Retry, BackoffSequenceIsExponentialAndCapped) {
  resilience::RetryPolicy policy;
  policy.initial_backoff = 1ms;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = 8ms;
  policy.jitter = 0.0;

  resilience::BackoffSchedule schedule(policy);
  EXPECT_EQ(schedule.next().count(), 1 * kMs);
  EXPECT_EQ(schedule.next().count(), 2 * kMs);
  EXPECT_EQ(schedule.next().count(), 4 * kMs);
  EXPECT_EQ(schedule.next().count(), 8 * kMs);
  EXPECT_EQ(schedule.next().count(), 8 * kMs) << "capped at max_backoff";
}

TEST(Retry, JitteredBackoffIsAPureFunctionOfTheSeed) {
  resilience::RetryPolicy policy;
  policy.initial_backoff = 1ms;
  policy.max_backoff = 100ms;
  policy.jitter = 0.5;
  policy.seed = 0xfeedULL;

  const auto sequence_of = [](const resilience::RetryPolicy& p) {
    resilience::BackoffSchedule schedule(p);
    std::vector<std::int64_t> out;
    for (int i = 0; i < 6; ++i) out.push_back(schedule.next().count());
    return out;
  };

  const auto first = sequence_of(policy);
  EXPECT_EQ(first, sequence_of(policy))
      << "same (policy, seed) => identical backoff sequence";

  resilience::RetryPolicy reseeded = policy;
  reseeded.seed = 0xfeedULL + 1;
  EXPECT_NE(first, sequence_of(reseeded));

  // Every jittered delay stays inside [delay*(1-j), delay*(1+j)].
  double nominal = 1.0 * kMs;
  for (const std::int64_t delay : first) {
    EXPECT_GE(delay, static_cast<std::int64_t>(nominal * 0.5) - 1);
    EXPECT_LE(delay, static_cast<std::int64_t>(nominal * 1.5) + 1);
    nominal = std::min(nominal * 2.0, 100.0 * kMs);
  }
}

TEST(Retry, InnermostScopeWinsAndEditsBumpTheRevision) {
  resilience::RetryOverride core;
  resilience::RetryOverride context;

  EXPECT_EQ(resilience::resolve_retry_policy(core, context),
            resilience::RetryPolicy{});

  resilience::RetryPolicy global_policy;
  global_policy.max_attempts = 7;
  const std::uint64_t before = resilience::retry_policy_revision();
  resilience::set_global_retry_policy(global_policy);
  EXPECT_GT(resilience::retry_policy_revision(), before)
      << "memoized resolutions must notice the edit";
  EXPECT_EQ(resilience::resolve_retry_policy(core, context).max_attempts, 7);

  resilience::RetryPolicy context_policy;
  context_policy.max_attempts = 5;
  context.set(context_policy);
  EXPECT_EQ(resilience::resolve_retry_policy(core, context).max_attempts, 5);

  resilience::RetryPolicy core_policy;
  core_policy.max_attempts = 2;
  core.set(core_policy);
  EXPECT_EQ(resilience::resolve_retry_policy(core, context).max_attempts, 2)
      << "per-GP beats per-context beats global";

  core.clear();
  EXPECT_EQ(resilience::resolve_retry_policy(core, context).max_attempts, 5);
  context.clear();
  resilience::clear_global_retry_policy();
  EXPECT_EQ(resilience::resolve_retry_policy(core, context),
            resilience::RetryPolicy{});
}

// ---- circuit breaker --------------------------------------------------------------

TEST(Breaker, TripCooldownProbeClose) {
  resilience::ScopedManualClock scoped;
  resilience::BreakerConfig config;
  config.failure_threshold = 2;
  config.cooldown = 100ms;
  resilience::CircuitBreaker breaker(config);
  using State = resilience::CircuitBreaker::State;
  using Transition = resilience::CircuitBreaker::Transition;

  bool admitted = false;
  EXPECT_EQ(breaker.allow(admitted), Transition::none);
  EXPECT_TRUE(admitted);
  EXPECT_EQ(breaker.state(), State::closed);

  EXPECT_EQ(breaker.on_failure(), Transition::none) << "below the threshold";
  EXPECT_EQ(breaker.on_failure(), Transition::opened);
  EXPECT_EQ(breaker.state(), State::open);

  breaker.allow(admitted);
  EXPECT_FALSE(admitted) << "open entries are inapplicable during cooldown";

  scoped.clock().advance(99ms);
  breaker.allow(admitted);
  EXPECT_FALSE(admitted);

  scoped.clock().advance(1ms);
  EXPECT_EQ(breaker.allow(admitted), Transition::probing);
  EXPECT_TRUE(admitted) << "cooldown elapsed: one probe is admitted";
  EXPECT_EQ(breaker.state(), State::half_open);

  bool second = true;
  EXPECT_EQ(breaker.allow(second), Transition::none);
  EXPECT_FALSE(second) << "only one probe may be in flight";

  EXPECT_EQ(breaker.on_success(), Transition::closed);
  EXPECT_EQ(breaker.state(), State::closed);
  breaker.allow(admitted);
  EXPECT_TRUE(admitted);
}

TEST(Breaker, FailedProbeReopensAndRestartsTheCooldown) {
  resilience::ScopedManualClock scoped;
  resilience::BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown = 50ms;
  resilience::CircuitBreaker breaker(config);
  using State = resilience::CircuitBreaker::State;
  using Transition = resilience::CircuitBreaker::Transition;

  EXPECT_EQ(breaker.on_failure(), Transition::opened);
  scoped.clock().advance(50ms);
  bool admitted = false;
  EXPECT_EQ(breaker.allow(admitted), Transition::probing);
  ASSERT_TRUE(admitted);

  EXPECT_EQ(breaker.on_failure(), Transition::opened) << "probe failed";
  EXPECT_EQ(breaker.state(), State::open);
  breaker.allow(admitted);
  EXPECT_FALSE(admitted) << "the cooldown restarted at the failed probe";
  scoped.clock().advance(50ms);
  breaker.allow(admitted);
  EXPECT_TRUE(admitted);
  EXPECT_EQ(breaker.on_success(), Transition::closed);
}

TEST(Breaker, DisabledConfigIsInert) {
  resilience::CircuitBreaker breaker(resilience::BreakerConfig{});
  using Transition = resilience::CircuitBreaker::Transition;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(breaker.on_failure(), Transition::none);
  }
  bool admitted = false;
  EXPECT_EQ(breaker.allow(admitted), Transition::none);
  EXPECT_TRUE(admitted);
  EXPECT_EQ(breaker.state(), resilience::CircuitBreaker::State::closed);
}

// ---- fault plans ------------------------------------------------------------------

TEST(FaultPlan, ScriptedFaultsHitTheirExactCallIndices) {
  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::drop},
                       {2, resilience::FaultKind::corrupt}};
  plan.add("ep", schedule);
  auto& injector = resilience::FaultInjector::instance();
  ASSERT_TRUE(injector.active());

  EXPECT_EQ(injector.decide("ep").kind, resilience::FaultKind::drop);
  EXPECT_EQ(injector.decide("ep").kind, resilience::FaultKind::none);
  EXPECT_EQ(injector.decide("ep").kind, resilience::FaultKind::corrupt);
  EXPECT_EQ(injector.call_count("ep"), 3u);

  EXPECT_EQ(injector.decide("elsewhere").kind, resilience::FaultKind::none)
      << "unscheduled endpoints are counted but never faulted";
  EXPECT_EQ(injector.call_count("elsewhere"), 1u);
  EXPECT_EQ(injector.total_calls(), 4u);
}

TEST(FaultPlan, SeededStreamsAreReproduciblePerEndpoint) {
  resilience::FaultSchedule schedule;
  schedule.drop_rate = 0.2;
  schedule.corrupt_rate = 0.2;
  schedule.seed = 42;

  const auto stream_of = [&](const std::string& endpoint) {
    resilience::FaultInjector::instance().set_plan(endpoint, schedule);
    std::vector<resilience::FaultKind> kinds;
    for (int i = 0; i < 64; ++i) {
      kinds.push_back(resilience::FaultInjector::instance().decide(endpoint).kind);
    }
    return kinds;
  };

  resilience::ScopedFaultPlan plan;
  const auto first = stream_of("ep-a");
  EXPECT_EQ(first, stream_of("ep-a"))
      << "set_plan resets the stream; same seed => same fault sequence";
  EXPECT_NE(first, stream_of("ep-b"))
      << "the endpoint name is mixed into the seed";
  EXPECT_GT(std::count(first.begin(), first.end(),
                       resilience::FaultKind::none),
            0);
  EXPECT_LT(std::count(first.begin(), first.end(),
                       resilience::FaultKind::none),
            64);
}

// ---- pipeline integration ---------------------------------------------------------

// Client and server on different machines of one LAN, so nexus-tcp (the
// sim transport) carries every call and the fault injector can reach it.
class ResilienceFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lan_ = world_.add_lan("lan");
    m_client_ = world_.add_machine("client", lan_);
    m_server_ = world_.add_machine("server", lan_);
    client_ctx_ = &world_.create_context(m_client_);
    server_ctx_ = &world_.create_context(m_server_);
  }

  orb::ObjectRef make_echo_ref() {
    servant_ = std::make_shared<EchoServant>();
    return orb::RefBuilder(*server_ctx_, servant_).nexus().build();
  }

  static std::uint64_t counter(const char* name) {
    return metrics::MetricsRegistry::global().counter(name);
  }

  /// Replaces the server's in-proc endpoint handler; returns the original
  /// so tests can restore it (or wrap it).
  transport::FrameHandler sabotage_endpoint(transport::FrameHandler handler) {
    auto& registry = transport::EndpointRegistry::instance();
    const transport::FrameHandler original =
        registry.lookup(server_ctx_->endpoint_name());
    registry.bind(server_ctx_->endpoint_name(), std::move(handler));
    return original;
  }

  void restore_endpoint(const transport::FrameHandler& original) {
    transport::EndpointRegistry::instance().bind(server_ctx_->endpoint_name(),
                                                 original);
  }

  runtime::World world_;
  netsim::LanId lan_{};
  netsim::MachineId m_client_{}, m_server_{};
  orb::Context* client_ctx_ = nullptr;
  orb::Context* server_ctx_ = nullptr;
  std::shared_ptr<EchoServant> servant_;
};

TEST_F(ResilienceFixture, DeadlineStopsTheRetryLoop) {
  resilience::ScopedManualClock scoped;
  EchoPointer gp(*client_ctx_, make_echo_ref());
  gp->set_deadline_budget(1ms);

  // Every attempt eats 2ms of virtual time and dies in the transport: the
  // first retry finds the 1ms budget spent and gives up with
  // deadline_exceeded instead of retrying forever.
  const auto original = sabotage_endpoint(
      [&scoped](const wire::Buffer&) -> wire::Buffer {
        scoped.clock().advance(2ms);
        throw TransportError(ErrorCode::transport_closed, "injected outage");
      });

  const std::uint64_t deadline_before = counter("rmi.deadline_exceeded");
  try {
    gp->ping();
    FAIL() << "the call cannot succeed";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.code(), ErrorCode::deadline_exceeded);
  }
  EXPECT_EQ(counter("rmi.deadline_exceeded"), deadline_before + 1);
  EXPECT_EQ(resilience::current_deadline_ns(), resilience::kNoDeadline)
      << "the minted deadline must not leak out of the call";

  restore_endpoint(original);
  EXPECT_EQ(gp->ping(), 1u) << "sabotage never reached the servant";
}

TEST_F(ResilienceFixture, ExpiredWireDeadlineRefusesServerDispatch) {
  resilience::ScopedManualClock scoped;
  EchoPointer gp(*client_ctx_, make_echo_ref());
  gp->set_deadline_budget(1ms);

  // The frame arrives "late": virtual time jumps past the carried deadline
  // before the server pipeline runs, so dispatch is refused server-side
  // and the error reply carries deadline_exceeded back.
  const transport::FrameHandler original =
      transport::EndpointRegistry::instance().lookup(
          server_ctx_->endpoint_name());
  sabotage_endpoint([&scoped, original](const wire::Buffer& frame) {
    scoped.clock().advance(2ms);
    return original(frame);
  });

  try {
    gp->ping();
    FAIL() << "the server must refuse to dispatch an expired call";
  } catch (const DeadlineExceeded& e) {
    EXPECT_EQ(e.code(), ErrorCode::deadline_exceeded);
  }
  EXPECT_EQ(servant_->pings(), 0u)
      << "expiry is checked before the servant runs";

  restore_endpoint(original);
  gp->set_deadline_budget(Nanoseconds{0});
  EXPECT_EQ(gp->ping(), 1u);
}

// Reads the ambient deadline inside servant dispatch — the observable for
// wire propagation and server-side adoption.
class DeadlineProbeServant final : public orb::Servant {
 public:
  static constexpr std::string_view kTypeName = "DeadlineProbe";
  static constexpr std::uint32_t kRead = 1;

  std::string_view type_name() const noexcept override { return kTypeName; }
  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override {
    (void)in;
    if (method_id != kRead) orb::unknown_method(kTypeName, method_id);
    orb::marshal_result(out, resilience::current_deadline_ns());
  }
};

class DeadlineProbeStub : public orb::ObjectStub {
 public:
  static constexpr std::string_view kTypeName = DeadlineProbeServant::kTypeName;
  using ObjectStub::ObjectStub;
  std::int64_t read_deadline() {
    return call<std::int64_t>(DeadlineProbeServant::kRead);
  }
};

TEST_F(ResilienceFixture, ServerAdoptsTheWireDeadlineAcrossThreads) {
  // TCP is the two-process shape: the server handles the frame on its
  // acceptor thread, so the ambient deadline can only arrive via the wire
  // extension — never via the client thread's thread-local.
  resilience::ScopedManualClock scoped;
  scoped.clock().set(1000);
  server_ctx_->enable_tcp();
  auto ref =
      orb::RefBuilder(*server_ctx_, std::make_shared<DeadlineProbeServant>())
          .tcp()
          .build();
  orb::GlobalPointer<DeadlineProbeStub> gp(*client_ctx_, ref);

  EXPECT_EQ(gp->read_deadline(), resilience::kNoDeadline)
      << "no budget, no header extension, no server-side deadline";

  gp->set_deadline_budget(5s);
  EXPECT_EQ(gp->read_deadline(), 1000 + 5'000'000'000)
      << "deadline = mint time + budget, adopted verbatim on the server";
}

TEST_F(ResilienceFixture, BreakerOpensAndSelectionFailsOverToTcp) {
  trace::TraceSink::global().set_sampling(trace::Sampling::always);
  trace::TraceSink::global().clear();

  server_ctx_->enable_tcp();
  servant_ = std::make_shared<EchoServant>();
  // Preference order: nexus-tcp (entry 0) then tcp (entry 1).
  auto ref = orb::RefBuilder(*server_ctx_, servant_).nexus().tcp().build();
  EchoPointer gp(*client_ctx_, ref);
  resilience::BreakerConfig config;
  config.failure_threshold = 2;
  config.cooldown = 100ms;
  gp->set_breaker_config(config);

  const auto original = sabotage_endpoint(
      [](const wire::Buffer&) -> wire::Buffer {
        throw TransportError(ErrorCode::transport_closed, "nexus is down");
      });

  // Attempt 1 and 2 burn the nexus entry's threshold; attempt 3 (the last
  // of the default 3-attempt policy) finds the entry open, skips it, and
  // lands on tcp — the call still succeeds.
  const std::uint64_t retries_before = counter("rmi.retries");
  const std::uint64_t opened_before = counter("rmi.breaker.opened");
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->last_protocol(), "tcp");
  EXPECT_EQ(gp->breaker_state(0), resilience::CircuitBreaker::State::open);
  EXPECT_EQ(gp->breaker_state(1), resilience::CircuitBreaker::State::closed);
  EXPECT_EQ(counter("rmi.retries"), retries_before + 2);
  EXPECT_EQ(counter("rmi.breaker.opened"), opened_before + 1);

  const trace::TraceSnapshot snap = trace::TraceSink::global().snapshot();
  std::size_t open_events = 0;
  for (const auto& span : snap.spans) {
    if (std::string_view(span.name) == "breaker.open") ++open_events;
  }
  EXPECT_EQ(open_events, 1u);

  restore_endpoint(original);
  trace::TraceSink::global().set_sampling(trace::Sampling::off);
  trace::TraceSink::global().clear();
}

TEST_F(ResilienceFixture, BreakerRecoversAfterCooldownProbe) {
  resilience::ScopedManualClock scoped;
  server_ctx_->enable_tcp();
  servant_ = std::make_shared<EchoServant>();
  auto ref = orb::RefBuilder(*server_ctx_, servant_).nexus().tcp().build();
  EchoPointer gp(*client_ctx_, ref);
  // The selection cache would pin the failover winner until the next
  // invalidation (see docs/resilience.md); disable it so every call
  // re-evaluates the table and the recovered entry gets its probe.
  gp->set_selection_cache(false);
  resilience::BreakerConfig config;
  config.failure_threshold = 1;
  config.cooldown = 100ms;
  gp->set_breaker_config(config);

  const auto original = sabotage_endpoint(
      [](const wire::Buffer&) -> wire::Buffer {
        throw TransportError(ErrorCode::transport_closed, "nexus is down");
      });

  EXPECT_EQ(gp->ping(), 1u) << "first attempt trips the breaker, retry "
                               "fails over to tcp";
  EXPECT_EQ(gp->last_protocol(), "tcp");
  EXPECT_EQ(gp->breaker_state(0), resilience::CircuitBreaker::State::open);

  // The endpoint heals, but the cooldown has not elapsed: calls keep
  // avoiding the tripped entry.
  restore_endpoint(original);
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(gp->last_protocol(), "tcp");

  // Cooldown elapses on the virtual clock: the next call is admitted as
  // the half-open probe, succeeds, and closes the breaker — traffic is
  // back on the preferred entry with no configuration change.
  scoped.clock().advance(100ms);
  EXPECT_EQ(gp->ping(), 3u);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");
  EXPECT_EQ(gp->breaker_state(0), resilience::CircuitBreaker::State::closed);
  EXPECT_EQ(gp->ping(), 4u);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");
}

TEST_F(ResilienceFixture, ScriptedDropIsRetriedTransparently) {
  EchoPointer gp(*client_ctx_, make_echo_ref());
  EXPECT_EQ(gp->ping(), 1u);  // warm the selection cache

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::drop}};
  plan.add(server_ctx_->endpoint_name(), schedule);

  const std::uint64_t retries_before = counter("rmi.retries");
  EXPECT_EQ(gp->ping(), 2u) << "the drop is absorbed by one retry";
  EXPECT_EQ(counter("rmi.retries"), retries_before + 1);
  EXPECT_EQ(resilience::FaultInjector::instance().call_count(
                server_ctx_->endpoint_name()),
            2u)
      << "retry amplification: 2 wire attempts for 1 logical call";
}

TEST_F(ResilienceFixture, CorruptedReplyIsCaughtByChecksumAndRetried) {
  servant_ = std::make_shared<EchoServant>();
  auto ref = orb::RefBuilder(*server_ctx_, servant_)
                 .glue({std::make_shared<cap::ChecksumCapability>()})
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  const std::vector<std::int32_t> values = {1, -2, 3, -4, 5};
  EXPECT_EQ(gp->echo(values), values);  // warm the selection cache

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::corrupt}};
  plan.add(server_ctx_->endpoint_name(), schedule);

  const std::uint64_t retries_before = counter("rmi.retries");
  EXPECT_EQ(gp->echo(values), values)
      << "the checksum catches the flipped byte; the retry returns clean "
         "data, never corrupted data";
  EXPECT_EQ(counter("rmi.retries"), retries_before + 1);
}

TEST_F(ResilienceFixture, ScriptedDuplicateDeliversTwiceClientSeesOneReply) {
  EchoPointer gp(*client_ctx_, make_echo_ref());

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::duplicate}};
  plan.add(server_ctx_->endpoint_name(), schedule);

  EXPECT_EQ(gp->ping(), 2u)
      << "the duplicated request reached the servant twice; the client got "
         "exactly one reply (the second)";
  EXPECT_EQ(servant_->pings(), 2u);
}

TEST_F(ResilienceFixture, InjectedDelayRunsOnTheResilienceClock) {
  resilience::ScopedManualClock scoped;
  EchoPointer gp(*client_ctx_, make_echo_ref());

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::delay}};
  schedule.delay = 7ms;
  plan.add(server_ctx_->endpoint_name(), schedule);

  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(scoped.clock().now_ns(), 7 * kMs)
      << "the injected delay advanced exactly the virtual clock — no "
         "wall-clock wait happened";
}

TEST_F(ResilienceFixture, BackoffWaitsOnTheResilienceClock) {
  resilience::ScopedManualClock scoped;
  EchoPointer gp(*client_ctx_, make_echo_ref());
  resilience::RetryPolicy policy;
  policy.initial_backoff = 10ms;
  gp->set_retry_policy(policy);

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::drop}};
  plan.add(server_ctx_->endpoint_name(), schedule);

  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(scoped.clock().now_ns(), 10 * kMs)
      << "one retry waited exactly one initial_backoff of virtual time";
}

TEST_F(ResilienceFixture, PerGpPolicyBeatsThePerContextPolicy) {
  EchoPointer gp(*client_ctx_, make_echo_ref());
  EXPECT_EQ(gp->ping(), 1u);  // warm the selection cache

  resilience::RetryPolicy no_retries;
  no_retries.max_attempts = 1;
  client_ctx_->set_retry_policy(no_retries);

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.scripted = {{0, resilience::FaultKind::drop}};
  plan.add(server_ctx_->endpoint_name(), schedule);
  EXPECT_THROW(gp->ping(), TransportError)
      << "the context policy forbids retries, so the drop is fatal";

  resilience::RetryPolicy one_retry;
  one_retry.max_attempts = 2;
  gp->set_retry_policy(one_retry);
  plan.add(server_ctx_->endpoint_name(), schedule);  // reset the script
  EXPECT_EQ(gp->ping(), 2u) << "the per-GP policy re-enables the retry";

  client_ctx_->clear_retry_policy();
}

}  // namespace
}  // namespace ohpx
