// Tests for callback subscriptions: references as callback handles,
// oneway fan-out, dead-subscriber pruning, and cross-machine callbacks.
#include <gtest/gtest.h>

#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/ticker.hpp"

namespace ohpx::scenario {
namespace {

class TickerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_server_ = world_.add_machine("server", lan);
    m_client_ = world_.add_machine("client", lan);
    server_ctx_ = &world_.create_context(m_server_);
    client_ctx_ = &world_.create_context(m_client_);

    ticker_servant_ = std::make_shared<TickerServant>(*server_ctx_);
    ticker_ref_ = orb::RefBuilder(*server_ctx_, ticker_servant_).build();
  }

  /// Exports a listener from the *client* context and returns its ref.
  orb::ObjectRef export_listener(std::shared_ptr<TickListenerServant>& out) {
    out = std::make_shared<TickListenerServant>();
    return orb::RefBuilder(*client_ctx_, out).build();
  }

  runtime::World world_;
  netsim::MachineId m_server_{}, m_client_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* client_ctx_ = nullptr;
  std::shared_ptr<TickerServant> ticker_servant_;
  orb::ObjectRef ticker_ref_;
};

TEST_F(TickerFixture, SubscribersReceivePublishedTicks) {
  TickerPointer ticker(*client_ctx_, ticker_ref_);

  std::shared_ptr<TickListenerServant> a, b;
  const auto ref_a = export_listener(a);
  const auto ref_b = export_listener(b);

  ticker->subscribe(ref_a);
  ticker->subscribe(ref_b);
  EXPECT_EQ(ticker->count(), 2u);

  EXPECT_EQ(ticker->publish(7), 2u);
  EXPECT_EQ(ticker->publish(8), 2u);

  EXPECT_EQ(a->received(), (std::vector<std::int32_t>{7, 8}));
  EXPECT_EQ(b->received(), (std::vector<std::int32_t>{7, 8}));
}

TEST_F(TickerFixture, UnsubscribeStopsDelivery) {
  TickerPointer ticker(*client_ctx_, ticker_ref_);
  std::shared_ptr<TickListenerServant> a;
  const std::uint32_t token = ticker->subscribe(export_listener(a));

  ticker->publish(1);
  EXPECT_TRUE(ticker->unsubscribe(token));
  EXPECT_FALSE(ticker->unsubscribe(token));
  ticker->publish(2);
  EXPECT_EQ(a->received(), (std::vector<std::int32_t>{1}));
}

TEST_F(TickerFixture, DeadSubscribersPrunedOnPublish) {
  TickerPointer ticker(*client_ctx_, ticker_ref_);
  std::shared_ptr<TickListenerServant> alive, doomed;
  ticker->subscribe(export_listener(alive));
  const auto doomed_ref = export_listener(doomed);
  ticker->subscribe(doomed_ref);
  EXPECT_EQ(ticker->count(), 2u);

  // Kill the doomed listener's object entirely.
  client_ctx_->deactivate(doomed_ref.object_id());

  EXPECT_EQ(ticker->publish(5), 1u);  // only the live one reached
  EXPECT_EQ(ticker->count(), 1u);     // dead one pruned
  EXPECT_EQ(alive->received(), (std::vector<std::int32_t>{5}));
}

TEST_F(TickerFixture, NonListenerReferencesRefused) {
  TickerPointer ticker(*client_ctx_, ticker_ref_);
  // Hand the ticker a reference to itself (wrong interface).
  EXPECT_THROW(ticker->subscribe(ticker_ref_), ObjectError);
}

TEST_F(TickerFixture, CallbacksFollowMigratedSubscribers) {
  TickerPointer ticker(*client_ctx_, ticker_ref_);
  std::shared_ptr<TickListenerServant> listener;
  const auto listener_ref = export_listener(listener);
  ticker->subscribe(listener_ref);

  ticker->publish(1);

  // Move the *listener* to another machine; the ticker's stored reference
  // resolves the new location on the next publish.
  orb::Context& elsewhere =
      world_.create_context(world_.add_machine("third", world_.topology().lan_of(m_client_)));
  runtime::migrate_shared(listener_ref.object_id(), *client_ctx_, elsewhere);

  EXPECT_EQ(ticker->publish(2), 1u);
  EXPECT_EQ(listener->received(), (std::vector<std::int32_t>{1, 2}));
}

}  // namespace
}  // namespace ohpx::scenario
