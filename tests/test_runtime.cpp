// Unit tests for the runtime layer: World composition, migration semantics
// (shared and snapshot/restore), glue-binding transfer, and the
// high-water-mark load balancer.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/balancer.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::runtime {
namespace {

using scenario::CounterPointer;
using scenario::CounterServant;
using scenario::EchoPointer;
using scenario::EchoServant;

class RuntimeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lan_ = world_.add_lan("lan");
    m0_ = world_.add_machine("m0", lan_);
    m1_ = world_.add_machine("m1", lan_);
    ctx0_ = &world_.create_context(m0_);
    ctx1_ = &world_.create_context(m1_);
  }

  World world_;
  netsim::LanId lan_{};
  netsim::MachineId m0_{}, m1_{};
  orb::Context* ctx0_ = nullptr;
  orb::Context* ctx1_ = nullptr;
};

// ---- world --------------------------------------------------------------------

TEST_F(RuntimeFixture, WorldTracksContexts) {
  EXPECT_EQ(world_.context_count(), 2u);
  EXPECT_EQ(&world_.context(ctx0_->id()), ctx0_);
  EXPECT_THROW(world_.context(0xffff), ObjectError);

  const auto on_m0 = world_.contexts_on(m0_);
  ASSERT_EQ(on_m0.size(), 1u);
  EXPECT_EQ(on_m0[0], ctx0_);
}

TEST_F(RuntimeFixture, FindContextOfObject) {
  const orb::ObjectId id = ctx1_->activate(std::make_shared<EchoServant>());
  EXPECT_EQ(world_.find_context_of(id), ctx1_);
  EXPECT_EQ(world_.find_context_of(999999), nullptr);
}

TEST_F(RuntimeFixture, FindContextOfProbesTheContextIndex) {
  // Many contexts, object in the very last one: the id-indexed probe must
  // find it regardless of depth (bench_naming's Name_FindContext arms gate
  // the O(1)-ish timing claim; this pins correctness at depth).
  std::vector<orb::Context*> extra;
  for (int i = 0; i < 64; ++i) {
    extra.push_back(&world_.create_context(m1_));
  }
  const orb::ObjectId id =
      extra.back()->activate(std::make_shared<EchoServant>());
  EXPECT_EQ(world_.find_context_of(id), extra.back());
  EXPECT_EQ(world_.find_context_of(id + 999999), nullptr);
}

// ---- migration -----------------------------------------------------------------

TEST_F(RuntimeFixture, MigrateSharedMovesServantAndLocation) {
  auto servant = std::make_shared<CounterServant>();
  const orb::ObjectId id = ctx0_->activate(servant);
  servant->set_value(10);

  migrate_shared(id, *ctx0_, *ctx1_);

  EXPECT_FALSE(ctx0_->hosts(id));
  EXPECT_TRUE(ctx1_->hosts(id));
  EXPECT_EQ(ctx1_->find_servant(id), servant);  // same instance
  const auto address = world_.location().resolve(id);
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(address->context_id, ctx1_->id());
  EXPECT_GE(address->epoch, 2u);  // republished
}

TEST_F(RuntimeFixture, MigrateUnknownObjectFails) {
  try {
    migrate_shared(31337, *ctx0_, *ctx1_);
    FAIL();
  } catch (const ObjectError& e) {
    EXPECT_EQ(e.code(), ErrorCode::object_not_found);
  }
}

TEST_F(RuntimeFixture, NonMigratableServantRefused) {
  class PinnedServant final : public orb::Servant {
   public:
    std::string_view type_name() const noexcept override { return "Pinned"; }
    void dispatch(std::uint32_t method_id, wire::Decoder&,
                  wire::Encoder&) override {
      orb::unknown_method("Pinned", method_id);
    }
  };
  const orb::ObjectId id = ctx0_->activate(std::make_shared<PinnedServant>());
  try {
    migrate_shared(id, *ctx0_, *ctx1_);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::not_migratable);
  }
  EXPECT_TRUE(ctx0_->hosts(id));  // unchanged on failure
}

TEST_F(RuntimeFixture, MigrateCopyNeedsFactory) {
  // A migratable type with no registered factory cannot migrate by copy.
  class OrphanServant final : public orb::Servant {
   public:
    std::string_view type_name() const noexcept override { return "Orphan"; }
    void dispatch(std::uint32_t method_id, wire::Decoder&,
                  wire::Encoder&) override {
      orb::unknown_method("Orphan", method_id);
    }
    bool migratable() const noexcept override { return true; }
    Bytes snapshot() const override { return {}; }
    void restore(BytesView) override {}
  };
  const orb::ObjectId id = ctx0_->activate(std::make_shared<OrphanServant>());
  EXPECT_THROW(migrate_copy(id, *ctx0_, *ctx1_), Error);
}

TEST_F(RuntimeFixture, MigrateCopyTransfersState) {
  ServantTypeRegistry::instance().register_type<CounterServant>();
  auto original = std::make_shared<CounterServant>();
  original->set_value(77);
  const orb::ObjectId id = ctx0_->activate(original);

  migrate_copy(id, *ctx0_, *ctx1_);

  auto moved = std::dynamic_pointer_cast<CounterServant>(ctx1_->find_servant(id));
  ASSERT_NE(moved, nullptr);
  EXPECT_NE(moved, original);  // distinct instance
  EXPECT_EQ(moved->value(), 77);
}

TEST_F(RuntimeFixture, GlueBindingsFollowTheObject) {
  auto servant = std::make_shared<EchoServant>();
  auto quota = std::make_shared<cap::QuotaCapability>(10);
  const orb::ObjectRef ref =
      orb::RefBuilder(*ctx0_, servant).glue({quota}).build();
  const orb::ObjectId id = ref.object_id();

  // Burn 4 calls so the quota has visible state to carry.
  orb::Context& client = world_.create_context(m1_);
  EchoPointer gp(client, ref);
  for (int i = 0; i < 4; ++i) gp->ping();
  EXPECT_EQ(quota->used(), 4u);

  migrate_shared(id, *ctx0_, *ctx1_);

  EXPECT_TRUE(ctx0_->glue_bindings_of(id).empty());
  const auto bindings = ctx1_->glue_bindings_of(id);
  ASSERT_EQ(bindings.size(), 1u);
  // The transferred chain preserved remaining quota via descriptors.
  const auto descriptors = bindings[0]->chain.descriptors();
  ASSERT_EQ(descriptors.size(), 1u);
  EXPECT_EQ(descriptors[0].params.at("max_calls"), "6");

  // And calls keep flowing through the new home.
  gp->ping();
  EXPECT_TRUE(ctx1_->hosts(id));
}

TEST_F(RuntimeFixture, ServantTypeRegistryBasics) {
  auto& registry = ServantTypeRegistry::instance();
  registry.register_type<CounterServant>();
  EXPECT_TRUE(registry.contains("Counter"));
  EXPECT_FALSE(registry.contains("NoSuchType"));
  const auto servant = registry.create("Counter");
  EXPECT_EQ(servant->type_name(), "Counter");
  EXPECT_THROW(registry.create("NoSuchType"), Error);
}

// ---- load balancer ----------------------------------------------------------------

class BalancerFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lan_ = world_.add_lan("lan");
    hot_ = world_.add_machine("hot", lan_);
    cool_ = world_.add_machine("cool", lan_);
    hot_ctx_ = &world_.create_context(hot_);
    cool_ctx_ = &world_.create_context(cool_);
  }

  orb::ObjectId spawn_on_hot() {
    return hot_ctx_->activate(std::make_shared<CounterServant>());
  }

  World world_;
  netsim::LanId lan_{};
  netsim::MachineId hot_{}, cool_{};
  orb::Context* hot_ctx_ = nullptr;
  orb::Context* cool_ctx_ = nullptr;
};

TEST_F(BalancerFixture, NoActionBelowHighWater) {
  LoadBalancer balancer(world_, {.high_water = 0.75, .target_water = 0.5});
  balancer.track(spawn_on_hot(), 0.3);
  world_.topology().set_load(hot_, 0.5);
  EXPECT_TRUE(balancer.rebalance_once().empty());
}

TEST_F(BalancerFixture, DrainsToTargetWater) {
  LoadBalancer balancer(world_, {.high_water = 0.75, .target_water = 0.5});
  const auto a = spawn_on_hot();
  const auto b = spawn_on_hot();
  const auto c = spawn_on_hot();
  balancer.track(a, 0.3);
  balancer.track(b, 0.2);
  balancer.track(c, 0.1);
  world_.topology().set_load(hot_, 0.9);
  world_.topology().set_load(cool_, 0.0);

  const auto events = balancer.rebalance_once();
  // 0.9 → (move 0.3) 0.6 → (move 0.2) 0.4 ≤ target; heaviest moved first.
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].object_id, a);
  EXPECT_EQ(events[1].object_id, b);
  EXPECT_NEAR(world_.topology().load(hot_), 0.4, 1e-9);
  EXPECT_NEAR(world_.topology().load(cool_), 0.5, 1e-9);
  EXPECT_EQ(world_.find_context_of(a)->machine(), cool_);
  EXPECT_EQ(world_.find_context_of(c)->machine(), hot_);
}

TEST_F(BalancerFixture, RespectsMigrationCap) {
  LoadBalancer balancer(world_, {.high_water = 0.1,
                                 .target_water = 0.0,
                                 .max_migrations_per_round = 1});
  balancer.track(spawn_on_hot(), 0.05);
  balancer.track(spawn_on_hot(), 0.05);
  world_.topology().set_load(hot_, 0.5);
  EXPECT_EQ(balancer.rebalance_once().size(), 1u);
}

TEST_F(BalancerFixture, SkipsNonMigratableObjects) {
  class PinnedServant final : public orb::Servant {
   public:
    std::string_view type_name() const noexcept override { return "Pinned"; }
    void dispatch(std::uint32_t method_id, wire::Decoder&,
                  wire::Encoder&) override {
      orb::unknown_method("Pinned", method_id);
    }
  };
  LoadBalancer balancer(world_, {.high_water = 0.5, .target_water = 0.1});
  const auto pinned = hot_ctx_->activate(std::make_shared<PinnedServant>());
  balancer.track(pinned, 0.4);
  world_.topology().set_load(hot_, 0.9);
  EXPECT_TRUE(balancer.rebalance_once().empty());
  EXPECT_TRUE(hot_ctx_->hosts(pinned));
}

TEST_F(BalancerFixture, UntrackedObjectsIgnored) {
  LoadBalancer balancer(world_, {.high_water = 0.5, .target_water = 0.1});
  const auto id = spawn_on_hot();
  balancer.track(id, 0.4);
  balancer.untrack(id);
  world_.topology().set_load(hot_, 0.9);
  EXPECT_TRUE(balancer.rebalance_once().empty());
}

TEST_F(BalancerFixture, NoDestinationNoMigration) {
  // Both machines overloaded equally: least_loaded == source, stay put.
  LoadBalancer balancer(world_, {.high_water = 0.5, .target_water = 0.1});
  balancer.track(spawn_on_hot(), 0.4);
  world_.topology().set_load(hot_, 0.9);
  world_.topology().set_load(cool_, 0.95);
  EXPECT_TRUE(balancer.rebalance_once().empty());
}

TEST_F(BalancerFixture, CreatesContextOnEmptyDestination) {
  const auto fresh = world_.add_machine("fresh", lan_);
  LoadBalancer balancer(world_, {.high_water = 0.5, .target_water = 0.1});
  const auto id = spawn_on_hot();
  balancer.track(id, 0.4);
  world_.topology().set_load(hot_, 0.9);
  world_.topology().set_load(cool_, 0.8);
  world_.topology().set_load(fresh, 0.0);

  const auto events = balancer.rebalance_once();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].to_machine, fresh);
  ASSERT_EQ(world_.contexts_on(fresh).size(), 1u);
  EXPECT_TRUE(world_.contexts_on(fresh)[0]->hosts(id));
}

}  // namespace
}  // namespace ohpx::runtime
