// Unit tests for the capability layer: every built-in capability's
// process/unprocess identity, tamper detection, admission control, scopes,
// descriptor exchange through the registry, and chain composition order.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "ohpx/capability/builtin/audit.hpp"
#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/compression.hpp"
#include "ohpx/capability/builtin/delegation.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/fault.hpp"
#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/capability/builtin/padding.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/capability/builtin/ratelimit.hpp"
#include "ohpx/capability/chain.hpp"
#include "ohpx/capability/registry.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/crypto/mac.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::cap {
namespace {

CallContext make_call(std::uint64_t request_id = 1,
                      Direction direction = Direction::request) {
  CallContext call;
  call.request_id = request_id;
  call.object_id = 10;
  call.method_id = 3;
  call.direction = direction;
  return call;
}

wire::Buffer payload_of(std::string_view text) {
  return wire::Buffer(reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size());
}

crypto::Key128 test_key() { return crypto::Key128::from_seed(0xabc); }

// ---- process∘unprocess identity for all byte-transforming capabilities -----

std::vector<CapabilityPtr> transforming_capabilities() {
  return {
      std::make_shared<EncryptionCapability>(test_key()),
      std::make_shared<AuthenticationCapability>(test_key(), "t",
                                                 Scope::always),
      std::make_shared<ChecksumCapability>(),
      std::make_shared<CompressionCapability>(compress::CodecId::rle),
      std::make_shared<CompressionCapability>(compress::CodecId::lz),
      std::make_shared<PaddingCapability>(64),
      std::make_shared<PaddingCapability>(1),
      std::make_shared<AuditCapability>(),
  };
}

TEST(Identity, EveryCapabilityRoundTrips) {
  for (const auto& capability : transforming_capabilities()) {
    const auto call = make_call();
    wire::Buffer payload = payload_of("some payload worth protecting, 1234");
    const Bytes original = payload.bytes();
    capability->process(payload, call);
    capability->unprocess(payload, call);
    EXPECT_EQ(payload.bytes(), original) << capability->kind();
  }
}

TEST(Identity, EmptyPayloadRoundTrips) {
  for (const auto& capability : transforming_capabilities()) {
    const auto call = make_call();
    wire::Buffer payload;
    capability->process(payload, call);
    capability->unprocess(payload, call);
    EXPECT_TRUE(payload.empty()) << capability->kind();
  }
}

// Property: for EVERY builtin kind, unprocess(process(msg)) == msg over
// random payloads — the runtime half of the symmetry contract that
// tools/ohpx_lint.py's cap-pairs check enforces syntactically.  Payload
// sizes sweep 0..~4KiB with arbitrary bytes, and each call uses a fresh
// request id so nonce-dependent transforms (encryption) are exercised
// across their seed space.
TEST(Identity, EveryBuiltinRoundTripsRandomPayloads) {
  Xoshiro256 rng(0x0badcafe);
  // Pass-through builtins (admission-only or recording-only) participate
  // too: identity must hold even though they do not transform bytes.
  std::vector<CapabilityPtr> capabilities = transforming_capabilities();
  capabilities.push_back(std::make_shared<QuotaCapability>(1u << 30));
  capabilities.push_back(std::make_shared<RateLimitCapability>(1e9, 1e9));
  capabilities.push_back(std::make_shared<LeaseCapability>(
      std::chrono::milliseconds(1 << 30)));
  capabilities.push_back(std::make_shared<FaultCapability>(1u << 30));

  for (int iteration = 0; iteration < 64; ++iteration) {
    const std::size_t size = static_cast<std::size_t>(
        rng.next_below(4096 + 1));
    Bytes original(size);
    for (auto& byte : original) {
      byte = static_cast<std::uint8_t>(rng.next());
    }
    const auto call = make_call(1000 + static_cast<std::uint64_t>(iteration));
    for (const auto& capability : capabilities) {
      wire::Buffer payload{original};
      capability->process(payload, call);
      capability->unprocess(payload, call);
      EXPECT_EQ(payload.bytes(), original)
          << capability->kind() << " iteration " << iteration
          << " size " << size;
    }
  }
}

// Delegation transforms asymmetrically — the bearer stamps, the verifier
// strips — so its identity property runs over the bearer/verifier pair.
TEST(Identity, DelegationPairRoundTripsRandomPayloads) {
  Xoshiro256 rng(0x5eed5);
  auto verifier = DelegationCapability::make_root(test_key());
  auto bearer = DelegationCapability::from_descriptor(verifier->descriptor());
  for (int iteration = 0; iteration < 32; ++iteration) {
    const std::size_t size = static_cast<std::size_t>(rng.next_below(2048 + 1));
    Bytes original(size);
    for (auto& byte : original) {
      byte = static_cast<std::uint8_t>(rng.next());
    }
    const auto call = make_call(5000 + static_cast<std::uint64_t>(iteration));
    wire::Buffer payload{original};
    bearer->process(payload, call);
    verifier->unprocess(payload, call);
    EXPECT_EQ(payload.bytes(), original) << "iteration " << iteration;
  }
}

// ---- encryption --------------------------------------------------------------

TEST(Encryption, ActuallyScrambles) {
  EncryptionCapability enc(test_key());
  wire::Buffer payload = payload_of("plaintext plaintext plaintext");
  const Bytes original = payload.bytes();
  enc.process(payload, make_call());
  EXPECT_NE(payload.bytes(), original);
}

TEST(Encryption, RequestAndReplyUseDifferentNonces) {
  EncryptionCapability enc(test_key());
  wire::Buffer a = payload_of("same bytes");
  wire::Buffer b = payload_of("same bytes");
  enc.process(a, make_call(5, Direction::request));
  enc.process(b, make_call(5, Direction::reply));
  EXPECT_NE(a.bytes(), b.bytes());
}

TEST(Encryption, DifferentRequestsDifferentCiphertext) {
  EncryptionCapability enc(test_key());
  wire::Buffer a = payload_of("same bytes");
  wire::Buffer b = payload_of("same bytes");
  enc.process(a, make_call(1));
  enc.process(b, make_call(2));
  EXPECT_NE(a.bytes(), b.bytes());
}

// ---- authentication ------------------------------------------------------------

TEST(Authentication, AppendsAndStripsTag) {
  AuthenticationCapability auth(test_key(), "alice", Scope::always);
  wire::Buffer payload = payload_of("message");
  auth.process(payload, make_call());
  EXPECT_EQ(payload.size(), 7u + crypto::kMacTagSize);
  auth.unprocess(payload, make_call());
  EXPECT_EQ(payload.bytes(), bytes_of("message"));
}

TEST(Authentication, TamperedPayloadRejected) {
  AuthenticationCapability auth(test_key(), "alice", Scope::always);
  wire::Buffer payload = payload_of("message");
  auth.process(payload, make_call());
  payload.data()[0] ^= 1;
  try {
    auth.unprocess(payload, make_call());
    FAIL();
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_auth_failed);
  }
}

TEST(Authentication, WrongKeyRejected) {
  AuthenticationCapability signer(test_key(), "alice", Scope::always);
  AuthenticationCapability verifier(crypto::Key128::from_seed(999), "alice",
                                    Scope::always);
  wire::Buffer payload = payload_of("message");
  signer.process(payload, make_call());
  EXPECT_THROW(verifier.unprocess(payload, make_call()), CapabilityDenied);
}

TEST(Authentication, ReplayOnDifferentRequestRejected) {
  AuthenticationCapability auth(test_key(), "alice", Scope::always);
  wire::Buffer payload = payload_of("message");
  auth.process(payload, make_call(1));
  // Same bytes presented as a different request id: binding must not match.
  EXPECT_THROW(auth.unprocess(payload, make_call(2)), CapabilityDenied);
}

TEST(Authentication, DifferentPrincipalRejected) {
  AuthenticationCapability alice(test_key(), "alice", Scope::always);
  AuthenticationCapability mallory(test_key(), "mallory", Scope::always);
  wire::Buffer payload = payload_of("message");
  alice.process(payload, make_call());
  EXPECT_THROW(mallory.unprocess(payload, make_call()), CapabilityDenied);
}

TEST(Authentication, TooShortPayloadRejected) {
  AuthenticationCapability auth(test_key(), "alice", Scope::always);
  wire::Buffer payload = payload_of("abc");  // shorter than a tag
  EXPECT_THROW(auth.unprocess(payload, make_call()), CapabilityDenied);
}

// ---- checksum -------------------------------------------------------------------

TEST(Checksum, DetectsCorruption) {
  ChecksumCapability checksum;
  wire::Buffer payload = payload_of("data data data");
  checksum.process(payload, make_call());
  payload.data()[3] ^= 0x40;
  EXPECT_THROW(checksum.unprocess(payload, make_call()), CapabilityDenied);
}

TEST(Checksum, TooShortRejected) {
  ChecksumCapability checksum;
  wire::Buffer payload = payload_of("ab");
  EXPECT_THROW(checksum.unprocess(payload, make_call()), CapabilityDenied);
}

// ---- compression -----------------------------------------------------------------

TEST(Compression, ShrinksRepetitivePayloads) {
  CompressionCapability compression(compress::CodecId::rle);
  wire::Buffer payload{Bytes(10'000, 0x55)};
  compression.process(payload, make_call());
  EXPECT_LT(payload.size(), 1000u);
  compression.unprocess(payload, make_call());
  EXPECT_EQ(payload.bytes(), Bytes(10'000, 0x55));
}

TEST(Compression, GarbageInputRejectedCleanly) {
  CompressionCapability compression(compress::CodecId::lz);
  wire::Buffer payload = payload_of("not a compressed stream");
  EXPECT_THROW(compression.unprocess(payload, make_call()), CapabilityDenied);
}

// ---- padding ----------------------------------------------------------------------

TEST(Padding, RoundsUpToBlockMultiples) {
  PaddingCapability padding(128);
  wire::Buffer payload = payload_of("short");
  padding.process(payload, make_call());
  EXPECT_EQ(payload.size(), 128u);
  padding.unprocess(payload, make_call());
  EXPECT_EQ(payload.bytes(), bytes_of("short"));
}

TEST(Padding, AlreadyAlignedGrowsOneBlock) {
  PaddingCapability padding(16);
  wire::Buffer payload{Bytes(16, 0x11)};  // 16 + 4 trailer -> 32
  padding.process(payload, make_call());
  EXPECT_EQ(payload.size(), 32u);
  padding.unprocess(payload, make_call());
  EXPECT_EQ(payload.size(), 16u);
}

TEST(Padding, HidesSizeDistinctions) {
  PaddingCapability padding(256);
  wire::Buffer a = payload_of("x");
  wire::Buffer b = payload_of(std::string(200, 'y'));
  padding.process(a, make_call());
  padding.process(b, make_call());
  EXPECT_EQ(a.size(), b.size());
}

TEST(Padding, MalformedLengthsRejected) {
  PaddingCapability padding(64);
  wire::Buffer not_aligned(Bytes(63, 0));
  EXPECT_THROW(padding.unprocess(not_aligned, make_call()), CapabilityDenied);

  wire::Buffer impossible(Bytes(64, 0xff));  // trailer declares huge length
  EXPECT_THROW(padding.unprocess(impossible, make_call()), CapabilityDenied);
}

TEST(Padding, ZeroBlockRejected) {
  EXPECT_THROW(PaddingCapability(0), CapabilityDenied);
}

// ---- quota -----------------------------------------------------------------------

TEST(Quota, AdmitsUpToLimitThenRefuses) {
  QuotaCapability quota(2);
  quota.admit(make_call());
  quota.admit(make_call());
  EXPECT_EQ(quota.remaining(), 0u);
  try {
    quota.admit(make_call());
    FAIL();
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_exhausted);
  }
  EXPECT_EQ(quota.used(), 2u);  // the refused call is rolled back
}

TEST(Quota, RepliesAreFree) {
  QuotaCapability quota(1);
  quota.admit(make_call(1, Direction::reply));
  quota.admit(make_call(2, Direction::reply));
  EXPECT_EQ(quota.used(), 0u);
}

TEST(Quota, ThreadSafeCounting) {
  QuotaCapability quota(1000);
  std::vector<std::thread> threads;
  std::atomic<int> denied{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 300; ++i) {
        try {
          quota.admit(make_call());
        } catch (const CapabilityDenied&) {
          ++denied;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(quota.used(), 1000u);
  EXPECT_EQ(denied.load(), 200);
}

// ---- lease -----------------------------------------------------------------------

TEST(Lease, AdmitsWhileFreshThenExpires) {
  LeaseCapability lease(std::chrono::milliseconds(60));
  EXPECT_NO_THROW(lease.admit(make_call()));
  EXPECT_FALSE(lease.expired());
  std::this_thread::sleep_for(std::chrono::milliseconds(80));  // ohpx-lint: allow-wall-clock (lease TTLs run on the steady clock)
  EXPECT_TRUE(lease.expired());
  try {
    lease.admit(make_call());
    FAIL();
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_expired);
  }
}

TEST(Lease, DescriptorCarriesRemainingTime) {
  LeaseCapability lease(std::chrono::milliseconds(5000));
  const auto descriptor = lease.descriptor();
  const long long ttl = std::stoll(descriptor.params.at("ttl_ms"));
  EXPECT_GT(ttl, 4000);
  EXPECT_LE(ttl, 5000);
}

TEST(Lease, ZeroTtlIsBornExpired) {
  LeaseCapability lease(std::chrono::milliseconds(0));
  EXPECT_TRUE(lease.expired());
  EXPECT_EQ(lease.remaining().count(), 0);
}

// ---- rate limit -------------------------------------------------------------------

TEST(RateLimit, BurstThenRefusal) {
  RateLimitCapability limiter(/*rate_per_sec=*/1.0, /*burst=*/3.0);
  limiter.admit(make_call());
  limiter.admit(make_call());
  limiter.admit(make_call());
  EXPECT_THROW(limiter.admit(make_call()), CapabilityDenied);
}

TEST(RateLimit, RefillsOverTime) {
  RateLimitCapability limiter(/*rate_per_sec=*/200.0, /*burst=*/1.0);
  limiter.admit(make_call());
  EXPECT_THROW(limiter.admit(make_call()), CapabilityDenied);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // ohpx-lint: allow-wall-clock (token-bucket refill runs on the steady clock)
  EXPECT_NO_THROW(limiter.admit(make_call()));
}

TEST(RateLimit, RepliesNotCounted) {
  RateLimitCapability limiter(1.0, 1.0);
  limiter.admit(make_call(1, Direction::reply));
  limiter.admit(make_call(1, Direction::request));
  EXPECT_THROW(limiter.admit(make_call(2, Direction::request)),
               CapabilityDenied);
}

// ---- fault injection --------------------------------------------------------------

// Drives `count` request admits and records which ordinals were refused.
std::vector<bool> refusal_pattern(FaultCapability& fault, std::uint64_t count) {
  std::vector<bool> refused;
  for (std::uint64_t i = 1; i <= count; ++i) {
    try {
      fault.admit(make_call(i));
      refused.push_back(false);
    } catch (const CapabilityDenied&) {
      refused.push_back(true);
    }
  }
  return refused;
}

TEST(Fault, CountersStayConsistentAtEveryObservationPoint) {
  FaultCapability fault(3u);  // refuse every 3rd request
  for (std::uint64_t i = 1; i <= 9; ++i) {
    try {
      fault.admit(make_call(i));
    } catch (const CapabilityDenied& e) {
      EXPECT_EQ(e.code(), ErrorCode::capability_denied);
    }
    EXPECT_EQ(fault.admitted() + fault.refused(), i)
        << "admitted + refused must equal requests seen, always";
  }
  EXPECT_EQ(fault.admitted(), 6u);
  EXPECT_EQ(fault.refused(), 3u);
}

TEST(Fault, RepliesAreNeitherCountedNorRefused) {
  FaultCapability fault(1u);  // refuses every request...
  EXPECT_NO_THROW(fault.admit(make_call(1, Direction::reply)));
  EXPECT_EQ(fault.admitted(), 0u);
  EXPECT_EQ(fault.refused(), 0u);
  EXPECT_THROW(fault.admit(make_call(1, Direction::request)),
               CapabilityDenied);
}

TEST(Fault, RatioModeIsAPureFunctionOfSeedAndOrdinal) {
  FaultSpec spec;
  spec.refuse_ratio = 0.5;
  spec.seed = 7;
  FaultCapability first(spec);
  FaultCapability second(spec);
  const auto pattern = refusal_pattern(first, 100);
  EXPECT_EQ(pattern, refusal_pattern(second, 100))
      << "same (seed, ordinal) => same decision, any interleaving";

  spec.seed = 8;
  FaultCapability reseeded(spec);
  EXPECT_NE(pattern, refusal_pattern(reseeded, 100));

  const auto refusals = std::count(pattern.begin(), pattern.end(), true);
  EXPECT_GT(refusals, 25);
  EXPECT_LT(refusals, 75) << "a 0.5 ratio refuses roughly half";
}

TEST(Fault, ScriptedOrdinalsComposeWithTheModulo) {
  FaultSpec spec;
  spec.fail_every = 3;
  spec.refuse_at = {2, 5};
  FaultCapability fault(spec);
  // Ordinals 1..6: the modulo refuses 3 and 6, the script refuses 2 and 5.
  const std::vector<bool> expected = {false, true, true, false, true, true};
  EXPECT_EQ(refusal_pattern(fault, 6), expected);
  EXPECT_EQ(fault.admitted() + fault.refused(), 6u);
}

TEST(Fault, DescriptorRoundTripsTheFullSchedule) {
  FaultSpec spec;
  spec.fail_every = 4;
  spec.refuse_ratio = 0.25;
  spec.seed = 9;
  spec.refuse_at = {1, 8};
  FaultCapability original(spec);

  const auto descriptor = original.descriptor();
  EXPECT_EQ(descriptor.kind, "fault");
  auto clone = FaultCapability::from_descriptor(descriptor);
  auto* cloned = dynamic_cast<FaultCapability*>(clone.get());
  ASSERT_NE(cloned, nullptr);

  EXPECT_EQ(refusal_pattern(original, 32), refusal_pattern(*cloned, 32))
      << "a reconstructed schedule refuses the exact same ordinals";
  EXPECT_EQ(cloned->descriptor().params, descriptor.params);
}

TEST(Fault, RejectsDisengagedAndInvalidSchedules) {
  try {
    FaultCapability fault{FaultSpec{}};
    FAIL() << "a schedule with no engaged mode refuses nothing";
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_bad_payload);
  }
  FaultSpec bad_ratio;
  bad_ratio.refuse_ratio = 1.5;
  EXPECT_THROW(FaultCapability{bad_ratio}, CapabilityDenied);
}

// ---- audit -----------------------------------------------------------------------

TEST(Audit, RecordsCallsInOrder) {
  AuditCapability audit(16);
  wire::Buffer payload = payload_of("xyz");
  audit.process(payload, make_call(7));
  audit.unprocess(payload, make_call(7, Direction::reply));
  const auto records = audit.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].request_id, 7u);
  EXPECT_EQ(records[0].direction, Direction::request);
  EXPECT_EQ(records[1].direction, Direction::reply);
  EXPECT_EQ(records[0].payload_size, 3u);
  EXPECT_EQ(audit.total_calls(), 2u);
}

TEST(Audit, RingBounded) {
  AuditCapability audit(4);
  wire::Buffer payload = payload_of("x");
  for (int i = 0; i < 10; ++i) {
    audit.process(payload, make_call(static_cast<std::uint64_t>(i)));
  }
  const auto records = audit.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().request_id, 6u);  // oldest retained
  EXPECT_EQ(audit.total_calls(), 10u);
}

// ---- scopes -----------------------------------------------------------------------

TEST(Scopes, ParseAndFormatRoundTrip) {
  for (Scope scope : {Scope::always, Scope::cross_campus, Scope::cross_lan,
                      Scope::remote, Scope::same_lan, Scope::same_machine,
                      Scope::never}) {
    EXPECT_EQ(scope_from_string(to_string(scope)), scope);
  }
  EXPECT_THROW(scope_from_string("bogus"), CapabilityDenied);
}

TEST(Scopes, ApplicabilityMatrix) {
  netsim::Topology topo;
  const auto lan_a = topo.add_lan("a");
  const auto lan_b = topo.add_lan("b");
  const auto lan_c = topo.add_lan("c");
  topo.set_campus(lan_a, 0);
  topo.set_campus(lan_b, 0);
  topo.set_campus(lan_c, 1);
  const auto m_a1 = topo.add_machine("a1", lan_a);
  const auto m_a2 = topo.add_machine("a2", lan_a);
  const auto m_b = topo.add_machine("b", lan_b);
  const auto m_c = topo.add_machine("c", lan_c);

  const netsim::Placement same_machine{m_a1, m_a1, &topo};
  const netsim::Placement same_lan{m_a1, m_a2, &topo};
  const netsim::Placement same_campus{m_a1, m_b, &topo};
  const netsim::Placement cross_campus{m_a1, m_c, &topo};

  EXPECT_TRUE(scope_applies(Scope::always, cross_campus));
  EXPECT_TRUE(scope_applies(Scope::always, same_machine));

  EXPECT_TRUE(scope_applies(Scope::cross_campus, cross_campus));
  EXPECT_FALSE(scope_applies(Scope::cross_campus, same_campus));
  EXPECT_FALSE(scope_applies(Scope::cross_campus, same_lan));

  EXPECT_TRUE(scope_applies(Scope::cross_lan, same_campus));
  EXPECT_TRUE(scope_applies(Scope::cross_lan, cross_campus));
  EXPECT_FALSE(scope_applies(Scope::cross_lan, same_lan));

  EXPECT_TRUE(scope_applies(Scope::remote, same_lan));
  EXPECT_FALSE(scope_applies(Scope::remote, same_machine));

  EXPECT_TRUE(scope_applies(Scope::same_lan, same_lan));
  EXPECT_FALSE(scope_applies(Scope::same_lan, same_campus));

  EXPECT_TRUE(scope_applies(Scope::same_machine, same_machine));
  EXPECT_FALSE(scope_applies(Scope::same_machine, same_lan));

  EXPECT_FALSE(scope_applies(Scope::never, same_machine));
  EXPECT_FALSE(scope_applies(Scope::never, cross_campus));
}

// ---- descriptors & registry ----------------------------------------------------------

TEST(Registry, BuiltinsRegistered) {
  auto& registry = CapabilityRegistry::instance();
  for (const char* kind : {"encryption", "authentication", "compression",
                           "checksum", "lease", "quota", "ratelimit", "audit"}) {
    EXPECT_TRUE(registry.contains(kind)) << kind;
  }
}

TEST(Registry, UnknownKindRefused) {
  CapabilityDescriptor descriptor;
  descriptor.kind = "no-such-capability";
  try {
    CapabilityRegistry::instance().instantiate(descriptor);
    FAIL();
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_unknown);
  }
}

TEST(Registry, DescriptorRoundTripPreservesBehaviour) {
  // Serialize every built-in transforming capability's descriptor through
  // the wire format, re-instantiate, and check the copy can unprocess what
  // the original processed.
  for (const auto& original : transforming_capabilities()) {
    const wire::Buffer encoded = wire::encode_value(original->descriptor());
    const auto descriptor =
        wire::decode_value<CapabilityDescriptor>(encoded.view());
    const CapabilityPtr copy =
        CapabilityRegistry::instance().instantiate(descriptor);
    ASSERT_NE(copy, nullptr);
    EXPECT_EQ(copy->kind(), original->kind());

    const auto call = make_call(77);
    wire::Buffer payload = payload_of("cross-process payload");
    original->process(payload, call);
    copy->unprocess(payload, call);
    EXPECT_EQ(payload.bytes(), bytes_of("cross-process payload"))
        << original->kind();
  }
}

TEST(Registry, QuotaDescriptorCarriesRemaining) {
  QuotaCapability quota(5);
  quota.admit(make_call());
  quota.admit(make_call());
  const auto copy =
      CapabilityRegistry::instance().instantiate(quota.descriptor());
  auto* quota_copy = dynamic_cast<QuotaCapability*>(copy.get());
  ASSERT_NE(quota_copy, nullptr);
  EXPECT_EQ(quota_copy->remaining(), 3u);
}

TEST(Registry, MissingParamRejected) {
  CapabilityDescriptor descriptor;
  descriptor.kind = "encryption";  // missing "key"
  EXPECT_THROW(CapabilityRegistry::instance().instantiate(descriptor),
               CapabilityDenied);
}

TEST(Registry, CustomCapabilityPluggable) {
  class NullCapability final : public Capability {
   public:
    std::string_view kind() const noexcept override { return "custom-null"; }
    void process(wire::Buffer&, const CallContext&) override {}
    void unprocess(wire::Buffer&, const CallContext&) override {}
    CapabilityDescriptor descriptor() const override {
      return CapabilityDescriptor{"custom-null", {}};
    }
  };
  CapabilityRegistry::instance().register_factory(
      "custom-null",
      [](const CapabilityDescriptor&) { return std::make_shared<NullCapability>(); });
  EXPECT_TRUE(CapabilityRegistry::instance().contains("custom-null"));
  const auto instance = CapabilityRegistry::instance().instantiate(
      CapabilityDescriptor{"custom-null", {}});
  EXPECT_EQ(instance->kind(), "custom-null");
}

// ---- chains ---------------------------------------------------------------------------

/// Capability that appends a marker byte — makes ordering observable.
class MarkerCapability final : public Capability {
 public:
  explicit MarkerCapability(std::uint8_t marker) : marker_(marker) {}
  std::string_view kind() const noexcept override { return "marker"; }
  void process(wire::Buffer& payload, const CallContext&) override {
    payload.append(marker_);
  }
  void unprocess(wire::Buffer& payload, const CallContext&) override {
    if (payload.empty() || payload.bytes().back() != marker_) {
      throw CapabilityDenied(ErrorCode::capability_bad_payload,
                             "marker mismatch");
    }
    payload.resize(payload.size() - 1);
  }
  CapabilityDescriptor descriptor() const override {
    return CapabilityDescriptor{"marker",
                                {{"m", std::to_string(marker_)}}};
  }

 private:
  std::uint8_t marker_;
};

TEST(Chain, ProcessForwardUnprocessReverse) {
  CapabilityChain chain({std::make_shared<MarkerCapability>(1),
                         std::make_shared<MarkerCapability>(2)});
  wire::Buffer payload = payload_of("m");
  chain.process_outbound(payload, make_call());
  // Forward order: marker 1 then marker 2 → tail is [1, 2].
  ASSERT_EQ(payload.size(), 3u);
  EXPECT_EQ(payload.bytes()[1], 1);
  EXPECT_EQ(payload.bytes()[2], 2);
  // Reverse unprocess restores the original; wrong order would throw.
  chain.process_inbound(payload, make_call());
  EXPECT_EQ(payload.bytes(), bytes_of("m"));
}

TEST(Chain, ApplicabilityIsAnd) {
  netsim::Topology topo;
  const auto lan = topo.add_lan("l");
  const auto a = topo.add_machine("a", lan);
  const auto b = topo.add_machine("b", lan);
  const netsim::Placement remote{a, b, &topo};

  CapabilityChain both_apply(
      {std::make_shared<QuotaCapability>(10, Scope::always),
       std::make_shared<QuotaCapability>(10, Scope::remote)});
  EXPECT_TRUE(both_apply.applicable(remote));

  CapabilityChain one_never(
      {std::make_shared<QuotaCapability>(10, Scope::always),
       std::make_shared<QuotaCapability>(10, Scope::never)});
  EXPECT_FALSE(one_never.applicable(remote));

  CapabilityChain empty;
  EXPECT_TRUE(empty.applicable(remote));  // vacuous AND
}

TEST(Chain, AdmissionRunsBeforeProcessing) {
  auto quota = std::make_shared<QuotaCapability>(0);  // always refuses
  CapabilityChain chain({quota, std::make_shared<MarkerCapability>(9)});
  wire::Buffer payload = payload_of("m");
  EXPECT_THROW(chain.process_outbound(payload, make_call()), CapabilityDenied);
  // Payload untouched: no capability processed it.
  EXPECT_EQ(payload.bytes(), bytes_of("m"));
}

TEST(Chain, DescribeListsKinds) {
  CapabilityChain chain({std::make_shared<QuotaCapability>(1),
                         std::make_shared<ChecksumCapability>()});
  EXPECT_EQ(chain.describe(), "quota,checksum");
  EXPECT_EQ(chain.descriptors().size(), 2u);
}

// ---- parameterized chain composition sweep ---------------------------------------------

class ChainComposition : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChainComposition, RandomChainsAreIdentity) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 10; ++round) {
    CapabilityChain chain;
    const std::size_t length = 1 + rng.next_below(5);
    for (std::size_t i = 0; i < length; ++i) {
      switch (rng.next_below(6)) {
        case 0:
          chain.add(std::make_shared<EncryptionCapability>(test_key()));
          break;
        case 1:
          chain.add(std::make_shared<AuthenticationCapability>(
              test_key(), "fuzz", Scope::always));
          break;
        case 2:
          chain.add(std::make_shared<ChecksumCapability>());
          break;
        case 3:
          chain.add(std::make_shared<CompressionCapability>(
              rng.next_below(2) == 0 ? compress::CodecId::rle
                                     : compress::CodecId::lz));
          break;
        case 4:
          chain.add(std::make_shared<PaddingCapability>(
              1 + rng.next_below(300)));
          break;
        default:
          chain.add(std::make_shared<AuditCapability>());
          break;
      }
    }

    Bytes original(rng.next_below(4096));
    for (auto& byte : original) byte = static_cast<std::uint8_t>(rng.next());

    const auto call = make_call(rng.next());
    wire::Buffer payload{Bytes(original)};
    chain.process_outbound(payload, call);
    chain.process_inbound(payload, call);
    EXPECT_EQ(payload.bytes(), original) << "chain: " << chain.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChainComposition,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace ohpx::cap
