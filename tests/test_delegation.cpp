// Tests for the delegation capability: macaroon fold correctness, caveat
// enforcement, offline attenuation of whole references, secret hygiene,
// and survival across migration.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/delegation.hpp"
#include "ohpx/capability/registry.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/orb/attenuate.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::cap {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;
using scenario::EchoStub;

crypto::Key128 root_key() { return crypto::Key128::from_seed(0xde1e); }

CallContext request_call(std::uint32_t method_id = 1) {
  CallContext call;
  call.request_id = 7;
  call.object_id = 9;
  call.method_id = method_id;
  return call;
}

// ---- fold mechanics -----------------------------------------------------------

TEST(DelegationFold, BearerTokenVerifies) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto bearer = DelegationCapability::from_descriptor(verifier->descriptor());

  wire::Buffer payload(Bytes{1, 2, 3});
  bearer->process(payload, request_call());
  EXPECT_GT(payload.size(), 3u);
  verifier->unprocess(payload, request_call());
  EXPECT_EQ(payload.bytes(), (Bytes{1, 2, 3}));
}

TEST(DelegationFold, ForgedTokenRejected) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto forged = DelegationCapability::make_bearer({}, Bytes(8, 0x41));
  wire::Buffer payload(Bytes{1});
  forged->process(payload, request_call());
  EXPECT_THROW(verifier->unprocess(payload, request_call()), CapabilityDenied);
}

TEST(DelegationFold, WrongRootRejected) {
  auto minting = DelegationCapability::make_root(root_key());
  auto other_verifier =
      DelegationCapability::make_root(crypto::Key128::from_seed(999));
  auto bearer = DelegationCapability::from_descriptor(minting->descriptor());
  wire::Buffer payload(Bytes{1});
  bearer->process(payload, request_call());
  EXPECT_THROW(other_verifier->unprocess(payload, request_call()),
               CapabilityDenied);
}

TEST(DelegationFold, CaveatCannotBeDropped) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto narrowed = verifier->attenuate("method<=3");
  // A malicious holder keeps the narrowed token but claims no caveats.
  auto stripped = DelegationCapability::make_bearer({}, narrowed->token());
  wire::Buffer payload(Bytes{1});
  stripped->process(payload, request_call(9));
  EXPECT_THROW(verifier->unprocess(payload, request_call(9)), CapabilityDenied);
}

TEST(DelegationFold, CaveatCannotBeReplaced) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto narrowed = verifier->attenuate("method<=3");
  // Same token, different caveat text: fold mismatch.
  auto lying = DelegationCapability::make_bearer({"method<=999"},
                                                 narrowed->token());
  wire::Buffer payload(Bytes{1});
  lying->process(payload, request_call(500));
  EXPECT_THROW(verifier->unprocess(payload, request_call(500)),
               CapabilityDenied);
}

// ---- caveat enforcement ----------------------------------------------------------

TEST(DelegationCaveats, MethodUpperBound) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto bearer = verifier->attenuate("method<=3");
  for (std::uint32_t method : {1u, 3u}) {
    wire::Buffer payload(Bytes{1});
    bearer->process(payload, request_call(method));
    EXPECT_NO_THROW(verifier->unprocess(payload, request_call(method)));
  }
  wire::Buffer payload(Bytes{1});
  bearer->process(payload, request_call(4));
  EXPECT_THROW(verifier->unprocess(payload, request_call(4)), CapabilityDenied);
}

TEST(DelegationCaveats, MethodAllowList) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto bearer = verifier->attenuate("method in 2,5");
  wire::Buffer ok(Bytes{1});
  bearer->process(ok, request_call(5));
  EXPECT_NO_THROW(verifier->unprocess(ok, request_call(5)));

  wire::Buffer bad(Bytes{1});
  bearer->process(bad, request_call(3));
  EXPECT_THROW(verifier->unprocess(bad, request_call(3)), CapabilityDenied);
}

TEST(DelegationCaveats, PayloadSizeBound) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto bearer = verifier->attenuate("size<=8");
  wire::Buffer small(Bytes(8, 1));
  bearer->process(small, request_call());
  EXPECT_NO_THROW(verifier->unprocess(small, request_call()));

  wire::Buffer big(Bytes(9, 1));
  bearer->process(big, request_call());
  EXPECT_THROW(verifier->unprocess(big, request_call()), CapabilityDenied);
}

TEST(DelegationCaveats, StackedCaveatsAllApply) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto bearer = verifier->attenuate("method<=5")->attenuate("size<=4");
  wire::Buffer ok(Bytes{1});
  bearer->process(ok, request_call(2));
  EXPECT_NO_THROW(verifier->unprocess(ok, request_call(2)));

  wire::Buffer too_big(Bytes(5, 0));
  bearer->process(too_big, request_call(2));
  EXPECT_THROW(verifier->unprocess(too_big, request_call(2)), CapabilityDenied);

  wire::Buffer bad_method(Bytes{1});
  bearer->process(bad_method, request_call(6));
  EXPECT_THROW(verifier->unprocess(bad_method, request_call(6)),
               CapabilityDenied);
}

TEST(DelegationCaveats, UnknownCaveatFailsClosed) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto bearer = verifier->attenuate("phase-of-moon=full");
  wire::Buffer payload(Bytes{1});
  bearer->process(payload, request_call());
  EXPECT_THROW(verifier->unprocess(payload, request_call()), CapabilityDenied);
}

TEST(DelegationCaveats, MalformedCaveatInputs) {
  auto verifier = DelegationCapability::make_root(root_key());
  EXPECT_THROW(verifier->attenuate(""), CapabilityDenied);
  EXPECT_THROW(verifier->attenuate("a\nb"), CapabilityDenied);

  auto bearer = verifier->attenuate("method<=notanumber");
  wire::Buffer payload(Bytes{1});
  bearer->process(payload, request_call());
  EXPECT_THROW(verifier->unprocess(payload, request_call()), CapabilityDenied);
}

// ---- secret hygiene ---------------------------------------------------------------

TEST(DelegationSecrets, PublicDescriptorNeverCarriesRoot) {
  auto verifier = DelegationCapability::make_root(root_key());
  const auto pub = verifier->descriptor();
  EXPECT_EQ(pub.params.count("root_key"), 0u);
  EXPECT_EQ(pub.get_or("role", ""), "bearer");

  const auto priv = verifier->server_descriptor();
  EXPECT_EQ(priv.get_or("role", ""), "verifier");
  EXPECT_EQ(priv.params.count("token"), 0u);
}

TEST(DelegationSecrets, RegistryRoundTripBothRoles) {
  auto verifier = DelegationCapability::make_root(root_key());
  auto& registry = CapabilityRegistry::instance();

  const auto bearer_copy = registry.instantiate(verifier->descriptor());
  const auto verifier_copy = registry.instantiate(verifier->server_descriptor());

  wire::Buffer payload(Bytes{5, 6});
  bearer_copy->process(payload, request_call());
  EXPECT_NO_THROW(verifier_copy->unprocess(payload, request_call()));
  EXPECT_EQ(payload.bytes(), (Bytes{5, 6}));
}

// ---- end to end through the ORB ------------------------------------------------------

class DelegationRmi : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_server_ = world_.add_machine("server", lan);
    m_client_ = world_.add_machine("client", lan);
    server_ctx_ = &world_.create_context(m_server_);
    client_ctx_ = &world_.create_context(m_client_);

    root_ = DelegationCapability::make_root(root_key());
    ref_ = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
               .glue({root_})
               .build();
  }

  runtime::World world_;
  netsim::MachineId m_server_{}, m_client_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* client_ctx_ = nullptr;
  std::shared_ptr<DelegationCapability> root_;
  orb::ObjectRef ref_;
};

TEST_F(DelegationRmi, UnattenuatedReferenceHasFullAccess) {
  EchoPointer gp(*client_ctx_, ref_);
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->reverse("ab"), "ba");
}

TEST_F(DelegationRmi, AttenuatedReferenceIsNarrower) {
  // The holder narrows the reference to kEcho/kSum/kPing (ids 1..3) —
  // no server involvement.
  const orb::ObjectRef narrowed =
      orb::attenuate_reference(ref_, "method<=3");
  EchoPointer gp(*client_ctx_, narrowed);
  EXPECT_EQ(gp->ping(), 1u);                       // kPing = 3: allowed
  EXPECT_THROW(gp->reverse("ab"), CapabilityDenied);  // kReverse = 4: refused
}

TEST_F(DelegationRmi, AttenuationStacksAcrossHolders) {
  const orb::ObjectRef first = orb::attenuate_reference(ref_, "method<=4");
  const orb::ObjectRef second =
      orb::attenuate_reference(first, "method<=2");
  EchoPointer gp(*client_ctx_, second);
  EXPECT_EQ(gp->sum({1, 2}), 3);                        // kSum = 2
  EXPECT_THROW(gp->ping(), CapabilityDenied);           // kPing = 3
}

TEST_F(DelegationRmi, AttenuationRequiresDelegation) {
  auto plain = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                   .nexus()
                   .build();
  EXPECT_THROW(orb::attenuate_reference(plain, "method<=1"), CapabilityDenied);
}

TEST_F(DelegationRmi, VerifierSurvivesMigration) {
  const orb::ObjectRef narrowed = orb::attenuate_reference(ref_, "method<=3");
  EchoPointer gp(*client_ctx_, narrowed);
  EXPECT_EQ(gp->ping(), 1u);

  orb::Context& other = world_.create_context(m_server_);
  runtime::migrate_shared(ref_.object_id(), *server_ctx_, other);

  // The root key moved with the glue binding (server_descriptor path):
  // tokens still verify, caveats still bind.
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_THROW(gp->reverse("xy"), CapabilityDenied);
}

// ---- randomized fold sweep ------------------------------------------------------

class DelegationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DelegationFuzz, RandomCaveatChainsVerifyAndBind) {
  Xoshiro256 rng(GetParam());
  auto verifier = DelegationCapability::make_root(root_key());

  for (int round = 0; round < 20; ++round) {
    // Build a random chain of known caveats and track the tightest bounds.
    std::shared_ptr<const DelegationCapability> bearer = verifier;
    std::uint64_t method_bound = 1000000;
    std::uint64_t size_bound = 1000000;
    const std::size_t depth = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < depth; ++i) {
      if (rng.next_below(2) == 0) {
        const std::uint64_t bound = 1 + rng.next_below(50);
        bearer = bearer->attenuate("method<=" + std::to_string(bound));
        method_bound = std::min(method_bound, bound);
      } else {
        const std::uint64_t bound = 1 + rng.next_below(64);
        bearer = bearer->attenuate("size<=" + std::to_string(bound));
        size_bound = std::min(size_bound, bound);
      }
    }

    const std::uint32_t method =
        static_cast<std::uint32_t>(1 + rng.next_below(60));
    const std::size_t size = rng.next_below(80);
    wire::Buffer payload{Bytes(size, 0x33)};
    auto bearer_copy =
        DelegationCapability::from_descriptor(bearer->descriptor());
    bearer_copy->process(payload, request_call(method));

    const bool should_pass = method <= method_bound && size <= size_bound;
    if (should_pass) {
      EXPECT_NO_THROW(verifier->unprocess(payload, request_call(method)));
      EXPECT_EQ(payload.size(), size);
    } else {
      EXPECT_THROW(verifier->unprocess(payload, request_call(method)),
                   CapabilityDenied);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DelegationFuzz,
                         ::testing::Values(71, 72, 73, 74));

}  // namespace
}  // namespace ohpx::cap
