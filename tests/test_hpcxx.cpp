// Tests for the HPC++ group-operation layer: broadcast, failover (any),
// round-robin, mixed capability sets across members, and error handling.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/hpcxx/group_pointer.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::hpcxx {
namespace {

using scenario::CounterServant;
using scenario::CounterStub;
using scenario::EchoServant;
using scenario::EchoStub;

class GroupFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_client_ = world_.add_machine("client", lan);
    client_ctx_ = &world_.create_context(m_client_);
    for (int i = 0; i < 3; ++i) {
      const auto machine = world_.add_machine("node" + std::to_string(i), lan);
      server_ctxs_.push_back(&world_.create_context(machine));
    }
  }

  std::vector<orb::ObjectRef> make_counters() {
    std::vector<orb::ObjectRef> refs;
    for (auto* ctx : server_ctxs_) {
      servants_.push_back(std::make_shared<CounterServant>());
      refs.push_back(orb::RefBuilder(*ctx, servants_.back()).build());
    }
    return refs;
  }

  runtime::World world_;
  netsim::MachineId m_client_{};
  orb::Context* client_ctx_ = nullptr;
  std::vector<orb::Context*> server_ctxs_;
  std::vector<std::shared_ptr<CounterServant>> servants_;
};

TEST_F(GroupFixture, BroadcastReachesEveryMember) {
  GroupPointer<CounterStub> group(*client_ctx_, make_counters());
  ASSERT_EQ(group.size(), 3u);

  const auto results = group.broadcast<std::int64_t>(
      [](CounterStub& stub) { return stub.add(5); });
  EXPECT_EQ(results, (std::vector<std::int64_t>{5, 5, 5}));
  for (const auto& servant : servants_) EXPECT_EQ(servant->value(), 5);
}

TEST_F(GroupFixture, BroadcastPropagatesMemberFailure) {
  auto refs = make_counters();
  GroupPointer<CounterStub> group(*client_ctx_, refs);
  // Kill one member's servant: its call fails, the broadcast rethrows.
  server_ctxs_[1]->deactivate(refs[1].object_id());
  EXPECT_THROW(group.broadcast<std::int64_t>(
                   [](CounterStub& stub) { return stub.add(1); }),
               ObjectError);
  // Other members were still reached (concurrent fan-out).
  EXPECT_EQ(servants_[0]->value() + servants_[2]->value(), 2);
}

TEST_F(GroupFixture, AnyFailsOverToNextMember) {
  auto refs = make_counters();
  GroupPointer<CounterStub> group(*client_ctx_, refs);
  server_ctxs_[0]->deactivate(refs[0].object_id());

  const std::int64_t result =
      group.any<std::int64_t>([](CounterStub& stub) { return stub.add(7); });
  EXPECT_EQ(result, 7);
  EXPECT_EQ(servants_[0]->value(), 0);  // dead member skipped
  EXPECT_EQ(servants_[1]->value(), 7);  // first live member served
  EXPECT_EQ(servants_[2]->value(), 0);  // never reached
}

TEST_F(GroupFixture, AnyRethrowsWhenAllFail) {
  auto refs = make_counters();
  GroupPointer<CounterStub> group(*client_ctx_, refs);
  for (std::size_t i = 0; i < refs.size(); ++i) {
    server_ctxs_[i]->deactivate(refs[i].object_id());
  }
  EXPECT_THROW(
      group.any<std::int64_t>([](CounterStub& stub) { return stub.get(); }),
      ObjectError);
}

TEST_F(GroupFixture, RoundRobinSpreadsCalls) {
  GroupPointer<CounterStub> group(*client_ctx_, make_counters());
  for (int i = 0; i < 9; ++i) {
    group.round_robin<std::int64_t>(
        [](CounterStub& stub) { return stub.add(1); });
  }
  for (const auto& servant : servants_) EXPECT_EQ(servant->value(), 3);
}

TEST_F(GroupFixture, EmptyGroupRefused) {
  GroupPointer<CounterStub> group;
  EXPECT_TRUE(group.empty());
  EXPECT_THROW(
      group.any<std::int64_t>([](CounterStub& stub) { return stub.get(); }),
      ObjectError);
  EXPECT_THROW(group.broadcast<std::int64_t>(
                   [](CounterStub& stub) { return stub.get(); }),
               ObjectError);
}

TEST_F(GroupFixture, MembersMayCarryDifferentCapabilities) {
  // Member 0: metered (1 call); member 1: unrestricted.  Failover drains
  // the quota then transparently moves on.
  std::vector<orb::ObjectRef> refs;
  auto s0 = std::make_shared<EchoServant>();
  auto s1 = std::make_shared<EchoServant>();
  refs.push_back(orb::RefBuilder(*server_ctxs_[0], s0)
                     .glue({std::make_shared<cap::QuotaCapability>(1)})
                     .build());
  refs.push_back(orb::RefBuilder(*server_ctxs_[1], s1).build());

  GroupPointer<EchoStub> group(*client_ctx_, refs);
  group.any<std::uint64_t>([](EchoStub& stub) { return stub.ping(); });
  group.any<std::uint64_t>([](EchoStub& stub) { return stub.ping(); });
  group.any<std::uint64_t>([](EchoStub& stub) { return stub.ping(); });
  EXPECT_EQ(s0->pings(), 1u);  // quota allowed exactly one
  EXPECT_EQ(s1->pings(), 2u);  // the rest failed over
}

TEST_F(GroupFixture, AddGrowsTheGroup) {
  GroupPointer<CounterStub> group;
  auto refs = make_counters();
  for (const auto& ref : refs) group.add(*client_ctx_, ref);
  EXPECT_EQ(group.size(), 3u);
  EXPECT_EQ(group.member(0).get(), 0);
}

}  // namespace
}  // namespace ohpx::hpcxx
