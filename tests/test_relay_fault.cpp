// Tests for the relay protocol (gateway traversal) and the fault-injection
// capability, including their combination with group-pointer failover.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/fault.hpp"
#include "ohpx/capability/registry.hpp"
#include "ohpx/hpcxx/group_pointer.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/relay.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;
using scenario::EchoStub;

class RelayFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_client_ = world_.add_machine("client", lan);
    m_gateway_ = world_.add_machine("gateway", lan);
    m_server_ = world_.add_machine("server", lan);
    client_ctx_ = &world_.create_context(m_client_);
    server_ctx_ = &world_.create_context(m_server_);
  }

  runtime::World world_;
  netsim::MachineId m_client_{}, m_gateway_{}, m_server_{};
  orb::Context* client_ctx_ = nullptr;
  orb::Context* server_ctx_ = nullptr;
};

TEST_F(RelayFixture, CallsTraverseTheGateway) {
  proto::RelayForwarder gateway("gw/main");

  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .custom(proto::ProtocolEntry{
                     "relay", proto::RelayProtocol::make_proto_data("gw/main")})
                 .build();
  client_ctx_->pool().enable("relay");

  EchoPointer gp(*client_ctx_, ref);
  EXPECT_EQ(gp->reverse("gw"), "wg");
  EXPECT_EQ(gp->last_protocol(), "relay[gw/main]");
  EXPECT_EQ(gateway.forwarded(), 1u);
}

TEST_F(RelayFixture, RelayFollowsMigration) {
  proto::RelayForwarder gateway("gw/mig");
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .custom(proto::ProtocolEntry{
                     "relay", proto::RelayProtocol::make_proto_data("gw/mig")})
                 .build();
  client_ctx_->pool().enable("relay");
  EchoPointer gp(*client_ctx_, ref);
  EXPECT_EQ(gp->ping(), 1u);

  // The relay forwards to the *current* endpoint: after migration the
  // envelope targets the new context.
  orb::Context& elsewhere = world_.create_context(m_gateway_);
  runtime::migrate_shared(ref.object_id(), *server_ctx_, elsewhere);
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(gateway.forwarded(), 2u);
}

TEST_F(RelayFixture, GatewayDownMakesRelayInapplicable) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .custom(proto::ProtocolEntry{
                     "relay", proto::RelayProtocol::make_proto_data("gw/gone")})
                 .nexus()
                 .build();
  client_ctx_->pool().enable("relay");
  EchoPointer gp(*client_ctx_, ref);

  // No forwarder bound: the relay entry is skipped, nexus carries the call.
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");

  // Bring the gateway up: the preferred relay entry takes over.
  proto::RelayForwarder gateway("gw/gone");
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(gp->last_protocol(), "relay[gw/gone]");
}

TEST_F(RelayFixture, EmptyGatewayNameRejected) {
  EXPECT_THROW(proto::RelayProtocol(""), ProtocolError);
}

// ---- fault capability ------------------------------------------------------------

TEST(FaultCapabilityTest, RefusesEveryNth) {
  cap::FaultCapability fault(3);
  cap::CallContext call;
  call.direction = cap::Direction::request;
  int refused = 0;
  for (int i = 0; i < 9; ++i) {
    try {
      fault.admit(call);
    } catch (const CapabilityDenied&) {
      ++refused;
    }
  }
  EXPECT_EQ(refused, 3);
  EXPECT_EQ(fault.refused(), 3u);
  EXPECT_EQ(fault.admitted(), 6u);
}

TEST(FaultCapabilityTest, ZeroRejected) {
  EXPECT_THROW(cap::FaultCapability(0), CapabilityDenied);
}

TEST(FaultCapabilityTest, DescriptorRoundTrip) {
  cap::FaultCapability fault(7);
  const auto copy =
      cap::CapabilityRegistry::instance().instantiate(fault.descriptor());
  EXPECT_EQ(copy->kind(), "fault");
}

TEST_F(RelayFixture, FaultCapabilityDrivesGroupFailover) {
  // Replica 0 fails every 2nd request; any() transparently retries on
  // replica 1, so the caller sees no failures at all.
  auto flaky_servant = std::make_shared<EchoServant>();
  auto stable_servant = std::make_shared<EchoServant>();
  auto flaky = orb::RefBuilder(*server_ctx_, flaky_servant)
                   .glue({std::make_shared<cap::FaultCapability>(2)})
                   .build();
  auto stable = orb::RefBuilder(*server_ctx_, stable_servant).build();

  hpcxx::GroupPointer<EchoStub> group(*client_ctx_, {flaky, stable});
  for (int i = 0; i < 10; ++i) {
    EXPECT_NO_THROW(group.any<std::uint64_t>(
        [](EchoStub& stub) { return stub.ping(); }));
  }
  // The flaky replica served some, the stable one absorbed the faults.
  EXPECT_GT(flaky_servant->pings(), 0u);
  EXPECT_GT(stable_servant->pings(), 0u);
  EXPECT_EQ(flaky_servant->pings() + stable_servant->pings(), 10u);
}

}  // namespace
}  // namespace ohpx
