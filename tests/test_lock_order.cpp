// Lock-order validator tests (ohpx/sync/lock_order.hpp).
//
// These use sync::OrderedMutex — the always-checked flavor — so the
// validator is exercised even in the RelWithDebInfo tier-1 build where
// plain sync::Mutex compiles the checks out.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ohpx/sync/lock_order.hpp"
#include "ohpx/sync/mutex.hpp"

namespace {

using ohpx::sync::LockGuard;
using ohpx::sync::OrderedMutex;
using ohpx::sync::OrderedSharedMutex;
using ohpx::sync::SharedLock;
using ohpx::sync::UniqueLock;
namespace lock_order = ohpx::sync::lock_order;

std::size_t count_occurrences(const std::string& text,
                              const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at + needle.size())) {
    ++count;
  }
  return count;
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override { lock_order::reset_for_testing(); }
  void TearDown() override { lock_order::reset_for_testing(); }
};

void lock_in_order(OrderedMutex& first, OrderedMutex& second) {
  LockGuard outer(first);
  LockGuard inner(second);
}

TEST_F(LockOrderTest, CleanOrderingProducesNoReports) {
  OrderedMutex a("lo.clean.a");
  OrderedMutex b("lo.clean.b");
  OrderedMutex c("lo.clean.c");

  // Consistent a -> b -> c nesting from several sites, plus plain
  // non-nested use: none of this is an inversion.
  lock_in_order(a, b);
  lock_in_order(b, c);
  lock_in_order(a, b);
  {
    LockGuard la(a);
    LockGuard lb(b);
    LockGuard lc(c);
  }
  { LockGuard lone(c); }

  EXPECT_EQ(lock_order::report_count(), 0u);
  EXPECT_TRUE(lock_order::take_reports().empty());
}

TEST_F(LockOrderTest, TwoMutexInversionIsReported) {
  OrderedMutex a("lo.inv.a");
  OrderedMutex b("lo.inv.b");

  lock_in_order(a, b);
  EXPECT_EQ(lock_order::report_count(), 0u);

  lock_in_order(b, a);  // the inversion
  ASSERT_EQ(lock_order::report_count(), 1u);

  const auto reports = lock_order::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  const auto& report = reports.front();

  // Participants, canonicalized (lexicographically smallest name first).
  const std::vector<std::string> expected{"lo.inv.a", "lo.inv.b"};
  EXPECT_EQ(report.cycle, expected);

  // The report names both acquisition sites in this file.
  EXPECT_NE(report.description.find("potential deadlock"), std::string::npos);
  EXPECT_NE(report.description.find("closing edge"), std::string::npos);
  EXPECT_NE(report.description.find("established order"), std::string::npos);
  EXPECT_EQ(count_occurrences(report.description, "test_lock_order.cpp"), 4u);
  EXPECT_EQ(count_occurrences(report.description, "\"lo.inv.a\""), 2u);
  EXPECT_EQ(count_occurrences(report.description, "\"lo.inv.b\""), 2u);

  // Draining is destructive.
  EXPECT_EQ(lock_order::report_count(), 0u);
}

TEST_F(LockOrderTest, ReportIsDeterministic) {
  // The same inversion replayed from the same sites renders the same
  // report, byte for byte.
  std::string first;
  std::string second;
  for (std::string* out : {&first, &second}) {
    lock_order::reset_for_testing();
    OrderedMutex a("lo.det.a");
    OrderedMutex b("lo.det.b");
    lock_in_order(a, b);
    lock_in_order(b, a);
    const auto reports = lock_order::take_reports();
    ASSERT_EQ(reports.size(), 1u);
    *out = reports.front().description;
  }
  EXPECT_EQ(first, second);
}

TEST_F(LockOrderTest, DuplicateInversionReportedOnce) {
  OrderedMutex a("lo.dup.a");
  OrderedMutex b("lo.dup.b");

  lock_in_order(a, b);
  for (int i = 0; i < 3; ++i) lock_in_order(b, a);

  EXPECT_EQ(lock_order::report_count(), 1u);
}

TEST_F(LockOrderTest, TransitiveCycleThroughThreeMutexes) {
  OrderedMutex a("lo.tri.a");
  OrderedMutex b("lo.tri.b");
  OrderedMutex c("lo.tri.c");

  // Establish a -> b and b -> c (a -> c is implied, never recorded
  // directly: edges are taken from the top of the held stack only).
  {
    LockGuard la(a);
    LockGuard lb(b);
    LockGuard lc(c);
  }
  EXPECT_EQ(lock_order::report_count(), 0u);

  lock_in_order(c, a);  // closes a -> b -> c -> a
  ASSERT_EQ(lock_order::report_count(), 1u);

  const auto reports = lock_order::take_reports();
  ASSERT_EQ(reports.front().cycle.size(), 3u);
  const std::vector<std::string> expected{"lo.tri.a", "lo.tri.b", "lo.tri.c"};
  EXPECT_EQ(reports.front().cycle, expected);
  // Two previously recorded edges on the cycle, each cited.
  EXPECT_EQ(count_occurrences(reports.front().description,
                              "established order"),
            2u);
}

TEST_F(LockOrderTest, ReportsRankShortestCycleFirst) {
  OrderedMutex a("lo.rank.a");
  OrderedMutex b("lo.rank.b");
  OrderedMutex c("lo.rank.c");

  // First a 3-cycle, then a 2-cycle: take_reports() ranks the 2-cycle
  // first regardless of discovery order.
  {
    LockGuard la(a);
    LockGuard lb(b);
    LockGuard lc(c);
  }
  lock_in_order(c, a);
  lock_in_order(b, a);

  const auto reports = lock_order::take_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].cycle.size(), 2u);
  EXPECT_EQ(reports[1].cycle.size(), 3u);
}

TEST_F(LockOrderTest, AbbaAcrossInstancesOfOneLockClass) {
  // Names are lock classes: two *instances* with the same name acquired
  // in both orders is the classic ABBA deadlock, and the validator
  // collapses them onto one node... but a self-edge (same class nested
  // under itself) is deliberately not an inversion report.
  OrderedMutex left("lo.abba.peer");
  OrderedMutex right("lo.abba.peer");
  {
    LockGuard ll(left);
    LockGuard lr(right);
  }
  {
    LockGuard lr(right);
    LockGuard ll(left);
  }
  EXPECT_EQ(lock_order::report_count(), 0u);

  // Distinct classes, inverted across instances, still reported.
  OrderedMutex other("lo.abba.other");
  {
    LockGuard ll(left);
    LockGuard lo(other);
  }
  {
    LockGuard lo(other);
    LockGuard lr(right);  // other -> peer closes peer -> other -> peer
  }
  EXPECT_EQ(lock_order::report_count(), 1u);
}

TEST_F(LockOrderTest, TryLockParticipatesInOrdering) {
  OrderedMutex a("lo.try.a");
  OrderedMutex b("lo.try.b");

  {
    LockGuard la(a);
    ASSERT_TRUE(b.try_lock());
    b.unlock();
  }
  lock_in_order(b, a);
  EXPECT_EQ(lock_order::report_count(), 1u);
}

TEST_F(LockOrderTest, UniqueLockParticipatesInOrdering) {
  OrderedMutex a("lo.uniq.a");
  OrderedMutex b("lo.uniq.b");

  {
    UniqueLock la(a);
    LockGuard lb(b);
  }
  {
    LockGuard lb(b);
    UniqueLock la(a);
  }
  EXPECT_EQ(lock_order::report_count(), 1u);
}

TEST_F(LockOrderTest, SharedHoldsParticipateInOrdering) {
  OrderedSharedMutex table("lo.shared.table");
  OrderedMutex row("lo.shared.row");

  {
    SharedLock reader(table);
    LockGuard lr(row);
  }
  {
    LockGuard lr(row);
    SharedLock reader(table);  // row -> table inverts table -> row
  }
  ASSERT_EQ(lock_order::report_count(), 1u);
  const auto reports = lock_order::take_reports();
  const std::vector<std::string> expected{"lo.shared.row", "lo.shared.table"};
  EXPECT_EQ(reports.front().cycle, expected);
}

TEST_F(LockOrderTest, OutOfOrderReleaseIsHandled) {
  OrderedMutex a("lo.ooo.a");
  OrderedMutex b("lo.ooo.b");
  OrderedMutex c("lo.ooo.c");

  // Release the *outer* lock first: the held stack must drop the entry
  // for `a` specifically, leaving `b` as the holder `c` nests under.
  a.lock();
  b.lock();    // records a -> b
  a.unlock();  // out-of-order release
  {
    LockGuard lc(c);  // must record b -> c (a -> c if the pop were wrong)
  }
  b.unlock();

  lock_in_order(c, a);
  const auto reports = lock_order::take_reports();
  ASSERT_EQ(reports.size(), 1u);
  // The correct graph closes the 3-cycle a -> b -> c -> a here.  A
  // 2-cycle {a, c} instead would mean on_release popped the top of the
  // stack rather than the matching hold.
  const std::vector<std::string> expected{"lo.ooo.a", "lo.ooo.b", "lo.ooo.c"};
  EXPECT_EQ(reports.front().cycle, expected);
}

TEST_F(LockOrderTest, ReleaseMutexCompilesOutValidator) {
  // Release builds must pay nothing for the validator in sync::Mutex:
  // the unchecked flavor carries no node pointer, so it is exactly the
  // size of the wrapped mutex plus its name.
  using Unchecked = ohpx::sync::BasicMutex<false>;
  using Checked = ohpx::sync::BasicMutex<true>;
  static_assert(sizeof(Unchecked) < sizeof(Checked),
                "unchecked flavor must not carry validator state");

  // And an unchecked inversion is invisible to the registry.
  Unchecked a("lo.rel.a");
  Unchecked b("lo.rel.b");
  {
    LockGuard la(a);
    LockGuard lb(b);
  }
  {
    LockGuard lb(b);
    LockGuard la(a);
  }
  EXPECT_EQ(lock_order::report_count(), 0u);
}

}  // namespace
