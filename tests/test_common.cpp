// Unit tests for the common layer: errors, bytes/hex, clocks, RNG, logging.
#include <gtest/gtest.h>

#include <thread>

#include "ohpx/common/bytes.hpp"
#include "ohpx/common/clock.hpp"
#include "ohpx/common/error.hpp"
#include "ohpx/common/log.hpp"
#include "ohpx/common/rng.hpp"

namespace ohpx {
namespace {

// ---- errors -----------------------------------------------------------------

TEST(Errors, CodeNamesAreStable) {
  EXPECT_EQ(to_string(ErrorCode::ok), "ok");
  EXPECT_EQ(to_string(ErrorCode::wire_truncated), "wire_truncated");
  EXPECT_EQ(to_string(ErrorCode::capability_expired), "capability_expired");
  EXPECT_EQ(to_string(ErrorCode::stale_reference), "stale_reference");
  EXPECT_EQ(to_string(ErrorCode::remote_application_error),
            "remote_application_error");
}

TEST(Errors, ThrowErrorPicksCategoryByCode) {
  EXPECT_THROW(throw_error(ErrorCode::wire_bad_magic, "x"), WireError);
  EXPECT_THROW(throw_error(ErrorCode::transport_closed, "x"), TransportError);
  EXPECT_THROW(throw_error(ErrorCode::protocol_no_match, "x"), ProtocolError);
  EXPECT_THROW(throw_error(ErrorCode::capability_denied, "x"), CapabilityDenied);
  EXPECT_THROW(throw_error(ErrorCode::object_not_found, "x"), ObjectError);
  EXPECT_THROW(throw_error(ErrorCode::remote_application_error, "x"),
               RemoteError);
  EXPECT_THROW(throw_error(ErrorCode::internal, "x"), Error);
}

TEST(Errors, SubclassesPreserveCodeAndMessage) {
  try {
    throw_error(ErrorCode::capability_exhausted, "quota gone");
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_exhausted);
    EXPECT_STREQ(e.what(), "quota gone");
  }
}

TEST(Errors, AllSubclassesCatchableAsError) {
  try {
    throw_error(ErrorCode::migration_failed, "m");
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::migration_failed);
  }
}

// ---- bytes / hex --------------------------------------------------------------

TEST(BytesHex, RoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(to_hex(data), "0001abff");
  EXPECT_EQ(from_hex("0001abff"), data);
  EXPECT_EQ(from_hex("0001ABFF"), data);
}

TEST(BytesHex, EmptyIsFine) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesHex, OddLengthRejected) { EXPECT_THROW(from_hex("abc"), WireError); }

TEST(BytesHex, BadDigitRejected) { EXPECT_THROW(from_hex("zz"), WireError); }

TEST(BytesText, Conversions) {
  EXPECT_EQ(text_of(bytes_of("hi")), "hi");
  EXPECT_EQ(bytes_of("").size(), 0u);
}

TEST(ConstantTime, EqualAndUnequal) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(constant_time_equal(a, b));
  EXPECT_FALSE(constant_time_equal(a, c));
  EXPECT_FALSE(constant_time_equal(a, d));
  EXPECT_TRUE(constant_time_equal({}, {}));
}

// ---- clock / ledger -------------------------------------------------------------

TEST(CostLedgerTest, AccumulatesBothHalves) {
  CostLedger ledger;
  ledger.add_real(Nanoseconds(100));
  ledger.add_modeled(Nanoseconds(900));
  ledger.add_bytes_sent(10);
  ledger.add_bytes_received(20);
  EXPECT_EQ(ledger.real().count(), 100);
  EXPECT_EQ(ledger.modeled().count(), 900);
  EXPECT_EQ(ledger.total().count(), 1000);
  EXPECT_DOUBLE_EQ(ledger.total_seconds(), 1e-6);
  EXPECT_EQ(ledger.bytes_sent(), 10u);
  EXPECT_EQ(ledger.bytes_received(), 20u);
}

TEST(CostLedgerTest, MergeAndReset) {
  CostLedger a, b;
  a.add_real(Nanoseconds(5));
  b.add_modeled(Nanoseconds(7));
  b.add_bytes_sent(3);
  a.merge(b);
  EXPECT_EQ(a.total().count(), 12);
  EXPECT_EQ(a.bytes_sent(), 3u);
  a.reset();
  EXPECT_EQ(a.total().count(), 0);
}

TEST(ScopedRealTimeTest, AddsElapsedTime) {
  CostLedger ledger;
  {
    ScopedRealTime timer(ledger);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));  // ohpx-lint: allow-wall-clock (CostLedger real-time accounting needs real time)
  }
  EXPECT_GE(ledger.real().count(), 1'000'000);
  EXPECT_EQ(ledger.modeled().count(), 0);
}

TEST(StopwatchTest, MonotoneAndResettable) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // ohpx-lint: allow-wall-clock (Stopwatch measures the steady clock itself)
  const auto first = watch.elapsed();
  EXPECT_GT(first.count(), 0);
  watch.reset();
  EXPECT_LT(watch.elapsed(), first + Nanoseconds(1'000'000'000));
}

// ---- RNG ----------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Xoshiro256 a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  bool any_diff = false;
  Xoshiro256 a2(42);
  for (int i = 0; i < 100; ++i) any_diff |= (a2.next() != c.next());
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundsRespected) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(10), 10u);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, SplitMixDistinctOutputs) {
  SplitMix64 mixer(0);
  const auto a = mixer.next();
  const auto b = mixer.next();
  EXPECT_NE(a, b);
}

// ---- log ------------------------------------------------------------------------

TEST(Log, LevelGateWorks) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::error);
  EXPECT_EQ(log_level(), LogLevel::error);
  // Below-threshold logging must be a no-op (nothing observable to assert
  // beyond "does not crash").
  log_debug("test", "invisible ", 42);
  log_error("test", "visible in stderr during tests is fine");
  set_log_level(old_level);
}

}  // namespace
}  // namespace ohpx
