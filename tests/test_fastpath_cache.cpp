// Fast-path selection cache: the adaptivity contract under memoization.
//
// The paper's rule is per-request re-evaluation (§3.2); CallCore memoizes
// the selection keyed on (location epoch, pool generation).  These tests
// pin the contract: after *any* event the paper says must change the
// outcome — a migration republish, a proto-pool edit — the very next call
// re-selects.  No call is ever served by a stale protocol, with the cache
// enabled (the default) or disabled (the literal-paper baseline).
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

std::uint64_t hits() {
  return metrics::MetricsRegistry::global().counter("rmi.select.cache_hit");
}
std::uint64_t misses() {
  return metrics::MetricsRegistry::global().counter("rmi.select.cache_miss");
}

// Mirrors the Figure 3 topology: server + near client share a LAN (and a
// machine, so shm is in play), the far client sits on another LAN behind
// a cross-LAN authentication glue.
class FastpathCache : public ::testing::Test {
 protected:
  void SetUp() override {
    lan1_ = world_.add_lan("lan-1");
    lan2_ = world_.add_lan("lan-2");
    m_server_ = world_.add_machine("s0-box", lan1_);
    m_far_ = world_.add_machine("far-box", lan2_);
    m_far2_ = world_.add_machine("far-box-2", lan2_);

    server_ctx_ = &world_.create_context(m_server_);
    near_ctx_ = &world_.create_context(m_server_);  // same machine: shm
    far_ctx_ = &world_.create_context(m_far_);

    auto auth = std::make_shared<cap::AuthenticationCapability>(
        crypto::Key128::from_seed(0xfa57), "fastpath", cap::Scope::cross_lan);
    ref_ = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
               .glue({auth}, "nexus-tcp")
               .shm()
               .nexus()
               .build();
  }

  runtime::World world_;
  netsim::LanId lan1_{}, lan2_{};
  netsim::MachineId m_server_{}, m_far_{}, m_far2_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* near_ctx_ = nullptr;
  orb::Context* far_ctx_ = nullptr;
  orb::ObjectRef ref_;
};

TEST_F(FastpathCache, RepeatedCallsHitTheCache) {
  EchoPointer near(*near_ctx_, ref_);
  const std::uint64_t h0 = hits();
  const std::uint64_t m0 = misses();

  near->ping();  // fill
  EXPECT_EQ(near->last_protocol(), "shm");
  for (int i = 0; i < 8; ++i) near->ping();

  EXPECT_EQ(misses() - m0, 1u) << "only the first call may re-select";
  EXPECT_EQ(hits() - h0, 8u);
}

TEST_F(FastpathCache, MigrationReselectsOnTheVeryNextCall) {
  EchoPointer near(*near_ctx_, ref_);

  // Warm the cache on the colocated fast path.
  near->ping();
  near->ping();
  ASSERT_EQ(near->last_protocol(), "shm");

  const std::uint64_t epoch_before =
      world_.location().epoch_of(ref_.object_id());

  // Migrate the servant to the far LAN (a machine the far client does
  // not share, so shm stays out of play for it).  The republish bumps
  // the epoch; the near client's cached (shm) selection must die with it.
  orb::Context& new_home = world_.create_context(m_far2_);
  runtime::migrate_shared(ref_.object_id(), *server_ctx_, new_home);
  EXPECT_GT(world_.location().epoch_of(ref_.object_id()), epoch_before);

  // Very next call: the near client is now cross-LAN, so the preferred
  // authenticated glue entry applies — served by the *new* home.
  near->ping();
  EXPECT_EQ(near->last_protocol(), "glue[authentication]->nexus-tcp");

  // And the swap is symmetric, exactly as in Figure 3: the far client
  // is now LAN-local to the object and drops down to plain nexus.
  EchoPointer far(*far_ctx_, ref_);
  far->ping();
  EXPECT_EQ(far->last_protocol(), "nexus-tcp");
}

TEST_F(FastpathCache, MigrationReselectsWithCacheDisabledToo) {
  // The literal-paper baseline must behave identically (it is the
  // benchmark's control arm, not a different semantics).
  EchoPointer near(*near_ctx_, ref_);
  near->set_selection_cache(false);

  near->ping();
  ASSERT_EQ(near->last_protocol(), "shm");

  orb::Context& new_home = world_.create_context(m_far_);
  runtime::migrate_shared(ref_.object_id(), *server_ctx_, new_home);

  near->ping();
  EXPECT_EQ(near->last_protocol(), "glue[authentication]->nexus-tcp");
}

TEST_F(FastpathCache, PoolEditReselectsOnTheVeryNextCall) {
  EchoPointer near(*near_ctx_, ref_);

  near->ping();
  near->ping();
  ASSERT_EQ(near->last_protocol(), "shm");

  // User control over selection (§3.2): deny shm mid-stream.  The pool
  // generation bump must invalidate the memoized choice immediately.
  const std::uint64_t gen_before = near_ctx_->pool().generation();
  near_ctx_->pool().disable("shm");
  EXPECT_GT(near_ctx_->pool().generation(), gen_before);

  near->ping();
  EXPECT_EQ(near->last_protocol(), "nexus-tcp");

  // Re-allowing flips it straight back (enable bumps the generation too).
  near_ctx_->pool().enable("shm");
  near->ping();
  EXPECT_EQ(near->last_protocol(), "shm");
}

TEST_F(FastpathCache, RedundantPoolEditsDoNotInvalidate) {
  EchoPointer near(*near_ctx_, ref_);
  near->ping();

  // enable() of an already-allowed name and disable() of an absent one
  // change nothing, so they must not bump the generation (no spurious
  // cache misses from idempotent edits).
  const std::uint64_t gen = near_ctx_->pool().generation();
  near_ctx_->pool().enable("shm");
  near_ctx_->pool().disable("no-such-protocol");
  EXPECT_EQ(near_ctx_->pool().generation(), gen);

  const std::uint64_t h0 = hits();
  near->ping();
  EXPECT_EQ(hits() - h0, 1u);
}

TEST_F(FastpathCache, ProbeProtocolNeverConsultsTheCache) {
  EchoPointer near(*near_ctx_, ref_);
  near->ping();
  ASSERT_EQ(near->last_protocol(), "shm");

  // probe_protocol() is the diagnostic "what would be selected now" — it
  // must reflect a pool edit even before the next real call refreshes
  // the cache.
  near_ctx_->pool().disable("shm");
  EXPECT_EQ(near->probe_protocol(), "nexus-tcp");
}

TEST_F(FastpathCache, CacheToggleRoundTrip) {
  EchoPointer near(*near_ctx_, ref_);
  near->ping();

  near->set_selection_cache(false);
  const std::uint64_t h0 = hits();
  const std::uint64_t m0 = misses();
  for (int i = 0; i < 4; ++i) near->ping();
  EXPECT_EQ(hits() - h0, 0u) << "disabled cache must never serve a hit";
  EXPECT_EQ(misses() - m0, 0u) << "miss counter tracks cache-on calls only";

  // Re-enabling starts cold: one miss to refill, then hits again.
  near->set_selection_cache(true);
  near->ping();
  near->ping();
  EXPECT_EQ(misses() - m0, 1u);
  EXPECT_EQ(hits() - h0, 1u);
}

}  // namespace
}  // namespace ohpx
