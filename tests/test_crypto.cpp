// Unit tests for the crypto substrate: key material, SipHash-2-4 (against
// the reference test vectors), MAC tagging, and the stream cipher.
#include <gtest/gtest.h>

#include "ohpx/common/error.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/crypto/key.hpp"
#include "ohpx/crypto/mac.hpp"
#include "ohpx/crypto/stream_cipher.hpp"

namespace ohpx::crypto {
namespace {

// ---- keys --------------------------------------------------------------------

TEST(Key, HexRoundTrip) {
  const Key128 key = Key128::from_seed(12345);
  const Key128 back = Key128::from_hex(key.to_hex());
  EXPECT_EQ(key, back);
}

TEST(Key, HexValidation) {
  EXPECT_THROW(Key128::from_hex("abcd"), WireError);        // too short
  EXPECT_THROW(Key128::from_hex(std::string(32, 'z')), WireError);
  EXPECT_NO_THROW(Key128::from_hex(std::string(32, '0')));
}

TEST(Key, SeedsAreDeterministicAndDistinct) {
  EXPECT_EQ(Key128::from_seed(1), Key128::from_seed(1));
  EXPECT_NE(Key128::from_seed(1), Key128::from_seed(2));
}

TEST(Key, PassphraseDerivation) {
  EXPECT_EQ(Key128::from_passphrase("secret"), Key128::from_passphrase("secret"));
  EXPECT_NE(Key128::from_passphrase("secret"), Key128::from_passphrase("Secret"));
}

TEST(Key, HalvesAreLittleEndian) {
  Key128 key;
  for (int i = 0; i < 16; ++i) key.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  EXPECT_EQ(key.lo(), 0x0706050403020100ull);
  EXPECT_EQ(key.hi(), 0x0f0e0d0c0b0a0908ull);
}

// ---- SipHash-2-4 reference vectors ---------------------------------------------
//
// From the SipHash reference implementation (Aumasson & Bernstein): key =
// 000102...0f, message = first n bytes of 00 01 02 ..., expected 64-bit
// outputs (little-endian in the reference table, reproduced here as u64).

Key128 reference_key() {
  Key128 key;
  for (int i = 0; i < 16; ++i) key.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
  return key;
}

TEST(SipHash, ReferenceVectors) {
  // vectors_sip64[n] for n = 0..7 from the reference implementation.
  const std::uint64_t expected[] = {
      0x726fdb47dd0e0e31ull, 0x74f839c593dc67fdull, 0x0d6c8009d9a94f5aull,
      0x85676696d7fb7e2dull, 0xcf2794e0277187b7ull, 0x18765564cd99a68dull,
      0xcbc9466e58fee3ceull, 0xab0200f58b01d137ull,
  };
  const Key128 key = reference_key();
  Bytes message;
  for (std::size_t n = 0; n < std::size(expected); ++n) {
    EXPECT_EQ(siphash24(key, message), expected[n]) << "length " << n;
    message.push_back(static_cast<std::uint8_t>(n));
  }
}

TEST(SipHash, LongerMessagesStable) {
  const Key128 key = reference_key();
  Bytes message(1000);
  for (std::size_t i = 0; i < message.size(); ++i) {
    message[i] = static_cast<std::uint8_t>(i);
  }
  const std::uint64_t h1 = siphash24(key, message);
  const std::uint64_t h2 = siphash24(key, message);
  EXPECT_EQ(h1, h2);
  message[500] ^= 1;
  EXPECT_NE(siphash24(key, message), h1);
}

// ---- MAC tags --------------------------------------------------------------------

TEST(Mac, TagAndVerify) {
  const Key128 key = Key128::from_seed(9);
  const Bytes data = bytes_of("authenticated payload");
  const Bytes tag = mac_tag(key, data);
  EXPECT_EQ(tag.size(), kMacTagSize);
  EXPECT_TRUE(mac_verify(key, data, tag));
}

TEST(Mac, TamperedPayloadFails) {
  const Key128 key = Key128::from_seed(9);
  Bytes data = bytes_of("authenticated payload");
  const Bytes tag = mac_tag(key, data);
  data[0] ^= 1;
  EXPECT_FALSE(mac_verify(key, data, tag));
}

TEST(Mac, WrongKeyFails) {
  const Bytes data = bytes_of("payload");
  const Bytes tag = mac_tag(Key128::from_seed(1), data);
  EXPECT_FALSE(mac_verify(Key128::from_seed(2), data, tag));
}

TEST(Mac, WrongTagSizeFails) {
  const Key128 key = Key128::from_seed(9);
  const Bytes data = bytes_of("payload");
  EXPECT_FALSE(mac_verify(key, data, Bytes{1, 2, 3}));
  EXPECT_FALSE(mac_verify(key, data, Bytes{}));
}

TEST(Mac, EmptyMessageHasValidTag) {
  const Key128 key = Key128::from_seed(3);
  const Bytes tag = mac_tag(key, {});
  EXPECT_TRUE(mac_verify(key, {}, tag));
}

// ---- stream cipher ------------------------------------------------------------------

TEST(StreamCipherTest, RoundTripRestoresPlaintext) {
  const Key128 key = Key128::from_seed(77);
  Bytes data = bytes_of("the plaintext message, somewhat longer than a block");
  const Bytes original = data;
  stream_crypt(key, 5, data);
  EXPECT_NE(data, original);  // actually scrambled
  stream_crypt(key, 5, data);
  EXPECT_EQ(data, original);
}

TEST(StreamCipherTest, DifferentNonceDifferentKeystream) {
  const Key128 key = Key128::from_seed(77);
  Bytes a = bytes_of("same plaintext bytes!");
  Bytes b = a;
  stream_crypt(key, 1, a);
  stream_crypt(key, 2, b);
  EXPECT_NE(a, b);
}

TEST(StreamCipherTest, DifferentKeyDifferentKeystream) {
  Bytes a = bytes_of("same plaintext bytes!");
  Bytes b = a;
  stream_crypt(Key128::from_seed(1), 9, a);
  stream_crypt(Key128::from_seed(2), 9, b);
  EXPECT_NE(a, b);
}

TEST(StreamCipherTest, EmptyAndTinyPayloads) {
  const Key128 key = Key128::from_seed(4);
  Bytes empty;
  stream_crypt(key, 0, empty);
  EXPECT_TRUE(empty.empty());

  Bytes one = {0x5a};
  const Bytes orig = one;
  stream_crypt(key, 0, one);
  stream_crypt(key, 0, one);
  EXPECT_EQ(one, orig);
}

TEST(StreamCipherTest, NonBlockSizesRoundTrip) {
  const Key128 key = Key128::from_seed(4);
  for (std::size_t n : {1u, 7u, 8u, 9u, 15u, 16u, 17u, 1023u}) {
    Bytes data(n, 0xcc);
    const Bytes orig = data;
    stream_crypt(key, n, data);
    stream_crypt(key, n, data);
    EXPECT_EQ(data, orig) << "size " << n;
  }
}

// ---- parameterized property sweep: cipher is an involution -----------------------

class CipherInvolution : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CipherInvolution, RandomPayloadsRoundTrip) {
  Xoshiro256 rng(GetParam());
  const Key128 key = Key128::from_seed(rng.next());
  for (int i = 0; i < 30; ++i) {
    Bytes data(rng.next_below(2048));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    const Bytes orig = data;
    const std::uint64_t nonce = rng.next();
    stream_crypt(key, nonce, data);
    stream_crypt(key, nonce, data);
    EXPECT_EQ(data, orig);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CipherInvolution,
                         ::testing::Values(10, 20, 30, 40, 50));

}  // namespace
}  // namespace ohpx::crypto
