// Assertion-checked version of the Figure 5 reproduction claims, so the
// paper's qualitative results are enforced by CI, not just eyeballed from
// benchmark output:
//
//   (1) the three network series coincide (capability overhead is a small
//       fraction of network time at every size);
//   (2) bandwidth grows with message size and saturates near (but below)
//       the link rate;
//   (3) shared memory beats every network protocol by more than an order
//       of magnitude;
//   (4) the Ethernet run has the same shape as the ATM run.
#include <gtest/gtest.h>

#include "ohpx/scenario/figure5.hpp"

#include <algorithm>

#include "ohpx/common/clock.hpp"

namespace ohpx::scenario {
namespace {

// Median over several iterations: the real-CPU half of the cost model is
// exposed to scheduler noise on a loaded machine, and the median is what
// the paper's "average over a large number of readings" effectively sees.
double series_mbps(scenario::EchoPointer& gp, std::size_t elements,
                   int iterations = 5) {
  std::vector<std::int32_t> values(elements, 7);
  std::vector<double> seconds;
  seconds.reserve(static_cast<std::size_t>(iterations));
  for (int i = 0; i < iterations; ++i) {
    CostLedger ledger;
    gp->echo_with_cost(ledger, values);
    seconds.push_back(ledger.total_seconds());
  }
  std::sort(seconds.begin(), seconds.end());
  const double median = seconds[seconds.size() / 2];
  const double bytes = 2.0 * 4.0 * static_cast<double>(elements);
  return bytes * 8.0 / (median * 1e6);
}

struct SeriesSet {
  double glue_timeout;
  double glue_timeout_security;
  double nexus;
  double shm;
};

SeriesSet measure(Figure5World& world, std::size_t elements) {
  auto timeout = world.glue_timeout();
  auto security = world.glue_timeout_security();
  auto nexus = world.nexus();
  auto shm = world.shm();
  return SeriesSet{series_mbps(timeout, elements),
                   series_mbps(security, elements), series_mbps(nexus, elements),
                   series_mbps(shm, elements)};
}

TEST(Figure5Shape, AtmReproducesPaperClaims) {
#if defined(OHPX_SANITIZED_BUILD) || defined(OHPX_LOCK_ORDER_CHECKS)
  // Instrumentation slows the real-CPU half of the cost model 2-10x,
  // wrecking the real-vs-modeled ratios these shape claims assert on.
  // The lock-order validator distorts them the same way: every
  // sync::Mutex acquisition serializes through the registry mutex.
  GTEST_SKIP() << "timing-shape assertions are unreliable under "
                  "sanitizers / lock-order checks";
#endif
  Figure5World world(netsim::atm_155());

  const SeriesSet large = measure(world, 1 << 20);
  // (1) Network series coincide: capability-laden series within ~30% of
  // plain nexus (the paper plots them as visually identical on log axes).
  EXPECT_GT(large.glue_timeout, large.nexus * 0.7);
  EXPECT_GT(large.glue_timeout_security, large.nexus * 0.7);
  EXPECT_LT(large.glue_timeout, large.nexus * 1.3);
  EXPECT_LT(large.glue_timeout_security, large.nexus * 1.3);

  // (2) Saturation: within [50%, 100%] of the 155 Mbps link at 4 MB
  // payloads, and far below it at tiny payloads (latency-bound).
  EXPECT_GT(large.nexus, 155.0 * 0.5);
  EXPECT_LE(large.nexus, 155.0 * 1.01);
  const SeriesSet tiny = measure(world, 16);
  EXPECT_LT(tiny.nexus, 155.0 * 0.05);
  EXPECT_GT(large.nexus, tiny.nexus * 10);  // rises with size

  // (3) Shared memory is roughly an order of magnitude above every
  // network series, at small and large sizes (the paper: "more than an
  // order of magnitude faster"); 8x keeps the assertion robust against
  // CPU-time jitter on loaded machines.
  EXPECT_GT(large.shm, 8 * large.nexus);
  EXPECT_GT(large.shm, 8 * large.glue_timeout_security);
  EXPECT_GT(tiny.shm, 8 * tiny.nexus);
}

TEST(Figure5Shape, EthernetVirtuallyIdenticalShape) {
#if defined(OHPX_SANITIZED_BUILD) || defined(OHPX_LOCK_ORDER_CHECKS)
  GTEST_SKIP() << "timing-shape assertions are unreliable under "
                  "sanitizers / lock-order checks";
#endif
  Figure5World world(netsim::fast_ethernet_100());

  const SeriesSet large = measure(world, 1 << 20);
  EXPECT_GT(large.glue_timeout, large.nexus * 0.7);
  EXPECT_GT(large.glue_timeout_security, large.nexus * 0.7);
  EXPECT_GT(large.nexus, 100.0 * 0.5);
  EXPECT_LE(large.nexus, 100.0 * 1.01);
  EXPECT_GT(large.shm, 8 * large.nexus);

  // Ethernet saturates lower than ATM — the link rate orders the plateaus.
  Figure5World atm_world(netsim::atm_155());
  const SeriesSet atm_large = measure(atm_world, 1 << 20);
  EXPECT_GT(atm_large.nexus, large.nexus);
}

}  // namespace
}  // namespace ohpx::scenario
