// Tests for the thread pool: execution, futures, exception propagation,
// shutdown discipline, concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "ohpx/common/error.hpp"
#include "ohpx/common/thread_pool.hpp"

namespace ohpx {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.async([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(2);
  auto future = pool.async([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.async([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(pool.async([&] {
      const int now = ++inside;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));  // ohpx-lint: allow-wall-clock (holds pool threads busy for real)
      --inside;
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, PendingCountsQueuedWork) {
  ThreadPool pool(1);
  std::promise<void> gate;
  auto blocker = pool.async([&gate] { gate.get_future().wait(); });
  // With the single worker blocked, further tasks queue up.
  auto a = pool.async([] {});
  auto b = pool.async([] {});
  EXPECT_GE(pool.pending(), 1u);
  gate.set_value();
  blocker.get();
  a.get();
  b.get();
}

TEST(ThreadPoolTest, ConcurrentSubmitShutdown) {
  // Hammer submit-vs-shutdown from 8 threads while shutdown() runs
  // concurrently.  Every submit must either execute its task before
  // shutdown completes or throw Error(internal); TSan must see no race on
  // the queue, the stop flag, or the worker joins.
  constexpr int kSubmitters = 8;
  constexpr int kPerThread = 64;
  constexpr int kRounds = 25;
  for (int round = 0; round < kRounds; ++round) {
    ThreadPool pool(4);
    std::atomic<int> executed{0};
    std::atomic<int> rejected{0};
    std::atomic<bool> go{false};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kPerThread; ++i) {
          try {
            pool.submit([&executed] { ++executed; });
          } catch (const Error&) {
            ++rejected;
          }
        }
      });
    }
    // Two racing shutdown callers exercise the idempotence contract too.
    std::thread closer_a([&] {
      while (!go.load()) std::this_thread::yield();
      pool.shutdown();
    });
    std::thread closer_b([&] {
      while (!go.load()) std::this_thread::yield();
      pool.shutdown();
    });
    go.store(true);
    for (auto& submitter : submitters) submitter.join();
    closer_a.join();
    closer_b.join();
    // After shutdown, the ledger is stable: nothing else may run, and
    // every submit was either executed, abandoned in-queue, or rejected.
    const int settled = executed.load() + rejected.load();
    EXPECT_LE(settled, kSubmitters * kPerThread);
    EXPECT_THROW(pool.submit([] {}), Error);
  }
}

TEST(ThreadPoolTest, ShutdownAbandonsQueuedTasks) {
  std::atomic<int> executed{0};
  std::promise<void> started;
  std::promise<void> gate;
  {
    ThreadPool pool(1);
    pool.submit([&started, &gate, &executed] {
      started.set_value();
      gate.get_future().wait();
      ++executed;
    });
    for (int i = 0; i < 32; ++i) {
      pool.submit([&executed] { ++executed; });
    }
    // Only a task that has *started* is guaranteed to complete; wait for
    // the worker to pick it up before racing the destructor against it.
    started.get_future().wait();
    gate.set_value();
    // Destructor joins the in-flight task; queued ones may be abandoned.
  }
  EXPECT_GE(executed.load(), 1);
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
  EXPECT_EQ(ThreadPool::shared().async([] { return 7; }).get(), 7);
}

}  // namespace
}  // namespace ohpx
