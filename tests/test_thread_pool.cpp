// Tests for the thread pool: execution, futures, exception propagation,
// shutdown discipline, concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "ohpx/common/error.hpp"
#include "ohpx/common/thread_pool.hpp"

namespace ohpx {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.async([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, AsyncReturnsValues) {
  ThreadPool pool(2);
  auto future = pool.async([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolTest, AsyncPropagatesExceptions) {
  ThreadPool pool(1);
  auto future = pool.async([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 1u);
  EXPECT_EQ(pool.async([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, ParallelismActuallyHappens) {
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  std::atomic<int> peak{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(pool.async([&] {
      const int now = ++inside;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      --inside;
    }));
  }
  for (auto& future : futures) future.get();
  EXPECT_GE(peak.load(), 2);
}

TEST(ThreadPoolTest, PendingCountsQueuedWork) {
  ThreadPool pool(1);
  std::promise<void> gate;
  auto blocker = pool.async([&gate] { gate.get_future().wait(); });
  // With the single worker blocked, further tasks queue up.
  auto a = pool.async([] {});
  auto b = pool.async([] {});
  EXPECT_GE(pool.pending(), 1u);
  gate.set_value();
  blocker.get();
  a.get();
  b.get();
}

TEST(ThreadPoolTest, SharedPoolSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
  EXPECT_GE(ThreadPool::shared().thread_count(), 1u);
  EXPECT_EQ(ThreadPool::shared().async([] { return 7; }).get(), 7);
}

}  // namespace
}  // namespace ohpx
