// Deterministic chaos soak: ten thousand glued echo calls against a
// seeded drop / delay / duplicate / corrupt schedule on the sim
// transport, for several fixed seeds.
//
// The whole fault sequence is a pure function of (schedule, endpoint,
// call order) and every wait runs on a ManualClock, so a seed that
// passes once passes forever — this is a tier-1 test, not a nightly.
//
// Invariants proved per seed:
//   * zero lost replies  — every logical call returns (retries absorb
//     every injected drop and every corrupted reply);
//   * zero corruption    — every reply equals the sent payload; flipped
//     bytes must be caught by the checksum capability, never returned;
//   * bounded amplification — wire attempts are exactly logical calls +
//     recorded retries, and stay under an absolute ceiling.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/common/rng.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/resilience/clock.hpp"
#include "ohpx/resilience/fault_plan.hpp"
#include "ohpx/resilience/retry.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;
using namespace std::chrono_literals;

constexpr std::size_t kCalls = 10'000;

std::vector<std::int32_t> payload_for(std::uint64_t seed, std::uint64_t call) {
  Xoshiro256 rng(seed ^ (call * 0x9e3779b97f4a7c15ULL));
  std::vector<std::int32_t> values(1 + call % 16);
  for (auto& v : values) v = static_cast<std::int32_t>(rng.next());
  return values;
}

class ChaosSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSoak, TenThousandFaultedCallsLoseNothing) {
  const std::uint64_t seed = GetParam();
  resilience::ScopedManualClock virtual_time;

  runtime::World world;
  const auto lan = world.add_lan("lan");
  orb::Context& client =
      world.create_context(world.add_machine("client", lan));
  orb::Context& server =
      world.create_context(world.add_machine("server", lan));

  // Checksummed glue over nexus-tcp: the sim transport carries every call,
  // and any byte the chaos plan flips must die in unprocess(), not leak
  // into a result.
  auto ref = orb::RefBuilder(server, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::ChecksumCapability>()})
                 .build();
  EchoPointer gp(client, ref);

  // Generous attempt budget plus jittered virtual-time backoff: the soak
  // exercises the full retry path without a single wall-clock wait.
  resilience::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff = 1ms;
  policy.jitter = 0.5;
  policy.seed = seed;
  gp->set_retry_policy(policy);

  resilience::ScopedFaultPlan plan;
  resilience::FaultSchedule schedule;
  schedule.drop_rate = 0.05;
  schedule.duplicate_rate = 0.03;
  schedule.corrupt_rate = 0.05;
  schedule.delay_rate = 0.05;
  schedule.delay = 1ms;
  schedule.seed = seed;
  plan.add(server.endpoint_name(), schedule);

  auto& metrics = metrics::MetricsRegistry::global();
  const std::uint64_t retries_before = metrics.counter("rmi.retries");

  for (std::uint64_t call = 0; call < kCalls; ++call) {
    const auto sent = payload_for(seed, call);
    ASSERT_EQ(gp->echo(sent), sent) << "call " << call << ", seed " << seed;
  }

  const std::uint64_t retries =
      metrics.counter("rmi.retries") - retries_before;
  const std::uint64_t wire_attempts =
      resilience::FaultInjector::instance().call_count(server.endpoint_name());

  EXPECT_GT(retries, 0u) << "the plan must actually have injected faults";
  EXPECT_EQ(wire_attempts, kCalls + retries)
      << "every wire attempt is a logical call or a recorded retry — "
         "nothing else touches the endpoint";
  EXPECT_LT(wire_attempts, kCalls + kCalls / 2)
      << "retry amplification stays bounded (~1.1x expected at these rates)";
  EXPECT_GT(virtual_time.clock().now_ns(), 0)
      << "delays and backoff ran on the virtual clock";
}

// Three distinct seeds; each must pass deterministically, every run.
INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSoak,
                         ::testing::Values(0x00c0ffeeULL, 0x5eed0002ULL,
                                           0xfeedf00dULL));

}  // namespace
}  // namespace ohpx
