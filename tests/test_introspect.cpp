// The live introspection plane: Prometheus exposition rendering, the HTTP
// exporter, the Introspect management servant over ohpx RMI, the flight
// recorder's bounded ring, and the reactor stall watchdog.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "ohpx/introspect/exposition.hpp"
#include "ohpx/introspect/flight_recorder.hpp"
#include "ohpx/introspect/http_exporter.hpp"
#include "ohpx/introspect/servant.hpp"
#include "ohpx/metrics/metric_names.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/resilience/breaker.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"
#include "ohpx/trace/trace.hpp"
#include "ohpx/transport/reactor.hpp"

namespace ohpx::introspect {
namespace {

using scenario::EchoServant;
using scenario::EchoStub;

// Minimal blocking HTTP GET against 127.0.0.1:port (tests may use raw
// sockets; the src/ blocking-socket lint rule does not apply here).
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request =
      "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string()
                                    : response.substr(split + 4);
}

// ---- registry-family rendering --------------------------------------------

TEST(Exposition, RendersCountersGaugesAndSummaries) {
  metrics::MetricsRegistry registry;
  registry.increment(metrics::names::kRmiCalls, 7);
  registry.increment(metrics::names::kReactorInflight, 3);  // gauge name
  registry.increment(metrics::names::protocol_calls("nexus-tcp"), 5);
  registry.increment(metrics::names::rmi_error("deadline_exceeded"), 2);
  registry.record_latency(metrics::names::kRmiLatency,
                          std::chrono::microseconds(100));
  registry.record_latency(metrics::names::context_latency(3),
                          std::chrono::microseconds(10));

  const std::string text = render_registry_families(registry.snapshot());

  EXPECT_NE(text.find("# TYPE ohpx_rmi_calls_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ohpx_rmi_calls_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_reactor_inflight gauge"),
            std::string::npos);
  EXPECT_NE(text.find(
                "ohpx_rmi_protocol_calls_total{protocol=\"nexus-tcp\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("ohpx_rmi_errors_total{code=\"deadline_exceeded\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_rmi_latency_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("ohpx_rmi_latency_us{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ohpx_rmi_latency_us_count 1"), std::string::npos);
  // The per-context histogram routes through the prefix family with a
  // context label merged into the quantile series.
  EXPECT_NE(text.find("ohpx_server_context_latency_us{context=\"3\", "
                      "quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ohpx_server_context_latency_us_count{context=\"3\"}"),
            std::string::npos);
}

TEST(Exposition, DeclaresEachFamilyOnce) {
  metrics::MetricsRegistry registry;
  registry.increment(metrics::names::protocol_calls("a"), 1);
  registry.increment(metrics::names::protocol_calls("b"), 1);
  const std::string text = render_registry_families(registry.snapshot());
  std::size_t declarations = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE ohpx_rmi_protocol_calls_total", pos)) !=
       std::string::npos;
       ++pos) {
    ++declarations;
  }
  EXPECT_EQ(declarations, 1u);
}

// ---- the full process exposition ------------------------------------------

TEST(Exposition, FullPayloadCarriesReactorAndResilienceFamilies) {
  const std::string text = render_exposition();
  // Reactor families are present even before traffic — the renderer
  // constructs the global reactor, whose constructor interns them.
  EXPECT_NE(text.find("# TYPE ohpx_reactor_loop_lag_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_reactor_inflight gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_reactor_backpressure_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_breaker_state gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_rmi_select_cache_hit_ratio gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_retry_policy_revision gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_wire_pool_pooled gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_flight_recorder_retained gauge"),
            std::string::npos);
  EXPECT_NE(text.find("ohpx_reactor_inflight_window"), std::string::npos);
}

TEST(Exposition, BreakerStatesRenderWithLabels) {
  runtime::World world;
  const auto lan = world.add_lan("lan");
  orb::Context& client = world.create_context(world.add_machine("c", lan));
  orb::Context& server = world.create_context(world.add_machine("s", lan));
  auto ref = orb::RefBuilder(server, std::make_shared<EchoServant>()).build();
  EchoStub stub(client, ref);
  resilience::BreakerConfig config;
  config.failure_threshold = 3;
  stub.set_breaker_config(config);
  stub.ping();

  const std::string label = "obj/" + std::to_string(ref.object_id());
  const std::string text = render_exposition();
  EXPECT_NE(text.find("ohpx_breaker_state{set=\"" + label + "\""),
            std::string::npos)
      << text;
  // All closed: every series of this set reports 0.
  EXPECT_NE(text.find("\"} 0"), std::string::npos);

  // Disabling the breakers removes the registration again.
  stub.set_breaker_config(resilience::BreakerConfig{});
  EXPECT_EQ(render_exposition().find("ohpx_breaker_state{set=\"" + label),
            std::string::npos);
}

// ---- HTTP exporter ---------------------------------------------------------

TEST(HttpExporter, ServesMetricsHealthAndFlightRecorder) {
  IntrospectHttpServer server(0);
  ASSERT_GT(server.port(), 0);

  const std::string metrics = http_get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(body_of(metrics).find("# TYPE ohpx_reactor_loop_lag_us summary"),
            std::string::npos);

  const std::string health = http_get(server.port(), "/healthz");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(body_of(health), "ok\n");

  FlightRecorder::global().record(EventKind::error, ErrorCode::transport_io,
                                  "http-exporter-test");
  const std::string flight = http_get(server.port(), "/flightrecorder");
  EXPECT_NE(flight.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(body_of(flight).find("http-exporter-test"), std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_NE(missing.find("HTTP/1.1 404"), std::string::npos);

  // Query strings are stripped before routing.
  const std::string with_query = http_get(server.port(), "/healthz?x=1");
  EXPECT_NE(with_query.find("HTTP/1.1 200 OK"), std::string::npos);
}

// ---- the management servant over RMI --------------------------------------

TEST(IntrospectServantTest, MetricsReachableOverRmi) {
  runtime::World world;
  const auto lan = world.add_lan("lan");
  orb::Context& client = world.create_context(world.add_machine("c", lan));
  orb::Context& server = world.create_context(world.add_machine("s", lan));

  auto ref =
      orb::RefBuilder(server, std::make_shared<IntrospectServant>()).build();
  IntrospectPointer gp(client, ref);

  EXPECT_EQ(gp->health(), "ok");
  const std::string text = gp->metrics_text();
  EXPECT_NE(text.find("# TYPE ohpx_rmi_calls_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ohpx_breaker_state gauge"), std::string::npos);

  FlightRecorder::global().record(EventKind::retry, ErrorCode::transport_io,
                                  "rmi-introspect-test");
  EXPECT_NE(gp->flight_recorder().find("rmi-introspect-test"),
            std::string::npos);
}

// ---- flight recorder -------------------------------------------------------

TEST(FlightRecorderTest, RingIsBoundedAndOrdered) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  const std::uint64_t base_total = recorder.total_recorded();

  const std::size_t overfill = recorder.capacity() + 50;
  for (std::size_t i = 0; i < overfill; ++i) {
    recorder.record(EventKind::retry, ErrorCode::transport_io,
                    "event-" + std::to_string(i));
  }
  EXPECT_EQ(recorder.size(), recorder.capacity());
  EXPECT_EQ(recorder.total_recorded(), base_total + overfill);

  const std::vector<FlightRecorder::Record> records = recorder.snapshot();
  ASSERT_EQ(records.size(), recorder.capacity());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1) << "ring out of order";
  }
  // The oldest retained record is overfill - capacity; the newest is the
  // last one written.
  EXPECT_STREQ(records.back().detail,
               ("event-" + std::to_string(overfill - 1)).c_str());

  const std::string dump = recorder.dump();
  EXPECT_NE(dump.find("retry"), std::string::npos);
  EXPECT_NE(dump.find("event-" + std::to_string(overfill - 1)),
            std::string::npos);
  recorder.clear();
}

TEST(FlightRecorderTest, CapturesAmbientTraceContext) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  {
    trace::ContextScope scope(trace::mint_root());
    const trace::TraceContext ambient = trace::current_context();
    ASSERT_TRUE(ambient.valid());
    recorder.record(EventKind::error, ErrorCode::transport_io, "traced");
    const auto records = recorder.snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].trace_hi, ambient.trace_hi);
    EXPECT_EQ(records[0].trace_lo, ambient.trace_lo);
  }
  recorder.clear();
  recorder.record(EventKind::error, ErrorCode::transport_io, "untraced");
  EXPECT_EQ(recorder.snapshot().at(0).trace_hi, 0u);
  recorder.clear();
}

TEST(FlightRecorderTest, DetailIsTruncatedSafely) {
  FlightRecorder& recorder = FlightRecorder::global();
  recorder.clear();
  recorder.record(EventKind::error, ErrorCode::internal,
                  std::string(500, 'x'));
  const auto records = recorder.snapshot();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(std::strlen(records[0].detail),
            FlightRecorder::kDetailCapacity - 1);
  recorder.clear();
}

// ---- stall watchdog --------------------------------------------------------

TEST(StallWatchdog, LoopLagOverThresholdCountsAndRecords) {
  runtime::World world;
  const auto lan = world.add_lan("lan");
  orb::Context& client = world.create_context(world.add_machine("c", lan));
  orb::Context& server = world.create_context(world.add_machine("s", lan));
  server.enable_tcp();
  auto ref = orb::RefBuilder(server, std::make_shared<EchoServant>())
                 .tcp()
                 .build();
  EchoStub stub(client, ref);

  auto& reactor = transport::Reactor::global();
  const Nanoseconds previous = reactor.stall_threshold();
  reactor.set_stall_threshold(Nanoseconds(1));  // every tick "stalls"

  auto* stall_counter = metrics::MetricsRegistry::global().counter_handle(
      metrics::names::kRmiReactorStall);
  const std::uint64_t before = stall_counter->load(std::memory_order_relaxed);

  // Drive traffic through the reactor so ticks happen.
  for (int i = 0; i < 8; ++i) {
    stub.call_async<std::uint64_t>(EchoServant::kPing).get();
  }
  reactor.set_stall_threshold(previous);

  EXPECT_GT(stall_counter->load(std::memory_order_relaxed), before)
      << "a 1ns threshold must flag every reactor tick as a stall";

  // The watchdog also drops flight-recorder evidence.
  bool saw_stall = false;
  for (const auto& record : FlightRecorder::global().snapshot()) {
    if (record.kind == EventKind::stall) saw_stall = true;
  }
  EXPECT_TRUE(saw_stall);
  FlightRecorder::global().clear();
}

// ---- exporter vs. writers under load (TSan-targeted) -----------------------

TEST(ExporterConcurrency, SerializesWhileWritersHammer) {
  auto& registry = metrics::MetricsRegistry::global();
  auto* counter =
      registry.counter_handle("introspect.test.hammered_counter");
  auto* histogram =
      registry.latency_handle("introspect.test.hammered_latency");
  counter->store(0, std::memory_order_relaxed);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter->fetch_add(1, std::memory_order_relaxed);
        histogram->record(std::chrono::microseconds(7));
      }
    });
  }

  std::uint64_t last_count = 0;
  for (int i = 0; i < 50; ++i) {
    const std::string text = render_exposition();
    EXPECT_NE(text.find("ohpx_introspect_test_hammered_counter_total"),
              std::string::npos);
    const metrics::MetricsSnapshot snap = registry.snapshot();
    const std::uint64_t now =
        snap.counters.at("introspect.test.hammered_counter");
    EXPECT_GE(now, last_count) << "counter must be monotone across scrapes";
    last_count = now;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& writer : writers) writer.join();
  EXPECT_GT(counter->load(std::memory_order_relaxed), 0u);
}

}  // namespace
}  // namespace ohpx::introspect
