// Unit tests for the network simulation substrate: topology predicates,
// link selection, modeled transfer time, campus grouping, load tracking.
#include <gtest/gtest.h>

#include "ohpx/netsim/topology.hpp"

namespace ohpx::netsim {
namespace {

class TopologyFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    lan_a = topo.add_lan("a");
    lan_b = topo.add_lan("b");
    m0 = topo.add_machine("m0", lan_a);
    m1 = topo.add_machine("m1", lan_a);
    m2 = topo.add_machine("m2", lan_b);
  }

  Topology topo;
  LanId lan_a{}, lan_b{};
  MachineId m0{}, m1{}, m2{};
};

TEST_F(TopologyFixture, Counts) {
  EXPECT_EQ(topo.lan_count(), 2u);
  EXPECT_EQ(topo.machine_count(), 3u);
  EXPECT_EQ(topo.machine_name(m2), "m2");
  EXPECT_EQ(topo.lan_name(lan_b), "b");
  EXPECT_EQ(topo.lan_of(m2), lan_b);
}

TEST_F(TopologyFixture, PlacementPredicates) {
  EXPECT_TRUE(topo.same_machine(m0, m0));
  EXPECT_FALSE(topo.same_machine(m0, m1));
  EXPECT_TRUE(topo.same_lan(m0, m1));
  EXPECT_FALSE(topo.same_lan(m0, m2));
}

TEST_F(TopologyFixture, CampusDefaultsToPerLan) {
  EXPECT_TRUE(topo.same_campus(m0, m1));
  EXPECT_FALSE(topo.same_campus(m0, m2));
}

TEST_F(TopologyFixture, CampusGrouping) {
  topo.set_campus(lan_a, 7);
  topo.set_campus(lan_b, 7);
  EXPECT_TRUE(topo.same_campus(m0, m2));
  EXPECT_EQ(topo.campus_of(lan_a), 7u);
}

TEST_F(TopologyFixture, LinkSelectionTiers) {
  topo.set_lan_link(lan_a, atm_155());
  topo.set_default_wan_link(wan_t3());

  EXPECT_EQ(topo.link_between(m0, m0).name, "loopback");
  EXPECT_EQ(topo.link_between(m0, m1).name, "atm-155");
  EXPECT_EQ(topo.link_between(m0, m2).name, "wan-t3");

  topo.set_wan_link(lan_a, lan_b, ethernet_10());
  EXPECT_EQ(topo.link_between(m0, m2).name, "ethernet-10");
  EXPECT_EQ(topo.link_between(m2, m0).name, "ethernet-10");  // symmetric
}

TEST_F(TopologyFixture, LoopbackOverride) {
  LinkSpec fast{"numa", 10e9, Nanoseconds(100)};
  topo.set_loopback_link(fast);
  EXPECT_EQ(topo.link_between(m1, m1).name, "numa");
}

TEST_F(TopologyFixture, UnknownIdsThrow) {
  EXPECT_THROW(topo.machine_name(99), Error);
  EXPECT_THROW(topo.same_lan(0, 99), Error);
  EXPECT_THROW(topo.set_lan_link(99, atm_155()), Error);
  EXPECT_THROW(topo.add_machine("x", 99), Error);
  EXPECT_THROW(topo.load(42), Error);
}

TEST_F(TopologyFixture, LoadTracking) {
  topo.set_load(m0, 0.8);
  topo.add_load(m0, 0.1);
  EXPECT_DOUBLE_EQ(topo.load(m0), 0.9);
  EXPECT_DOUBLE_EQ(topo.load(m1), 0.0);
  EXPECT_EQ(topo.least_loaded(), m1);  // ties broken by lowest id
  topo.set_load(m1, 0.5);
  topo.set_load(m2, 0.2);
  EXPECT_EQ(topo.least_loaded(), m2);
}

TEST(TopologyEmpty, LeastLoadedThrowsWithNoMachines) {
  Topology topo;
  EXPECT_THROW(topo.least_loaded(), Error);
}

// ---- link math -------------------------------------------------------------

TEST(LinkSpecTest, TransferTimeMath) {
  LinkSpec link{"test", 100e6, Nanoseconds(1000)};  // 100 Mbps, 1 us latency
  // 1 MB at 100 Mbps = 8e6 bits / 1e8 bps = 80 ms.
  const auto t = link.transfer_time(1'000'000);
  EXPECT_NEAR(static_cast<double>(t.count()), 80e6 + 1000, 1e3);
}

TEST(LinkSpecTest, ZeroBytesIsPureLatency) {
  LinkSpec link{"test", 100e6, Nanoseconds(12345)};
  EXPECT_EQ(link.transfer_time(0).count(), 12345);
}

TEST(LinkSpecTest, ZeroBandwidthDegradesToLatency) {
  LinkSpec link{"broken", 0.0, Nanoseconds(5)};
  EXPECT_EQ(link.transfer_time(1'000'000).count(), 5);
}

TEST(LinkSpecTest, PresetsAreOrderedBySpeed) {
  EXPECT_LT(ethernet_10().bandwidth_bps, fast_ethernet_100().bandwidth_bps);
  EXPECT_LT(fast_ethernet_100().bandwidth_bps, atm_155().bandwidth_bps);
  EXPECT_LT(atm_155().bandwidth_bps, loopback().bandwidth_bps);
  EXPECT_GT(wan_t3().latency, atm_155().latency);
}

// ---- Placement wrapper ---------------------------------------------------------

TEST(PlacementTest, DelegatesToTopology) {
  Topology topo;
  const LanId lan = topo.add_lan("l");
  const MachineId a = topo.add_machine("a", lan);
  const MachineId b = topo.add_machine("b", lan);

  Placement same{a, a, &topo};
  Placement diff{a, b, &topo};
  EXPECT_TRUE(same.same_machine());
  EXPECT_FALSE(diff.same_machine());
  EXPECT_TRUE(diff.same_lan());
  EXPECT_TRUE(diff.same_campus());
  EXPECT_EQ(diff.link().name, "ethernet-100");  // default LAN link
}

TEST(PlacementTest, NullTopologyIsSafe) {
  Placement detached;
  EXPECT_FALSE(detached.resolvable());
  EXPECT_FALSE(detached.same_machine());
  EXPECT_FALSE(detached.same_lan());
  EXPECT_FALSE(detached.same_campus());
  // Unresolvable placements are treated as "somewhere across the WAN".
  EXPECT_EQ(detached.link().name, "wan-t3");
}

TEST(PlacementTest, ForeignMachineIdsAreNotLocal) {
  // Machine ids minted by another process mean nothing here; predicates
  // must answer false (never throw), and the link falls back to WAN.
  Topology topo;
  const LanId lan = topo.add_lan("l");
  const MachineId local = topo.add_machine("local", lan);
  const MachineId foreign = 9999;

  Placement placement{local, foreign, &topo};
  EXPECT_FALSE(placement.resolvable());
  EXPECT_FALSE(placement.same_machine());
  EXPECT_FALSE(placement.same_lan());
  EXPECT_FALSE(placement.same_campus());
  EXPECT_EQ(placement.link().name, "wan-t3");
  EXPECT_TRUE(topo.has_machine(local));
  EXPECT_FALSE(topo.has_machine(foreign));
}

// ---- parameterized sweep: transfer time scales linearly -------------------------

class TransferTimeSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(TransferTimeSweep, LinearInBytes) {
  const auto [bandwidth, bytes] = GetParam();
  LinkSpec link{"sweep", bandwidth, Nanoseconds(0)};
  const double expected_seconds = static_cast<double>(bytes) * 8.0 / bandwidth;
  const double actual_seconds =
      static_cast<double>(link.transfer_time(bytes).count()) / 1e9;
  EXPECT_NEAR(actual_seconds, expected_seconds, expected_seconds * 1e-6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TransferTimeSweep,
    ::testing::Combine(::testing::Values(10e6, 100e6, 155e6, 1e9),
                       ::testing::Values(1ull, 1024ull, 1048576ull,
                                         16777216ull)));

}  // namespace
}  // namespace ohpx::netsim
