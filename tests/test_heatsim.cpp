// Tests for the environmental-simulation scenario: physics sanity,
// remote access, migration of real state, and input validation.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/heatsim.hpp"

namespace ohpx::scenario {
namespace {

TEST(HeatSimLocal, DiffusionSpreadsAndConserves) {
  HeatSimServant sim;
  sim.init(32, 32, 10.0);
  sim.inject(16, 16, 1000.0);

  const double before_neighbor = sim.sample(16, 17);
  EXPECT_DOUBLE_EQ(before_neighbor, 10.0);

  sim.step(10);
  // Heat spread to the neighbourhood...
  EXPECT_GT(sim.sample(16, 17), 10.0);
  EXPECT_GT(sim.sample(15, 16), 10.0);
  // ...the source cooled...
  EXPECT_LT(sim.sample(16, 16), 1000.0);
  // ...and everything stays within the initial extremes.
  const auto [lo, hi] = sim.stats();
  EXPECT_GE(lo, 10.0 - 1e-9);
  EXPECT_LE(hi, 1000.0 + 1e-9);
}

TEST(HeatSimLocal, ConvergesTowardEquilibrium) {
  HeatSimServant sim;
  sim.init(16, 16, 0.0);
  sim.inject(8, 8, 100.0);
  const double early_delta = sim.step(1);
  sim.step(200);
  const double late_delta = sim.step(1);
  EXPECT_LT(late_delta, early_delta);
}

TEST(HeatSimLocal, FetchMapDownsamples) {
  HeatSimServant sim;
  sim.init(16, 16, 1.0);
  EXPECT_EQ(sim.fetch_map(1).size(), 256u);
  EXPECT_EQ(sim.fetch_map(4).size(), 16u);
  EXPECT_EQ(sim.fetch_map(16).size(), 1u);
  EXPECT_EQ(sim.fetch_map(0).size(), 256u);  // stride 0 clamps to 1
}

TEST(HeatSimLocal, ValidationErrors) {
  HeatSimServant sim;
  EXPECT_THROW(sim.step(1), Error);           // not initialized
  EXPECT_THROW(sim.init(0, 5, 0.0), Error);   // zero dimension
  EXPECT_THROW(sim.init(5000, 5, 0.0), Error);  // too large
  sim.init(4, 4, 0.0);
  EXPECT_THROW(sim.inject(4, 0, 1.0), Error);   // out of range
  EXPECT_THROW(sim.sample(0, 4), Error);
}

TEST(HeatSimLocal, SnapshotRestoreRoundTrip) {
  HeatSimServant original;
  original.init(8, 8, 5.0);
  original.inject(2, 3, 50.0);
  original.step(3);

  HeatSimServant clone;
  clone.restore(original.snapshot());
  EXPECT_EQ(clone.cells(), 64u);
  EXPECT_DOUBLE_EQ(clone.sample(2, 3), original.sample(2, 3));
  EXPECT_EQ(clone.fetch_map(2), original.fetch_map(2));
}

TEST(HeatSimLocal, CorruptSnapshotRejected) {
  HeatSimServant sim;
  sim.init(4, 4, 0.0);
  Bytes snap = sim.snapshot();
  snap[3] = 99;  // rows field now disagrees with the grid payload
  HeatSimServant victim;
  EXPECT_THROW(victim.restore(snap), WireError);
}

// ---- remote access ------------------------------------------------------------

class HeatSimRemote : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_lab_ = world_.add_machine("bigiron", lan);
    m_client_ = world_.add_machine("ws", lan);
    lab_ctx_ = &world_.create_context(m_lab_);
    client_ctx_ = &world_.create_context(m_client_);
  }

  runtime::World world_;
  netsim::MachineId m_lab_{}, m_client_{};
  orb::Context* lab_ctx_ = nullptr;
  orb::Context* client_ctx_ = nullptr;
};

TEST_F(HeatSimRemote, FullLifecycleOverRmi) {
  auto ref = orb::RefBuilder(*lab_ctx_, std::make_shared<HeatSimServant>()).build();
  HeatSimPointer sim(*client_ctx_, ref);

  sim->init(24, 24, 15.0);
  sim->inject(12, 12, 500.0);
  const double delta = sim->step(5);
  EXPECT_GT(delta, 0.0);
  EXPECT_GT(sim->sample(12, 13), 15.0);

  const auto map = sim->fetch_map(6);
  EXPECT_EQ(map.size(), 16u);
  const auto [lo, hi] = sim->stats();
  EXPECT_LT(lo, hi);
}

TEST_F(HeatSimRemote, ApplicationErrorsPropagate) {
  auto ref = orb::RefBuilder(*lab_ctx_, std::make_shared<HeatSimServant>()).build();
  HeatSimPointer sim(*client_ctx_, ref);
  EXPECT_THROW(sim->step(1), RemoteError);  // not initialized
}

TEST_F(HeatSimRemote, MeteredMapAccess) {
  auto servant = std::make_shared<HeatSimServant>();
  servant->init(16, 16, 0.0);
  const orb::ObjectId id = lab_ctx_->activate(servant);
  auto metered = orb::RefBuilder(*lab_ctx_, id)
                     .glue({std::make_shared<cap::QuotaCapability>(2)})
                     .build();
  HeatSimPointer paying_client(*client_ctx_, metered);
  paying_client->fetch_map(4);
  paying_client->fetch_map(4);
  EXPECT_THROW(paying_client->fetch_map(4), CapabilityDenied);
}

TEST_F(HeatSimRemote, MigrationMovesTheWholeGrid) {
  runtime::ServantTypeRegistry::instance().register_type<HeatSimServant>();
  auto servant = std::make_shared<HeatSimServant>();
  auto ref = orb::RefBuilder(*lab_ctx_, servant).build();
  HeatSimPointer sim(*client_ctx_, ref);

  sim->init(20, 20, 1.0);
  sim->inject(5, 5, 99.0);
  sim->step(2);
  const auto map_before = sim->fetch_map(5);

  orb::Context& local = world_.create_context(m_client_);
  runtime::migrate_copy(ref.object_id(), *lab_ctx_, local);

  EXPECT_EQ(sim->fetch_map(5), map_before);
  EXPECT_EQ(sim->last_protocol(), "shm");
  sim->step(1);  // still steppable after the move
}

}  // namespace
}  // namespace ohpx::scenario
