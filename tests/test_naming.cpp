// Unit + integration tests for the naming service: local directory
// semantics, remote access through the ORB, capability-bearing references
// resolved by name, and bootstrap across contexts.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/naming/name_service.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::naming {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

class NamingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_server_ = world_.add_machine("server", lan);
    m_client_ = world_.add_machine("client", lan);
    server_ctx_ = &world_.create_context(m_server_);
    client_ctx_ = &world_.create_context(m_client_);
    host_ = std::make_unique<NameServiceHost>(*server_ctx_);
  }

  orb::ObjectRef make_echo_ref() {
    return orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
        .build();
  }

  runtime::World world_;
  netsim::MachineId m_server_{}, m_client_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* client_ctx_ = nullptr;
  std::unique_ptr<NameServiceHost> host_;
};

// ---- local API ------------------------------------------------------------------

TEST_F(NamingFixture, LocalBindResolveUnbind) {
  auto& service = host_->service();
  const auto ref = make_echo_ref();

  service.bind("svc/echo", ref);
  EXPECT_EQ(service.size(), 1u);
  const auto resolved = service.resolve("svc/echo");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, ref);

  EXPECT_TRUE(service.unbind("svc/echo"));
  EXPECT_FALSE(service.unbind("svc/echo"));
  EXPECT_FALSE(service.resolve("svc/echo").has_value());
}

TEST_F(NamingFixture, DuplicateBindNeedsRebindFlag) {
  auto& service = host_->service();
  const auto first = make_echo_ref();
  const auto second = make_echo_ref();
  service.bind("svc/echo", first);
  EXPECT_THROW(service.bind("svc/echo", second), ObjectError);
  service.bind("svc/echo", second, /*rebind=*/true);
  EXPECT_EQ(service.resolve("svc/echo")->object_id(), second.object_id());
}

TEST_F(NamingFixture, InvalidRefRejected) {
  EXPECT_THROW(host_->service().bind("bad", orb::ObjectRef{}), ObjectError);
}

TEST_F(NamingFixture, ListByPrefix) {
  auto& service = host_->service();
  service.bind("svc/echo", make_echo_ref());
  service.bind("svc/weather", make_echo_ref());
  service.bind("admin/console", make_echo_ref());

  EXPECT_EQ(service.list("svc/").size(), 2u);
  EXPECT_EQ(service.list("admin/").size(), 1u);
  EXPECT_EQ(service.list("").size(), 3u);
  EXPECT_TRUE(service.list("nothing/").empty());
}

// ---- remote access ----------------------------------------------------------------

TEST_F(NamingFixture, RemoteBindAndResolve) {
  NameServiceStub names(*client_ctx_, host_->ref());

  const auto ref = make_echo_ref();
  names.bind("remote/echo", ref);
  EXPECT_EQ(host_->service().size(), 1u);  // visible server-side

  const orb::ObjectRef resolved = names.resolve("remote/echo");
  EXPECT_EQ(resolved, ref);

  // The resolved reference is immediately usable.
  EchoPointer gp(*client_ctx_, resolved);
  EXPECT_EQ(gp->reverse("name"), "eman");
}

TEST_F(NamingFixture, RemoteResolveMissingThrowsTyped) {
  NameServiceStub names(*client_ctx_, host_->ref());
  try {
    names.resolve("missing");
    FAIL();
  } catch (const ObjectError& e) {
    EXPECT_EQ(e.code(), ErrorCode::object_not_found);
  }
}

TEST_F(NamingFixture, RemoteListAndUnbind) {
  NameServiceStub names(*client_ctx_, host_->ref());
  names.bind("a/1", make_echo_ref());
  names.bind("a/2", make_echo_ref());
  EXPECT_EQ(names.list("a/").size(), 2u);
  EXPECT_TRUE(names.unbind("a/1"));
  EXPECT_FALSE(names.unbind("a/1"));
  EXPECT_EQ(names.list("a/").size(), 1u);
}

TEST_F(NamingFixture, ResolvedReferenceCarriesCapabilities) {
  // The server publishes a metered reference under a name; a client that
  // resolves it inherits the quota policy.
  auto quota = std::make_shared<cap::QuotaCapability>(2);
  auto metered = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                     .glue({quota})
                     .build();
  host_->service().bind("metered/echo", metered);

  NameServiceStub names(*client_ctx_, host_->ref());
  EchoPointer gp(*client_ctx_, names.resolve("metered/echo"));
  gp->ping();
  gp->ping();
  EXPECT_THROW(gp->ping(), CapabilityDenied);
}

TEST_F(NamingFixture, BootstrapRefSerializable) {
  // The host's own reference travels as bytes, like any other OR.
  const Bytes raw = host_->ref().to_bytes();
  NamePointer names = NamePointer::from_bytes(*client_ctx_, raw);
  names->bind("boot/echo", make_echo_ref());
  EXPECT_EQ(host_->service().list("boot/").size(), 1u);
}

}  // namespace
}  // namespace ohpx::naming
