// Unit + integration tests for the naming service: local directory
// semantics, remote access through the ORB, capability-bearing references
// resolved by name, and bootstrap across contexts.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <thread>

#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/naming/bootstrap.hpp"
#include "ohpx/naming/failover.hpp"
#include "ohpx/naming/name_client.hpp"
#include "ohpx/naming/name_service.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::naming {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

class NamingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_server_ = world_.add_machine("server", lan);
    m_client_ = world_.add_machine("client", lan);
    server_ctx_ = &world_.create_context(m_server_);
    client_ctx_ = &world_.create_context(m_client_);
    host_ = std::make_unique<NameServiceHost>(*server_ctx_);
  }

  orb::ObjectRef make_echo_ref() {
    return orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
        .build();
  }

  runtime::World world_;
  netsim::MachineId m_server_{}, m_client_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* client_ctx_ = nullptr;
  std::unique_ptr<NameServiceHost> host_;
};

// ---- local API ------------------------------------------------------------------

TEST_F(NamingFixture, LocalBindResolveUnbind) {
  auto& service = host_->service();
  const auto ref = make_echo_ref();

  service.bind("svc/echo", ref);
  EXPECT_EQ(service.size(), 1u);
  const auto resolved = service.resolve("svc/echo");
  ASSERT_TRUE(resolved.has_value());
  EXPECT_EQ(*resolved, ref);

  EXPECT_TRUE(service.unbind("svc/echo"));
  EXPECT_FALSE(service.unbind("svc/echo"));
  EXPECT_FALSE(service.resolve("svc/echo").has_value());
}

TEST_F(NamingFixture, DuplicateBindNeedsRebindFlag) {
  auto& service = host_->service();
  const auto first = make_echo_ref();
  const auto second = make_echo_ref();
  service.bind("svc/echo", first);
  EXPECT_THROW(service.bind("svc/echo", second), ObjectError);
  service.bind("svc/echo", second, /*rebind=*/true);
  EXPECT_EQ(service.resolve("svc/echo")->object_id(), second.object_id());
}

TEST_F(NamingFixture, InvalidRefRejected) {
  EXPECT_THROW(host_->service().bind("bad", orb::ObjectRef{}), ObjectError);
}

TEST_F(NamingFixture, ListByPrefix) {
  auto& service = host_->service();
  service.bind("svc/echo", make_echo_ref());
  service.bind("svc/weather", make_echo_ref());
  service.bind("admin/console", make_echo_ref());

  EXPECT_EQ(service.list("svc/").size(), 2u);
  EXPECT_EQ(service.list("admin/").size(), 1u);
  EXPECT_EQ(service.list("").size(), 3u);
  EXPECT_TRUE(service.list("nothing/").empty());
}

// ---- remote access ----------------------------------------------------------------

TEST_F(NamingFixture, RemoteBindAndResolve) {
  NameServiceStub names(*client_ctx_, host_->ref());

  const auto ref = make_echo_ref();
  names.bind("remote/echo", ref);
  EXPECT_EQ(host_->service().size(), 1u);  // visible server-side

  const orb::ObjectRef resolved = names.resolve("remote/echo");
  EXPECT_EQ(resolved, ref);

  // The resolved reference is immediately usable.
  EchoPointer gp(*client_ctx_, resolved);
  EXPECT_EQ(gp->reverse("name"), "eman");
}

TEST_F(NamingFixture, RemoteResolveMissingThrowsTyped) {
  NameServiceStub names(*client_ctx_, host_->ref());
  try {
    names.resolve("missing");
    FAIL();
  } catch (const ObjectError& e) {
    EXPECT_EQ(e.code(), ErrorCode::object_not_found);
  }
}

TEST_F(NamingFixture, RemoteListAndUnbind) {
  NameServiceStub names(*client_ctx_, host_->ref());
  names.bind("a/1", make_echo_ref());
  names.bind("a/2", make_echo_ref());
  EXPECT_EQ(names.list("a/").size(), 2u);
  EXPECT_TRUE(names.unbind("a/1"));
  EXPECT_FALSE(names.unbind("a/1"));
  EXPECT_EQ(names.list("a/").size(), 1u);
}

TEST_F(NamingFixture, ResolvedReferenceCarriesCapabilities) {
  // The server publishes a metered reference under a name; a client that
  // resolves it inherits the quota policy.
  auto quota = std::make_shared<cap::QuotaCapability>(2);
  auto metered = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                     .glue({quota})
                     .build();
  host_->service().bind("metered/echo", metered);

  NameServiceStub names(*client_ctx_, host_->ref());
  EchoPointer gp(*client_ctx_, names.resolve("metered/echo"));
  gp->ping();
  gp->ping();
  EXPECT_THROW(gp->ping(), CapabilityDenied);
}

TEST_F(NamingFixture, BootstrapRefSerializable) {
  // The host's own reference travels as bytes, like any other OR.
  const Bytes raw = host_->ref().to_bytes();
  NamePointer names = NamePointer::from_bytes(*client_ctx_, raw);
  names->bind("boot/echo", make_echo_ref());
  EXPECT_EQ(host_->service().list("boot/").size(), 1u);
}

// ---- replica sets + entry versions ----------------------------------------

TEST_F(NamingFixture, ReplicaSetResolvesInRegistrationOrder) {
  auto& service = host_->service();
  const auto first = make_echo_ref();
  const auto second = make_echo_ref();
  service.bind_replica("svc/echo", first, std::chrono::milliseconds(0));
  service.bind_replica("svc/echo", second, std::chrono::milliseconds(0));

  EXPECT_EQ(service.size(), 1u);  // one name, two replicas
  EXPECT_EQ(service.resolve("svc/echo")->object_id(), first.object_id());
  const auto [version, all] = service.resolve_all("svc/echo");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].object_id(), first.object_id());
  EXPECT_EQ(all[1].object_id(), second.object_id());
  EXPECT_EQ(version, service.version_of("svc/echo"));
}

TEST_F(NamingFixture, EveryMutationBumpsTheEntryVersion) {
  auto& service = host_->service();
  EXPECT_EQ(service.version_of("v/x"), 0u);

  const auto a = make_echo_ref();
  const auto b = make_echo_ref();
  const std::uint64_t id_a =
      service.bind_replica("v/x", a, std::chrono::milliseconds(0));
  const std::uint64_t v1 = service.version_of("v/x");
  EXPECT_GT(v1, 0u);

  service.bind_replica("v/x", b, std::chrono::milliseconds(0));
  const std::uint64_t v2 = service.version_of("v/x");
  EXPECT_GT(v2, v1);

  EXPECT_TRUE(service.unbind_replica("v/x", id_a));
  const std::uint64_t v3 = service.version_of("v/x");
  EXPECT_GT(v3, v2);

  EXPECT_EQ(service.report_dead("v/x", b), 1u);
  const std::uint64_t v4 = service.version_of("v/x");
  EXPECT_GT(v4, v3);

  // The version floor survives the entry's disappearance: a future
  // re-bind can never reuse a version a stale cache may still hold.
  EXPECT_FALSE(service.resolve("v/x").has_value());
  service.bind("v/x", a);
  EXPECT_GT(service.version_of("v/x"), v4);
}

TEST_F(NamingFixture, ExpiredLeaseDropsReplica) {
  auto& service = host_->service();
  service.bind_replica("lease/echo", make_echo_ref(),
                       std::chrono::milliseconds(30));
  EXPECT_TRUE(service.resolve("lease/echo").has_value());

  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // ohpx-lint: allow-wall-clock (lease ttl is wall time)
  EXPECT_FALSE(service.resolve("lease/echo").has_value());
  EXPECT_EQ(service.size(), 0u);
}

TEST_F(NamingFixture, SweepPurgesExpiredLeases) {
  auto& service = host_->service();
  service.bind_replica("s/1", make_echo_ref(), std::chrono::milliseconds(30));
  service.bind_replica("s/2", make_echo_ref(), std::chrono::milliseconds(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));  // ohpx-lint: allow-wall-clock (lease ttl is wall time)
  EXPECT_EQ(service.sweep_expired(), 1u);
  EXPECT_EQ(service.sweep_expired(), 0u);  // idempotent
  EXPECT_FALSE(service.resolve("s/1").has_value());
  EXPECT_TRUE(service.resolve("s/2").has_value());
}

TEST_F(NamingFixture, HeartbeatRenewsAndExpiredRegistrationRefuses) {
  auto& service = host_->service();
  const std::uint64_t id = service.bind_replica(
      "hb/echo", make_echo_ref(), std::chrono::milliseconds(80));
  // Renewals across several ttl fractions keep the replica alive.
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));  // ohpx-lint: allow-wall-clock (lease ttl is wall time)
    EXPECT_TRUE(service.heartbeat("hb/echo", id, std::chrono::milliseconds(80)));
  }
  EXPECT_TRUE(service.resolve("hb/echo").has_value());
  // Once lapsed, the heartbeat is refused — the server must re-register.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // ohpx-lint: allow-wall-clock (lease ttl is wall time)
  EXPECT_FALSE(
      service.heartbeat("hb/echo", id, std::chrono::milliseconds(80)));
  EXPECT_FALSE(service.resolve("hb/echo").has_value());
}

TEST_F(NamingFixture, ReportDeadRemovesMatchingReplicaImmediately) {
  auto& service = host_->service();
  const auto dead = make_echo_ref();
  const auto live = make_echo_ref();
  service.bind_replica("rd/echo", dead, std::chrono::milliseconds(0));
  service.bind_replica("rd/echo", live, std::chrono::milliseconds(0));

  EXPECT_EQ(service.report_dead("rd/echo", dead), 1u);
  EXPECT_EQ(service.resolve("rd/echo")->object_id(), live.object_id());
  EXPECT_EQ(service.report_dead("rd/echo", dead), 0u);
}

TEST_F(NamingFixture, RemoteReplicaLifecycle) {
  NameServiceStub names(*client_ctx_, host_->ref());
  const auto a = make_echo_ref();
  const auto b = make_echo_ref();
  const std::uint64_t id_a =
      names.bind_replica("r/echo", a, std::chrono::milliseconds(0));
  const std::uint64_t id_b =
      names.bind_replica("r/echo", b, std::chrono::milliseconds(0));

  auto [version, all] = names.resolve_all("r/echo");
  EXPECT_EQ(all.size(), 2u);
  EXPECT_GT(version, 0u);

  const auto [v2, ref] = names.resolve_versioned("r/echo");
  EXPECT_EQ(v2, version);
  EXPECT_EQ(ref.object_id(), a.object_id());

  EXPECT_TRUE(names.heartbeat("r/echo", id_a, std::chrono::milliseconds(0)));
  EXPECT_EQ(names.report_dead("r/echo", a), 1u);
  EXPECT_TRUE(names.unbind_replica("r/echo", id_b));
  EXPECT_TRUE(names.resolve_all("r/echo").second.empty());
}

// ---- NameClient cache (resolve caching regression) -------------------------

TEST_F(NamingFixture, NameClientCachesResolves) {
  NameClient names(*client_ctx_, host_->ref());
  const auto ref = make_echo_ref();
  names.bind("c/echo", ref);

  EXPECT_FALSE(names.cached_version("c/echo").has_value());
  const auto first = names.resolve("c/echo");
  EXPECT_EQ(first.object_id(), ref.object_id());
  const auto cached_version = names.cached_version("c/echo");
  ASSERT_TRUE(cached_version.has_value());
  EXPECT_EQ(*cached_version, host_->service().version_of("c/echo"));

  // A second resolve is served from memory: rebinding behind the client's
  // back is *not* observed until invalidation — that staleness is the
  // regression this suite pins down.
  const auto replacement = make_echo_ref();
  host_->service().bind("c/echo", replacement, /*rebind=*/true);
  EXPECT_EQ(names.resolve("c/echo").object_id(), ref.object_id());

  names.invalidate("c/echo");
  EXPECT_FALSE(names.cached_version("c/echo").has_value());
  EXPECT_EQ(names.resolve("c/echo").object_id(), replacement.object_id());
  EXPECT_GT(*names.cached_version("c/echo"), *cached_version);
}

TEST_F(NamingFixture, NameClientWriteThroughInvalidatesItsOwnCache) {
  NameClient names(*client_ctx_, host_->ref());
  const auto ref = make_echo_ref();
  names.bind("w/echo", ref);
  names.resolve("w/echo");
  ASSERT_TRUE(names.cached_version("w/echo").has_value());

  const auto replacement = make_echo_ref();
  names.bind("w/echo", replacement, /*rebind=*/true);
  // The client's own mutation dropped its cache entry, so the fresh
  // binding is visible immediately.
  EXPECT_EQ(names.resolve("w/echo").object_id(), replacement.object_id());
}

TEST_F(NamingFixture, NameClientResolveAllIsNeverCached) {
  NameClient names(*client_ctx_, host_->ref());
  names.bind_replica("ra/echo", make_echo_ref(), std::chrono::milliseconds(0));
  EXPECT_EQ(names.resolve_all("ra/echo").second.size(), 1u);
  names.bind_replica("ra/echo", make_echo_ref(), std::chrono::milliseconds(0));
  EXPECT_EQ(names.resolve_all("ra/echo").second.size(), 2u);
}

// ---- bootstrap URIs --------------------------------------------------------

TEST(NamingBootstrap, HostPortUriSynthesizesWellKnownRef) {
  const auto ref = bootstrap_from_uri("10.1.2.3:7400");
  EXPECT_EQ(ref.object_id(), kWellKnownNameServiceId);
  EXPECT_EQ(ref.home().tcp_host, "10.1.2.3");
  EXPECT_EQ(ref.home().tcp_port, 7400);
  ASSERT_EQ(ref.table().size(), 1u);
  EXPECT_EQ(ref.table().at(0).name, "tcp");
}

TEST(NamingBootstrap, FileRoundTrip) {
  const auto ref = make_bootstrap_ref("127.0.0.1", 7411);
  const std::string path =
      ::testing::TempDir() + "ohpx_bootstrap_roundtrip.ref";
  write_bootstrap_file(path, ref);
  EXPECT_EQ(read_bootstrap_file(path), ref);
  EXPECT_EQ(bootstrap_from_uri(path), ref);          // '/' ⇒ file form
  EXPECT_EQ(bootstrap_from_uri("file:" + path), ref);
  std::remove(path.c_str());
}

TEST(NamingBootstrap, BadUrisThrowTyped) {
  EXPECT_THROW(bootstrap_from_uri("no-port-here"), ObjectError);
  EXPECT_THROW(bootstrap_from_uri("host:"), ObjectError);
  EXPECT_THROW(bootstrap_from_uri("host:notaport"), ObjectError);
  EXPECT_THROW(bootstrap_from_uri("host:99999"), ObjectError);
  EXPECT_THROW(read_bootstrap_file("/nonexistent/no.ref"), ObjectError);
}

// ---- replica failover ------------------------------------------------------

TEST_F(NamingFixture, ReplicaPointerFailsOverFromDeadReplica) {
  // First replica: a synthetic reference to a TCP coordinate nothing
  // listens on (connect refused).  Second: a live TCP-served echo.
  server_ctx_->enable_tcp();
  proto::ServerAddress dead_address;
  dead_address.machine = netsim::kInvalidMachine;
  dead_address.tcp_host = "127.0.0.1";
  dead_address.tcp_port = 1;  // reserved port: nothing listens
  proto::ProtoTable dead_table;
  dead_table.add(proto::ProtocolEntry{"tcp", {}});
  const orb::ObjectRef dead_ref(0x0dead0, "Echo", dead_address, dead_table);

  const auto live_ref =
      orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
          .tcp()
          .build();

  auto& service = host_->service();
  service.bind_replica("fo/echo", dead_ref, std::chrono::milliseconds(0));
  service.bind_replica("fo/echo", live_ref, std::chrono::milliseconds(0));

  NameClient names(*client_ctx_, host_->ref());
  ReplicaPointer<scenario::EchoStub> echo(*client_ctx_, names, "fo/echo");

  // Bound to the dead replica first (registration order), the call fails
  // over transparently and the answer comes from the live one.
  EXPECT_EQ(echo.current_ref().object_id(), dead_ref.object_id());
  const std::string reply =
      echo.call([](scenario::EchoStub& stub) { return stub.reverse("ohpx"); });
  EXPECT_EQ(reply, "xpho");
  EXPECT_EQ(echo.failovers(), 1u);
  EXPECT_EQ(echo.attempts(), 2u);  // attempts == calls + failover retries
  EXPECT_EQ(echo.current_ref().object_id(), live_ref.object_id());

  // The dead replica was reported: the directory no longer offers it.
  const auto [version, all] = service.resolve_all("fo/echo");
  ASSERT_EQ(all.size(), 1u);
  EXPECT_EQ(all[0].object_id(), live_ref.object_id());

  // Subsequent calls go straight to the live replica.
  echo.call([](scenario::EchoStub& stub) { return stub.reverse("ab"); });
  EXPECT_EQ(echo.failovers(), 1u);
  EXPECT_EQ(echo.attempts(), 3u);
}

TEST_F(NamingFixture, ReplicaPointerExhaustionRethrowsTransportError) {
  proto::ServerAddress dead_address;
  dead_address.machine = netsim::kInvalidMachine;
  dead_address.tcp_host = "127.0.0.1";
  dead_address.tcp_port = 1;
  proto::ProtoTable dead_table;
  dead_table.add(proto::ProtocolEntry{"tcp", {}});
  const orb::ObjectRef only_dead(0x0dead1, "Echo", dead_address, dead_table);

  host_->service().bind_replica("fx/echo", only_dead,
                                std::chrono::milliseconds(0));
  NameClient names(*client_ctx_, host_->ref());
  ReplicaPointer<scenario::EchoStub> echo(*client_ctx_, names, "fx/echo");
  EXPECT_THROW(
      echo.call([](scenario::EchoStub& stub) { return stub.ping(); }),
      TransportError);
}

TEST(NamingBreakerHook, TripHookFiresOnOpenedEntry) {
  resilience::BreakerConfig config;
  config.failure_threshold = 1;
  resilience::BreakerSet set(2, config);

  std::size_t tripped_entry = 99;
  int fired = 0;
  set.set_trip_hook([&](std::size_t entry) {
    tripped_entry = entry;
    ++fired;
  });

  // The owner observes the transition and notifies, mirroring the
  // invocation layer's contract.
  const auto transition = set.at(1).on_failure();
  EXPECT_EQ(transition, resilience::CircuitBreaker::Transition::opened);
  set.notify_trip(1);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(tripped_entry, 1u);

  set.set_trip_hook(nullptr);
  set.notify_trip(0);  // cleared: no effect
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace ohpx::naming
