// Tests for the extension features beyond the paper's minimum:
// asynchronous invocation, capability revocation, TCP-enabled contexts
// advertising their listener, and multi-threaded client stress over a
// capability chain.
#include <gtest/gtest.h>

#include <thread>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/transport/inproc.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::CounterPointer;
using scenario::CounterServant;
using scenario::EchoPointer;
using scenario::EchoServant;
using scenario::EchoStub;

class ExtensionFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    m_client_ = world_.add_machine("client", lan);
    m_server_ = world_.add_machine("server", lan);
    client_ctx_ = &world_.create_context(m_client_);
    server_ctx_ = &world_.create_context(m_server_);
  }

  runtime::World world_;
  netsim::MachineId m_client_{}, m_server_{};
  orb::Context* client_ctx_ = nullptr;
  orb::Context* server_ctx_ = nullptr;
};

// ---- asynchronous invocation ------------------------------------------------

TEST_F(ExtensionFixture, AsyncCallDeliversResult) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoStub stub(*client_ctx_, ref);

  auto future = stub.call_async<std::string>(EchoServant::kReverse,
                                             std::string("stressed"));
  EXPECT_EQ(future.get(), "desserts");
}

TEST_F(ExtensionFixture, AsyncCallsOverlap) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<CounterServant>()).build();
  scenario::CounterStub stub(*client_ctx_, ref);

  std::vector<ohpx::Future<std::int64_t>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(stub.call_async<std::int64_t>(CounterServant::kAdd,
                                                    std::int64_t{1}));
  }
  std::int64_t max_seen = 0;
  for (auto& future : futures) max_seen = std::max(max_seen, future.get());
  EXPECT_EQ(max_seen, 16);
  EXPECT_EQ(stub.get(), 16);
}

TEST_F(ExtensionFixture, AsyncCallPropagatesRemoteException) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoStub stub(*client_ctx_, ref);
  auto future = stub.call_async<void>(EchoServant::kFail);
  EXPECT_THROW(future.get(), RemoteError);
}

TEST_F(ExtensionFixture, AsyncVoidCall) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<CounterServant>()).build();
  scenario::CounterStub stub(*client_ctx_, ref);
  stub.call_async<void>(CounterServant::kSet, std::int64_t{5}).get();
  EXPECT_EQ(stub.get(), 5);
}

// ---- oneway invocation ----------------------------------------------------------

TEST_F(ExtensionFixture, OnewayDeliversWithoutResult) {
  auto servant = std::make_shared<CounterServant>();
  auto ref = orb::RefBuilder(*server_ctx_, servant).build();
  scenario::CounterStub stub(*client_ctx_, ref);

  stub.call_oneway(CounterServant::kAdd, std::int64_t{5});
  stub.call_oneway(CounterServant::kAdd, std::int64_t{7});
  EXPECT_EQ(servant->value(), 12);  // handlers ran
  EXPECT_EQ(stub.get(), 12);        // regular calls still work
}

TEST_F(ExtensionFixture, OnewaySwallowsApplicationErrors) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoStub stub(*client_ctx_, ref);
  // kFail throws server-side; oneway drops it.
  EXPECT_NO_THROW(stub.call_oneway(EchoServant::kFail));
  // Unknown method ids are application-level too: dropped.
  EXPECT_NO_THROW(stub.call_oneway(99999u));
}

TEST_F(ExtensionFixture, OnewayStillEnforcesCapabilities) {
  auto quota = std::make_shared<cap::QuotaCapability>(1);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({quota})
                 .build();
  EchoStub stub(*client_ctx_, ref);
  EXPECT_NO_THROW(stub.call_oneway(EchoServant::kPing));
  // Infrastructure-level refusals surface even for oneway requests.
  EXPECT_THROW(stub.call_oneway(EchoServant::kPing), CapabilityDenied);
}

TEST_F(ExtensionFixture, OnewayToMissingObjectSurfaces) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>()).build();
  EchoStub stub(*client_ctx_, ref);
  server_ctx_->deactivate(ref.object_id());
  EXPECT_THROW(stub.call_oneway(EchoServant::kPing), ObjectError);
}

// ---- revocation ---------------------------------------------------------------

TEST_F(ExtensionFixture, RevokedGlueRefusesFurtherCalls) {
  auto quota = std::make_shared<cap::QuotaCapability>(100);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({quota})
                 .build();
  const auto data = proto::decode_glue_proto_data(ref.table().at(0).proto_data);

  EchoPointer gp(*client_ctx_, ref);
  EXPECT_EQ(gp->ping(), 1u);

  ASSERT_TRUE(server_ctx_->revoke_glue(data.glue_id));
  try {
    gp->ping();
    FAIL() << "expected revocation to refuse the call";
  } catch (const CapabilityDenied& e) {
    EXPECT_EQ(e.code(), ErrorCode::capability_unknown);
  }
  // Revoking twice reports absence.
  EXPECT_FALSE(server_ctx_->revoke_glue(data.glue_id));
}

TEST_F(ExtensionFixture, RevocationIsPerReference) {
  auto servant = std::make_shared<EchoServant>();
  auto ref_a = orb::RefBuilder(*server_ctx_, servant)
                   .glue({std::make_shared<cap::QuotaCapability>(100)})
                   .build();
  auto ref_b = orb::RefBuilder(*server_ctx_, ref_a.object_id())
                   .glue({std::make_shared<cap::QuotaCapability>(100)})
                   .build();

  EchoPointer client_a(*client_ctx_, ref_a);
  EchoPointer client_b(*client_ctx_, ref_b);
  client_a->ping();
  client_b->ping();

  const auto data_a = proto::decode_glue_proto_data(ref_a.table().at(0).proto_data);
  server_ctx_->revoke_glue(data_a.glue_id);

  EXPECT_THROW(client_a->ping(), CapabilityDenied);
  EXPECT_EQ(client_b->ping(), 3u);  // other reference unaffected
}

// ---- TCP-enabled context address advertising -------------------------------------

TEST_F(ExtensionFixture, EnableTcpRepublishesAddress) {
  const auto id = server_ctx_->activate(std::make_shared<EchoServant>());
  auto before = world_.location().resolve(id);
  ASSERT_TRUE(before.has_value());
  EXPECT_EQ(before->tcp_port, 0);

  server_ctx_->enable_tcp();
  auto after = world_.location().resolve(id);
  ASSERT_TRUE(after.has_value());
  EXPECT_GT(after->tcp_port, 0);
  EXPECT_EQ(after->tcp_host, "127.0.0.1");
  EXPECT_GT(after->epoch, before->epoch);
}

// ---- multi-threaded clients over one capability chain -----------------------------

TEST_F(ExtensionFixture, ConcurrentClientsThroughGlueChain) {
  const auto key = crypto::Key128::from_seed(0x5eed);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::EncryptionCapability>(key),
                        std::make_shared<cap::AuthenticationCapability>(
                            key, "stress", cap::Scope::always)})
                 .build();

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      try {
        // Each thread gets its own stub (own client chain copies) bound in
        // the shared client context.
        EchoPointer gp(*client_ctx_, ref);
        for (int i = 0; i < 50; ++i) {
          std::vector<std::int32_t> values(64, t * 1000 + i);
          if (gp->echo(values) != values) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ExtensionFixture, SharedStubAcrossThreads) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<CounterServant>()).build();
  scenario::CounterStub stub(*client_ctx_, ref);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&stub] {
      for (int i = 0; i < 100; ++i) stub.add(1);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(stub.get(), 400);
}

// ---- foreign references (separate worlds, as across OS processes) -----------------

TEST_F(ExtensionFixture, ForeignReferenceWorksOverTcp) {
  // World A mints a TCP reference; world B (separate topology + location
  // service — exactly a second process's view) rebinds it.  Placement is
  // unresolvable there, so same-machine protocols stay out and the tcp
  // protocol carries the calls.
  server_ctx_->enable_tcp();
  auto quota = std::make_shared<cap::QuotaCapability>(2);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({quota}, "tcp")
                 .tcp()
                 .build();
  const Bytes wire_form = ref.to_bytes();

  runtime::World other_world;
  const auto other_lan = other_world.add_lan("other");
  orb::Context& foreign_ctx =
      other_world.create_context(other_world.add_machine("foreign", other_lan));

  auto gp = EchoPointer::from_bytes(foreign_ctx, wire_form);
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->last_protocol(), "glue[quota]->tcp");
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_THROW(gp->ping(), CapabilityDenied);  // quota crossed worlds
}

// ---- custom protocol end-to-end ----------------------------------------------------

TEST_F(ExtensionFixture, CustomProtocolParticipatesInSelection) {
  // A user protocol that routes through the in-process registry but tags
  // itself differently — the paper's "custom protocols via a standard
  // interface" (§3.2).  Registered once, then usable from OR tables.
  class LocalOnlyProtocol final : public proto::Protocol {
   public:
    std::string_view name() const noexcept override { return "local-only"; }
    bool applicable(const proto::CallTarget& target) const override {
      return target.placement.same_machine();
    }
    proto::ReplyMessage invoke(const wire::MessageHeader& header,
                               wire::Buffer& payload,
                               const proto::CallTarget& target,
                               CostLedger& ledger) override {
      transport::InProcChannel channel(target.address.endpoint);
      return proto::frame_roundtrip(channel, header, payload, ledger);
    }
  };
  proto::ProtocolRegistry::instance().register_factory(
      "local-only", [](const proto::ProtocolEntry&) -> proto::ProtocolPtr {
        return std::make_unique<LocalOnlyProtocol>();
      });

  orb::Context& local_server = world_.create_context(m_client_);
  auto ref = orb::RefBuilder(local_server, std::make_shared<EchoServant>())
                 .custom(proto::ProtocolEntry{"local-only", {}})
                 .nexus()
                 .build();

  client_ctx_->pool().enable("local-only");
  EchoPointer gp(*client_ctx_, ref);
  EXPECT_EQ(gp->ping(), 1u);
  EXPECT_EQ(gp->last_protocol(), "local-only");

  // After migration off-machine the custom protocol stops applying and
  // selection falls through to nexus.
  runtime::migrate_shared(ref.object_id(), local_server, *server_ctx_);
  EXPECT_EQ(gp->ping(), 2u);
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");
}

}  // namespace
}  // namespace ohpx
