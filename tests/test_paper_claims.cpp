// Spec-conformance suite: each test quotes a claim from the paper and
// asserts the corresponding behaviour, organized by paper section.  Most
// of these behaviours are also covered incidentally elsewhere; this file
// is the explicit paper-text → assertion mapping.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/authentication.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/runtime/migration.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

class PaperClaims : public ::testing::Test {
 protected:
  void SetUp() override {
    lan1_ = world_.add_lan("lan1");
    lan2_ = world_.add_lan("lan2");
    m_server_ = world_.add_machine("server", lan1_);
    m_local_ = world_.add_machine("local", lan1_);
    m_remote_ = world_.add_machine("remote", lan2_);
    server_ctx_ = &world_.create_context(m_server_);
    local_ctx_ = &world_.create_context(m_local_);
    remote_ctx_ = &world_.create_context(m_remote_);
  }

  runtime::World world_;
  netsim::LanId lan1_{}, lan2_{};
  netsim::MachineId m_server_{}, m_local_{}, m_remote_{};
  orb::Context* server_ctx_ = nullptr;
  orb::Context* local_ctx_ = nullptr;
  orb::Context* remote_ctx_ = nullptr;
};

// §1: "Different clients may have different requirements for accessing a
// single server resource." — one object, several ORs with different
// policies, all live at once.
TEST_F(PaperClaims, S1_PerClientAccessPolicies) {
  auto servant = std::make_shared<EchoServant>();
  const orb::ObjectId id = server_ctx_->activate(servant);

  auto open_ref = orb::RefBuilder(*server_ctx_, id).build();
  auto metered_ref = orb::RefBuilder(*server_ctx_, id)
                         .glue({std::make_shared<cap::QuotaCapability>(1)})
                         .build();

  EchoPointer open_client(*local_ctx_, open_ref);
  EchoPointer metered_client(*local_ctx_, metered_ref);
  open_client->ping();
  open_client->ping();
  metered_client->ping();
  EXPECT_THROW(metered_client->ping(), CapabilityDenied);
  EXPECT_NO_THROW(open_client->ping());  // other reference unaffected
  EXPECT_EQ(servant->pings(), 4u);       // one object served them all
}

// §1: "Some clients may be given access to the weather data only for the
// time they have paid for."
TEST_F(PaperClaims, S1_TimeLimitedAccess) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::LeaseCapability>(
                     std::chrono::milliseconds(50))})
                 .build();
  EchoPointer gp(*local_ctx_, ref);
  EXPECT_NO_THROW(gp->ping());
  std::this_thread::sleep_for(std::chrono::milliseconds(70));  // ohpx-lint: allow-wall-clock (lease TTLs run on the steady clock)
  EXPECT_THROW(gp->ping(), CapabilityDenied);
}

// §3.1: "The protocols in the OR are ordered by preference."
TEST_F(PaperClaims, S31_TablePreservesPreferenceOrder) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::QuotaCapability>(10)})
                 .shm()
                 .nexus()
                 .build();
  ASSERT_EQ(ref.table().size(), 3u);
  EXPECT_EQ(ref.table().at(0).name, "glue");
  EXPECT_EQ(ref.table().at(1).name, "shm");
  EXPECT_EQ(ref.table().at(2).name, "nexus-tcp");
}

// §3.1: "As different GPs to a single server object may contain ORs with
// different protocol tables, the GPs may support different communication
// protocols."
TEST_F(PaperClaims, S31_DifferentTablesDifferentProtocols) {
  auto servant = std::make_shared<EchoServant>();
  const orb::ObjectId id = server_ctx_->activate(servant);

  auto nexus_only = orb::RefBuilder(*server_ctx_, id).nexus().build();
  auto glue_only =
      orb::RefBuilder(*server_ctx_, id)
          .glue({std::make_shared<cap::QuotaCapability>(100)})
          .build();

  EchoPointer via_nexus(*local_ctx_, nexus_only);
  EchoPointer via_glue(*local_ctx_, glue_only);
  via_nexus->ping();
  via_glue->ping();
  EXPECT_EQ(via_nexus->last_protocol(), "nexus-tcp");
  EXPECT_EQ(via_glue->last_protocol(), "glue[quota]->nexus-tcp");
}

// §3.2: "the protocols in the GP's OR are compared with those in the
// proto-pool and the first match is used".
TEST_F(PaperClaims, S32_PoolIntersectionFirstMatch) {
  orb::Context& colocated = world_.create_context(m_local_);
  auto ref = orb::RefBuilder(colocated, std::make_shared<EchoServant>())
                 .shm()
                 .nexus()
                 .build();
  EchoPointer gp(*local_ctx_, ref);
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "shm");  // first applicable entry

  local_ctx_->pool().disable("shm");  // user control via the pool
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");
  local_ctx_->pool().enable("shm");
}

// §3.2: "custom protocols are supported by having users write their own
// proto-classes that satisfy a standard interface."
TEST_F(PaperClaims, S32_CustomProtocolsViaStandardInterface) {
  EXPECT_TRUE(proto::ProtocolRegistry::instance().contains("shm"));
  // The extension tests register "local-only"/"test-custom"; here we only
  // assert the mechanism exists and unknown names degrade gracefully.
  proto::ProtoTable table;
  table.add(proto::ProtocolEntry{"from-the-future", {}});
  table.add(proto::ProtocolEntry{"nexus-tcp", {}});
  const auto protocols =
      proto::ProtocolRegistry::instance().instantiate_table(table);
  ASSERT_EQ(protocols.size(), 1u);
  EXPECT_EQ(protocols[0]->name(), "nexus-tcp");
}

// §4.2: the glue chain — client processes, server "un-processes the
// request in the reverse order of the processing done on the client side",
// and replies "follow the same path back".
TEST_F(PaperClaims, S42_GlueRoundTripThroughOrderedChain) {
  const auto key = crypto::Key128::from_seed(0x42);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::EncryptionCapability>(key),
                        std::make_shared<cap::AuthenticationCapability>(
                            key, "claims", cap::Scope::always)})
                 .build();
  EchoPointer gp(*remote_ctx_, ref);
  const std::vector<std::int32_t> values{1, -2, 3};
  EXPECT_EQ(gp->echo(values), values);  // survives process+unprocess both ways
}

// §4.2: "GC has its own copies of the capabilities" — server-side copies
// are live objects the server can observe.
TEST_F(PaperClaims, S42_ServerHoldsItsOwnCapabilityCopies) {
  auto quota = std::make_shared<cap::QuotaCapability>(10);
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({quota})
                 .build();
  EchoPointer gp(*local_ctx_, ref);
  gp->ping();
  gp->ping();
  EXPECT_EQ(quota->used(), 2u);  // the very instance handed to RefBuilder
}

// §4: "Capabilities can be exchanged between processes" — a serialized OR
// carries its capability descriptors.
TEST_F(PaperClaims, S4_CapabilitiesTravelInsideReferences) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::QuotaCapability>(5)})
                 .build();
  const auto rebuilt = orb::ObjectRef::from_bytes(ref.to_bytes());
  const auto data =
      proto::decode_glue_proto_data(rebuilt.table().at(0).proto_data);
  ASSERT_EQ(data.capabilities.size(), 1u);
  EXPECT_EQ(data.capabilities[0].kind, "quota");
  EXPECT_EQ(data.capabilities[0].params.at("max_calls"), "5");
}

// §4.3: "The applicability of a glue protocol is the logical AND of all
// its constituent capabilities."
TEST_F(PaperClaims, S43_GlueApplicabilityIsAnd) {
  auto ref =
      orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
          .glue({std::make_shared<cap::QuotaCapability>(10, cap::Scope::always),
                 std::make_shared<cap::AuthenticationCapability>(
                     crypto::Key128::from_seed(1), "x", cap::Scope::cross_lan)})
          .nexus()
          .build();

  // Same-LAN client: the cross_lan member vetoes the whole glue entry.
  EchoPointer local(*local_ctx_, ref);
  local->ping();
  EXPECT_EQ(local->last_protocol(), "nexus-tcp");

  // Cross-LAN client: every member applies, glue wins.
  EchoPointer remote(*remote_ctx_, ref);
  remote->ping();
  EXPECT_EQ(remote->last_protocol(), "glue[quota,authentication]->nexus-tcp");
}

// §4.3 / §5: migration changes the chosen protocol "without any client
// code change" — capabilities "can also be changed dynamically".
TEST_F(PaperClaims, S43_MigrationRetargetsSameGlobalPointer) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .shm()
                 .nexus()
                 .build();
  EchoPointer gp(*local_ctx_, ref);
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");

  orb::Context& colocated = world_.create_context(m_local_);
  runtime::migrate_shared(ref.object_id(), *server_ctx_, colocated);
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "shm");
}

// §6: unlike OIP illities ("associated with a piece of code (a thread)"),
// capabilities are "associated with a communication endpoint", so two
// threads sharing a reference share its capability state.
TEST_F(PaperClaims, S6_CapabilitiesBindToReferencesNotThreads) {
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::QuotaCapability>(2)})
                 .build();
  EchoPointer gp(*local_ctx_, ref);

  std::thread first([&] { gp->ping(); });
  first.join();
  std::thread second([&] { gp->ping(); });
  second.join();
  // The budget was consumed across threads: the reference, not the
  // thread, carries the capability.
  EXPECT_THROW(gp->ping(), CapabilityDenied);
}

}  // namespace
}  // namespace ohpx
