// Unit tests for the protocol layer: tables, pools, selection semantics,
// glue proto-data, glue protocol behaviour over a fake delegate, and the
// protocol registry.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/encryption.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/protocol/glue.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/nexus_sim.hpp"
#include "ohpx/protocol/pool.hpp"
#include "ohpx/protocol/registry.hpp"
#include "ohpx/protocol/select.hpp"
#include "ohpx/protocol/shm.hpp"
#include "ohpx/protocol/tcp_proto.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::proto {
namespace {

// ---- entries / tables --------------------------------------------------------

TEST(ProtoTable, SerializationRoundTrip) {
  ProtoTable table;
  table.add(ProtocolEntry{"glue", Bytes{1, 2, 3}});
  table.add(ProtocolEntry{"shm", {}});
  table.add(ProtocolEntry{"nexus-tcp", Bytes{9}});

  const wire::Buffer encoded = wire::encode_value(table);
  const auto decoded = wire::decode_value<ProtoTable>(encoded.view());
  EXPECT_EQ(decoded, table);
  EXPECT_EQ(decoded.size(), 3u);
  EXPECT_EQ(decoded.at(0).name, "glue");
}

TEST(ProtoTable, PreservesPreferenceOrder) {
  ProtoTable table({{"a", {}}, {"b", {}}, {"c", {}}});
  EXPECT_EQ(table.entries()[0].name, "a");
  EXPECT_EQ(table.entries()[2].name, "c");
}

// ---- pool ----------------------------------------------------------------------

TEST(Pool, StandardAllowsBuiltins) {
  const ProtoPool pool = ProtoPool::standard();
  EXPECT_TRUE(pool.allows("glue"));
  EXPECT_TRUE(pool.allows("shm"));
  EXPECT_TRUE(pool.allows("tcp"));
  EXPECT_TRUE(pool.allows("nexus-tcp"));
  EXPECT_FALSE(pool.allows("carrier-pigeon"));
}

TEST(Pool, EnableDisablePrefer) {
  ProtoPool pool;
  EXPECT_EQ(pool.size(), 0u);
  pool.enable("a");
  pool.enable("b");
  pool.enable("a");  // idempotent
  EXPECT_EQ(pool.size(), 2u);
  pool.prefer("b");
  EXPECT_EQ(pool.allowed().front(), "b");
  pool.disable("a");
  EXPECT_FALSE(pool.allows("a"));
  EXPECT_EQ(pool.size(), 1u);
}

// ---- glue wire helpers ------------------------------------------------------------

TEST(GlueWire, ProtoDataRoundTrip) {
  GlueProtoData data;
  data.glue_id = 0xdeadbeef;
  data.delegate = ProtocolEntry{"nexus-tcp", Bytes{7, 7}};
  data.capabilities.push_back(
      cap::CapabilityDescriptor{"quota", {{"max_calls", "5"}}});

  const Bytes encoded = encode_glue_proto_data(data);
  const GlueProtoData decoded = decode_glue_proto_data(encoded);
  EXPECT_EQ(decoded.glue_id, data.glue_id);
  EXPECT_EQ(decoded.delegate, data.delegate);
  ASSERT_EQ(decoded.capabilities.size(), 1u);
  EXPECT_EQ(decoded.capabilities[0].kind, "quota");
  EXPECT_EQ(decoded.capabilities[0].params.at("max_calls"), "5");
}

TEST(GlueWire, MalformedProtoDataThrows) {
  EXPECT_THROW(decode_glue_proto_data(Bytes{1, 2}), WireError);
}

TEST(GlueWire, GlueIdPrefixRoundTrip) {
  wire::Buffer payload(Bytes{10, 20, 30});
  prepend_glue_id(payload, 0x01020304);
  EXPECT_EQ(payload.size(), 7u);
  EXPECT_EQ(strip_glue_id(payload), 0x01020304u);
  EXPECT_EQ(payload.bytes(), (Bytes{10, 20, 30}));
}

TEST(GlueWire, StripFromShortPayloadThrows) {
  wire::Buffer payload(Bytes{1, 2});
  EXPECT_THROW(strip_glue_id(payload), WireError);
}

// ---- applicability of concrete protocols ---------------------------------------------

struct Placements {
  Placements() {
    const auto lan = topo.add_lan("l");
    a = topo.add_machine("a", lan);
    b = topo.add_machine("b", lan);
  }

  CallTarget local_target() {
    CallTarget target;
    target.placement = netsim::Placement{a, a, &topo};
    target.address.endpoint = "ctx/test";
    target.address.machine = a;
    return target;
  }

  CallTarget remote_target() {
    CallTarget target;
    target.placement = netsim::Placement{a, b, &topo};
    target.address.endpoint = "ctx/test";
    target.address.machine = b;
    return target;
  }

  netsim::Topology topo;
  netsim::MachineId a{}, b{};
};

TEST(Applicability, ShmOnlySameMachine) {
  Placements placements;
  ShmProtocol shm;
  EXPECT_TRUE(shm.applicable(placements.local_target()));
  EXPECT_FALSE(shm.applicable(placements.remote_target()));

  CallTarget no_endpoint = placements.local_target();
  no_endpoint.address.endpoint.clear();
  EXPECT_FALSE(shm.applicable(no_endpoint));
}

TEST(Applicability, NexusNeedsEndpointOnly) {
  Placements placements;
  NexusSimProtocol nexus;
  EXPECT_TRUE(nexus.applicable(placements.local_target()));
  EXPECT_TRUE(nexus.applicable(placements.remote_target()));
}

TEST(Applicability, TcpNeedsAdvertisedPort) {
  Placements placements;
  TcpProtocol tcp;
  CallTarget target = placements.remote_target();
  EXPECT_FALSE(tcp.applicable(target));
  target.address.tcp_host = "127.0.0.1";
  target.address.tcp_port = 9999;
  EXPECT_TRUE(tcp.applicable(target));
}

// ---- selection ---------------------------------------------------------------------------

std::vector<ProtocolPtr> standard_candidates() {
  std::vector<ProtocolPtr> out;
  out.push_back(std::make_unique<ShmProtocol>());
  out.push_back(std::make_unique<NexusSimProtocol>());
  return out;
}

TEST(Selection, FirstApplicableWins) {
  Placements placements;
  const auto candidates = standard_candidates();
  const ProtoPool pool = ProtoPool::standard();

  EXPECT_EQ(select_protocol(candidates, pool, placements.local_target())->name(),
            "shm");
  EXPECT_EQ(select_protocol(candidates, pool, placements.remote_target())->name(),
            "nexus-tcp");
}

TEST(Selection, PoolFiltersCandidates) {
  Placements placements;
  const auto candidates = standard_candidates();
  ProtoPool pool({"nexus-tcp"});  // shm not allowed locally
  EXPECT_EQ(select_protocol(candidates, pool, placements.local_target())->name(),
            "nexus-tcp");
}

TEST(Selection, NoMatchReturnsNullOrThrows) {
  Placements placements;
  const auto candidates = standard_candidates();
  const ProtoPool empty_pool;
  EXPECT_EQ(select_protocol(candidates, empty_pool, placements.local_target()),
            nullptr);
  try {
    select_protocol_or_throw(candidates, empty_pool, placements.local_target());
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::protocol_no_match);
  }
}

TEST(Selection, OrderIsTablePreferenceNotPoolPreference) {
  Placements placements;
  std::vector<ProtocolPtr> candidates;
  candidates.push_back(std::make_unique<NexusSimProtocol>());
  candidates.push_back(std::make_unique<ShmProtocol>());
  // The pool lists shm first, but the table's first applicable entry
  // (nexus) must win — the paper's "first match" walks the OR table.
  ProtoPool pool({"shm", "nexus-tcp"});
  EXPECT_EQ(select_protocol(candidates, pool, placements.local_target())->name(),
            "nexus-tcp");
}

// ---- glue protocol over a fake delegate ------------------------------------------------

/// Delegate that records what it saw and echoes the payload as the reply.
class RecordingProtocol final : public Protocol {
 public:
  std::string_view name() const noexcept override { return "recording"; }
  bool applicable(const CallTarget&) const override { return applicable_; }

  ReplyMessage invoke(const wire::MessageHeader& header, wire::Buffer& payload,
                      const CallTarget&, CostLedger&) override {
    last_header = header;
    last_payload = payload.bytes();
    ReplyMessage reply;
    reply.header.type = wire::MessageType::reply;
    reply.header.request_id = header.request_id;
    reply.header.object_id = header.object_id;
    reply.header.flags = reply_flags;
    reply.payload = std::move(payload);
    return reply;
  }

  bool applicable_ = true;
  std::uint16_t reply_flags = 0;
  wire::MessageHeader last_header;
  Bytes last_payload;
};

TEST(Glue, MarksHeaderAndPrependsGlueId) {
  auto delegate = std::make_unique<RecordingProtocol>();
  auto* recorder = delegate.get();
  GlueProtocol glue(42, cap::CapabilityChain{}, std::move(delegate));

  wire::MessageHeader header;
  header.request_id = 5;
  header.object_id = 6;
  CallTarget target;
  CostLedger ledger;
  wire::Buffer payload(Bytes{0xaa});
  glue.invoke(header, payload, target, ledger);

  EXPECT_TRUE(recorder->last_header.flags & wire::kFlagGlueProcessed);
  ASSERT_EQ(recorder->last_payload.size(), 5u);  // 4-byte glue id + 1 byte
  EXPECT_EQ(recorder->last_payload[3], 42);
  EXPECT_EQ(recorder->last_payload[4], 0xaa);
}

TEST(Glue, UnprocessesFlaggedReplies) {
  // Chain with checksum: the recording delegate echoes the processed
  // payload (including the glue id prefix, which the real server strips —
  // emulate that by checking the client-side unprocess path only when the
  // reply is flagged).
  auto delegate = std::make_unique<RecordingProtocol>();
  auto* recorder = delegate.get();
  recorder->reply_flags = 0;  // server says: reply NOT glue-processed
  cap::CapabilityChain chain({std::make_shared<cap::ChecksumCapability>()});
  GlueProtocol glue(1, std::move(chain), std::move(delegate));

  wire::MessageHeader header;
  header.request_id = 9;
  CallTarget target;
  CostLedger ledger;
  // Unflagged reply passes through untouched (it still carries the glue id
  // + checksum the request chain added, since the recorder just echoes).
  wire::Buffer payload(Bytes{1, 2, 3});
  const ReplyMessage reply = glue.invoke(header, payload, target, ledger);
  EXPECT_EQ(reply.payload.size(), 3u + 4u + 4u);  // payload + glue id + crc
}

TEST(Glue, ApplicabilityAndsChainWithDelegate) {
  Placements placements;
  {
    auto delegate = std::make_unique<RecordingProtocol>();
    GlueProtocol glue(1,
                      cap::CapabilityChain({std::make_shared<cap::QuotaCapability>(
                          1, cap::Scope::never)}),
                      std::move(delegate));
    EXPECT_FALSE(glue.applicable(placements.local_target()));
  }
  {
    auto delegate = std::make_unique<RecordingProtocol>();
    delegate->applicable_ = false;
    GlueProtocol glue(1, cap::CapabilityChain{}, std::move(delegate));
    EXPECT_FALSE(glue.applicable(placements.local_target()));
  }
  {
    auto delegate = std::make_unique<RecordingProtocol>();
    GlueProtocol glue(1, cap::CapabilityChain{}, std::move(delegate));
    EXPECT_TRUE(glue.applicable(placements.local_target()));
  }
}

TEST(Glue, AdmissionRefusalSurfacesBeforeDelegate) {
  auto delegate = std::make_unique<RecordingProtocol>();
  auto* recorder = delegate.get();
  GlueProtocol glue(
      1, cap::CapabilityChain({std::make_shared<cap::QuotaCapability>(0)}),
      std::move(delegate));

  wire::MessageHeader header;
  CallTarget target;
  CostLedger ledger;
  wire::Buffer payload(Bytes{1});
  EXPECT_THROW(glue.invoke(header, payload, target, ledger),
               CapabilityDenied);
  EXPECT_TRUE(recorder->last_payload.empty());  // delegate never reached
}

TEST(Glue, NullDelegateRejected) {
  EXPECT_THROW(GlueProtocol(1, cap::CapabilityChain{}, nullptr), ProtocolError);
}

TEST(Glue, DescribeShowsChainAndDelegate) {
  auto delegate = std::make_unique<RecordingProtocol>();
  GlueProtocol glue(
      1, cap::CapabilityChain({std::make_shared<cap::QuotaCapability>(1)}),
      std::move(delegate));
  EXPECT_EQ(glue.describe(), "glue[quota]->recording");
}

// ---- tcp protocol reconnect ------------------------------------------------------------

TEST(TcpProtocolRecovery, ReconnectsAfterServerRestart) {
  // A cached connection goes stale when the server restarts; the protocol
  // must drop it and retry once on a fresh connection.
  auto echo_handler = [](const wire::Buffer& frame) {
    BytesView body;
    const wire::MessageHeader header = wire::decode_frame(frame.view(), body);
    wire::MessageHeader reply = header;
    reply.type = wire::MessageType::reply;
    return wire::encode_frame(reply, body);
  };

  auto first = std::make_unique<transport::TcpListener>(0, echo_handler);
  const std::uint16_t port = first->port();

  TcpProtocol tcp;
  CallTarget target;
  target.address.tcp_host = "127.0.0.1";
  target.address.tcp_port = port;

  wire::MessageHeader header;
  header.request_id = 1;
  CostLedger ledger;
  wire::Buffer first_payload(Bytes{1, 2});
  auto reply = tcp.invoke(header, first_payload, target, ledger);
  EXPECT_EQ(reply.payload.size(), 2u);

  // Restart the server on the same port; the cached channel is now dead.
  first.reset();
  transport::TcpListener second(port, echo_handler);

  header.request_id = 2;
  wire::Buffer second_payload(Bytes{3, 4, 5});
  reply = tcp.invoke(header, second_payload, target, ledger);
  EXPECT_EQ(reply.payload.size(), 3u);
}

// ---- registry ------------------------------------------------------------------------------

TEST(Registry, BuiltinsPresent) {
  auto& registry = ProtocolRegistry::instance();
  for (const char* name : {"shm", "nexus-tcp", "tcp", "glue"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(Registry, UnknownProtocolRefused) {
  try {
    ProtocolRegistry::instance().instantiate(ProtocolEntry{"warp-drive", {}});
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::protocol_unknown);
  }
}

TEST(Registry, InstantiateTableSkipsUnknown) {
  ProtoTable table;
  table.add(ProtocolEntry{"warp-drive", {}});
  table.add(ProtocolEntry{"shm", {}});
  const auto protocols = ProtocolRegistry::instance().instantiate_table(table);
  ASSERT_EQ(protocols.size(), 1u);
  EXPECT_EQ(protocols[0]->name(), "shm");
}

TEST(Registry, GlueFactoryRebuildsChainAndDelegate) {
  GlueProtoData data;
  data.glue_id = 77;
  data.delegate = ProtocolEntry{"nexus-tcp", {}};
  data.capabilities.push_back(
      cap::QuotaCapability(9).descriptor());
  data.capabilities.push_back(
      cap::EncryptionCapability(crypto::Key128::from_seed(3)).descriptor());

  ProtocolEntry entry{"glue", encode_glue_proto_data(data)};
  const ProtocolPtr protocol = ProtocolRegistry::instance().instantiate(entry);
  auto* glue = dynamic_cast<GlueProtocol*>(protocol.get());
  ASSERT_NE(glue, nullptr);
  EXPECT_EQ(glue->glue_id(), 77u);
  EXPECT_EQ(glue->chain().size(), 2u);
  EXPECT_EQ(glue->delegate().name(), "nexus-tcp");
}

TEST(Registry, NestedGlueRefused) {
  GlueProtoData inner;
  inner.glue_id = 1;
  inner.delegate = ProtocolEntry{"nexus-tcp", {}};
  GlueProtoData outer;
  outer.glue_id = 2;
  outer.delegate = ProtocolEntry{"glue", encode_glue_proto_data(inner)};

  ProtocolEntry entry{"glue", encode_glue_proto_data(outer)};
  try {
    ProtocolRegistry::instance().instantiate(entry);
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::protocol_bad_proto_data);
  }
}

TEST(Registry, MalformedGlueDataRefused) {
  ProtocolEntry entry{"glue", Bytes{1, 2, 3}};
  try {
    ProtocolRegistry::instance().instantiate(entry);
    FAIL();
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.code(), ErrorCode::protocol_bad_proto_data);
  }
}

TEST(Registry, CustomProtocolPluggable) {
  ProtocolRegistry::instance().register_factory(
      "test-custom", [](const ProtocolEntry&) -> ProtocolPtr {
        return std::make_unique<RecordingProtocol>();
      });
  EXPECT_TRUE(ProtocolRegistry::instance().contains("test-custom"));
  const auto instance =
      ProtocolRegistry::instance().instantiate(ProtocolEntry{"test-custom", {}});
  EXPECT_EQ(instance->name(), "recording");
}

}  // namespace
}  // namespace ohpx::proto
