// Unit tests for the wire layer: encoder/decoder primitives, serialization
// traits, CRC-32, and frame encode/decode including hostile inputs.
#include <gtest/gtest.h>

#include <map>
#include <cmath>
#include <optional>

#include "ohpx/common/rng.hpp"
#include "ohpx/wire/crc.hpp"
#include "ohpx/wire/message.hpp"
#include "ohpx/wire/serialize.hpp"

namespace ohpx::wire {
namespace {

// ---- encoder layout ---------------------------------------------------

TEST(Encoder, BigEndianLayoutU16) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_u16(0x1234);
  ASSERT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.data()[0], 0x12);
  EXPECT_EQ(buf.data()[1], 0x34);
}

TEST(Encoder, BigEndianLayoutU32) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_u32(0xdeadbeef);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.data()[0], 0xde);
  EXPECT_EQ(buf.data()[3], 0xef);
}

TEST(Encoder, BigEndianLayoutU64) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_u64(0x0102030405060708ull);
  ASSERT_EQ(buf.size(), 8u);
  EXPECT_EQ(buf.data()[0], 0x01);
  EXPECT_EQ(buf.data()[7], 0x08);
}

TEST(Encoder, StringIsLengthPrefixed) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_string("ab");
  ASSERT_EQ(buf.size(), 6u);
  EXPECT_EQ(buf.data()[3], 2u);  // length 2 in the low byte of the u32
  EXPECT_EQ(buf.data()[4], 'a');
}

// ---- scalar round trips -------------------------------------------------

template <typename T>
void roundtrip_equal(const T& value) {
  Buffer buf = encode_value(value);
  EXPECT_EQ(decode_value<T>(buf.view()), value);
}

TEST(RoundTrip, Scalars) {
  roundtrip_equal<bool>(true);
  roundtrip_equal<bool>(false);
  roundtrip_equal<std::uint8_t>(0xff);
  roundtrip_equal<std::int8_t>(-1);
  roundtrip_equal<std::uint16_t>(65535);
  roundtrip_equal<std::int16_t>(-32768);
  roundtrip_equal<std::uint32_t>(0xffffffffu);
  roundtrip_equal<std::int32_t>(-2147483647);
  roundtrip_equal<std::uint64_t>(~0ull);
  roundtrip_equal<std::int64_t>(std::numeric_limits<std::int64_t>::min());
  roundtrip_equal<float>(3.14159f);
  roundtrip_equal<double>(-2.718281828459045);
  roundtrip_equal<float>(-0.0f);
  roundtrip_equal<double>(std::numeric_limits<double>::infinity());
}

TEST(RoundTrip, NaNPreservesBitPattern) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Buffer buf = encode_value(nan);
  const double back = decode_value<double>(buf.view());
  EXPECT_TRUE(std::isnan(back));
}

TEST(RoundTrip, StringsIncludingEmbeddedNul) {
  roundtrip_equal<std::string>("");
  roundtrip_equal<std::string>("hello");
  roundtrip_equal<std::string>(std::string("a\0b", 3));
  roundtrip_equal<std::string>(std::string(100000, 'x'));
}

enum class Color : std::uint16_t { red = 1, green = 2, blue = 999 };

TEST(RoundTrip, Enums) { roundtrip_equal<Color>(Color::blue); }

// ---- containers ---------------------------------------------------------

TEST(RoundTrip, Containers) {
  roundtrip_equal<std::vector<std::int32_t>>({});
  roundtrip_equal<std::vector<std::int32_t>>({1, -2, 3});
  roundtrip_equal<Bytes>({0x00, 0xff, 0x7f});
  roundtrip_equal<std::vector<std::string>>({"a", "", "ccc"});
  roundtrip_equal<std::pair<std::int32_t, std::string>>({7, "seven"});
  roundtrip_equal<std::map<std::string, std::uint64_t>>(
      {{"one", 1}, {"two", 2}});
  roundtrip_equal<std::optional<std::int32_t>>(std::nullopt);
  roundtrip_equal<std::optional<std::int32_t>>(42);
  roundtrip_equal<std::array<std::int16_t, 4>>({{1, 2, 3, 4}});
  roundtrip_equal<std::vector<std::vector<std::uint8_t>>>({{1}, {}, {2, 3}});
  roundtrip_equal<std::map<std::int32_t, std::vector<std::string>>>(
      {{1, {"a", "b"}}, {2, {}}});
}

struct Point {
  std::int32_t x = 0;
  std::int32_t y = 0;

  void wire_serialize(Encoder& enc) const {
    enc.put_i32(x);
    enc.put_i32(y);
  }
  static Point wire_deserialize(Decoder& dec) {
    Point p;
    p.x = dec.get_i32();
    p.y = dec.get_i32();
    return p;
  }
  friend bool operator==(const Point&, const Point&) = default;
};

TEST(RoundTrip, UserTypesViaConcept) {
  static_assert(WireSerializable<Point>);
  roundtrip_equal<Point>({3, -4});
  roundtrip_equal<std::vector<Point>>({{1, 2}, {3, 4}});
  roundtrip_equal<std::optional<Point>>(Point{9, 9});
}

TEST(RoundTrip, ArgumentPacksInOrder) {
  Buffer buf;
  Encoder enc(buf);
  serialize_all(enc, std::int32_t{1}, std::string("two"), 3.0);
  Decoder dec(buf.view());
  EXPECT_EQ(deserialize<std::int32_t>(dec), 1);
  EXPECT_EQ(deserialize<std::string>(dec), "two");
  EXPECT_EQ(deserialize<double>(dec), 3.0);
  EXPECT_TRUE(dec.at_end());
}

// ---- decoder failure modes -----------------------------------------------

TEST(Decoder, TruncatedScalarThrows) {
  const Bytes raw = {0x01, 0x02};
  Decoder dec(raw);
  EXPECT_THROW(dec.get_u32(), WireError);
}

TEST(Decoder, TruncatedBytesThrows) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_u32(100);  // claims 100 bytes follow; none do
  Decoder dec(buf.view());
  EXPECT_THROW(dec.get_bytes(), WireError);
}

TEST(Decoder, BadBoolByteThrows) {
  const Bytes raw = {0x02};
  Decoder dec(raw);
  EXPECT_THROW(dec.get_bool(), WireError);
}

TEST(Decoder, TrailingBytesDetected) {
  const Bytes raw = {0x00, 0x01};
  Decoder dec(raw);
  dec.get_u8();
  EXPECT_THROW(dec.expect_end(), WireError);
  dec.get_u8();
  EXPECT_NO_THROW(dec.expect_end());
}

TEST(Decoder, HostileVectorCountRejected) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_u32(0xffffffffu);  // 4 billion elements, zero bytes of data
  Decoder dec(buf.view());
  EXPECT_THROW(deserialize<std::vector<std::int32_t>>(dec), WireError);
}

TEST(Decoder, DecodeValueRejectsTrailingGarbage) {
  Buffer buf = encode_value(std::int32_t{5});
  buf.append(0x00);
  EXPECT_THROW(decode_value<std::int32_t>(buf.view()), WireError);
}

TEST(Decoder, RemainingAndPositionTrack) {
  const Bytes raw = {1, 2, 3, 4};
  Decoder dec(raw);
  EXPECT_EQ(dec.remaining(), 4u);
  dec.get_u16();
  EXPECT_EQ(dec.position(), 2u);
  EXPECT_EQ(dec.remaining(), 2u);
}

TEST(Decoder, RawAndViewAccessors) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_raw(BytesView(Bytes{1, 2, 3, 4, 5}));
  Decoder dec(buf.view());
  const BytesView head = dec.get_raw(2);
  EXPECT_EQ(head[0], 1);
  EXPECT_EQ(head[1], 2);
  EXPECT_EQ(dec.remaining(), 3u);
  EXPECT_THROW(dec.get_raw(4), WireError);
}

TEST(Decoder, BytesViewIsZeroCopy) {
  Buffer buf;
  Encoder enc(buf);
  enc.put_bytes(Bytes{9, 8, 7});
  Decoder dec(buf.view());
  const BytesView view = dec.get_bytes_view();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.data(), buf.data() + 4);  // points into the backing store
}

// ---- buffer ----------------------------------------------------------------

TEST(BufferTest, ReleaseLeavesEmpty) {
  Buffer buf;
  buf.append(BytesView(Bytes{1, 2, 3}));
  Bytes taken = buf.release();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_TRUE(buf.empty());
}

TEST(BufferTest, SubrangeViewClamped) {
  Buffer buf(Bytes{1, 2, 3, 4});
  EXPECT_EQ(buf.view(2, 10).size(), 2u);
  EXPECT_EQ(buf.view(9, 1).size(), 0u);
}

// ---- CRC-32 -----------------------------------------------------------------

TEST(Crc, KnownVectors) {
  // Standard IEEE CRC-32 check values.
  EXPECT_EQ(crc32(bytes_of("123456789")), 0xcbf43926u);
  EXPECT_EQ(crc32(bytes_of("")), 0x00000000u);
  EXPECT_EQ(crc32(bytes_of("a")), 0xe8b7be43u);
  EXPECT_EQ(crc32(bytes_of("abc")), 0x352441c2u);
}

TEST(Crc, IncrementalMatchesOneShot) {
  const Bytes data = bytes_of("the quick brown fox jumps over the lazy dog");
  Crc32 crc;
  crc.update(BytesView(data.data(), 10));
  crc.update(BytesView(data.data() + 10, data.size() - 10));
  EXPECT_EQ(crc.value(), crc32(data));
}

// ---- sanitizer-hardening round trips ----------------------------------------
// Probes chosen for UBSan/ASan instrumented runs (docs/static_analysis.md):
// misaligned multi-byte reads, shift/conversion edge values, length
// arithmetic at the u32 boundary.  They must of course also pass plain.

TEST(RoundTrip, IntegerExtremesAtEveryMisalignment) {
  // Pad by 1..7 bytes so every multi-byte value sits at every possible
  // misaligned offset; a decoder shortcut that reinterpreted memory
  // instead of assembling bytes would trip UBSan's alignment check.
  for (std::size_t pad = 1; pad <= 7; ++pad) {
    Buffer buf;
    Encoder enc(buf);
    for (std::size_t i = 0; i < pad; ++i) enc.put_u8(0xa5);
    enc.put_i64(std::numeric_limits<std::int64_t>::min());
    enc.put_i64(std::numeric_limits<std::int64_t>::max());
    enc.put_u64(~0ull);
    enc.put_i32(std::numeric_limits<std::int32_t>::min());
    enc.put_i16(std::numeric_limits<std::int16_t>::min());
    enc.put_u16(0xffffu);
    enc.put_f64(-std::numeric_limits<double>::denorm_min());
    enc.put_f32(std::numeric_limits<float>::denorm_min());

    Decoder dec(buf.view());
    for (std::size_t i = 0; i < pad; ++i) EXPECT_EQ(dec.get_u8(), 0xa5);
    EXPECT_EQ(dec.get_i64(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(dec.get_i64(), std::numeric_limits<std::int64_t>::max());
    EXPECT_EQ(dec.get_u64(), ~0ull);
    EXPECT_EQ(dec.get_i32(), std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(dec.get_i16(), std::numeric_limits<std::int16_t>::min());
    EXPECT_EQ(dec.get_u16(), 0xffffu);
    EXPECT_EQ(dec.get_f64(), -std::numeric_limits<double>::denorm_min());
    EXPECT_EQ(dec.get_f32(), std::numeric_limits<float>::denorm_min());
    EXPECT_NO_THROW(dec.expect_end());
  }
}

TEST(Decoder, EmptyViewFailsClosed) {
  Decoder dec(BytesView{});
  EXPECT_TRUE(dec.at_end());
  EXPECT_EQ(dec.remaining(), 0u);
  EXPECT_THROW(dec.get_u8(), WireError);
  EXPECT_THROW(dec.get_u64(), WireError);
  EXPECT_THROW(dec.get_bytes(), WireError);
  EXPECT_THROW(dec.get_raw(1), WireError);
  EXPECT_NO_THROW(dec.expect_end());
}

TEST(Decoder, LengthPrefixNearU32MaxRejectedWithoutOverflow) {
  // pos_ + 0xffffffff would wrap a 32-bit accumulator; the bounds check
  // must compare against the remaining bytes, not the wrapped sum.
  for (const std::uint32_t hostile :
       {0xffffffffu, 0xfffffffeu, 0x80000000u}) {
    Buffer buf;
    Encoder enc(buf);
    enc.put_u32(hostile);
    enc.put_u8(0x00);  // one byte of "payload", far short of the claim
    Decoder dec(buf.view());
    EXPECT_THROW(dec.get_bytes(), WireError);
  }
}

TEST(Crc, SplitAtEveryOffsetMatchesOneShot) {
  Bytes data(37);
  Xoshiro256 rng(0x5eed);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  const std::uint32_t whole = crc32(BytesView(data));
  for (std::size_t split = 0; split <= data.size(); ++split) {
    Crc32 crc;
    crc.update(BytesView(data.data(), split));
    crc.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(crc.value(), whole) << "split at " << split;
  }
}

// ---- frames ------------------------------------------------------------------

MessageHeader sample_header() {
  MessageHeader header;
  header.type = MessageType::request;
  header.flags = kFlagGlueProcessed;
  header.request_id = 0x1122334455667788ull;
  header.object_id = 42;
  header.method_or_code = 7;
  return header;
}

TEST(Frame, RoundTrip) {
  const Bytes body = {9, 8, 7};
  Buffer frame = encode_frame(sample_header(), body);
  EXPECT_EQ(frame.size(), kHeaderSize + body.size());

  BytesView parsed_body;
  const MessageHeader parsed = decode_frame(frame.view(), parsed_body);
  EXPECT_EQ(parsed, sample_header());
  EXPECT_EQ(Bytes(parsed_body.begin(), parsed_body.end()), body);
}

TEST(Frame, EmptyBody) {
  Buffer frame = encode_frame(sample_header(), {});
  BytesView body;
  decode_frame(frame.view(), body);
  EXPECT_TRUE(body.empty());
}

TEST(Frame, ShortFrameRejected) {
  const Bytes tiny = {1, 2, 3};
  BytesView body;
  EXPECT_THROW(decode_frame(tiny, body), WireError);
}

TEST(Frame, BadMagicRejected) {
  Buffer frame = encode_frame(sample_header(), {});
  frame.data()[0] ^= 0xff;
  BytesView body;
  try {
    decode_frame(frame.view(), body);
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ErrorCode::wire_bad_magic);
  }
}

TEST(Frame, BadVersionRejected) {
  Buffer frame = encode_frame(sample_header(), {});
  frame.data()[4] = 99;
  BytesView body;
  try {
    decode_frame(frame.view(), body);
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ErrorCode::wire_bad_version);
  }
}

TEST(Frame, CorruptHeaderCrcDetected) {
  Buffer frame = encode_frame(sample_header(), {});
  frame.data()[10] ^= 0x01;  // flip a bit inside the request id
  BytesView body;
  try {
    decode_frame(frame.view(), body);
    FAIL();
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ErrorCode::wire_bad_checksum);
  }
}

TEST(Frame, UnknownTypeRejected) {
  Buffer frame = encode_frame(sample_header(), {});
  frame.data()[5] = 77;
  BytesView body;
  EXPECT_THROW(decode_frame(frame.view(), body), WireError);
}

TEST(Frame, ErrorBodyRoundTrip) {
  Buffer body = encode_error_body(503, "object not found");
  std::uint32_t code = 0;
  std::string message;
  decode_error_body(body.view(), code, message);
  EXPECT_EQ(code, 503u);
  EXPECT_EQ(message, "object not found");
}

// ---- randomized property sweep ------------------------------------------------

class WireFuzzRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzzRoundTrip, RandomValuesSurviveRoundTrip) {
  Xoshiro256 rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<std::int32_t> ints(rng.next_below(200));
    for (auto& v : ints) v = static_cast<std::int32_t>(rng.next());
    roundtrip_equal(ints);

    std::string text(rng.next_below(100), '\0');
    for (auto& c : text) c = static_cast<char>(rng.next_below(256));
    roundtrip_equal(text);

    std::map<std::uint32_t, double> table;
    for (std::uint64_t i = 0; i < rng.next_below(20); ++i) {
      table[static_cast<std::uint32_t>(rng.next())] = rng.next_double();
    }
    roundtrip_equal(table);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ohpx::wire
