// Tests for the declarative MethodTable skeleton helper.
#include <gtest/gtest.h>

#include "ohpx/orb/method_table.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/runtime/world.hpp"

namespace ohpx::orb {
namespace {

class CalcServant final : public Servant {
 public:
  static constexpr std::string_view kTypeName = "Calc";
  enum Method : std::uint32_t {
    kAdd = 1,
    kConcat = 2,
    kStore = 3,
    kLoad = 4,
    kBoom = 5,
  };

  std::int64_t add(std::int64_t a, std::int64_t b) { return a + b; }
  std::string concat(std::string a, std::string b, std::uint32_t repeat) {
    std::string out;
    for (std::uint32_t i = 0; i < repeat; ++i) out += a + b;
    return out;
  }
  void store(double value) { stored_ = value; }
  double load() const { return stored_; }
  std::int32_t boom(std::int32_t) { throw std::runtime_error("calc boom"); }

  std::string_view type_name() const noexcept override { return kTypeName; }

  void dispatch(std::uint32_t method_id, wire::Decoder& in,
                wire::Encoder& out) override {
    static const auto kTable = MethodTable<CalcServant>{}
                                   .bind(kAdd, &CalcServant::add)
                                   .bind(kConcat, &CalcServant::concat)
                                   .bind(kStore, &CalcServant::store)
                                   .bind(kLoad, &CalcServant::load)
                                   .bind(kBoom, &CalcServant::boom);
    kTable.dispatch(*this, method_id, in, out);
  }

 private:
  double stored_ = 0.0;
};

class CalcStub : public ObjectStub {
 public:
  static constexpr std::string_view kTypeName = CalcServant::kTypeName;
  using ObjectStub::ObjectStub;

  std::int64_t add(std::int64_t a, std::int64_t b) {
    return call<std::int64_t>(CalcServant::kAdd, a, b);
  }
  std::string concat(const std::string& a, const std::string& b,
                     std::uint32_t repeat) {
    return call<std::string>(CalcServant::kConcat, a, b, repeat);
  }
  void store(double value) { call<void>(CalcServant::kStore, value); }
  double load() { return call<double>(CalcServant::kLoad); }
  std::int32_t boom() { return call<std::int32_t>(CalcServant::kBoom, 1); }
};

class MethodTableFixture : public ::testing::Test {
 protected:
  MethodTableFixture() {
    const auto lan = world_.add_lan("lan");
    ctx_ = &world_.create_context(world_.add_machine("m", lan));
    ref_ = RefBuilder(*ctx_, std::make_shared<CalcServant>()).build();
  }

  runtime::World world_;
  Context* ctx_ = nullptr;
  ObjectRef ref_;
};

TEST_F(MethodTableFixture, MultiArgMethods) {
  GlobalPointer<CalcStub> calc(*ctx_, ref_);
  EXPECT_EQ(calc->add(40, 2), 42);
  EXPECT_EQ(calc->concat("ab", "c", 3), "abcabcabc");
}

TEST_F(MethodTableFixture, VoidAndConstMethods) {
  GlobalPointer<CalcStub> calc(*ctx_, ref_);
  calc->store(2.5);
  EXPECT_DOUBLE_EQ(calc->load(), 2.5);
}

TEST_F(MethodTableFixture, ExceptionsStillPropagate) {
  GlobalPointer<CalcStub> calc(*ctx_, ref_);
  try {
    calc->boom();
    FAIL();
  } catch (const RemoteError& e) {
    EXPECT_STREQ(e.what(), "calc boom");
  }
}

TEST_F(MethodTableFixture, UnknownMethodRaisesCanonicalError) {
  CalcStub stub(*ctx_, ref_);
  try {
    stub.call<std::int32_t>(999);
    FAIL();
  } catch (const ObjectError& e) {
    EXPECT_EQ(e.code(), ErrorCode::method_not_found);
  }
}

TEST(MethodTableUnit, SizeCountsBindings) {
  const auto table = MethodTable<CalcServant>{}
                         .bind(CalcServant::kAdd, &CalcServant::add)
                         .bind(CalcServant::kLoad, &CalcServant::load);
  EXPECT_EQ(table.size(), 2u);
}

TEST(MethodTableUnit, MalformedArgumentsSurfaceAsWireErrors) {
  CalcServant servant;
  wire::Buffer args;  // empty: add() needs two i64s
  wire::Decoder in(args.view());
  wire::Buffer result;
  wire::Encoder out(result);
  EXPECT_THROW(servant.dispatch(CalcServant::kAdd, in, out), WireError);
}

}  // namespace
}  // namespace ohpx::orb
