// Unit tests for the ORB core: object references, the location service,
// contexts (registration + the server frame pipeline, including hostile
// frames), reference building, stubs and global pointers.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/checksum.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/orb/context.hpp"
#include "ohpx/transport/inproc.hpp"
#include "ohpx/orb/global_pointer.hpp"
#include "ohpx/orb/location.hpp"
#include "ohpx/orb/object_ref.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/scenario/counter.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx::orb {
namespace {

using scenario::EchoServant;
using scenario::EchoStub;

class OrbFixture : public ::testing::Test {
 protected:
  OrbFixture()
      : lan_(topology_.add_lan("lan")),
        machine_(topology_.add_machine("box", lan_)),
        context_(Context::allocate_id(), machine_, topology_, location_) {}

  netsim::Topology topology_;
  LocationService location_;
  netsim::LanId lan_;
  netsim::MachineId machine_;
  Context context_;
};

// ---- object references --------------------------------------------------------

TEST_F(OrbFixture, ObjectRefSerializationRoundTrip) {
  const ObjectRef ref =
      RefBuilder(context_, std::make_shared<EchoServant>()).build();
  const ObjectRef back = ObjectRef::from_bytes(ref.to_bytes());
  EXPECT_EQ(back, ref);
  EXPECT_EQ(back.type_name(), "Echo");
  EXPECT_EQ(back.home().context_id, context_.id());
  EXPECT_EQ(back.home().endpoint, context_.endpoint_name());
}

TEST_F(OrbFixture, InvalidRefRejected) {
  ObjectRef invalid;
  EXPECT_FALSE(invalid.valid());
  EXPECT_THROW(ObjectRef::from_bytes(invalid.to_bytes()), ObjectError);
  EXPECT_THROW(ObjectRef::from_bytes(Bytes{1, 2, 3}), WireError);
}

TEST(AddressCodec, RoundTrip) {
  proto::ServerAddress address;
  address.context_id = 3;
  address.machine = 4;
  address.endpoint = "ctx/3";
  address.tcp_host = "127.0.0.1";
  address.tcp_port = 8080;
  address.epoch = 12;

  wire::Buffer buf;
  wire::Encoder enc(buf);
  serialize_address(enc, address);
  wire::Decoder dec(buf.view());
  const proto::ServerAddress back = deserialize_address(dec);
  EXPECT_EQ(back.context_id, 3u);
  EXPECT_EQ(back.machine, 4u);
  EXPECT_EQ(back.endpoint, "ctx/3");
  EXPECT_EQ(back.tcp_port, 8080);
  EXPECT_EQ(back.epoch, 12u);
}

// ---- location service -----------------------------------------------------------

TEST(LocationServiceTest, PublishResolveRemove) {
  LocationService location;
  EXPECT_FALSE(location.resolve(1).has_value());
  EXPECT_EQ(location.epoch_of(1), 0u);

  proto::ServerAddress address;
  address.context_id = 9;
  location.publish(1, address);
  ASSERT_TRUE(location.resolve(1).has_value());
  EXPECT_EQ(location.resolve(1)->context_id, 9u);
  EXPECT_EQ(location.epoch_of(1), 1u);
  EXPECT_EQ(location.size(), 1u);

  location.remove(1);
  EXPECT_FALSE(location.resolve(1).has_value());
}

TEST(LocationServiceTest, RepublishBumpsEpoch) {
  LocationService location;
  proto::ServerAddress address;
  location.publish(5, address);
  location.publish(5, address);
  location.publish(5, address);
  EXPECT_EQ(location.epoch_of(5), 3u);
}

// ---- context: registration --------------------------------------------------------

TEST_F(OrbFixture, ActivateRegistersAndPublishes) {
  auto servant = std::make_shared<EchoServant>();
  const ObjectId id = context_.activate(servant);
  EXPECT_TRUE(context_.hosts(id));
  EXPECT_EQ(context_.find_servant(id), servant);
  ASSERT_TRUE(location_.resolve(id).has_value());
  EXPECT_EQ(location_.resolve(id)->context_id, context_.id());

  context_.deactivate(id);
  EXPECT_FALSE(context_.hosts(id));
  EXPECT_FALSE(location_.resolve(id).has_value());
}

TEST_F(OrbFixture, ActivateNullRejected) {
  EXPECT_THROW(context_.activate(nullptr), ObjectError);
}

TEST_F(OrbFixture, UniqueObjectAndRequestIds) {
  const ObjectId a = context_.activate(std::make_shared<EchoServant>());
  const ObjectId b = context_.activate(std::make_shared<EchoServant>());
  EXPECT_NE(a, b);

  const auto r1 = context_.next_request_id();
  const auto r2 = context_.next_request_id();
  EXPECT_NE(r1, r2);
  // Context id is folded into the high bits.
  EXPECT_EQ(r1 >> 40, context_.id());
}

TEST_F(OrbFixture, HostedObjectsListed) {
  const ObjectId a = context_.activate(std::make_shared<EchoServant>());
  const ObjectId b = context_.activate(std::make_shared<EchoServant>());
  const auto hosted = context_.hosted_objects();
  EXPECT_EQ(hosted.size(), 2u);
  EXPECT_TRUE(std::count(hosted.begin(), hosted.end(), a) == 1);
  EXPECT_TRUE(std::count(hosted.begin(), hosted.end(), b) == 1);
}

// ---- context: server pipeline hostile inputs ----------------------------------------

wire::Buffer request_frame(ObjectId object_id, std::uint32_t method,
                           const wire::Buffer& payload,
                           std::uint16_t flags = 0) {
  wire::MessageHeader header;
  header.type = wire::MessageType::request;
  header.flags = flags;
  header.request_id = 1234;
  header.object_id = object_id;
  header.method_or_code = method;
  return wire::encode_frame(header, payload.view());
}

std::uint32_t error_code_of(const wire::Buffer& reply_frame) {
  BytesView body;
  const wire::MessageHeader header = wire::decode_frame(reply_frame.view(), body);
  EXPECT_EQ(header.type, wire::MessageType::error_reply);
  std::uint32_t code = 0;
  std::string message;
  wire::decode_error_body(body, code, message);
  return code;
}

TEST_F(OrbFixture, GarbageFrameYieldsErrorReply) {
  const wire::Buffer garbage(Bytes(64, 0x77));
  const wire::Buffer reply = context_.handle_frame(garbage);
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::wire_bad_magic));
}

TEST_F(OrbFixture, UnknownObjectYieldsObjectNotFound) {
  const wire::Buffer reply =
      context_.handle_frame(request_frame(99999, 1, wire::Buffer{}));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::object_not_found));
}

TEST_F(OrbFixture, MigratedObjectYieldsStaleReference) {
  const ObjectId id = context_.activate(std::make_shared<EchoServant>());
  // Simulate migration completed elsewhere: location points to another
  // context while this one no longer hosts the servant.
  proto::ServerAddress elsewhere;
  elsewhere.context_id = context_.id() + 1;
  location_.publish(id, elsewhere);
  context_.deactivate(id, /*forget_location=*/false);

  const wire::Buffer reply =
      context_.handle_frame(request_frame(id, 1, wire::Buffer{}));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::stale_reference));
}

TEST_F(OrbFixture, UnknownMethodYieldsMethodNotFound) {
  const ObjectId id = context_.activate(std::make_shared<EchoServant>());
  const wire::Buffer reply =
      context_.handle_frame(request_frame(id, 424242, wire::Buffer{}));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::method_not_found));
}

TEST_F(OrbFixture, NonRequestFrameRejected) {
  wire::MessageHeader header;
  header.type = wire::MessageType::reply;
  header.object_id = 1;
  const wire::Buffer reply =
      context_.handle_frame(wire::encode_frame(header, {}));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::protocol_unknown));
}

TEST_F(OrbFixture, GlueFlagWithoutBindingRejected) {
  const ObjectId id = context_.activate(std::make_shared<EchoServant>());
  wire::Buffer payload;
  proto::prepend_glue_id(payload, 424242);  // no such binding
  const wire::Buffer reply = context_.handle_frame(
      request_frame(id, 1, payload, wire::kFlagGlueProcessed));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::capability_unknown));
}

TEST_F(OrbFixture, GlueBindingObjectMismatchRejected) {
  const ObjectId intended = context_.activate(std::make_shared<EchoServant>());
  const ObjectId other = context_.activate(std::make_shared<EchoServant>());
  const std::uint32_t glue_id =
      context_.register_glue(intended, cap::CapabilityChain{});

  // Present `other` with a glue id registered for `intended`: refused.
  wire::Buffer payload;
  proto::prepend_glue_id(payload, glue_id);
  const wire::Buffer reply = context_.handle_frame(
      request_frame(other, 1, payload, wire::kFlagGlueProcessed));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::capability_denied));
}

TEST_F(OrbFixture, CorruptGluePayloadRejectedByChain) {
  const ObjectId id = context_.activate(std::make_shared<EchoServant>());
  const std::uint32_t glue_id = context_.register_glue(
      id, cap::CapabilityChain({std::make_shared<cap::ChecksumCapability>()}));

  wire::Buffer payload(Bytes{1, 2, 3});  // not checksum-protected
  proto::prepend_glue_id(payload, glue_id);
  const wire::Buffer reply = context_.handle_frame(
      request_frame(id, 1, payload, wire::kFlagGlueProcessed));
  EXPECT_EQ(error_code_of(reply),
            static_cast<std::uint32_t>(ErrorCode::capability_bad_payload));
}

// ---- glue binding management ----------------------------------------------------------

TEST_F(OrbFixture, GlueBindingsTrackedPerObject) {
  const ObjectId a = context_.activate(std::make_shared<EchoServant>());
  const ObjectId b = context_.activate(std::make_shared<EchoServant>());
  const auto g1 = context_.register_glue(a, cap::CapabilityChain{});
  const auto g2 = context_.register_glue(a, cap::CapabilityChain{});
  const auto g3 = context_.register_glue(b, cap::CapabilityChain{});
  EXPECT_NE(g1, g2);

  EXPECT_EQ(context_.glue_bindings_of(a).size(), 2u);
  EXPECT_EQ(context_.glue_bindings_of(b).size(), 1u);
  EXPECT_NE(context_.find_glue(g3), nullptr);

  context_.remove_glue_of(a);
  EXPECT_TRUE(context_.glue_bindings_of(a).empty());
  EXPECT_EQ(context_.find_glue(g1), nullptr);
  EXPECT_NE(context_.find_glue(g3), nullptr);
}

// ---- RefBuilder --------------------------------------------------------------------------

TEST_F(OrbFixture, DefaultTableIsShmThenNexus) {
  const ObjectRef ref =
      RefBuilder(context_, std::make_shared<EchoServant>()).build();
  ASSERT_EQ(ref.table().size(), 2u);
  EXPECT_EQ(ref.table().at(0).name, "shm");
  EXPECT_EQ(ref.table().at(1).name, "nexus-tcp");
}

TEST_F(OrbFixture, GlueEntryCarriesDescriptors) {
  auto quota = std::make_shared<cap::QuotaCapability>(7);
  const ObjectRef ref = RefBuilder(context_, std::make_shared<EchoServant>())
                            .glue({quota})
                            .build();
  ASSERT_EQ(ref.table().size(), 1u);
  EXPECT_EQ(ref.table().at(0).name, "glue");
  const auto data = proto::decode_glue_proto_data(ref.table().at(0).proto_data);
  ASSERT_EQ(data.capabilities.size(), 1u);
  EXPECT_EQ(data.capabilities[0].kind, "quota");
  EXPECT_EQ(data.delegate.name, "nexus-tcp");
  // The instances passed in became the server-side chain.
  EXPECT_NE(context_.find_glue(data.glue_id), nullptr);
}

TEST_F(OrbFixture, MultipleRefsForOneObject) {
  auto servant = std::make_shared<EchoServant>();
  const ObjectRef full = RefBuilder(context_, servant).build();
  const ObjectRef metered =
      RefBuilder(context_, full.object_id())
          .glue({std::make_shared<cap::QuotaCapability>(1)})
          .build();
  EXPECT_EQ(full.object_id(), metered.object_id());
  EXPECT_NE(full.table(), metered.table());
}

TEST_F(OrbFixture, BuilderForMissingObjectRejected) {
  EXPECT_THROW(RefBuilder(context_, ObjectId{987654}), ObjectError);
}

// ---- stubs / global pointers ----------------------------------------------------------------

TEST_F(OrbFixture, UnboundStubThrows) {
  EchoStub unbound;
  EXPECT_FALSE(unbound.bound());
  EXPECT_THROW(unbound.ping(), ObjectError);
  EXPECT_THROW(unbound.ref(), ObjectError);
}

TEST_F(OrbFixture, StubCopiesShareState) {
  const ObjectRef ref =
      RefBuilder(context_, std::make_shared<EchoServant>()).build();
  EchoStub first(context_, ref);
  EchoStub second = first;  // copy shares the CallCore
  first.ping();
  EXPECT_EQ(second.last_protocol(), "shm");
}

TEST_F(OrbFixture, GlobalPointerTypeChecked) {
  const ObjectRef ref =
      RefBuilder(context_, std::make_shared<EchoServant>()).build();
  EXPECT_NO_THROW(GlobalPointer<EchoStub>(context_, ref));
  try {
    GlobalPointer<scenario::CounterStub> wrong(context_, ref);
    FAIL();
  } catch (const ObjectError& e) {
    EXPECT_EQ(e.code(), ErrorCode::type_mismatch);
  }
}

TEST_F(OrbFixture, GlobalPointerSerializeRebind) {
  const ObjectRef ref =
      RefBuilder(context_, std::make_shared<EchoServant>()).build();
  GlobalPointer<EchoStub> gp(context_, ref);
  const Bytes raw = gp.to_bytes();
  auto rebound = GlobalPointer<EchoStub>::from_bytes(context_, raw);
  EXPECT_EQ(rebound->reverse("xy"), "yx");
}

TEST_F(OrbFixture, EmptyTableRejectedAtBind) {
  ObjectRef ref(1234, "Echo", context_.current_address(), proto::ProtoTable{});
  EXPECT_THROW(EchoStub(context_, ref), ProtocolError);
}

TEST_F(OrbFixture, ContextDestructionUnbindsEndpoint) {
  std::string endpoint;
  {
    Context temporary(Context::allocate_id(), machine_, topology_, location_);
    endpoint = temporary.endpoint_name();
    EXPECT_TRUE(transport::EndpointRegistry::instance().contains(endpoint));
  }
  EXPECT_FALSE(transport::EndpointRegistry::instance().contains(endpoint));
}

}  // namespace
}  // namespace ohpx::orb
