// Final coverage sweep: corners that the per-module suites don't hit —
// attenuation across mixed tables, registry round-trips for admission
// capabilities, glue metric names, and pool/selection interplay with the
// relay protocol.
#include <gtest/gtest.h>

#include "ohpx/capability/builtin/delegation.hpp"
#include "ohpx/capability/builtin/fault.hpp"
#include "ohpx/capability/builtin/lease.hpp"
#include "ohpx/capability/builtin/quota.hpp"
#include "ohpx/capability/builtin/ratelimit.hpp"
#include "ohpx/capability/registry.hpp"
#include "ohpx/metrics/metrics.hpp"
#include "ohpx/orb/attenuate.hpp"
#include "ohpx/orb/ref_builder.hpp"
#include "ohpx/protocol/glue_wire.hpp"
#include "ohpx/protocol/relay.hpp"
#include "ohpx/runtime/world.hpp"
#include "ohpx/scenario/echo.hpp"

namespace ohpx {
namespace {

using scenario::EchoPointer;
using scenario::EchoServant;

// ---- admission capabilities survive the registry round trip -----------------

TEST(RegistryExtras, AdmissionCapabilitiesRoundTrip) {
  auto& registry = cap::CapabilityRegistry::instance();
  const std::vector<cap::CapabilityPtr> originals = {
      std::make_shared<cap::QuotaCapability>(9),
      std::make_shared<cap::LeaseCapability>(std::chrono::milliseconds(60000)),
      std::make_shared<cap::RateLimitCapability>(100.0, 50.0),
      std::make_shared<cap::FaultCapability>(5),
  };
  for (const auto& original : originals) {
    const auto copy = registry.instantiate(original->descriptor());
    EXPECT_EQ(copy->kind(), original->kind());
    // A fresh copy admits at least one request.
    cap::CallContext call;
    call.direction = cap::Direction::request;
    EXPECT_NO_THROW(copy->admit(call)) << original->kind();
  }
}

TEST(RegistryExtras, KindsListIsComplete) {
  const auto kinds = cap::CapabilityRegistry::instance().kinds();
  for (const char* expected :
       {"audit", "authentication", "checksum", "compression", "delegation",
        "encryption", "fault", "lease", "padding", "quota", "ratelimit"}) {
    EXPECT_NE(std::find(kinds.begin(), kinds.end(), expected), kinds.end())
        << expected;
  }
}

// ---- attenuation across mixed protocol tables ---------------------------------

class MixedTableFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto lan = world_.add_lan("lan");
    server_ctx_ = &world_.create_context(world_.add_machine("s", lan));
    client_ctx_ = &world_.create_context(world_.add_machine("c", lan));
  }

  runtime::World world_;
  orb::Context* server_ctx_ = nullptr;
  orb::Context* client_ctx_ = nullptr;
};

TEST_F(MixedTableFixture, AttenuationPreservesOtherEntries) {
  auto root = cap::DelegationCapability::make_root(crypto::Key128::from_seed(5));
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({root})
                 .shm()
                 .nexus()
                 .build();

  const auto narrowed = orb::attenuate_reference(ref, "method<=3");
  ASSERT_EQ(narrowed.table().size(), 3u);
  EXPECT_EQ(narrowed.table().at(0).name, "glue");
  EXPECT_EQ(narrowed.table().at(1).name, "shm");
  EXPECT_EQ(narrowed.table().at(2).name, "nexus-tcp");
  EXPECT_EQ(narrowed.object_id(), ref.object_id());

  // The glue entry is first and applicable everywhere, so even a caller on
  // the server's own machine is restricted by the caveat.
  orb::Context& colocated = world_.create_context(server_ctx_->machine());
  EchoPointer local(colocated, narrowed);
  EXPECT_THROW(local->reverse("abc"), CapabilityDenied);  // method 4
  EXPECT_EQ(local->sum({1, 2}), 3);                       // method 2

  // BUT: the untouched shm/nexus entries remain a bypass for any client
  // whose pool skips glue — a table that mixes guarded and unguarded
  // entries only *prefers* the guard, it does not enforce it.  Servers
  // that want enforcement must publish glue-only tables (as the
  // delegation suite does).
  colocated.pool().disable("glue");
  EXPECT_EQ(local->reverse("abc"), "cba");
  EXPECT_EQ(local->last_protocol(), "shm");

  // A remote caller with the standard pool goes through the glue.
  EchoPointer remote(*client_ctx_, narrowed);
  EXPECT_THROW(remote->reverse("abc"), CapabilityDenied);
  EXPECT_EQ(remote->sum({1, 2}), 3);  // method 2: allowed
}

TEST_F(MixedTableFixture, AttenuationAppliesToEveryGlueEntry) {
  auto root_a = cap::DelegationCapability::make_root(crypto::Key128::from_seed(6));
  auto root_b = cap::DelegationCapability::make_root(crypto::Key128::from_seed(7));
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({root_a})
                 .glue({root_b})
                 .build();
  const auto narrowed = orb::attenuate_reference(ref, "method<=1");
  for (const auto& entry : narrowed.table().entries()) {
    const auto data = proto::decode_glue_proto_data(entry.proto_data);
    ASSERT_EQ(data.capabilities.size(), 1u);
    EXPECT_NE(data.capabilities[0].get_or("caveats", ""), "");
  }
}

// ---- metrics record glue protocol names -----------------------------------------

TEST_F(MixedTableFixture, GlueCallsCountedUnderGlueName) {
  auto& registry = metrics::MetricsRegistry::global();
  registry.reset();

  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::QuotaCapability>(10)})
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();
  EXPECT_EQ(registry.counter("rmi.calls.glue"), 1u);
  registry.reset();
}

// ---- capability denials counted as client errors ---------------------------------

TEST_F(MixedTableFixture, ClientSideDenialsAreVisible) {
  auto& registry = metrics::MetricsRegistry::global();
  registry.reset();

  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .glue({std::make_shared<cap::QuotaCapability>(1)})
                 .build();
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();
  EXPECT_THROW(gp->ping(), CapabilityDenied);
  // The denial happened client-side (before the wire), so rmi.calls counts
  // the attempt but no server request was made for it.
  EXPECT_EQ(registry.counter("rmi.calls"), 2u);
  EXPECT_EQ(registry.counter("server.requests"), 1u);
  registry.reset();
}

// ---- pool gates custom protocols ---------------------------------------------------

TEST_F(MixedTableFixture, PoolGatesRelayLikeAnyProtocol) {
  proto::RelayForwarder gateway("gw/extras");
  auto ref = orb::RefBuilder(*server_ctx_, std::make_shared<EchoServant>())
                 .custom(proto::ProtocolEntry{
                     "relay", proto::RelayProtocol::make_proto_data("gw/extras")})
                 .nexus()
                 .build();

  // The standard pool does not allow "relay": selection falls through.
  EchoPointer gp(*client_ctx_, ref);
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "nexus-tcp");

  client_ctx_->pool().enable("relay");
  gp->ping();
  EXPECT_EQ(gp->last_protocol(), "relay[gw/extras]");
  client_ctx_->pool().disable("relay");
}

}  // namespace
}  // namespace ohpx
